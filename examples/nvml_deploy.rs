//! Deployment execution against the (simulated) NVML layer — what the
//! paper's Fig. 2 "Deployment" arrow does: reconfigure MIG/MPS on physical
//! GPUs, then apply an SLO change with the §III-F minimal diff.
//!
//! Run: `cargo run --example nvml_deploy`

use parvagpu::core::reconfigure;
use parvagpu::nvml::{apply_deployment, apply_diff, diff_deployments, fleet_matches, SimNvml};
use parvagpu::prelude::*;

fn main() {
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let specs = Scenario::S1.services();
    let (services, deployment) = scheduler.plan(&specs).expect("S1 feasible");

    // Apply the plan to a fresh fleet.
    let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
    let applied = apply_deployment(&mut nvml, &deployment).expect("clean fleet");
    println!(
        "applied {} instances across {} devices:",
        applied.len(),
        nvml.device_count()
    );
    for dev in 0..nvml.device_count() {
        let names: Vec<String> = nvml
            .instances_on(dev)
            .iter()
            .map(|i| i.profile_name())
            .collect();
        println!(
            "  {}  [{}]",
            nvml.device(dev).unwrap().uuid,
            names.join(" | ")
        );
    }
    assert!(fleet_matches(&nvml, &deployment));

    // A service's rate spikes 4× → incremental reconfiguration (§III-F).
    let updated = ServiceSpec::new(
        specs[2].id,
        specs[2].model,
        specs[2].request_rate_rps * 4.0,
        specs[2].slo.latency_ms,
    );
    println!(
        "\nrate spike: {} → {:.0} req/s",
        specs[2], updated.request_rate_rps
    );
    let outcome = reconfigure::update_service(&scheduler, &deployment, &services, updated)
        .expect("reconfig feasible");

    let diff = diff_deployments(&deployment, &outcome.deployment);
    println!(
        "minimal diff: {} slots kept, {} MIG rebuilds, {} MPS retunes, GPUs touched: {:?}",
        diff.kept.len(),
        diff.mig_rebuilds(),
        diff.ops.len() - diff.mig_rebuilds(),
        diff.mig_touched_devices(),
    );
    let shadow = outcome.shadow_plan(&deployment);
    println!(
        "shadow plan: services {:?} bridged on {} spare GPU(s) during the switch",
        shadow.services, shadow.spare_gpus
    );

    apply_diff(&mut nvml, &diff).expect("diff applies");
    assert!(fleet_matches(&nvml, &outcome.deployment));
    println!("\nfleet after the diff ({} devices):", nvml.device_count());
    for dev in 0..nvml.device_count() {
        let names: Vec<String> = nvml
            .instances_on(dev)
            .iter()
            .map(|i| i.profile_name())
            .collect();
        println!("  device {dev}  [{}]", names.join(" | "));
    }
}
