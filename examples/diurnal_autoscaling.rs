//! Autoscaling under a diurnal load curve: the paper's runtime story
//! (§III-F) end to end. Rates swing over a simulated day; at each epoch the
//! deployment is updated *incrementally* through ParvaGPU's reconfiguration
//! path, and we watch fleet size, SLO compliance and reconfiguration churn.
//!
//! Run: `cargo run --release --example diurnal_autoscaling`

use parvagpu::prelude::*;

fn main() {
    let profiles = ProfileBook::builtin();
    // A mid-size catalogue: half of scenario S3's load as the daily mean.
    let base: Vec<ServiceSpec> = Scenario::S3
        .services()
        .into_iter()
        .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 0.5, s.slo.latency_ms))
        .collect();

    // 12 epochs ≈ one day in 2-hour steps, load swinging 0.4×–1.8×.
    let trace = RateTrace::diurnal(12, 0.4, 1.8);
    let serving = ServingConfig {
        warmup_s: 1.0,
        duration_s: 5.0,
        drain_s: 2.0,
        seed: 42,
        ..Default::default()
    };

    println!("running {} epochs of diurnal load …\n", trace.epochs());
    #[allow(deprecated)] // oracle-fed demo; `parvad` runs the observed-demand loop
    let report = run_traced(&profiles, &base, &trace, &serving).expect("feasible");

    println!(
        "{:>6} {:>6} {:>6} {:>9} {:>11} {:>8}",
        "epoch", "load", "GPUs", "reconfigs", "compliance", "slack"
    );
    for e in &report.epochs {
        println!(
            "{:>6} {:>5.2}x {:>6} {:>9} {:>10.2}% {:>7.1}%",
            e.epoch,
            e.multiplier,
            e.gpus,
            e.reconfigured_gpus,
            e.compliance * 100.0,
            e.internal_slack * 100.0
        );
    }
    println!(
        "\npeak fleet {} GPUs, worst compliance {:.2}%, total churn {} GPU reconfigurations",
        report.peak_gpus(),
        report.min_compliance() * 100.0,
        report.total_reconfigurations()
    );
    assert!(
        report.min_compliance() > 0.999,
        "SLOs must hold through the day"
    );
}
