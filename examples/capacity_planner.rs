//! Capacity planning with the predictor (paper §IV-D): size a GPU fleet for
//! a growing service catalogue *without any GPUs*, by running the scheduler
//! in predictor mode and reading off the fleet size — the workflow behind
//! Figures 10 and 11.
//!
//! Run: `cargo run --release --example capacity_planner`

use parvagpu::prelude::*;
use std::time::Instant;

fn main() {
    let profiles = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&profiles);

    println!("fleet size required as the S5 catalogue grows 1..6-fold:\n");
    println!(
        "{:>7} {:>10} {:>10} {:>14}",
        "factor", "services", "GPUs", "plan time"
    );
    for k in 1..=6u32 {
        let specs = Scenario::S5.scaled(k);
        let start = Instant::now();
        let deployment = scheduler
            .schedule(&specs)
            .expect("S5 feasible for ParvaGPU");
        let elapsed = start.elapsed();
        println!(
            "{:>6}x {:>10} {:>10} {:>11.1?}",
            k,
            specs.len(),
            deployment.gpu_count(),
            elapsed
        );
    }

    println!("\nper-GPU cost math: a p4de.24xlarge (8×A100) is ~$40/h on demand;");
    println!("every GPU saved is ~$3,600/month — the paper's cost-efficiency argument.");
}
