//! Cluster cost planning: from a deployment map to a monthly cloud bill.
//!
//! The paper's evaluation rents Amazon p4de.24xlarge nodes (8× A100-80GB);
//! clouds bill whole nodes, so the GPU savings of Figure 5 become money
//! only after node packing. This example schedules the paper's S5 scenario
//! (the high-request-rate one) with ParvaGPU and gpulet, packs both onto
//! p4de nodes, and compares bills across pricing plans.
//!
//! Run: `cargo run --example cluster_cost`

use parvagpu::cluster::{pack, CostReport, NodeType, PricingPlan};
use parvagpu::prelude::*;
use parvagpu::profile::ProfileBook as Book;

fn main() {
    let book = Book::builtin();
    let services = Scenario::S5.services();
    let node = NodeType::P4DE_24XLARGE;

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(ParvaGpu::new(&book)),
        Box::new(parvagpu::baselines::Gpulet::new()),
        Box::new(parvagpu::baselines::MigServing::new(&book)),
    ];

    let mut reports = Vec::new();
    for sched in &schedulers {
        match sched.schedule(&services) {
            Ok(deployment) => {
                let plan = pack(&deployment, node);
                println!(
                    "{:<12} {:>3} GPUs → {} node(s), {} idle GPU(s), {:.0}% GPU utilization",
                    sched.name(),
                    deployment.gpu_count(),
                    plan.node_count(),
                    plan.idle_gpus,
                    plan.gpu_utilization() * 100.0
                );
                reports.push(CostReport::from_plan(
                    sched.name(),
                    &plan,
                    PricingPlan::OnDemand,
                ));
            }
            Err(e) => println!("{:<12} infeasible: {e}", sched.name()),
        }
    }

    println!("\nMonthly bills (on-demand):");
    for r in &reports {
        println!(
            "  {:<12} ${:>10.0}/month ({} nodes)",
            r.scheduler, r.usd_per_month, r.nodes
        );
    }
    if let Some(parva) = reports.iter().find(|r| r.scheduler == "ParvaGPU") {
        for r in reports.iter().filter(|r| r.scheduler != "ParvaGPU") {
            println!(
                "  ParvaGPU saves {:.0}% vs {}",
                parva.saving_vs(r) * 100.0,
                r.scheduler
            );
        }
    }

    println!("\nPricing plans for the ParvaGPU fleet:");
    if let Ok(deployment) = ParvaGpu::new(&book).schedule(&services) {
        let plan = pack(&deployment, node);
        for pricing in [
            PricingPlan::OnDemand,
            PricingPlan::Reserved1Yr,
            PricingPlan::Reserved3Yr,
            PricingPlan::Spot,
        ] {
            let r = CostReport::from_plan("ParvaGPU", &plan, pricing);
            println!(
                "  {:<12} ${:>9.0}/month",
                format!("{pricing:?}"),
                r.usd_per_month
            );
        }
    }
}
