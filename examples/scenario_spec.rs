//! Experiments as data: load a declarative [`ScenarioSpec`] from JSON,
//! run it, and inspect the tagged report — the library-level twin of
//! `parvactl run <spec.json>`.
//!
//! Run: `cargo run --release --example scenario_spec [path/to/spec.json]`
//!
//! Defaults to the committed `examples/specs/h200_spot_market.json`, a
//! fleet scenario no pre-spec binary could express (custom pool mix with
//! an H200 spot tier).

use parvagpu::scenarios::{ScenarioReport, ScenarioSpec};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/specs/h200_spot_market.json".into());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let spec: ScenarioSpec = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a scenario spec: {e}");
        std::process::exit(1);
    });
    println!("spec '{}': {}\n", spec.name, spec.description);

    match spec.run() {
        Ok(report) => {
            print!("{}", report.render());
            match report {
                ScenarioReport::Serve(r) => println!(
                    "\n→ serve report: {:.2}% request compliance",
                    r.overall_request_compliance_rate() * 100.0
                ),
                ScenarioReport::Fleet(r) => println!(
                    "\n→ fleet report: {} events, worst measured dip {:.2}%",
                    r.events.len(),
                    r.worst_measured_dip() * 100.0
                ),
                ScenarioReport::Region(r) => println!(
                    "\n→ region report: {} intervals, final compliance {:.2}%",
                    r.intervals.len(),
                    r.final_compliance() * 100.0
                ),
            }
        }
        Err(e) => {
            eprintln!("scenario failed: {e}");
            std::process::exit(1);
        }
    }
}
