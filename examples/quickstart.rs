//! Quickstart: profile a model zoo once, register a few services, schedule
//! them with ParvaGPU and inspect the deployment map.
//!
//! Run: `cargo run --example quickstart`

use parvagpu::prelude::*;

fn main() {
    // 1. The Profiler sweeps every model over (instance size × batch ×
    //    process count) once — paper §III-C. Here the measurements come from
    //    the calibrated analytic substrate.
    let profiles = ProfileBook::builtin();

    // 2. Clients register services: a model, an offered request rate
    //    (req/s) and an SLO latency (ms).
    let services = vec![
        ServiceSpec::new(0, Model::ResNet50, 829.0, 205.0),
        ServiceSpec::new(1, Model::MobileNetV2, 677.0, 167.0),
        ServiceSpec::new(2, Model::BertLarge, 19.0, 6_434.0),
    ];

    // 3. Schedule: Segment Configurator + Segment Allocator.
    let scheduler = ParvaGpu::new(&profiles);
    let (configured, deployment) = scheduler.plan(&services).expect("feasible SLOs");

    println!("=== Configured services (Table II fields) ===");
    for svc in &configured {
        println!(
            "{}: optimal segment {} ×{}, last segment {}",
            svc.spec,
            svc.opt_seg.triplet,
            svc.num_opt_seg,
            svc.last_seg
                .map_or("none".to_string(), |s| s.triplet.to_string()),
        );
    }

    println!(
        "\n=== Deployment map ({} GPU(s)) ===",
        deployment.gpu_count()
    );
    for (i, gpu) in deployment.gpus().iter().enumerate() {
        println!("GPU {i}: {gpu}");
        for ps in deployment.segments_on(i) {
            println!("   {} at slice {}", ps.segment, ps.placement.start);
        }
    }

    let dep = parvagpu::deploy::Deployment::Mig(deployment);
    println!(
        "\nexternal fragmentation: {:.1}%",
        external_fragmentation(&dep) * 100.0
    );
    for s in &services {
        println!(
            "service #{} capacity {:.0} req/s for offered {:.0} req/s",
            s.id,
            dep.capacity_of(s.id),
            s.request_rate_rps
        );
    }
}
