//! Runtime SLO reconfiguration (paper §III-F): a running deployment adapts
//! to a tightened SLO for one service without re-profiling and without
//! touching unaffected services' placements.
//!
//! Run: `cargo run --example slo_reconfiguration`

use parvagpu::core::{reconfigure, ParvaGpu};
use parvagpu::prelude::*;

fn main() {
    let profiles = ProfileBook::builtin();
    let services = Scenario::S2.services();
    let scheduler = ParvaGpu::new(&profiles);

    let (configured, deployment) = scheduler.plan(&services).expect("S2 feasible");
    println!("initial deployment: {} GPUs", deployment.gpu_count());
    let inception = services
        .iter()
        .find(|s| s.model == Model::InceptionV3)
        .unwrap();
    println!(
        "InceptionV3 currently: SLO {:.0} ms, {} segment(s)",
        inception.slo.latency_ms,
        deployment.segments_of(inception.id).count()
    );

    // The client tightens InceptionV3's SLO from 419 ms to 150 ms.
    let updated = ServiceSpec::new(
        inception.id,
        Model::InceptionV3,
        inception.request_rate_rps,
        150.0,
    );
    println!("\ntightening InceptionV3 SLO: 419 ms → 150 ms …");
    let outcome = reconfigure::update_service(&scheduler, &deployment, &configured, updated)
        .expect("still feasible");

    println!("new deployment: {} GPUs", outcome.deployment.gpu_count());
    println!(
        "segments for InceptionV3 now: {:?}",
        outcome
            .deployment
            .segments_of(updated.id)
            .map(|ps| ps.segment.triplet.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "GPUs needing physical MIG reconfiguration: {:?} (others keep serving untouched)",
        outcome.reconfigured_gpus
    );

    // Every new segment satisfies the *tighter* internal target.
    for ps in outcome.deployment.segments_of(updated.id) {
        assert!(ps.segment.latency_ms < updated.slo.internal_target_ms());
    }
    // And every service is still fully covered.
    for spec in &services {
        let rate = if spec.id == updated.id {
            updated.request_rate_rps
        } else {
            spec.request_rate_rps
        };
        assert!(outcome.deployment.capacity_of(spec.id) + 1e-6 >= rate);
    }
    println!("\nall services remain covered — reconfiguration complete");
}
