//! LLM serving across GPU generations — the paper's §V discussion, live.
//!
//! Large models gate which MIG segments are usable: a 65B QLoRA model
//! (41 GiB of weights) only fits a full A100-80 GPU, but fits a 3-GPC
//! instance on an H200 (141 GB) and a 2-GPC instance on a B200 (192 GB),
//! restoring ParvaGPU-style spatial sharing for LLM fleets.
//!
//! Run: `cargo run --example llm_serving`

use parvagpu::mig::InstanceProfile;
use parvagpu::perf::ComputeShare;
use parvagpu::prelude::*;
use parvagpu::profile::SweepGrid;

fn main() {
    let services = vec![
        ServiceSpec::new(0, Model::LlamaLite7B, 30.0, 4_000.0),
        ServiceSpec::new(1, Model::Guanaco7B, 20.0, 5_000.0),
        ServiceSpec::new(2, Model::Guanaco65B, 2.0, 15_000.0),
    ];
    let grid = SweepGrid {
        instances: InstanceProfile::ALL.to_vec(),
        batches: vec![1, 2, 4, 8],
        procs: vec![1, 2, 3],
    };

    for gpu in [
        GpuModel::A100_80GB,
        GpuModel::H200_141GB,
        GpuModel::B200_192GB,
    ] {
        println!("=== {} ===", gpu.name);

        // Which instances can even hold each model?
        for m in Model::LLMS {
            let smallest = InstanceProfile::ALL.iter().copied().find(|g| {
                parvagpu::perf::math::fits_memory_on(m, ComputeShare::Mig(*g), 1, 1, gpu)
            });
            println!(
                "  {:<14} smallest feasible instance: {}",
                m.name(),
                smallest.map_or("none".to_string(), |g| g.to_string())
            );
        }

        // Profile on this GPU model and schedule with ParvaGPU.
        let book = parvagpu::profile::ProfileBook::measure_on(&Model::LLMS, &grid, gpu);
        match ParvaGpu::new(&book).schedule(&services) {
            Ok(deployment) => {
                println!(
                    "  ParvaGPU: {} GPU(s), fragmentation {:.1}%",
                    deployment.gpu_count(),
                    external_fragmentation(&deployment) * 100.0
                );
                let mig = deployment.as_mig().expect("MIG deployment");
                for (i, gpu_state) in mig.gpus().iter().enumerate() {
                    println!("    GPU {i}: {gpu_state}");
                }
            }
            Err(e) => println!("  ParvaGPU: infeasible — {e}"),
        }
        println!();
    }
}
