//! Framework shoot-out on one scenario: schedule S2 with every Table I
//! framework, then compare GPUs, fragmentation, measured internal slack and
//! SLO compliance — a one-scenario slice of Figures 5–9. GSLICE and
//! PARIS+ELSA appear too; per their Table I rows they reject S2's rates
//! (no multi-GPU / multi-instance scale-out).
//!
//! Run: `cargo run --release --example compare_frameworks`

use parvagpu::prelude::*;

fn main() {
    let profiles = ProfileBook::builtin();
    let services = Scenario::S2.services();

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Gslice::new()),
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(ParisElsa::new()),
        Box::new(MigServing::new(&profiles)),
        Box::new(ParvaGpu::new(&profiles)),
    ];

    println!(
        "{:<13} {:>6} {:>8} {:>8} {:>12} {:>12}",
        "framework", "GPUs", "frag %", "slack %", "compliance %", "sched delay"
    );
    for sched in schedulers {
        let start = std::time::Instant::now();
        match sched.schedule(&services) {
            Ok(deployment) => {
                let delay = start.elapsed();
                let report = Simulation::new(&deployment, &services)
                    .config(&ServingConfig::default())
                    .run();
                println!(
                    "{:<13} {:>6} {:>8.1} {:>8.1} {:>12.2} {:>11.1?}",
                    sched.name(),
                    deployment.gpu_count(),
                    external_fragmentation(&deployment) * 100.0,
                    internal_slack(&report) * 100.0,
                    report.overall_compliance_rate() * 100.0,
                    delay
                );
            }
            Err(e) => println!("{:<13} cannot run S2: {e}", sched.name()),
        }
    }
}
