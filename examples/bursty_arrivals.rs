//! How much burstiness does the SLO/2 queuing budget absorb?
//!
//! The paper sizes deployments against half the client SLO (§IV-A), leaving
//! the other half for queuing — a budget implicitly calibrated for Poisson
//! arrivals. This example offers the same mean rates through increasingly
//! bursty Markov-modulated Poisson processes and watches the tail walk
//! through the budget.
//!
//! Run: `cargo run --release --example bursty_arrivals`

use parvagpu::prelude::*;

fn main() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let deployment = ParvaGpu::new(&book).schedule(&specs).expect("S2 feasible");
    println!(
        "ParvaGPU serves S2 on {} GPUs; offered mean load is identical in every row.\n",
        deployment.gpu_count()
    );

    println!(
        "{:<16} {:>10} {:>12} {:>14}",
        "arrivals", "batch %", "request %", "worst p99/SLO"
    );
    let mut cases = vec![
        ("deterministic".to_string(), ArrivalProcess::Deterministic),
        ("poisson".to_string(), ArrivalProcess::Poisson),
    ];
    for factor in [2.0, 4.0, 8.0] {
        cases.push((
            format!("mmpp ×{factor:.0}"),
            ArrivalProcess::Mmpp {
                burst_factor: factor,
                mean_phase_s: 0.5,
            },
        ));
    }
    for (label, arrivals) in cases {
        let cfg = ServingConfig {
            warmup_s: 1.0,
            duration_s: 6.0,
            drain_s: 2.0,
            seed: 21,
            arrivals,
        };
        let report = Simulation::new(&deployment, &specs).config(&cfg).run();
        let worst_ratio = specs
            .iter()
            .zip(&report.services)
            .map(|(spec, s)| s.latency.quantile_ms(0.99) / spec.slo.latency_ms)
            .fold(0.0, f64::max);
        println!(
            "{label:<16} {:>9.2}% {:>11.2}% {:>14.2}",
            report.overall_compliance_rate() * 100.0,
            report.overall_request_compliance_rate() * 100.0,
            worst_ratio
        );
    }
    println!("\nPoisson and ~2× bursts ride inside the SLO/2 budget; beyond that the");
    println!("p99 crosses the SLO and compliance erodes smoothly (no cliff).");
}
