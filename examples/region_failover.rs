//! Multi-region federation demo: three regions follow the sun, one gets
//! evacuated mid-run, its traffic fails over cross-region (RTT charged
//! against the SLO), and the region later fails back.
//!
//! Run: `cargo run --release --example region_failover [seed]`
//!
//! The topology is the built-in three-region demo (us-east / eu-west /
//! ap-south): per-region pricing indices, demand shares, sun-phase
//! offsets and a symmetric RTT matrix (80 / 210 / 140 ms). The drill
//! evacuates us-east — half the planet's demand — and the surviving
//! regions re-place its services through the §III-F incremental path.

use parvagpu::prelude::*;
use parvagpu::region::EvacuationDrill;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let book = ProfileBook::builtin();
    let services = parvagpu::region::demo_services();
    let spec = FederationSpec::three_region_demo();

    println!("federation topology:");
    for (i, r) in spec.regions.iter().enumerate() {
        println!(
            "  {:<9} share {:>4.0}% | price x{:.2} | sun phase {:>4.1} h | {} GPUs",
            r.name,
            r.demand_share * 100.0,
            r.pricing_multiplier,
            r.diurnal_phase_hours,
            r.fleet.total_gpus()
        );
        for (j, other) in spec.regions.iter().enumerate().skip(i + 1) {
            println!(
                "    rtt {} <-> {}: {:.0} ms",
                r.name,
                other.name,
                spec.rtt.rtt_ms(i, j)
            );
        }
    }
    println!();

    let config = FederationConfig {
        seed,
        intervals: 8,
        drill: Some(EvacuationDrill {
            region: 0,
            evacuate_at: 3,
            failback_at: 6,
        }),
        ..FederationConfig::default()
    };
    match run_federation(&book, &services, &spec, &config) {
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "\nDES-measured recovery: worst {:.0} ms across regions, \
                 {:.1} GiB pre-copied on evacuation notices / spot warnings",
                report.worst_recovery_latency_ms(),
                report.total_precopied_gib()
            );
            assert!(
                report.recovered(),
                "the final interval must return to baseline SLO attainment"
            );
        }
        Err(e) => eprintln!("federation run aborted: {e}"),
    }
}
