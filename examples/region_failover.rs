//! Multi-region federation demo: three regions follow the sun, one gets
//! evacuated mid-run, its traffic fails over cross-region (RTT charged
//! against the SLO), and the region later fails back.
//!
//! Run: `cargo run --release --example region_failover [seed]`
//!
//! The experiment is the registered `region_failover` [`ScenarioSpec`] —
//! the same declarative object behind `parvactl run region_failover` —
//! with the seed swapped in from the command line. The topology is the
//! built-in three-region demo (us-east / eu-west / ap-south): per-region
//! pricing indices, demand shares, sun-phase offsets and a symmetric RTT
//! matrix (80 / 210 / 140 ms). The drill evacuates us-east — half the
//! planet's demand — and the surviving regions re-place its services
//! through the §III-F incremental path.

use parvagpu::prelude::*;
use parvagpu::scenarios::{spec_by_name, Mode, ScenarioReport};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut spec = spec_by_name("region_failover").expect("registered builtin");
    spec.seed = seed;
    let Mode::Region { federation, .. } = &spec.mode else {
        panic!("region_failover must be a region spec");
    };
    // resolve() is the exact topology run() will simulate.
    let topology: FederationSpec = federation.resolve();
    println!("federation topology:");
    for (i, r) in topology.regions.iter().enumerate() {
        println!(
            "  {:<9} share {:>4.0}% | price x{:.2} | sun phase {:>4.1} h | {} GPUs",
            r.name,
            r.demand_share * 100.0,
            r.pricing_multiplier,
            r.diurnal_phase_hours,
            r.fleet.total_gpus()
        );
        for (j, other) in topology.regions.iter().enumerate().skip(i + 1) {
            println!(
                "    rtt {} <-> {}: {:.0} ms",
                r.name,
                other.name,
                topology.rtt.rtt_ms(i, j)
            );
        }
    }
    println!();

    match spec.run() {
        Ok(ScenarioReport::Region(report)) => {
            print!("{}", report.render());
            println!(
                "\nDES-measured recovery: worst {:.0} ms across regions, \
                 {:.1} GiB pre-copied on evacuation notices / spot warnings",
                report.worst_recovery_latency_ms(),
                report.total_precopied_gib()
            );
            assert!(
                report.recovered(),
                "the final interval must return to baseline SLO attainment"
            );
        }
        Ok(_) => unreachable!("region spec returns a region report"),
        Err(e) => eprintln!("federation run aborted: {e}"),
    }
}
