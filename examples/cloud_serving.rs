//! Cloud serving end-to-end: schedule the paper's Scenario 2 (11 DNN
//! services), then run the serving simulator against Poisson load and
//! report the paper's quality metrics — SLO compliance, internal slack and
//! external fragmentation.
//!
//! Run: `cargo run --release --example cloud_serving`

use parvagpu::prelude::*;

fn main() {
    let profiles = ProfileBook::builtin();
    let services = Scenario::S2.services();

    println!("Scheduling {} services of scenario S2 …", services.len());
    let scheduler = ParvaGpu::new(&profiles);
    let deployment = scheduler.schedule(&services).expect("S2 is feasible");
    println!("→ {} GPUs allocated", deployment.gpu_count());

    println!("\nServing 10 simulated seconds of Poisson traffic …");
    let config = ServingConfig::default();
    let report = Simulation::new(&deployment, &services)
        .config(&config)
        .run();

    println!("\n=== Service quality (paper §IV-C) ===");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>10} {:>9}",
        "model", "offered", "served", "batches", "compliance", "p99 (ms)"
    );
    for (spec, svc) in services.iter().zip(&report.services) {
        println!(
            "{:<14} {:>9} {:>9} {:>8} {:>9.2}% {:>9.1}",
            spec.model.name(),
            svc.offered,
            svc.completed,
            svc.batches,
            svc.compliance_rate() * 100.0,
            svc.latency.quantile_ms(0.99),
        );
    }

    println!("\n=== Cluster metrics ===");
    println!(
        "SLO compliance : {:.2}%",
        report.overall_compliance_rate() * 100.0
    );
    println!(
        "internal slack : {:.1}%  (Eq. 3)",
        internal_slack(&report) * 100.0
    );
    println!(
        "fragmentation  : {:.1}%  (Eq. 4)",
        external_fragmentation(&deployment) * 100.0
    );
    assert!(
        (report.overall_compliance_rate() - 1.0).abs() < 1e-9,
        "ParvaGPU must not violate SLOs on S2"
    );
}
