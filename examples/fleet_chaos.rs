//! Chaos-engineering demo: a heterogeneous, partly-spot fleet survives
//! failures, preemptions and load shifts while ParvaGPU recovers after
//! every event.
//!
//! Run: `cargo run --release --example fleet_chaos [seed]`
//!
//! The experiment is the registered `fleet_chaos` [`ScenarioSpec`] — the
//! same declarative object behind `parvactl run fleet_chaos` — with the
//! seed swapped in from the command line. Each injected event triggers
//! the recovery pipeline — incremental rescheduling (paper §III-F),
//! sticky re-anchoring with live migration, node re-packing — and the
//! next interval is served in the simulator to prove SLO compliance
//! returned to the pre-event level.

use parvagpu::prelude::*;
use parvagpu::scenarios::{spec_by_name, Mode, ScenarioReport};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut spec = spec_by_name("fleet_chaos").expect("registered builtin");
    spec.seed = seed;
    let Mode::Fleet { fleet, .. } = &spec.mode else {
        panic!("fleet_chaos must be a fleet spec");
    };
    // resolve() is the exact pool list run() will simulate.
    let pools: FleetSpec = fleet.resolve();
    println!(
        "fleet: {} pools, {} GPUs total",
        pools.pools.len(),
        pools.total_gpus()
    );
    for pool in &pools.pools {
        println!(
            "  {:<16} {}x {} ({}, {:?}{})",
            pool.name,
            pool.count,
            pool.node.name,
            pool.node.gpu_model.name,
            pool.pricing,
            if pool.preemptible {
                ", preemptible"
            } else {
                ""
            }
        );
    }
    println!();

    match spec.run() {
        Ok(ScenarioReport::Fleet(report)) => {
            print!("{}", report.render());
            println!(
                "\nmeasured vs analytic: worst dip {:.2}% (blackout estimate {:.2}%), \
                 worst recovery {:.0} ms simulated ({:.0} ms analytic)",
                report.worst_measured_dip() * 100.0,
                report.worst_dip() * 100.0,
                report.worst_simulated_recovery_ms(),
                report.worst_recovery_latency_ms()
            );
            let precopied = report.total_precopied_gib();
            if precopied > 0.0 {
                println!(
                    "predictive pre-copy staged {precopied:.1} GiB ahead of warned preemptions"
                );
            }
            assert!(
                report.fully_recovered(),
                "every event must recover to the pre-event compliance level"
            );
        }
        Ok(_) => unreachable!("fleet spec returns a fleet report"),
        Err(e) => eprintln!("chaos run aborted: {e}"),
    }
}
