//! Chaos-engineering demo: a heterogeneous, partly-spot fleet survives
//! failures, preemptions and load shifts while ParvaGPU recovers after
//! every event.
//!
//! Run: `cargo run --release --example fleet_chaos [seed]`
//!
//! The fleet mixes reserved A100-80GB nodes, an on-demand A100-40GB node
//! and a preemptible H100 spot node. Each injected event triggers the
//! recovery pipeline — incremental rescheduling (paper §III-F), sticky
//! re-anchoring with live migration, node re-packing — and the next
//! interval is served in the simulator to prove SLO compliance returned
//! to the pre-event level.

use parvagpu::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let profiles = ProfileBook::builtin();
    let services = parvagpu::fleet::demo_services();

    let fleet = FleetSpec::mixed_demo(2);
    println!(
        "fleet: {} pools, {} GPUs total",
        fleet.pools.len(),
        fleet.total_gpus()
    );
    for pool in &fleet.pools {
        println!(
            "  {:<16} {}x {} ({}, {:?}{})",
            pool.name,
            pool.count,
            pool.node.name,
            pool.node.gpu_model.name,
            pool.pricing,
            if pool.preemptible {
                ", preemptible"
            } else {
                ""
            }
        );
    }
    println!();

    let config = FleetConfig {
        seed,
        intervals: 10,
        ..FleetConfig::default()
    };
    match run_chaos(&profiles, &services, &fleet, &config) {
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "\nmeasured vs analytic: worst dip {:.2}% (blackout estimate {:.2}%), \
                 worst recovery {:.0} ms simulated ({:.0} ms analytic)",
                report.worst_measured_dip() * 100.0,
                report.worst_dip() * 100.0,
                report.worst_simulated_recovery_ms(),
                report.worst_recovery_latency_ms()
            );
            let precopied = report.total_precopied_gib();
            if precopied > 0.0 {
                println!(
                    "predictive pre-copy staged {precopied:.1} GiB ahead of warned preemptions"
                );
            }
            assert!(
                report.fully_recovered(),
                "every event must recover to the pre-event compliance level"
            );
        }
        Err(e) => eprintln!("chaos run aborted: {e}"),
    }
}
