//! The named built-in [`ScenarioSpec`]s — `parvactl run <name>`.
//!
//! Every spec here is plain data: serializing one of these and editing the
//! JSON is the supported way to derive a new experiment. Three of them
//! (`spot_heavy`, `evacuation_drill`, `single_node_mps`) exercise corners
//! no pre-spec binary could reach — custom pool mixes, custom federation
//! topologies and drill timing, and MPS serving under bursty split
//! ingress — which is the point of the declarative layer.

use super::spec::{
    ClassSplit, DiurnalSpec, FederationSource, FleetSource, Mode, ObservabilitySpec, ScenarioSpec,
    ServiceEntry, SpotMarketSpec, TenantSpec, Window, Workload,
};
use crate::cluster::{NodeType, PricingPlan};
use crate::fleet::{FleetSpec, NodePool};
use crate::region::{EvacuationDrill, FederationSpec, FollowTheSun, RegionSpec};
use parva_deploy::SloClass;
use parva_serve::{ArrivalProcess, ResilienceSpec};

/// All built-in specs, in registry order.
#[must_use]
pub fn builtin_specs() -> Vec<ScenarioSpec> {
    vec![
        quickstart(),
        llm(),
        single_node_mps(),
        fleet_chaos(),
        spot_heavy(),
        region_failover(),
        evacuation_drill(),
        diurnal(),
        follow_the_sun(),
        multi_tenant(),
        retry_storm(),
    ]
}

/// The registry's names, in order.
#[must_use]
pub fn spec_names() -> Vec<String> {
    builtin_specs().into_iter().map(|s| s.name).collect()
}

/// Look a built-in spec up by name.
#[must_use]
pub fn spec_by_name(name: &str) -> Option<ScenarioSpec> {
    builtin_specs().into_iter().find(|s| s.name == name)
}

/// Three representative services scheduled by ParvaGPU and served for a
/// few seconds — the `examples/quickstart.rs` workload as data.
fn quickstart() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "quickstart".into(),
        description: "ParvaGPU schedules three CNN/BERT services; one serving window".into(),
        seed: 42,
        window: Window {
            warmup_s: 1.0,
            duration_s: 6.0,
            drain_s: 2.0,
        },
        arrivals: None,
        workload: Workload::Services(vec![
            entry("ResNet-50", 829.0, 205.0),
            entry("MobileNetV2", 677.0, 167.0),
            entry("BERT-large", 19.0, 6_434.0),
        ]),
        mode: Mode::Serve {
            scheduler: String::new(),
            gpu: None,
            ingress: Vec::new(),
            recovery: None,
        },
    }
}

/// LLM serving on an H200 catalog slice: 141 GB instances restore MIG
/// sharing for models that monopolize a whole A100 (paper §V).
fn llm() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "llm".into(),
        description: "LLM mix profiled and scheduled on the H200-141GB catalog slice".into(),
        seed: 42,
        window: Window {
            warmup_s: 1.0,
            duration_s: 6.0,
            drain_s: 2.0,
        },
        arrivals: None,
        workload: Workload::Services(vec![
            entry("LLaMA-7B-lite", 30.0, 4_000.0),
            entry("Guanaco-7B", 20.0, 5_000.0),
            entry("Guanaco-65B", 2.0, 15_000.0),
        ]),
        mode: Mode::Serve {
            scheduler: String::new(),
            gpu: Some("H200-141GB".into()),
            ingress: Vec::new(),
            recovery: None,
        },
    }
}

/// A single-GPU MPS corner no prior binary reached: gpulet MPS partitions
/// under bursty MMPP arrivals with a split local/remote ingress.
fn single_node_mps() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "single_node_mps".into(),
        description: "gpulet MPS partitions, MMPP bursts, 80/20 local/remote ingress split".into(),
        seed: 42,
        window: Window {
            warmup_s: 1.0,
            duration_s: 6.0,
            drain_s: 2.0,
        },
        arrivals: Some(ArrivalProcess::Mmpp {
            burst_factor: 4.0,
            mean_phase_s: 0.5,
        }),
        workload: Workload::Services(vec![
            entry("ResNet-50", 200.0, 220.0),
            entry("MobileNetV2", 150.0, 180.0),
        ]),
        mode: Mode::Serve {
            scheduler: "gpulet".into(),
            gpu: None,
            ingress: vec![
                ClassSplit {
                    share: 0.8,
                    network_ms: 0.0,
                },
                ClassSplit {
                    share: 0.2,
                    network_ms: 40.0,
                },
            ],
            recovery: None,
        },
    }
}

/// The chaos-harness fleet run (`parvactl fleet` / the `fleet_chaos`
/// bench bin) as a spec.
fn fleet_chaos() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "fleet_chaos".into(),
        description: "mixed reserved/on-demand/spot fleet through 8 seeded chaos events".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::FleetDemo,
        mode: Mode::Fleet {
            fleet: FleetSource::MixedDemo { base_nodes: 2 },
            intervals: 8,
            analytic_recovery: false,
        },
    }
}

/// A spot-dominated fleet: one reserved anchor node, the rest preemptible
/// spot capacity across two GPU generations — the pool mix no hardcoded
/// binary offered. Spot warnings and cold preemptions dominate the trace.
fn spot_heavy() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "spot_heavy".into(),
        description: "1 reserved anchor + A100/H100 spot pools; preemption-dominated chaos".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::FleetDemo,
        mode: Mode::Fleet {
            fleet: FleetSource::Pools(FleetSpec {
                pools: vec![
                    NodePool {
                        name: "p4de-reserved-anchor".into(),
                        node: NodeType::P4DE_24XLARGE,
                        pricing: PricingPlan::Reserved1Yr,
                        preemptible: false,
                        count: 1,
                        region: None,
                    },
                    NodePool {
                        name: "p4de-spot".into(),
                        node: NodeType::P4DE_24XLARGE,
                        pricing: PricingPlan::Spot,
                        preemptible: true,
                        count: 2,
                        region: None,
                    },
                    NodePool {
                        name: "h100-spot".into(),
                        node: crate::fleet::node::h100_node(),
                        pricing: PricingPlan::Spot,
                        preemptible: true,
                        count: 1,
                        region: None,
                    },
                ],
            }),
            intervals: 10,
            analytic_recovery: false,
        },
    }
}

/// The scripted three-region evacuation + failback drill (`parvactl
/// region`) as a spec.
fn region_failover() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "region_failover".into(),
        description: "3-region federation; us-east evacuated at interval 3, failback at 6".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: FederationSource::ThreeRegionDemo,
            intervals: 8,
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: 3,
                failback_at: 6,
            }),
            diurnal: None,
            follow_the_sun: None,
        },
    }
}

/// A four-region topology with a custom RTT matrix and an early eu-west
/// drill — a federation no pre-spec binary could express (they all
/// hardcoded the three-region demo and its drill timing).
fn evacuation_drill() -> ScenarioSpec {
    let regions = vec![
        region("us-east", 2, 1.0, 0.35, 0.0),
        region("eu-west", 1, 1.08, 0.30, 5.0),
        region("ap-south", 1, 1.15, 0.20, 10.5),
        region("sa-east", 1, 1.22, 0.15, 21.0),
    ];
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "evacuation_drill".into(),
        description: "4-region federation; eu-west drained at interval 2, failback at 5".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: FederationSource::Custom(FederationSpec {
                regions,
                // (us,eu) (us,ap) (us,sa) (eu,ap) (eu,sa) (ap,sa)
                rtt: super::spec::rtt_upper(4, &[80.0, 210.0, 120.0, 140.0, 190.0, 300.0]),
            }),
            intervals: 7,
            drill: Some(EvacuationDrill {
                region: 1,
                evacuate_at: 2,
                failback_at: 5,
            }),
            diurnal: None,
            follow_the_sun: None,
        },
    }
}

/// Demand following the sun across the three demo regions — wide diurnal
/// swing, no drill, chaos left to the seeded stream.
fn diurnal() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "diurnal".into(),
        description: "3-region federation under a 0.4x-1.6x sun-phased demand swing".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: FederationSource::ThreeRegionDemo,
            intervals: 6,
            drill: None,
            diurnal: Some(DiurnalSpec {
                low: 0.4,
                high: 1.6,
                hours_per_interval: 4.0,
            }),
            follow_the_sun: None,
        },
    }
}

/// The `diurnal` swing with the follow-the-sun cost optimizer switched
/// on: overnight regions ship most of their demand to the cheapest
/// SLO-feasible daytime region, their fleets shrink through the normal
/// incremental retarget, and the report's billing ledger prices the
/// shift against a keep-it-local counterfactual.
fn follow_the_sun() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
        name: "follow_the_sun".into(),
        description: "diurnal swing + overnight demand shifted to the cheapest feasible region"
            .into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: FederationSource::ThreeRegionDemo,
            intervals: 6,
            drill: None,
            diurnal: Some(DiurnalSpec {
                low: 0.4,
                high: 1.6,
                hours_per_interval: 4.0,
            }),
            follow_the_sun: Some(FollowTheSun::default()),
        },
    }
}

/// Three tenants on the three-region demo federation: an interactive
/// anchor with a 3x fair-share weight, a standard mid-tier, and a
/// quota-capped batch tenant whose over-quota traffic is rejected at
/// ingress. Per-region spot markets differ (eu-west runs hot and
/// discounted, ap-south calm), a drill forces cross-region weighted-fair
/// spill, and the report carries the per-tenant P&L.
fn multi_tenant() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: vec![
            TenantSpec {
                id: 1,
                name: "anchor".into(),
                slo_class: SloClass::Interactive,
                quota_rps: 0.0,
                weight: 3.0,
                rate_usd_per_1k: 1.5,
                services: vec![0, 1],
            },
            TenantSpec {
                id: 2,
                name: "steady".into(),
                slo_class: SloClass::Standard,
                quota_rps: 0.0,
                weight: 1.0,
                rate_usd_per_1k: 0.9,
                services: vec![2],
            },
            TenantSpec {
                id: 3,
                name: "bursty".into(),
                slo_class: SloClass::Batch,
                quota_rps: 250.0,
                weight: 0.5,
                rate_usd_per_1k: 0.4,
                services: vec![3],
            },
        ],
        spot_markets: vec![
            SpotMarketSpec {
                preemption_intensity: 1.0,
                discount: None,
            },
            SpotMarketSpec {
                preemption_intensity: 1.8,
                discount: Some(0.6),
            },
            SpotMarketSpec {
                preemption_intensity: 0.5,
                discount: Some(0.8),
            },
        ],
        resilience: None,
        pods: Vec::new(),
        name: "multi_tenant".into(),
        description: "3 tenants x 3 regions: quotas, weighted-fair spill, per-tenant P&L".into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: FederationSource::ThreeRegionDemo,
            intervals: 6,
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: 2,
                failback_at: 5,
            }),
            diurnal: None,
            follow_the_sun: None,
        },
    }
}

/// The metastable-failure demonstrator: a ResNet-50 deployment offered
/// roughly twice what its placed instances can sustain, with per-attempt
/// timeouts and retries. As configured the cluster-wide **retry budget**
/// caps re-injection, so the overloaded system degrades gracefully
/// (goodput holds near capacity). Zero `retry_budget_rps` in a copy of
/// this spec and every timeout retries: offered load amplifies on itself
/// and SLO attainment collapses — the classic retry storm. The regression
/// test pins budgeted attainment strictly above unbudgeted at the same
/// seed.
fn retry_storm() -> ScenarioSpec {
    ScenarioSpec {
        observability: ObservabilitySpec::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: Some(ResilienceSpec {
            // Below the 205 ms SLO by more than a full batch execution:
            // the timeout then acts as deadline-based shedding, holding
            // queueing short enough for fresh arrivals to attain the SLO.
            timeout_ms: 100.0,
            max_retries: 3,
            backoff_base_ms: 20.0,
            backoff_multiplier: 2.0,
            jitter: 0.2,
            retry_budget_rps: 80.0,
            ..ResilienceSpec::default()
        }),
        pods: Vec::new(),
        name: "retry_storm".into(),
        description: "overloaded ResNet-50; budgeted retries degrade gracefully, \
                      unbudgeted ones collapse"
            .into(),
        seed: 42,
        window: Window {
            warmup_s: 0.5,
            duration_s: 4.0,
            drain_s: 1.0,
        },
        arrivals: None,
        workload: Workload::Services(vec![entry("ResNet-50", 829.0, 205.0)]),
        mode: Mode::Serve {
            scheduler: String::new(),
            gpu: None,
            // One local class at 6x the scheduled rate: the deployment is
            // sized for 829 req/s; placed on whole MIG instances it can
            // actually sustain ~4,450 with deep batches, and is offered
            // ~4,970 — a sustained ~12% overload.
            ingress: vec![ClassSplit {
                share: 6.0,
                network_ms: 0.0,
            }],
            recovery: None,
        },
    }
}

fn entry(model: &str, rate_rps: f64, slo_ms: f64) -> ServiceEntry {
    ServiceEntry {
        model: model.into(),
        rate_rps,
        slo_ms,
        id: None,
    }
}

fn region(name: &str, base_nodes: usize, price: f64, share: f64, phase: f64) -> RegionSpec {
    RegionSpec {
        name: name.into(),
        fleet: FleetSpec::mixed_demo(base_nodes).in_region(name),
        pricing_multiplier: price,
        demand_share: share,
        diurnal_phase_hours: phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names = spec_names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry names");
        for expected in [
            "quickstart",
            "llm",
            "single_node_mps",
            "fleet_chaos",
            "spot_heavy",
            "region_failover",
            "evacuation_drill",
            "diurnal",
            "multi_tenant",
            "retry_storm",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing builtin '{expected}'"
            );
        }
    }

    #[test]
    fn retry_budget_averts_metastable_collapse() {
        let budgeted = spec_by_name("retry_storm").expect("registered");
        let mut unbudgeted = budgeted.clone();
        unbudgeted
            .resilience
            .as_mut()
            .expect("retry_storm ships a resilience block")
            .retry_budget_rps = 0.0;
        let attainment = |spec: &ScenarioSpec| match spec.run().unwrap() {
            crate::scenarios::ScenarioReport::Serve(r) => r.overall_request_compliance_rate(),
            _ => unreachable!("retry_storm is a serve scenario"),
        };
        let graceful = attainment(&budgeted);
        let collapsed = attainment(&unbudgeted);
        assert!(
            graceful > collapsed,
            "budgeted retries must out-attain the unbudgeted storm \
             ({graceful:.4} vs {collapsed:.4})"
        );
    }

    #[test]
    fn every_builtin_validates() {
        for spec in builtin_specs() {
            spec.validate().unwrap_or_else(|e| {
                panic!("builtin '{}' fails validation: {e}", spec.name);
            });
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for spec in builtin_specs() {
            let found = spec_by_name(&spec.name).expect("registered");
            assert_eq!(
                serde_json::to_string(&found).unwrap(),
                serde_json::to_string(&spec).unwrap()
            );
        }
        assert!(spec_by_name("not-a-spec").is_none());
    }

    #[test]
    fn scenario_table_workload_scales() {
        let spec = ScenarioSpec {
            name: "scaled".into(),
            description: String::new(),
            seed: 1,
            window: Window::default(),
            arrivals: None,
            workload: Workload::Table {
                scenario: Scenario::S5,
                scale: 3,
            },
            mode: Mode::Serve {
                scheduler: String::new(),
                gpu: None,
                ingress: Vec::new(),
                recovery: None,
            },
            observability: ObservabilitySpec::default(),
            tenants: Vec::new(),
            spot_markets: Vec::new(),
            resilience: None,
            pods: Vec::new(),
        };
        assert_eq!(spec.workload.services().unwrap().len(), 33);
    }
}
