//! `ScenarioSpec` — a declarative, serde-backed description of one whole
//! experiment.
//!
//! Every axis the simulators expose is a *field*, not a function
//! signature: the service mix (Table IV tables, explicit lists, or the
//! demo mixes), a GPU catalog slice, the scheduler, ingress splits,
//! recovery work, fleet pools with their chaos trace, a full multi-region
//! federation with drills and diurnal demand, windows and seeds.
//! [`ScenarioSpec::run`] dispatches to the serving / fleet / region engine
//! and returns a tagged [`ScenarioReport`] — so a new experiment is a JSON
//! file (`parvactl run spec.json`), not a new binary. This is the same
//! "configuration as first-class input" move the paper makes at the
//! Configurator/Allocator boundary (§III), applied at the platform
//! boundary.

use crate::prelude::*;
use parva_deploy::{SloClass, Tenant};
use parva_fleet::{ChaosProfile, FleetReport};
use parva_obs::{NullSink, Recorder, StreamConfig, StreamSink, StreamStats};
use parva_region::{EvacuationDrill, FederationReport, RttMatrix};
use parva_serve::{RecoverySpec, ResilienceSpec};
use serde::{Deserialize, Serialize, Value};

/// One service in an explicit [`Workload::Services`] list — the same shape
/// the `parvactl` JSON service arrays use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceEntry {
    /// Model name (the paper's display names; punctuation-insensitive).
    pub model: String,
    /// Offered request rate, req/s.
    pub rate_rps: f64,
    /// SLO latency, ms.
    pub slo_ms: f64,
    /// Optional explicit id (defaults to the array position).
    #[serde(default)]
    pub id: Option<u32>,
}

impl ServiceEntry {
    /// Resolve into a validated [`ServiceSpec`]; `position` supplies the
    /// default id.
    ///
    /// # Errors
    /// Unknown model names and non-positive rates/SLOs.
    pub fn to_spec(&self, position: usize) -> Result<ServiceSpec, String> {
        let model = Model::parse(&self.model)
            .ok_or_else(|| format!("unknown model '{}' (entry {position})", self.model))?;
        let spec = ServiceSpec::new(
            self.id.unwrap_or(position as u32),
            model,
            self.rate_rps,
            self.slo_ms,
        );
        if !spec.is_valid() {
            return Err(format!(
                "entry {position}: rate and SLO must be positive finite numbers"
            ));
        }
        Ok(spec)
    }
}

/// Where a scenario's service mix comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// A paper Table IV scenario, replicated `scale`-fold (0 and 1 both
    /// mean the plain table).
    Table {
        /// Which Table IV column set.
        scenario: Scenario,
        /// k-fold service replication (the Figs. 10–11 scalability axis).
        #[serde(default)]
        scale: u32,
    },
    /// An explicit service list.
    Services(Vec<ServiceEntry>),
    /// The four-service fleet-chaos demo mix
    /// ([`parva_fleet::demo_services`]).
    FleetDemo,
    /// The four-service global federation demo mix
    /// ([`parva_region::demo_services`]).
    RegionDemo,
}

impl Workload {
    /// Materialize the service specs.
    ///
    /// # Errors
    /// Propagates [`ServiceEntry::to_spec`] failures and empty lists.
    pub fn services(&self) -> Result<Vec<ServiceSpec>, String> {
        match self {
            Self::Table { scenario, scale } => Ok(scenario.scaled((*scale).max(1))),
            Self::Services(entries) => {
                if entries.is_empty() {
                    return Err("service list is empty".into());
                }
                let specs: Vec<ServiceSpec> = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e.to_spec(i))
                    .collect::<Result<_, _>>()?;
                // Ids key every report lookup; a collision (explicit ids
                // clashing with each other or with position defaults)
                // would silently shadow a service's metrics.
                let mut ids: Vec<u32> = specs.iter().map(|s| s.id).collect();
                ids.sort_unstable();
                if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
                    return Err(format!(
                        "duplicate service id {} (explicit ids must not collide with \
                         each other or with position-defaulted ids)",
                        dup[0]
                    ));
                }
                Ok(specs)
            }
            Self::FleetDemo => Ok(parva_fleet::demo_services()),
            Self::RegionDemo => Ok(parva_region::demo_services()),
        }
    }
}

/// Measurement-window shape, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Warm-up excluded from measurement.
    pub warmup_s: f64,
    /// Measured duration.
    pub duration_s: f64,
    /// Post-window drain.
    pub drain_s: f64,
}

impl Default for Window {
    fn default() -> Self {
        Self {
            warmup_s: 2.0,
            duration_s: 10.0,
            drain_s: 5.0,
        }
    }
}

/// One ingress class of a per-service traffic split: `share` of the
/// service's rate enters with `network_ms` already spent against the SLO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSplit {
    /// Fraction of the service's offered rate (all splits should sum to
    /// ~1.0 to preserve the nominal load).
    pub share: f64,
    /// Network latency the class has paid before arrival, ms.
    pub network_ms: f64,
}

/// The fleet composition of a [`Mode::Fleet`] scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FleetSource {
    /// The mixed reserved/on-demand/spot demo fleet, sized by its base
    /// node count.
    MixedDemo {
        /// Reserved A100-80GB base nodes.
        base_nodes: usize,
    },
    /// Explicit node pools.
    Pools(FleetSpec),
}

impl FleetSource {
    /// Materialize the pool list this source describes — the exact spec
    /// `run()` hands the orchestrator (examples print it from here so the
    /// rendered topology can never drift from the simulated one).
    #[must_use]
    pub fn resolve(&self) -> FleetSpec {
        match self {
            Self::MixedDemo { base_nodes } => FleetSpec::mixed_demo((*base_nodes).max(1)),
            Self::Pools(spec) => spec.clone(),
        }
    }
}

/// The topology of a [`Mode::Region`] scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FederationSource {
    /// The built-in three-region (us-east / eu-west / ap-south) demo.
    ThreeRegionDemo,
    /// An explicit federation topology.
    Custom(FederationSpec),
}

impl FederationSource {
    /// Materialize the federation topology this source describes — the
    /// exact spec `run()` hands the orchestrator.
    #[must_use]
    pub fn resolve(&self) -> FederationSpec {
        match self {
            Self::ThreeRegionDemo => FederationSpec::three_region_demo(),
            Self::Custom(spec) => spec.clone(),
        }
    }

    /// Region count without cloning the topology.
    fn region_count(&self) -> usize {
        match self {
            Self::ThreeRegionDemo => 3,
            Self::Custom(spec) => spec.regions.len(),
        }
    }
}

/// Diurnal demand bounds of a region run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Trough multiplier (local ~3 a.m.).
    pub low: f64,
    /// Peak multiplier (local ~3 p.m.).
    pub high: f64,
    /// Wall-clock hours the federation advances per interval.
    pub hours_per_interval: f64,
}

/// The observability block of a scenario spec: how an *observed* run
/// ([`ScenarioSpec::run_observed`], `parvactl run --trace/--metrics`)
/// samples its time-series gauges. Unobserved runs ignore the block
/// entirely, so adding it never perturbs a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservabilitySpec {
    /// Gauge-sampling cadence in simulation milliseconds. Serve mode
    /// samples queue depth / in-flight batches / GPU busy fraction /
    /// per-service SLO attainment on this grid; fleet and region modes
    /// emit one row per chaos interval regardless. 0 disables the serve
    /// sampler (trace spans are unaffected).
    #[serde(default = "default_sample_every_ms")]
    pub sample_every_ms: u64,
    /// Shard rotation/retention of *streamed* runs
    /// ([`ScenarioSpec::run_streamed`], `parvactl run --stream`).
    /// Batch-observed and unobserved runs ignore the block.
    #[serde(default)]
    pub streaming: StreamingSpec,
}

impl Default for ObservabilitySpec {
    fn default() -> Self {
        Self {
            sample_every_ms: default_sample_every_ms(),
            streaming: StreamingSpec::default(),
        }
    }
}

fn default_sample_every_ms() -> u64 {
    100
}

/// The streaming block of an [`ObservabilitySpec`]: how a streamed run's
/// [`StreamSink`] rotates and retains its shard files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingSpec {
    /// Lines per shard before rotation (0 = never rotate by count).
    #[serde(default = "default_shard_max_events")]
    pub shard_max_events: usize,
    /// Trace-lane sim-age per shard in simulation milliseconds (0 =
    /// never rotate by age).
    #[serde(default)]
    pub rotate_ms: u64,
    /// Newest shards kept per lane; 0 retains everything. Retention
    /// trades the shards-equal-batch-export guarantee for bounded disk.
    #[serde(default)]
    pub retain_shards: usize,
}

impl Default for StreamingSpec {
    fn default() -> Self {
        Self {
            shard_max_events: default_shard_max_events(),
            rotate_ms: 0,
            retain_shards: 0,
        }
    }
}

fn default_shard_max_events() -> usize {
    4096
}

impl StreamingSpec {
    /// The sink-level [`StreamConfig`] this block describes.
    #[must_use]
    pub fn to_config(self) -> StreamConfig {
        StreamConfig {
            shard_max_events: self.shard_max_events,
            rotate_us: self.rotate_ms.saturating_mul(1_000),
            retain_shards: self.retain_shards,
        }
    }
}

/// One tenant in a scenario's `tenants` block: the operator-facing
/// contract ([`Tenant`]) plus the service ids it owns. Service ids refer
/// to the materialized workload (explicit `id`s or array positions for
/// [`Workload::Services`]; `0..n` for the table and demo mixes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant id; `0` is reserved for "untenanted" and rejected.
    pub id: u32,
    /// Display name used in reports, billing rows and gauge columns.
    #[serde(default)]
    pub name: String,
    /// Purchased service tier (reporting/grouping only).
    #[serde(default)]
    pub slo_class: SloClass,
    /// Admission quota across all the tenant's services, req/s; `0`
    /// means unlimited.
    #[serde(default)]
    pub quota_rps: f64,
    /// Weighted-fair spill share weight; non-positive means `1.0`.
    #[serde(default)]
    pub weight: f64,
    /// Billing rate, USD per 1000 requests completed within SLO.
    #[serde(default)]
    pub rate_usd_per_1k: f64,
    /// Service ids this tenant owns.
    #[serde(default)]
    pub services: Vec<u32>,
}

impl TenantSpec {
    /// The runtime [`Tenant`] contract this block describes.
    #[must_use]
    pub fn to_tenant(&self) -> Tenant {
        Tenant {
            id: self.id,
            name: self.name.clone(),
            slo_class: self.slo_class,
            quota_rps: self.quota_rps,
            weight: self.weight,
            usd_per_1k_requests: self.rate_usd_per_1k,
        }
    }
}

/// One spot market in a scenario's `spot_markets` block. In fleet mode
/// the first entry shapes the whole fleet; in region mode entry `r`
/// shapes region `r` (missing entries keep the historical market).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarketSpec {
    /// Multiplier on the chaos stream's spot-preemption pressure: `1.0`
    /// reproduces the historical event mix bit-exactly, `0` turns
    /// preemptions and warnings off, `>1` widens their band.
    #[serde(default = "default_preemption_intensity")]
    pub preemption_intensity: f64,
    /// Spot node-hours rent at `on-demand x discount` instead of the
    /// built-in spot multiplier; `None` keeps legacy prices bit-exactly.
    #[serde(default)]
    pub discount: Option<f64>,
}

impl Default for SpotMarketSpec {
    fn default() -> Self {
        Self {
            preemption_intensity: default_preemption_intensity(),
            discount: None,
        }
    }
}

fn default_preemption_intensity() -> f64 {
    1.0
}

impl SpotMarketSpec {
    /// The [`ChaosProfile`] this market describes.
    #[must_use]
    pub fn chaos_profile(&self) -> ChaosProfile {
        ChaosProfile::with_preemption_intensity(self.preemption_intensity)
    }
}

/// Which engine a scenario exercises, with that engine's axes.
#[derive(Debug, Clone, Deserialize)]
pub enum Mode {
    /// One scheduled deployment served in the DES.
    Serve {
        /// Scheduler name (see `parvactl`'s `--scheduler`); empty means
        /// `parvagpu`.
        #[serde(default)]
        scheduler: String,
        /// GPU catalog slice: profile and schedule on this
        /// [`GpuModel::CATALOG`] entry instead of the built-in A100-80GB
        /// book (e.g. `"H200-141GB"` to give LLMs MIG headroom).
        #[serde(default)]
        gpu: Option<String>,
        /// Per-service ingress split; empty means one local class per
        /// service at its full spec rate.
        #[serde(default)]
        ingress: Vec<ClassSplit>,
        /// Recovery work riding the event queue (dark GPUs, re-flash and
        /// PCIe contention, measured dips).
        #[serde(default)]
        recovery: Option<RecoverySpec>,
    },
    /// A heterogeneous fleet driven through the seeded chaos stream.
    Fleet {
        /// Pool composition.
        fleet: FleetSource,
        /// Disturbed intervals after the baseline.
        intervals: usize,
        /// Fall back to closed-form recovery estimates instead of the
        /// DES-measured path.
        #[serde(default)]
        analytic_recovery: bool,
    },
    /// A multi-region federation under chaos, drills and diurnal demand.
    Region {
        /// Region topology and RTTs.
        federation: FederationSource,
        /// Disturbed intervals after the baseline.
        intervals: usize,
        /// Scripted evacuation + failback; `None` leaves evacuations to
        /// the seeded stream.
        #[serde(default)]
        drill: Option<EvacuationDrill>,
        /// Diurnal demand bounds; `None` uses the federation defaults.
        #[serde(default)]
        diurnal: Option<DiurnalSpec>,
        /// Follow-the-sun cost optimizer: ship overnight demand to the
        /// cheapest SLO-feasible daytime region and report the USD delta
        /// in the federation's billing ledger. `None` keeps the run bit
        /// for bit identical to the pre-optimizer behavior.
        #[serde(default)]
        follow_the_sun: Option<parva_region::FollowTheSun>,
    },
}

// Hand-written so pre-optimizer specs serialize exactly as the derive
// used to emit them: the `follow_the_sun` key appears only when set.
impl Serialize for Mode {
    fn to_value(&self) -> Value {
        let (variant, fields) = match self {
            Self::Serve {
                scheduler,
                gpu,
                ingress,
                recovery,
            } => (
                "Serve",
                vec![
                    (String::from("scheduler"), scheduler.to_value()),
                    (String::from("gpu"), gpu.to_value()),
                    (String::from("ingress"), ingress.to_value()),
                    (String::from("recovery"), recovery.to_value()),
                ],
            ),
            Self::Fleet {
                fleet,
                intervals,
                analytic_recovery,
            } => (
                "Fleet",
                vec![
                    (String::from("fleet"), fleet.to_value()),
                    (String::from("intervals"), intervals.to_value()),
                    (
                        String::from("analytic_recovery"),
                        analytic_recovery.to_value(),
                    ),
                ],
            ),
            Self::Region {
                federation,
                intervals,
                drill,
                diurnal,
                follow_the_sun,
            } => {
                let mut fields = vec![
                    (String::from("federation"), federation.to_value()),
                    (String::from("intervals"), intervals.to_value()),
                    (String::from("drill"), drill.to_value()),
                    (String::from("diurnal"), diurnal.to_value()),
                ];
                if follow_the_sun.is_some() {
                    fields.push((String::from("follow_the_sun"), follow_the_sun.to_value()));
                }
                ("Region", fields)
            }
        };
        Value::Map(vec![(String::from(variant), Value::Map(fields))])
    }
}

/// A whole experiment as data. See the module docs and
/// [`crate::scenarios::builtin_specs`] for worked examples; `README.md`
/// documents the JSON schema.
#[derive(Debug, Clone, Deserialize)]
pub struct ScenarioSpec {
    /// Registry name (also the `parvactl run` handle).
    pub name: String,
    /// One-line human description.
    #[serde(default)]
    pub description: String,
    /// Master seed: serving sample paths and chaos streams derive from it.
    pub seed: u64,
    /// Serving-window shape (per interval for fleet/region modes).
    pub window: Window,
    /// Arrival-process shape; `None` means Poisson.
    #[serde(default)]
    pub arrivals: Option<ArrivalProcess>,
    /// The service mix.
    pub workload: Workload,
    /// The engine and its axes.
    pub mode: Mode,
    /// Gauge-sampling shape of observed runs (ignored otherwise).
    #[serde(default)]
    pub observability: ObservabilitySpec,
    /// Multi-tenancy: tenant contracts and their service bindings. Empty
    /// means the legacy single-tenant behavior, bit for bit.
    #[serde(default)]
    pub tenants: Vec<TenantSpec>,
    /// Spot markets (fleet: first entry; region: one per region). Empty
    /// keeps the historical chaos mix and prices, bit for bit.
    #[serde(default)]
    pub spot_markets: Vec<SpotMarketSpec>,
    /// Request-lifecycle resilience policy: per-class timeouts, budgeted
    /// retries with backoff, hedged requests, queue-depth load shedding
    /// and health-checked routing, applied inside every serving DES the
    /// scenario runs (all three modes). Absent keeps the request
    /// lifecycle and the report bit-identical to the pre-resilience
    /// behavior.
    #[serde(default)]
    pub resilience: Option<ResilienceSpec>,
    /// Fastpod-style serving pods (see [`parvad::PodSpec`]) admitted at
    /// boot, on top of the workload's services: each pod is validated
    /// (model footprint, quota/SM-cap consistency) and lowered to an
    /// appended `ServiceSpec` with the next free id, in every mode. Empty
    /// keeps specs and reports bit-identical to the pre-pod behavior.
    #[serde(default)]
    pub pods: Vec<parvad::PodSpec>,
}

// Hand-written so tenant-free specs serialize exactly as before the
// tenant layer existed: the `tenants` and `spot_markets` keys are emitted
// only when non-empty.
impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("name"), self.name.to_value()),
            (String::from("description"), self.description.to_value()),
            (String::from("seed"), self.seed.to_value()),
            (String::from("window"), self.window.to_value()),
            (String::from("arrivals"), self.arrivals.to_value()),
            (String::from("workload"), self.workload.to_value()),
            (String::from("mode"), self.mode.to_value()),
            (String::from("observability"), self.observability.to_value()),
        ];
        if !self.tenants.is_empty() {
            map.push((String::from("tenants"), self.tenants.to_value()));
        }
        if !self.spot_markets.is_empty() {
            map.push((String::from("spot_markets"), self.spot_markets.to_value()));
        }
        if let Some(resilience) = &self.resilience {
            map.push((String::from("resilience"), resilience.to_value()));
        }
        if !self.pods.is_empty() {
            map.push((String::from("pods"), self.pods.to_value()));
        }
        Value::Map(map)
    }
}

/// What a scenario run produced, tagged by engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScenarioReport {
    /// A single serving-DES run.
    Serve(ServingReport),
    /// A fleet chaos run.
    Fleet(FleetReport),
    /// A federation run.
    Region(FederationReport),
}

impl ScenarioReport {
    /// Human-readable summary of the run.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Serve(r) => {
                let mut out = format!(
                    "serving run: {:.1}s window | compliance {:.2}% | request compliance {:.2}%\n",
                    r.duration_s,
                    r.overall_compliance_rate() * 100.0,
                    r.overall_request_compliance_rate() * 100.0
                );
                for s in &r.services {
                    out.push_str(&format!(
                        "service #{}: served {}/{} req, p99 {:.1} ms, compliance {:.2}%\n",
                        s.service_id,
                        s.completed,
                        s.offered,
                        s.latency.quantile_ms(0.99),
                        s.compliance_rate() * 100.0
                    ));
                }
                if let Some(rec) = &r.recovery {
                    out.push_str(&format!(
                        "recovery: {} dark server(s), measured latency {:.0} ms, \
                         {:.1} GiB copied, {:.1} GiB pre-copied\n",
                        rec.dark_servers, rec.latency_ms, rec.copied_gib, rec.precopied_gib
                    ));
                }
                out
            }
            Self::Fleet(r) => r.render(),
            Self::Region(r) => r.render(),
        }
    }
}

impl ScenarioSpec {
    /// The derived serving configuration (shared by all modes).
    #[must_use]
    pub fn serving_config(&self) -> ServingConfig {
        ServingConfig {
            warmup_s: self.window.warmup_s,
            duration_s: self.window.duration_s,
            drain_s: self.window.drain_s,
            seed: self.seed,
            arrivals: self.arrivals.unwrap_or(ArrivalProcess::Poisson),
        }
    }

    /// Validate shape invariants without running anything.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec needs a name".into());
        }
        let w = &self.window;
        if !(w.warmup_s >= 0.0
            && w.duration_s > 0.0
            && w.drain_s >= 0.0
            && w.warmup_s.is_finite()
            && w.duration_s.is_finite()
            && w.drain_s.is_finite())
        {
            return Err(format!(
                "window must be finite with a positive duration (got {w:?})"
            ));
        }
        let services = self.workload.services()?;
        let mut tenant_ids: Vec<u32> = Vec::new();
        let mut owned: Vec<u32> = Vec::new();
        for t in &self.tenants {
            if !t.to_tenant().is_valid() {
                return Err(format!(
                    "tenant {} ({:?}) is invalid: ids must be non-zero and \
                     quota/weight/rate finite and non-negative",
                    t.id, t.name
                ));
            }
            if tenant_ids.contains(&t.id) {
                return Err(format!("duplicate tenant id {}", t.id));
            }
            tenant_ids.push(t.id);
            for sid in &t.services {
                if !services.iter().any(|s| s.id == *sid) {
                    return Err(format!(
                        "tenant {} ({:?}) claims service {sid}, which the workload \
                         does not define",
                        t.id, t.name
                    ));
                }
                if owned.contains(sid) {
                    return Err(format!("service {sid} is claimed by two tenants"));
                }
                owned.push(*sid);
            }
        }
        for (i, m) in self.spot_markets.iter().enumerate() {
            if !(m.preemption_intensity.is_finite() && m.preemption_intensity >= 0.0) {
                return Err(format!(
                    "spot market {i}: preemption_intensity must be finite and >= 0"
                ));
            }
            if let Some(d) = m.discount {
                if !(d.is_finite() && d > 0.0) {
                    return Err(format!(
                        "spot market {i}: discount must be finite and positive"
                    ));
                }
            }
        }
        if let Some(res) = &self.resilience {
            res.validate()?;
        }
        for (i, pod) in self.pods.iter().enumerate() {
            pod.validate()?;
            if self.pods[..i].iter().any(|p| p.name == pod.name) {
                return Err(format!("duplicate pod name {:?}", pod.name));
            }
            if pod.tenant != 0 && !tenant_ids.contains(&pod.tenant) {
                return Err(format!(
                    "pod {:?} names tenant {}, which the spec does not define",
                    pod.name, pod.tenant
                ));
            }
        }
        match &self.mode {
            Mode::Serve {
                scheduler,
                gpu,
                ingress,
                recovery,
            } => {
                if !self.spot_markets.is_empty() {
                    return Err(
                        "spot markets shape fleet/region chaos; serve mode has no fleet".into(),
                    );
                }
                if !crate::cli::scheduler_name_is_known(effective_scheduler(scheduler)) {
                    return Err(format!("unknown scheduler '{scheduler}'"));
                }
                if let Some(name) = gpu {
                    gpu_by_name(name)?;
                }
                // NaN and ±inf must fail too (an infinite rate share would
                // wedge the arrival process), so require the full finite
                // valid range and negate the whole predicate.
                if !ingress
                    .iter()
                    .all(|c| c.share >= 0.0 && c.share.is_finite() && c.network_ms >= 0.0)
                {
                    return Err("ingress splits need finite share >= 0 and network_ms >= 0".into());
                }
                if let Some(r) = recovery {
                    let finite = r.start_ms.is_finite()
                        && r.start_ms >= 0.0
                        && r.control_plane_ms.is_finite()
                        && r.control_plane_ms >= 0.0
                        && r.reflash_ms.is_finite()
                        && r.reflash_ms >= 0.0
                        && r.link_gib_per_s.is_finite()
                        && r.link_gib_per_s > 0.0
                        && r.ops
                            .iter()
                            .all(|o| o.copy_gib.is_finite() && o.copy_gib >= 0.0);
                    if !finite {
                        return Err(
                            "recovery spec needs finite non-negative timings, a positive \
                             link bandwidth and finite non-negative copy volumes"
                                .into(),
                        );
                    }
                }
            }
            Mode::Fleet {
                fleet, intervals, ..
            } => {
                if *intervals == 0 {
                    return Err("fleet scenarios need at least one interval".into());
                }
                if matches!(fleet, FleetSource::Pools(spec) if spec.pools.is_empty()) {
                    return Err("fleet needs at least one pool".into());
                }
                if self.spot_markets.len() > 1 {
                    return Err(format!(
                        "fleet mode has one spot market, got {} entries",
                        self.spot_markets.len()
                    ));
                }
            }
            Mode::Region {
                federation,
                intervals,
                drill,
                diurnal,
                follow_the_sun,
            } => {
                if *intervals == 0 {
                    return Err("region scenarios need at least one interval".into());
                }
                if let Some(fts) = follow_the_sun {
                    fts.validate()?;
                }
                if self.spot_markets.len() > federation.region_count() {
                    return Err(format!(
                        "{} spot markets for {} region(s)",
                        self.spot_markets.len(),
                        federation.region_count()
                    ));
                }
                if let FederationSource::Custom(fed) = federation {
                    fed.validate()?;
                }
                if let Some(d) = drill {
                    if d.failback_at <= d.evacuate_at {
                        return Err(format!(
                            "drill failback (interval {}) must come after the evacuation \
                             (interval {})",
                            d.failback_at, d.evacuate_at
                        ));
                    }
                    // Federation intervals are numbered 1..=intervals, so
                    // anything at 0 or past the end silently never fires.
                    if d.evacuate_at < 1 || d.evacuate_at > *intervals || d.failback_at > *intervals
                    {
                        return Err(format!(
                            "drill (evacuate at {}, failback at {}) lands outside the \
                             run's intervals 1..={} and would silently never fire",
                            d.evacuate_at, d.failback_at, intervals
                        ));
                    }
                    if d.region >= federation.region_count() {
                        return Err(format!(
                            "drill region {} does not exist (topology has {} region(s))",
                            d.region,
                            federation.region_count()
                        ));
                    }
                }
                if let Some(d) = diurnal {
                    if !(d.low > 0.0 && d.high >= d.low && d.hours_per_interval > 0.0) {
                        return Err(format!("invalid diurnal bounds {d:?}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// A CI-scale copy: shrunken serving windows, capped fleet intervals,
    /// same seeds — still fully deterministic, just cheap.
    #[must_use]
    pub fn quick(&self) -> Self {
        let mut spec = self.clone();
        spec.window.warmup_s = spec.window.warmup_s.min(0.5);
        spec.window.duration_s = spec.window.duration_s.min(2.0);
        spec.window.drain_s = spec.window.drain_s.min(0.5);
        if let Mode::Fleet { intervals, .. } = &mut spec.mode {
            *intervals = (*intervals).min(4);
        }
        spec
    }

    /// Run the scenario end to end.
    ///
    /// Deterministic: the same spec always produces the identical report
    /// (and identical JSON).
    ///
    /// # Errors
    /// Validation failures, scheduling failures, and fleet/region
    /// exhaustion, as display strings.
    pub fn run(&self) -> Result<ScenarioReport, String> {
        self.dispatch_sink(&mut NullSink, false)
            .map(|(report, _)| report)
    }

    /// The stable run identifier stamped onto the gauge rows of observed
    /// and streamed runs (`name@seed`), keeping concatenated multi-run
    /// metrics streams attributable.
    #[must_use]
    pub fn run_id(&self) -> String {
        format!("{}@{}", self.name, self.seed)
    }

    /// Run the scenario under a recording observer: the identical report
    /// (observation is property-tested behavior-neutral), plus a
    /// [`Recorder`] holding the engine's trace spans, the gauge rows
    /// sampled on the spec's [`ObservabilitySpec`] grid, and the
    /// orchestrator self-profile. The trace and metrics artifacts are
    /// deterministic — byte-identical across runs of the same spec; the
    /// profile reads host clocks and is exported separately.
    ///
    /// # Errors
    /// Same failures as [`ScenarioSpec::run`].
    pub fn run_observed(&self) -> Result<(ScenarioReport, Recorder), String> {
        let mut rec = Recorder::new(self.observability.sample_every_ms.saturating_mul(1_000))
            .with_run_id(self.run_id());
        let (report, profile) = self.dispatch_sink(&mut rec, true)?;
        if let Some(p) = profile {
            rec.profile.absorb(&p);
        }
        Ok((report, rec))
    }

    /// Run the scenario with a streaming observer: spans and gauge rows
    /// are rendered to their canonical JSON lines as they land and
    /// retired to rotating shard files under `dir` (see
    /// [`StreamSink`]), per the spec's [`StreamingSpec`] policy. The
    /// report is identical to [`ScenarioSpec::run`]; with retention off,
    /// the concatenated shards are byte-equivalent to the batch
    /// [`Recorder`] export of the same spec.
    ///
    /// # Errors
    /// Validation/engine failures plus shard-directory I/O failures.
    pub fn run_streamed(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(ScenarioReport, StreamStats), String> {
        let mut sink = StreamSink::create(
            dir,
            self.observability.sample_every_ms.saturating_mul(1_000),
            self.observability.streaming.to_config(),
        )
        .map_err(|e| format!("cannot open stream directory: {e}"))?
        .with_run_id(self.run_id());
        let (report, _) = self.dispatch_sink(&mut sink, false)?;
        let stats = sink.finish()?;
        Ok((report, stats))
    }

    /// Run the scenario under an arbitrary [`TraceSink`] — the one
    /// engine behind [`run`](Self::run) (null sink),
    /// [`run_observed`](Self::run_observed) (recorder) and
    /// [`run_streamed`](Self::run_streamed) (stream sink). Fleet and
    /// region modes return their orchestrator self-profile when
    /// `profile` is set; serve mode has none (its spans live in the
    /// trace itself).
    fn dispatch_sink<S: TraceSink>(
        &self,
        sink: &mut S,
        profile: bool,
    ) -> Result<(ScenarioReport, Option<SelfProfiler>), String> {
        self.validate()?;
        let mut services = self.workload.services()?;
        // Lower boot pods onto the tail of the catalogue: next free ids,
        // tenants taken from the pod annotations themselves.
        let next_id = services.iter().map(|s| s.id + 1).max().unwrap_or(0);
        for (offset, pod) in self.pods.iter().enumerate() {
            services.push(pod.to_service_spec(next_id + offset as u32)?);
        }
        // Bind each service to its owning tenant (validated above), and
        // materialize the runtime tenant contracts.
        for t in &self.tenants {
            for s in services.iter_mut().filter(|s| t.services.contains(&s.id)) {
                s.tenant = t.id;
            }
        }
        let tenants: Vec<Tenant> = self.tenants.iter().map(TenantSpec::to_tenant).collect();
        let serving = self.serving_config();
        match &self.mode {
            Mode::Serve {
                scheduler,
                gpu,
                ingress,
                recovery,
            } => {
                let book = match gpu {
                    Some(name) => {
                        let gpu = gpu_by_name(name)?;
                        let mut models: Vec<Model> = Vec::new();
                        for s in &services {
                            if !models.contains(&s.model) {
                                models.push(s.model);
                            }
                        }
                        ProfileBook::measure_on(
                            &models,
                            &crate::profile::SweepGrid::paper_default(),
                            gpu,
                        )
                    }
                    None => ProfileBook::builtin(),
                };
                let sched = crate::cli::make_scheduler(effective_scheduler(scheduler), &book)?;
                let deployment = sched.schedule(&services).map_err(|e| e.to_string())?;
                let classes: Vec<Vec<IngressClass>> = if ingress.is_empty() {
                    Vec::new()
                } else {
                    services
                        .iter()
                        .map(|s| {
                            ingress
                                .iter()
                                .map(|c| IngressClass {
                                    rate_rps: s.request_rate_rps * c.share,
                                    network_ms: c.network_ms,
                                })
                                .collect()
                        })
                        .collect()
                };
                let sim = Simulation::new(&deployment, &services)
                    .tenants(&tenants)
                    .ingress(&classes)
                    .recovery_opt(recovery.as_ref())
                    .resilience_opt(self.resilience.as_ref())
                    .config(&serving);
                let report = sim.run_with(sink);
                Ok((ScenarioReport::Serve(report), None))
            }
            Mode::Fleet {
                fleet,
                intervals,
                analytic_recovery,
            } => {
                let book = ProfileBook::builtin();
                let market = self.spot_markets.first();
                let config = FleetConfig {
                    seed: self.seed,
                    intervals: (*intervals).max(1),
                    serving,
                    des_recovery: !analytic_recovery,
                    tenants,
                    chaos: market.map_or_else(ChaosProfile::default, SpotMarketSpec::chaos_profile),
                    spot_discount: market.and_then(|m| m.discount),
                    resilience: self.resilience,
                    ..FleetConfig::default()
                };
                let fleet_spec = fleet.resolve();
                let (report, prof) = parva_fleet::run_chaos_sink(
                    &book,
                    &services,
                    &fleet_spec,
                    &config,
                    sink,
                    profile,
                )
                .map_err(|e| e.to_string())?;
                Ok((ScenarioReport::Fleet(report), profile.then_some(prof)))
            }
            Mode::Region {
                federation,
                intervals,
                drill,
                diurnal,
                follow_the_sun,
            } => {
                let book = ProfileBook::builtin();
                let mut config = FederationConfig {
                    seed: self.seed,
                    intervals: (*intervals).max(1),
                    serving,
                    drill: *drill,
                    follow_the_sun: *follow_the_sun,
                    tenants,
                    region_chaos: self
                        .spot_markets
                        .iter()
                        .map(SpotMarketSpec::chaos_profile)
                        .collect(),
                    spot_discounts: self.spot_markets.iter().map(|m| m.discount).collect(),
                    resilience: self.resilience,
                    ..FederationConfig::default()
                };
                if let Some(d) = diurnal {
                    config.diurnal_low = d.low;
                    config.diurnal_high = d.high;
                    config.hours_per_interval = d.hours_per_interval;
                }
                let topology = federation.resolve();
                let (report, prof) = parva_region::run_federation_sink(
                    &book, &services, &topology, &config, sink, profile,
                )
                .map_err(|e| e.to_string())?;
                Ok((ScenarioReport::Region(report), profile.then_some(prof)))
            }
        }
    }
}

/// Empty scheduler names mean the default ParvaGPU scheduler.
fn effective_scheduler(name: &str) -> &str {
    if name.is_empty() {
        "parvagpu"
    } else {
        name
    }
}

/// Look a GPU up in [`GpuModel::CATALOG`] by (case-insensitive) name.
fn gpu_by_name(name: &str) -> Result<GpuModel, String> {
    GpuModel::CATALOG
        .iter()
        .copied()
        .find(|g| g.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown GPU '{name}' (catalog: {})",
                GpuModel::CATALOG
                    .iter()
                    .map(|g| g.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

/// Convenience RTT builder for hand-written federation specs.
#[must_use]
pub(crate) fn rtt_upper(regions: usize, upper: &[f64]) -> RttMatrix {
    RttMatrix::from_upper(regions, upper)
}
