//! Evaluation scenarios: the paper's Table IV tables plus the declarative
//! experiment layer.
//!
//! This module re-exports everything from `parva-scenarios` (the Table IV
//! scenario data, diurnal curves, spot-warning budgets) and adds the
//! workspace's declarative experiment API on top:
//!
//! * [`ScenarioSpec`] — a serde (JSON) description of an entire
//!   experiment: service mix, GPU catalog slice, fleet pools and chaos
//!   trace, optional regions and drills, windows, seeds. One schema spans
//!   the whole range from a single-GPU serving run to a multi-region
//!   chaos federation; [`ScenarioSpec::run`] dispatches to the right
//!   engine and returns a tagged [`ScenarioReport`].
//! * [`registry`] — the named built-in specs behind `parvactl run <name>`.
//!
//! The spec layer lives in this facade crate (not `parva-scenarios`)
//! because it sits *above* `fleet` and `region` in the dependency graph —
//! `parva-scenarios` is below both.

mod registry;
mod spec;

pub use parva_scenarios::*;
pub use registry::{builtin_specs, spec_by_name, spec_names};
pub use spec::{
    ClassSplit, DiurnalSpec, FederationSource, FleetSource, Mode, ObservabilitySpec,
    ScenarioReport, ScenarioSpec, ServiceEntry, SpotMarketSpec, StreamingSpec, TenantSpec, Window,
    Workload,
};
