//! `parvactl` — command-line front-end to the ParvaGPU scheduler.
//!
//! ```text
//! parvactl plan <services.json> [--scheduler NAME]
//! parvactl simulate <services.json> [--scheduler NAME] [--seconds N] [--seed N]
//! parvactl compare <services.json>
//! parvactl cost <services.json> [--scheduler NAME]
//! parvactl feasibility <model-name>
//! parvactl scenarios
//! parvactl fleet [services.json] [--seed N] [--intervals N] [--nodes N] [--json] [--analytic-recovery]
//! parvactl region [services.json] [--seed N] [--intervals N] [--json]
//! parvactl run <name|spec.json> [--json] [--quick]
//!              [--trace out.json] [--metrics out.jsonl|out.csv] [--profile out.json]
//! parvactl run --list [--names]
//! ```
//!
//! `run` executes a declarative scenario spec: a registered name (see
//! `--list`) or a JSON file describing the whole experiment — service
//! mix, GPU slice, fleet pools, regions, drills, windows, seeds. One
//! schema covers everything from a single-GPU serving run to a
//! multi-region chaos federation; see README "Running scenarios".
//!
//! Observability flags turn the run into an *observed* one (same report,
//! property-tested behavior-neutral): `--trace` writes a Chrome/Perfetto
//! `trace_event` JSON timeline, `--metrics` a gauge time series (CSV if
//! the path ends `.csv`, else JSONL), `--profile` the orchestrator
//! self-profile (host clocks; the one non-deterministic artifact). With
//! `--json`, the report JSON is stdout-only — headers and artifact notes
//! go to stderr — so pipelines stay machine-pure.
//!
//! `fleet` and `region` report DES-*measured* recovery by default: weight
//! copies and MIG re-flashes ride the serving simulator's event queue, so
//! disruption dips and recovery latencies are measured against live
//! traffic. `--analytic-recovery` reverts `fleet` to the closed-form
//! estimates.
//!
//! `services.json` is a JSON array of `{"model", "rate_rps", "slo_ms"}`
//! objects; see `parvagpu::cli` for the full format.

use parvagpu::cli;

fn usage() -> ! {
    eprintln!(
        "usage:\n  parvactl plan <services.json> [--scheduler NAME]\n  \
         parvactl simulate <services.json> [--scheduler NAME] [--seconds N] [--seed N]\n  \
         parvactl compare <services.json>\n  \
         parvactl cost <services.json> [--scheduler NAME]\n  \
         parvactl feasibility <model-name>\n  parvactl scenarios\n  \
         parvactl fleet [services.json] [--seed N] [--intervals N] [--nodes N] [--json] \
         [--analytic-recovery]\n  \
         parvactl region [services.json] [--seed N] [--intervals N] [--json]\n  \
         parvactl run <name|spec.json> [--json] [--quick] [--trace FILE] \
         [--metrics FILE] [--profile FILE]\n  \
         parvactl run --list [--names]\n\n\
         schedulers: parvagpu (default), single, unoptimized, gslice, gpulet, igniter, \
         paris-elsa, mig-serving"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_json(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let scheduler = flag(&args, "--scheduler").unwrap_or_else(|| "parvagpu".into());

    let result = match command.as_str() {
        "plan" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_plan(&read_json(path), &scheduler)
        }
        "simulate" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            let seconds = flag(&args, "--seconds")
                .and_then(|s| s.parse().ok())
                .unwrap_or(10.0);
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            cli::run_simulate(&read_json(path), &scheduler, seconds, seed)
        }
        "compare" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_compare(&read_json(path))
        }
        "cost" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_cost(&read_json(path), &scheduler)
        }
        "feasibility" => {
            let Some(model) = args.get(1) else { usage() };
            cli::run_feasibility(model)
        }
        "scenarios" => Ok(cli::run_scenarios()),
        "fleet" => {
            let json = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .map(|p| read_json(p));
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let intervals = flag(&args, "--intervals")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8);
            let nodes = flag(&args, "--nodes")
                .and_then(|s| s.parse().ok())
                .unwrap_or(2);
            cli::run_fleet(
                json.as_deref(),
                seed,
                intervals,
                nodes,
                args.iter().any(|a| a == "--json"),
                args.iter().any(|a| a == "--analytic-recovery"),
            )
        }
        "region" => {
            let json = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .map(|p| read_json(p));
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let intervals = flag(&args, "--intervals")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8);
            cli::run_region(
                json.as_deref(),
                seed,
                intervals,
                args.iter().any(|a| a == "--json"),
            )
        }
        "run" => {
            if args.iter().any(|a| a == "--list") {
                Ok(cli::list_specs(args.iter().any(|a| a == "--names")))
            } else {
                let Some(arg) = args.get(1).filter(|p| !p.starts_with("--")) else {
                    usage()
                };
                // A path on disk is read as spec JSON; anything else is
                // looked up in the registry by name.
                let input = if std::path::Path::new(arg).is_file() {
                    read_json(arg)
                } else {
                    arg.clone()
                };
                let obs = cli::ObsPaths {
                    trace: flag(&args, "--trace"),
                    metrics: flag(&args, "--metrics"),
                    profile: flag(&args, "--profile"),
                };
                cli::run_spec_with(
                    &input,
                    args.iter().any(|a| a == "--json"),
                    args.iter().any(|a| a == "--quick"),
                    &obs,
                )
                .map(|out| {
                    eprint!("{}", out.stderr);
                    out.stdout
                })
            }
        }
        _ => usage(),
    };

    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
