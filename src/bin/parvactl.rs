//! `parvactl` — command-line front-end to the ParvaGPU scheduler.
//!
//! ```text
//! parvactl plan <services.json> [--scheduler NAME]
//! parvactl simulate <services.json> [--scheduler NAME] [--seconds N] [--seed N]
//! parvactl compare <services.json>
//! parvactl cost <services.json> [--scheduler NAME]
//! parvactl feasibility <model-name>
//! parvactl scenarios
//! parvactl fleet [services.json] [--seed N] [--intervals N] [--nodes N] [--json] [--analytic-recovery]
//! parvactl region [services.json] [--seed N] [--intervals N] [--json]
//! parvactl run <name|spec.json> [--json] [--quick]
//!              [--trace out.json] [--metrics out.jsonl|out.csv] [--profile out.json]
//!              [--stream DIR]
//! parvactl run --list [--names] [--json]
//! parvactl daemon [services.json] [--resume ckpt.json] [--seed N] [--epoch-ms N]
//!                 [--decide-every N] [--listen ADDR] [--epochs N] [--out DIR]
//!                 [--checkpoint FILE --checkpoint-at N [--halt]] [--stream DIR]
//!                 [--throttle-ms N]
//! parvactl submit <pod.json> [--addr HOST:PORT]
//! parvactl status [--addr HOST:PORT] [--json]
//! parvactl scale <service-id> <multiplier> [--addr HOST:PORT]
//! parvactl drain [--addr HOST:PORT]
//! parvactl trace audit <trace.json|shard-dir> <report.json> [--metrics FILE] [--tolerance X]
//! parvactl trace summary <trace.json|shard-dir> [--top K]
//! parvactl trace diff <a> <b>
//! parvactl trace tail <shard-dir> [--lane trace|metrics] [--poll-ms N] [--max-polls N]
//! ```
//!
//! `run` executes a declarative scenario spec: a registered name (see
//! `--list`) or a JSON file describing the whole experiment — service
//! mix, GPU slice, fleet pools, regions, drills, windows, seeds. One
//! schema covers everything from a single-GPU serving run to a
//! multi-region chaos federation; see README "Running scenarios".
//!
//! Observability flags turn the run into an *observed* one (same report,
//! property-tested behavior-neutral): `--trace` writes a Chrome/Perfetto
//! `trace_event` JSON timeline, `--metrics` a gauge time series (CSV if
//! the path ends `.csv`, else JSONL), `--profile` the orchestrator
//! self-profile (host clocks; the one non-deterministic artifact). With
//! `--json`, the report JSON is stdout-only — headers and artifact notes
//! go to stderr — so pipelines stay machine-pure.
//!
//! `--stream DIR` streams instead of buffering: spans and gauge rows are
//! retired to rotating `trace-*.jsonl` / `metrics-*.jsonl` shards in
//! `DIR` as they land (live-tailable via `parvactl trace tail`), with
//! rotation/retention policy taken from the spec's
//! `observability.streaming` block. With retention off, the concatenated
//! shards are byte-identical to the batch export of the same spec.
//!
//! `trace` is the offline analytics suite over those artifacts:
//! `audit` independently recomputes a report's SLO attainment, latency
//! quantiles and recovery rows from the raw stream and exits nonzero on
//! any divergence; `summary` prints per-phase span breakdowns and the
//! top-k slowest requests; `diff` compares two runs; `tail` follows a
//! live shard directory.
//!
//! `fleet` and `region` report DES-*measured* recovery by default: weight
//! copies and MIG re-flashes ride the serving simulator's event queue, so
//! disruption dips and recovery latencies are measured against live
//! traffic. `--analytic-recovery` reverts `fleet` to the closed-form
//! estimates.
//!
//! `daemon` runs the `parvad` control plane: the serving DES streamed in
//! epochs with a closed-loop observed-demand autoscaler, suspendable to a
//! checksummed checkpoint (`--checkpoint/--checkpoint-at`, `--halt` to
//! simulate the kill) and resumable bit-identically (`--resume`). With
//! `--listen` it serves an HTTP/JSON control socket that `submit`,
//! `status`, `scale` and `drain` talk to (default address
//! `127.0.0.1:7474`; with `--out` the bound address also lands in
//! `DIR/endpoint`).
//!
//! `services.json` is a JSON array of `{"model", "rate_rps", "slo_ms"}`
//! objects; see `parvagpu::cli` for the full format.

use parvagpu::cli;

fn usage() -> ! {
    eprintln!(
        "usage:\n  parvactl plan <services.json> [--scheduler NAME]\n  \
         parvactl simulate <services.json> [--scheduler NAME] [--seconds N] [--seed N]\n  \
         parvactl compare <services.json>\n  \
         parvactl cost <services.json> [--scheduler NAME]\n  \
         parvactl feasibility <model-name>\n  parvactl scenarios\n  \
         parvactl fleet [services.json] [--seed N] [--intervals N] [--nodes N] [--json] \
         [--analytic-recovery]\n  \
         parvactl region [services.json] [--seed N] [--intervals N] [--json]\n  \
         parvactl run <name|spec.json> [--json] [--quick] [--trace FILE] \
         [--metrics FILE] [--profile FILE] [--stream DIR]\n  \
         parvactl run --list [--names] [--json]\n  \
         parvactl daemon [services.json] [--resume CKPT] [--seed N] [--epoch-ms N] \
         [--decide-every N] [--listen ADDR] [--epochs N] [--out DIR] \
         [--checkpoint FILE --checkpoint-at N [--halt]] [--stream DIR] [--throttle-ms N]\n  \
         parvactl submit <pod.json> [--addr HOST:PORT]\n  \
         parvactl status [--addr HOST:PORT] [--json]\n  \
         parvactl scale <service-id> <multiplier> [--addr HOST:PORT]\n  \
         parvactl drain [--addr HOST:PORT]\n  \
         parvactl trace audit <trace.json|shard-dir> <report.json> [--metrics FILE] \
         [--tolerance X]\n  \
         parvactl trace summary <trace.json|shard-dir> [--top K]\n  \
         parvactl trace diff <a> <b>\n  \
         parvactl trace tail <shard-dir> [--lane trace|metrics] [--poll-ms N] \
         [--max-polls N]\n\n\
         schedulers: parvagpu (default), single, unoptimized, gslice, gpulet, igniter, \
         paris-elsa, mig-serving"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn daemon_addr(args: &[String]) -> String {
    flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7474".into())
}

fn read_json(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let scheduler = flag(&args, "--scheduler").unwrap_or_else(|| "parvagpu".into());

    let result = match command.as_str() {
        "plan" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_plan(&read_json(path), &scheduler)
        }
        "simulate" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            let seconds = flag(&args, "--seconds")
                .and_then(|s| s.parse().ok())
                .unwrap_or(10.0);
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            cli::run_simulate(&read_json(path), &scheduler, seconds, seed)
        }
        "compare" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_compare(&read_json(path))
        }
        "cost" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_cost(&read_json(path), &scheduler)
        }
        "feasibility" => {
            let Some(model) = args.get(1) else { usage() };
            cli::run_feasibility(model)
        }
        "scenarios" => Ok(cli::run_scenarios()),
        "fleet" => {
            let json = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .map(|p| read_json(p));
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let intervals = flag(&args, "--intervals")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8);
            let nodes = flag(&args, "--nodes")
                .and_then(|s| s.parse().ok())
                .unwrap_or(2);
            cli::run_fleet(
                json.as_deref(),
                seed,
                intervals,
                nodes,
                args.iter().any(|a| a == "--json"),
                args.iter().any(|a| a == "--analytic-recovery"),
            )
        }
        "region" => {
            let json = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .map(|p| read_json(p));
            let seed = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let intervals = flag(&args, "--intervals")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8);
            cli::run_region(
                json.as_deref(),
                seed,
                intervals,
                args.iter().any(|a| a == "--json"),
            )
        }
        "run" => {
            if args.iter().any(|a| a == "--list") {
                if args.iter().any(|a| a == "--json") {
                    cli::list_specs_json()
                } else {
                    Ok(cli::list_specs(args.iter().any(|a| a == "--names")))
                }
            } else {
                let Some(arg) = args.get(1).filter(|p| !p.starts_with("--")) else {
                    usage()
                };
                // A path on disk is read as spec JSON; anything else is
                // looked up in the registry by name.
                let input = if std::path::Path::new(arg).is_file() {
                    read_json(arg)
                } else {
                    arg.clone()
                };
                let obs = cli::ObsPaths {
                    trace: flag(&args, "--trace"),
                    metrics: flag(&args, "--metrics"),
                    profile: flag(&args, "--profile"),
                    stream: flag(&args, "--stream"),
                };
                cli::run_spec_with(
                    &input,
                    args.iter().any(|a| a == "--json"),
                    args.iter().any(|a| a == "--quick"),
                    &obs,
                )
                .map(|out| {
                    eprint!("{}", out.stderr);
                    out.stdout
                })
            }
        }
        "daemon" => {
            let services_json = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .map(|p| read_json(p));
            cli::run_daemon_cmd(&cli::DaemonCliOpts {
                services_json,
                resume: flag(&args, "--resume"),
                seed: flag(&args, "--seed")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(42),
                epoch_ms: flag(&args, "--epoch-ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(500),
                decide_every: flag(&args, "--decide-every")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
                listen: flag(&args, "--listen"),
                epochs: flag(&args, "--epochs").and_then(|s| s.parse().ok()),
                out: flag(&args, "--out"),
                checkpoint: flag(&args, "--checkpoint"),
                checkpoint_at: flag(&args, "--checkpoint-at").and_then(|s| s.parse().ok()),
                halt_at_checkpoint: args.iter().any(|a| a == "--halt"),
                stream: flag(&args, "--stream"),
                throttle_ms: flag(&args, "--throttle-ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
            })
        }
        "submit" => {
            let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
                usage()
            };
            cli::run_daemon_submit(&daemon_addr(&args), &read_json(path))
        }
        "status" => cli::run_daemon_status(&daemon_addr(&args), args.iter().any(|a| a == "--json")),
        "scale" => {
            let (Some(service), Some(multiplier)) = (
                args.get(1).and_then(|s| s.parse().ok()),
                args.get(2).and_then(|s| s.parse().ok()),
            ) else {
                usage()
            };
            cli::run_daemon_scale(&daemon_addr(&args), service, multiplier)
        }
        "drain" => cli::run_daemon_drain(&daemon_addr(&args)),
        "trace" => {
            let Some(sub) = args.get(1) else { usage() };
            match sub.as_str() {
                "audit" => {
                    let (Some(trace), Some(report)) = (args.get(2), args.get(3)) else {
                        usage()
                    };
                    let tolerance = flag(&args, "--tolerance").and_then(|s| s.parse().ok());
                    let metrics = flag(&args, "--metrics");
                    cli::run_trace_audit(trace, report, metrics.as_deref(), tolerance)
                }
                "summary" => {
                    let Some(trace) = args.get(2).filter(|p| !p.starts_with("--")) else {
                        usage()
                    };
                    let top = flag(&args, "--top")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(10);
                    cli::run_trace_summary(trace, top)
                }
                "diff" => {
                    let (Some(a), Some(b)) = (args.get(2), args.get(3)) else {
                        usage()
                    };
                    cli::run_trace_diff(a, b)
                }
                "tail" => {
                    let Some(dir) = args.get(2).filter(|p| !p.starts_with("--")) else {
                        usage()
                    };
                    let lane = flag(&args, "--lane").unwrap_or_else(|| "trace".into());
                    let poll_ms = flag(&args, "--poll-ms")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(200);
                    let max_polls = flag(&args, "--max-polls").and_then(|s| s.parse().ok());
                    // Stream lines as they land; the accumulated result
                    // is empty so the final `print!` adds nothing. Write
                    // errors (e.g. a closed `| head` pipe) end the tail
                    // quietly instead of panicking.
                    use std::io::Write as _;
                    let mut stdout = std::io::stdout();
                    cli::run_trace_tail(dir, &lane, poll_ms, max_polls, &mut |line| {
                        let _ = writeln!(stdout, "{line}");
                    })
                    .map(|()| String::new())
                }
                _ => usage(),
            }
        }
        _ => usage(),
    };

    match result {
        Ok(out) => {
            // Not `print!`: a downstream `| head` that closed the pipe
            // must end the program quietly, not panic it.
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(out.as_bytes());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
