//! # ParvaGPU — spatial GPU sharing for large-scale DNN inference
//!
//! This is the facade crate of the ParvaGPU workspace, a full reproduction of
//! *“ParvaGPU: Efficient Spatial GPU Sharing for Large-Scale DNN Inference in
//! Cloud Environments”* (SC 2024). It re-exports the public API of every
//! subsystem crate so downstream users can depend on a single crate:
//!
//! * [`mig`] — A100/H100 MIG geometry (profiles, 19 configurations, placement)
//! * [`perf`] — analytic DNN workload performance/memory model
//! * [`profile`] — the Profiler (instance × batch × process sweeps)
//! * [`deploy`] — shared deployment vocabulary and the `Scheduler` trait
//! * [`des`] — deterministic discrete-event simulation engine
//! * [`serve`] — cluster serving simulator (requests, batching, SLO tracking)
//! * [`core`] — the ParvaGPU Segment Configurator and Segment Allocator
//! * [`baselines`] — GSLICE, gpulet, iGniter, PARIS+ELSA and MIG-serving
//!   reimplementations (the paper's Table I comparison set)
//! * [`scenarios`] — the paper's Table IV evaluation scenarios, plus the
//!   declarative [`scenarios::ScenarioSpec`] experiment layer behind
//!   `parvactl run`
//! * [`metrics`] — internal slack, external fragmentation, SLO compliance
//! * [`obs`] — structured observability: request/recovery trace spans
//!   (Chrome/Perfetto `trace_event` JSON), deterministic time-series
//!   gauges, and orchestrator self-profiling — zero-cost when disabled
//! * [`nvml`] — simulated NVML/DCGM layer: instance lifecycle, minimal-diff
//!   reconfiguration (§III-F), SM-activity telemetry
//! * [`cluster`] — p4de.24xlarge node packing and cost accounting
//! * [`fleet`] — heterogeneous multi-node fleet orchestration: failures,
//!   spot preemption, live migration, event-driven recovery
//! * [`region`] — multi-region fleet federation: geo-aware routing with
//!   RTT charged against the SLO, region evacuation, cross-region
//!   failover, per-region pricing
//!
//! ## Quickstart
//!
//! ```
//! use parvagpu::prelude::*;
//!
//! // Profile a model zoo once (paper §III-C), then schedule services.
//! let profiles = ProfileBook::builtin();
//! let services = vec![
//!     ServiceSpec::new(0, Model::ResNet50, 800.0, 200.0),
//!     ServiceSpec::new(1, Model::MobileNetV2, 600.0, 150.0),
//! ];
//! let scheduler = ParvaGpu::new(&profiles);
//! let deployment = scheduler.schedule(&services).expect("feasible");
//! assert!(deployment.gpu_count() >= 1);
//! ```

pub mod cli;

pub use parva_autoscale as autoscale;
pub use parva_baselines as baselines;
pub use parva_cluster as cluster;
pub use parva_core as core;
pub use parva_deploy as deploy;
pub use parva_des as des;
pub use parva_fleet as fleet;
pub use parva_metrics as metrics;
pub use parva_mig as mig;
pub use parva_nvml as nvml;
pub use parva_obs as obs;
pub use parva_perf as perf;
pub use parva_profile as profile;
pub use parva_region as region;
pub mod scenarios;
pub use parva_serve as serve;
pub use parvad as daemon;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::scenarios::{ScenarioReport, ScenarioSpec};
    #[allow(deprecated)] // kept for downstream users until the oracle path is removed
    pub use parva_autoscale::run_traced;
    pub use parva_autoscale::{DemandEstimator, RateTrace};
    pub use parva_baselines::{Gpulet, Gslice, IGniter, MigServing, ParisElsa};
    pub use parva_core::{ParvaGpu, ParvaGpuSingle, ParvaGpuUnoptimized};
    pub use parva_deploy::{Deployment, ScheduleError, Scheduler, ServiceSpec, Slo};
    pub use parva_fleet::{run_chaos, FleetConfig, FleetReport, FleetSpec};
    pub use parva_metrics::{external_fragmentation, internal_slack};
    pub use parva_mig::{GpuModel, GpuState, InstanceProfile};
    pub use parva_obs::{MetricsLog, Recorder, SelfProfiler, TraceEvent, TraceSink};
    pub use parva_perf::Model;
    pub use parva_profile::ProfileBook;
    pub use parva_region::{run_federation, FederationConfig, FederationReport, FederationSpec};
    pub use parva_scenarios::Scenario;
    pub use parva_serve::{
        ArrivalProcess, IngressClass, RecoverySpec, ResilienceSpec, ServingConfig, ServingReport,
        Simulation, StreamEngine,
    };
    pub use parvad::{AutoscalePolicy, Daemon, PodSpec};
}
