//! Library support for the `parvactl` command-line tool.
//!
//! All logic lives here (testable); `src/bin/parvactl.rs` is a thin shell.
//! The input format is a JSON array of service descriptions:
//!
//! ```json
//! [
//!   {"model": "ResNet-50",    "rate_rps": 829.0, "slo_ms": 205.0},
//!   {"model": "MobileNetV2",  "rate_rps": 677.0, "slo_ms": 167.0}
//! ]
//! ```

use crate::prelude::*;
use serde::Deserialize;

/// One service as described in the CLI's JSON input.
#[derive(Debug, Clone, Deserialize)]
pub struct ServiceInput {
    /// Model name (the paper's display names; punctuation-insensitive).
    pub model: String,
    /// Offered request rate, req/s.
    pub rate_rps: f64,
    /// SLO latency, ms.
    pub slo_ms: f64,
    /// Optional explicit id (defaults to the array position).
    #[serde(default)]
    pub id: Option<u32>,
}

/// Parse the CLI's JSON service list.
///
/// # Errors
/// Returns a human-readable message for malformed JSON, unknown models or
/// invalid rates/SLOs.
pub fn parse_services(json: &str) -> Result<Vec<ServiceSpec>, String> {
    let inputs: Vec<ServiceInput> =
        serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    if inputs.is_empty() {
        return Err("service list is empty".into());
    }
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let model = Model::parse(&input.model)
                .ok_or_else(|| format!("unknown model '{}' (entry {i})", input.model))?;
            let spec = ServiceSpec::new(
                input.id.unwrap_or(i as u32),
                model,
                input.rate_rps,
                input.slo_ms,
            );
            if !spec.is_valid() {
                return Err(format!(
                    "entry {i}: rate and SLO must be positive finite numbers"
                ));
            }
            Ok(spec)
        })
        .collect()
}

/// The one canonical scheduler table: normalized key → constructor.
/// [`make_scheduler`] and [`scheduler_name_is_known`] both read it, so
/// the accepted-name set and the constructable set cannot drift apart.
#[allow(clippy::type_complexity)]
const SCHEDULERS: [(&str, fn(&ProfileBook) -> Box<dyn Scheduler>); 12] = [
    ("parvagpu", |b| Box::new(ParvaGpu::new(b))),
    ("parva", |b| Box::new(ParvaGpu::new(b))),
    ("parvagpusingle", |b| {
        Box::new(crate::core::ParvaGpuSingle::new(b))
    }),
    ("single", |b| Box::new(crate::core::ParvaGpuSingle::new(b))),
    ("parvagpuunoptimized", |b| {
        Box::new(crate::core::ParvaGpuUnoptimized::new(b))
    }),
    ("unoptimized", |b| {
        Box::new(crate::core::ParvaGpuUnoptimized::new(b))
    }),
    ("gslice", |_| Box::new(crate::baselines::Gslice::new())),
    ("gpulet", |_| Box::new(Gpulet::new())),
    ("igniter", |_| Box::new(IGniter::new())),
    ("migserving", |b| Box::new(MigServing::new(b))),
    (
        "pariselsa",
        |_| Box::new(crate::baselines::ParisElsa::new()),
    ),
    ("paris", |_| Box::new(crate::baselines::ParisElsa::new())),
];

/// Normalize a user-supplied scheduler name to a table key.
fn scheduler_key(name: &str) -> String {
    name.to_lowercase().replace(['-', '_'], "")
}

/// Is `name` a scheduler [`make_scheduler`] would accept? Cheap (no
/// profile book needed) — what spec validation uses to vet names.
#[must_use]
pub fn scheduler_name_is_known(name: &str) -> bool {
    let key = scheduler_key(name);
    SCHEDULERS.iter().any(|(k, _)| *k == key)
}

/// Build a scheduler by CLI name.
///
/// # Errors
/// Lists the valid names on mismatch.
pub fn make_scheduler(name: &str, book: &ProfileBook) -> Result<Box<dyn Scheduler>, String> {
    let key = scheduler_key(name);
    SCHEDULERS
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, ctor)| ctor(book))
        .ok_or_else(|| {
            format!(
                "unknown scheduler '{name}' (expected one of: parvagpu, single, \
                 unoptimized, gslice, gpulet, igniter, paris-elsa, mig-serving)"
            )
        })
}

/// `parvactl plan`: schedule and render the deployment.
///
/// # Errors
/// Propagates parse and scheduling failures as display strings.
pub fn run_plan(json: &str, scheduler_name: &str) -> Result<String, String> {
    let specs = parse_services(json)?;
    let book = ProfileBook::builtin();
    let sched = make_scheduler(scheduler_name, &book)?;
    let deployment = sched.schedule(&specs).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{}: {} GPU(s), external fragmentation {:.1}%\n",
        sched.name(),
        deployment.gpu_count(),
        external_fragmentation(&deployment) * 100.0
    );
    match &deployment {
        Deployment::Mig(d) => {
            for (i, gpu) in d.gpus().iter().enumerate() {
                out.push_str(&format!("GPU {i}: {gpu}\n"));
                for ps in d.segments_on(i) {
                    out.push_str(&format!("   {}\n", ps.segment));
                }
            }
        }
        Deployment::Mps(d) => {
            for (i, gpu) in d.gpus.iter().enumerate() {
                out.push_str(&format!("GPU {i}:\n"));
                for p in &gpu.partitions {
                    out.push_str(&format!(
                        "   svc#{} {} {:.0}% batch {} → {:.0} req/s @ {:.1} ms\n",
                        p.service_id,
                        p.model,
                        p.fraction * 100.0,
                        p.batch,
                        p.throughput_rps,
                        p.latency_ms
                    ));
                }
            }
        }
    }
    for s in &specs {
        out.push_str(&format!(
            "service #{}: capacity {:.0} req/s for offered {:.0} req/s\n",
            s.id,
            deployment.capacity_of(s.id),
            s.request_rate_rps
        ));
    }
    Ok(out)
}

/// `parvactl simulate`: schedule, serve, report quality metrics.
///
/// # Errors
/// Propagates parse and scheduling failures as display strings.
pub fn run_simulate(
    json: &str,
    scheduler_name: &str,
    seconds: f64,
    seed: u64,
) -> Result<String, String> {
    let specs = parse_services(json)?;
    let book = ProfileBook::builtin();
    let sched = make_scheduler(scheduler_name, &book)?;
    let deployment = sched.schedule(&specs).map_err(|e| e.to_string())?;
    let config = ServingConfig {
        duration_s: seconds.max(1.0),
        seed,
        ..ServingConfig::default()
    };
    let report = Simulation::new(&deployment, &specs).config(&config).run();
    let mut out = format!(
        "{}: {} GPU(s) | compliance {:.2}% | internal slack {:.1}% | fragmentation {:.1}%\n",
        sched.name(),
        deployment.gpu_count(),
        report.overall_compliance_rate() * 100.0,
        internal_slack(&report) * 100.0,
        external_fragmentation(&deployment) * 100.0
    );
    for (spec, svc) in specs.iter().zip(&report.services) {
        out.push_str(&format!(
            "service #{} {}: served {}/{} req, p99 {:.1} ms (SLO {:.0} ms), compliance {:.2}%\n",
            spec.id,
            spec.model,
            svc.completed,
            svc.offered,
            svc.latency.quantile_ms(0.99),
            spec.slo.latency_ms,
            svc.compliance_rate() * 100.0
        ));
    }
    Ok(out)
}

/// `parvactl compare`: all frameworks on one service set.
///
/// # Errors
/// Propagates parse failures as display strings.
pub fn run_compare(json: &str) -> Result<String, String> {
    let specs = parse_services(json)?;
    let book = ProfileBook::builtin();
    let mut out = format!(
        "{:<22} {:>6} {:>8} {:>12}\n",
        "framework", "GPUs", "frag %", "sched delay"
    );
    for name in [
        "gpulet",
        "igniter",
        "mig-serving",
        "unoptimized",
        "single",
        "parvagpu",
    ] {
        let sched = make_scheduler(name, &book)?;
        let start = std::time::Instant::now();
        match sched.schedule(&specs) {
            Ok(d) => {
                out.push_str(&format!(
                    "{:<22} {:>6} {:>8.1} {:>11.1?}\n",
                    sched.name(),
                    d.gpu_count(),
                    external_fragmentation(&d) * 100.0,
                    start.elapsed()
                ));
            }
            Err(e) => out.push_str(&format!("{:<22} cannot schedule: {e}\n", sched.name())),
        }
    }
    Ok(out)
}

/// `parvactl cost`: schedule, pack onto p4de nodes, price the fleet.
///
/// # Errors
/// Propagates parse and scheduling failures as display strings.
pub fn run_cost(json: &str, scheduler_name: &str) -> Result<String, String> {
    use crate::cluster::{pack, CostReport, NodeType, PricingPlan};
    let specs = parse_services(json)?;
    let book = ProfileBook::builtin();
    let sched = make_scheduler(scheduler_name, &book)?;
    let deployment = sched.schedule(&specs).map_err(|e| e.to_string())?;
    let plan = pack(&deployment, NodeType::P4DE_24XLARGE);
    let mut out = format!(
        "{}: {} GPU(s) → {} p4de.24xlarge node(s), {} idle GPU(s), {:.0}% GPU utilization\n",
        sched.name(),
        deployment.gpu_count(),
        plan.node_count(),
        plan.idle_gpus,
        plan.gpu_utilization() * 100.0
    );
    for pricing in [
        PricingPlan::OnDemand,
        PricingPlan::Reserved1Yr,
        PricingPlan::Reserved3Yr,
        PricingPlan::Spot,
    ] {
        let r = CostReport::from_plan(sched.name(), &plan, pricing);
        out.push_str(&format!(
            "  {:<12} ${:>9.2}/hour  ${:>11.0}/month\n",
            format!("{pricing:?}"),
            r.usd_per_hour,
            r.usd_per_month
        ));
    }
    Ok(out)
}

/// `parvactl feasibility`: the §V memory-feasibility matrix for a model on
/// every catalog GPU.
///
/// # Errors
/// Reports unknown model names.
pub fn run_feasibility(model_name: &str) -> Result<String, String> {
    use crate::mig::{GpuModel, InstanceProfile};
    use crate::perf::ComputeShare;
    let model = Model::parse(model_name).ok_or_else(|| format!("unknown model '{model_name}'"))?;
    let mut out = format!(
        "Memory feasibility of {} (batch 1, one process):\n",
        model.name()
    );
    for gpu in GpuModel::CATALOG {
        let smallest = InstanceProfile::ALL
            .iter()
            .copied()
            .find(|g| crate::perf::math::fits_memory_on(model, ComputeShare::Mig(*g), 1, 1, gpu));
        out.push_str(&format!(
            "  {:<12} smallest instance: {}\n",
            gpu.name,
            smallest.map_or("none".to_string(), |g| format!(
                "{} ({:.0} GiB)",
                g,
                gpu.instance_memory_gib(g)
            ))
        ));
    }
    Ok(out)
}

/// `parvactl fleet`: chaos-run a heterogeneous fleet (failures, spot
/// preemptions — warned and cold — scale-ups, load shifts) and render the
/// recovery report. Recovery is DES-simulated by default (weight copies
/// and MIG re-flashes riding the serving traffic, so dips and latencies
/// are measured); `analytic_recovery` falls back to the closed-form
/// blackout numbers only.
///
/// `json` optionally overrides the built-in demo service set; `json_out`
/// prints the full [`crate::fleet::FleetReport`] as JSON for scripting.
///
/// # Errors
/// Propagates parse, scheduling and fleet-exhaustion failures.
pub fn run_fleet(
    json: Option<&str>,
    seed: u64,
    intervals: usize,
    base_nodes: usize,
    json_out: bool,
    analytic_recovery: bool,
) -> Result<String, String> {
    use crate::fleet::{run_chaos, FleetConfig, FleetSpec};
    let specs = match json {
        Some(j) => parse_services(j)?,
        None => crate::fleet::demo_services(),
    };
    let book = ProfileBook::builtin();
    let config = FleetConfig {
        seed,
        intervals: intervals.max(1),
        des_recovery: !analytic_recovery,
        ..FleetConfig::default()
    };
    let report = run_chaos(
        &book,
        &specs,
        &FleetSpec::mixed_demo(base_nodes.max(1)),
        &config,
    )
    .map_err(|e| e.to_string())?;
    if json_out {
        serde_json::to_string(&report)
            .map(|s| s + "\n")
            .map_err(|e| e.to_string())
    } else {
        Ok(report.render())
    }
}

/// `parvactl region`: run the three-region federation through a scripted
/// region-evacuation + failback drill on top of the seeded chaos stream,
/// and render the federation report.
///
/// `json` optionally overrides the built-in global demo service set;
/// `json_out` prints the full [`crate::region::FederationReport`] as JSON
/// for scripting.
///
/// # Errors
/// Propagates parse, bootstrap and failback failures.
pub fn run_region(
    json: Option<&str>,
    seed: u64,
    intervals: usize,
    json_out: bool,
) -> Result<String, String> {
    use crate::region::{run_federation, EvacuationDrill, FederationConfig, FederationSpec};
    let services = match json {
        Some(j) => parse_services(j)?,
        None => crate::region::demo_services(),
    };
    let book = ProfileBook::builtin();
    let intervals = intervals.max(1);
    // The scripted drill needs one interval for the evacuation and a
    // later one for the failback; shorter runs are pure seeded chaos.
    let drill = (intervals >= 2).then(|| EvacuationDrill {
        region: 0,
        evacuate_at: intervals.div_ceil(3),
        failback_at: (2 * intervals).div_ceil(3).max(intervals.div_ceil(3) + 1),
    });
    let config = FederationConfig {
        seed,
        intervals,
        drill,
        ..FederationConfig::default()
    };
    let report = run_federation(
        &book,
        &services,
        &FederationSpec::three_region_demo(),
        &config,
    )
    .map_err(|e| e.to_string())?;
    if json_out {
        serde_json::to_string(&report)
            .map(|s| s + "\n")
            .map_err(|e| e.to_string())
    } else {
        Ok(report.render())
    }
}

/// Destination paths for `parvactl run`'s observability artifacts.
#[derive(Debug, Clone, Default)]
pub struct ObsPaths {
    /// Chrome/Perfetto `trace_event` JSON — load in `ui.perfetto.dev`
    /// (deterministic: byte-identical across runs of one spec).
    pub trace: Option<String>,
    /// Gauge time series; a `.csv` extension selects CSV, anything else
    /// line-delimited JSON (deterministic).
    pub metrics: Option<String>,
    /// Orchestrator self-profile JSON (host clocks — the one
    /// deliberately non-deterministic artifact).
    pub profile: Option<String>,
    /// Shard directory for a *streamed* run: spans and gauge rows are
    /// retired to rotating `trace-*.jsonl` / `metrics-*.jsonl` shards as
    /// they land instead of being buffered to run end. Exclusive with
    /// the batch artifacts above (one run drives one sink).
    pub stream: Option<String>,
}

impl ObsPaths {
    /// Does any batch artifact need an observed (recording) run?
    #[must_use]
    pub fn any(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.profile.is_some()
    }
}

/// What a spec run prints where: the machine-readable report on stdout,
/// human narration (run header, artifact notes) on stderr — so
/// `parvactl run --json … | jq` always sees pure JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecRunOutput {
    /// Report text for stdout (JSON in `--json` mode).
    pub stdout: String,
    /// Narration for stderr.
    pub stderr: String,
}

fn write_artifact(path: &str, body: &str, kind: &str, notes: &mut String) -> Result<(), String> {
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    notes.push_str(&format!("wrote {kind} to {path} ({} bytes)\n", body.len()));
    Ok(())
}

/// `parvactl run`: execute a declarative scenario spec — either a
/// registered built-in name or raw [`crate::scenarios::ScenarioSpec`]
/// JSON (the binary reads spec files and passes their text).
///
/// `--json` prints the tagged [`crate::scenarios::ScenarioReport`] for
/// scripting (deterministic per spec); `--quick` shrinks windows and
/// fleet intervals to CI scale without touching seeds.
///
/// # Errors
/// Unknown names, malformed spec JSON, and any engine failure, as
/// display strings.
pub fn run_spec(input: &str, json_out: bool, quick: bool) -> Result<String, String> {
    run_spec_with(input, json_out, quick, &ObsPaths::default()).map(|out| out.stdout)
}

/// [`run_spec`] with observability artifacts: when any [`ObsPaths`]
/// destination is set the spec runs *observed* — the same report
/// (observation is property-tested behavior-neutral), plus the trace /
/// metrics / self-profile files written to the given paths. Returns the
/// stdout/stderr split so `--json` output stays machine-pure.
///
/// # Errors
/// Everything [`run_spec`] raises, plus artifact write failures.
pub fn run_spec_with(
    input: &str,
    json_out: bool,
    quick: bool,
    obs: &ObsPaths,
) -> Result<SpecRunOutput, String> {
    let spec = match crate::scenarios::spec_by_name(input.trim()) {
        Some(spec) => spec,
        None => serde_json::from_str::<crate::scenarios::ScenarioSpec>(input).map_err(|e| {
            format!(
                "'{}' is not a registered spec (try `parvactl run --list`) and does not \
                 parse as spec JSON: {e}",
                input.chars().take(60).collect::<String>()
            )
        })?,
    };
    let spec = if quick { spec.quick() } else { spec };
    let mut notes = String::new();
    if obs.stream.is_some() && obs.any() {
        return Err(
            "--stream writes trace and metrics shards itself; drop --trace/--metrics/--profile"
                .into(),
        );
    }
    let report = if let Some(dir) = &obs.stream {
        let (report, stats) = spec.run_streamed(dir)?;
        notes.push_str(&format!(
            "streamed {} trace events + {} gauge rows to {dir} ({} trace / {} metrics shard(s){})\n",
            stats.trace_events,
            stats.gauge_rows,
            stats.trace_shards,
            stats.metrics_shards,
            if stats.dropped_shards > 0 {
                format!(", {} dropped by retention", stats.dropped_shards)
            } else {
                String::new()
            }
        ));
        report
    } else if obs.any() {
        let (report, rec) = spec.run_observed()?;
        if let Some(path) = &obs.trace {
            write_artifact(path, &rec.chrome_trace(), "trace", &mut notes)?;
        }
        if let Some(path) = &obs.metrics {
            let body = if path.ends_with(".csv") {
                rec.metrics_csv()
            } else {
                rec.metrics_jsonl()
            };
            write_artifact(path, &body, "metrics", &mut notes)?;
        }
        if let Some(path) = &obs.profile {
            write_artifact(
                path,
                &rec.profile_json(),
                "profile (non-deterministic)",
                &mut notes,
            )?;
        }
        report
    } else {
        spec.run()?
    };
    let header = format!("== {} ==\n{}\n", spec.name, spec.description);
    if json_out {
        let body = serde_json::to_string(&report)
            .map(|s| s + "\n")
            .map_err(|e| e.to_string())?;
        Ok(SpecRunOutput {
            stdout: body,
            stderr: header + &notes,
        })
    } else {
        Ok(SpecRunOutput {
            stdout: format!("{header}{}", report.render()),
            stderr: notes,
        })
    }
}

/// `parvactl run --list`: the spec registry. `names_only` prints bare
/// names (one per line, for shell loops).
#[must_use]
pub fn list_specs(names_only: bool) -> String {
    let mut out = String::new();
    if names_only {
        for name in crate::scenarios::spec_names() {
            out.push_str(&name);
            out.push('\n');
        }
    } else {
        out.push_str("registered scenario specs:\n");
        for spec in crate::scenarios::builtin_specs() {
            let kind = match spec.mode {
                crate::scenarios::Mode::Serve { .. } => "serve",
                crate::scenarios::Mode::Fleet { .. } => "fleet",
                crate::scenarios::Mode::Region { .. } => "region",
            };
            out.push_str(&format!(
                "  {:<18} [{kind:<6}] {}\n",
                spec.name, spec.description
            ));
        }
    }
    out
}

/// `parvactl run --list --json`: the registry as a machine-readable array.
///
/// # Errors
/// JSON encoding failures (none in practice).
pub fn list_specs_json() -> Result<String, String> {
    use serde::Value;
    let entries: Vec<Value> = crate::scenarios::builtin_specs()
        .iter()
        .map(|spec| {
            let kind = match spec.mode {
                crate::scenarios::Mode::Serve { .. } => "serve",
                crate::scenarios::Mode::Fleet { .. } => "fleet",
                crate::scenarios::Mode::Region { .. } => "region",
            };
            Value::Map(vec![
                ("name".to_string(), Value::Str(spec.name.clone())),
                ("kind".to_string(), Value::Str(kind.to_string())),
                (
                    "description".to_string(),
                    Value::Str(spec.description.clone()),
                ),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Seq(entries))
        .map(|s| s + "\n")
        .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// `parvactl daemon` & clients — the parvad control plane.
// ---------------------------------------------------------------------------

/// Options for `parvactl daemon` (the host side).
#[derive(Debug, Clone, Default)]
pub struct DaemonCliOpts {
    /// Initial catalogue as CLI services JSON (`None`: a small builtin
    /// two-service catalogue). Ignored with `resume`.
    pub services_json: Option<String>,
    /// Resume from this checkpoint instead of booting fresh.
    pub resume: Option<String>,
    /// Engine seed (fresh boots only).
    pub seed: u64,
    /// Epoch length, ms (fresh boots only).
    pub epoch_ms: u64,
    /// Autoscale decision cadence, epochs (0 = policy default).
    pub decide_every: u64,
    /// Control-socket bind address.
    pub listen: Option<String>,
    /// Stop after this many total epochs.
    pub epochs: Option<u64>,
    /// Artifact directory.
    pub out: Option<String>,
    /// Scheduled checkpoint path.
    pub checkpoint: Option<String>,
    /// Epoch at which to write the scheduled checkpoint.
    pub checkpoint_at: Option<u64>,
    /// Exit right after the scheduled checkpoint.
    pub halt_at_checkpoint: bool,
    /// Live `StreamSink` shard directory.
    pub stream: Option<String>,
    /// Wall-clock pause between epochs, ms.
    pub throttle_ms: u64,
}

/// The builtin daemon catalogue (small, fast, deterministic).
#[must_use]
pub fn default_daemon_catalogue() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(1, Model::ResNet50, 400.0, 40.0),
        ServiceSpec::new(2, Model::MobileNetV2, 300.0, 30.0),
    ]
}

/// `parvactl daemon`: boot (or resume) a daemon and drive it to completion.
///
/// # Errors
/// Boot/resume, socket or artifact failures, as strings.
pub fn run_daemon_cmd(opts: &DaemonCliOpts) -> Result<String, String> {
    let mut daemon = match &opts.resume {
        Some(path) => parvad::load_checkpoint::<parvad::Daemon>(std::path::Path::new(path))?,
        None => {
            let specs = match &opts.services_json {
                Some(json) => parse_services(json)?,
                None => default_daemon_catalogue(),
            };
            let mut policy = parvad::AutoscalePolicy::default();
            if opts.decide_every > 0 {
                policy.decide_every = opts.decide_every;
            }
            parvad::Daemon::new(
                &specs,
                ArrivalProcess::Poisson,
                opts.seed,
                opts.epoch_ms.max(1) * 1000,
                policy,
            )?
        }
    };
    let outcome = parvad::run_daemon(
        &mut daemon,
        &parvad::DaemonOpts {
            listen: opts.listen.clone(),
            epochs: opts.epochs,
            out_dir: opts.out.as_ref().map(Into::into),
            checkpoint_at: opts.checkpoint_at,
            checkpoint_path: opts.checkpoint.as_ref().map(Into::into),
            halt_at_checkpoint: opts.halt_at_checkpoint,
            stream_dir: opts.stream.as_ref().map(Into::into),
            throttle_ms: opts.throttle_ms,
        },
    )?;
    let mut out = format!(
        "parvad: {} epochs completed{}{}\n",
        outcome.epochs,
        if outcome.checkpointed {
            ", checkpoint written"
        } else {
            ""
        },
        if outcome.drained { ", drained" } else { "" },
    );
    if let Some(addr) = outcome.bound_addr {
        out.push_str(&format!("control socket was {addr}\n"));
    }
    Ok(out)
}

/// `parvactl submit <pod.json> --addr A`: admit a pod over the socket.
///
/// # Errors
/// Connection failures or a non-200 daemon response.
pub fn run_daemon_submit(addr: &str, pod_json: &str) -> Result<String, String> {
    // Validate client-side first for a friendlier error than a 400.
    let pod: parvad::PodSpec =
        serde_json::from_str(pod_json).map_err(|e| format!("bad pod spec: {e}"))?;
    pod.validate()?;
    let (code, body) = parvad::http_request(addr, "POST", "/submit", Some(pod_json))?;
    if code == 200 {
        Ok(body + "\n")
    } else {
        Err(format!("daemon refused ({code}): {body}"))
    }
}

/// `parvactl status --addr A [--json]`: live daemon status.
///
/// # Errors
/// Connection failures or a non-200 daemon response.
pub fn run_daemon_status(addr: &str, json_out: bool) -> Result<String, String> {
    let (code, body) = parvad::http_request(addr, "GET", "/status", None)?;
    if code != 200 {
        return Err(format!("daemon error ({code}): {body}"));
    }
    if json_out {
        return Ok(body + "\n");
    }
    let status: parvad::DaemonStatus =
        serde_json::from_str(&body).map_err(|e| format!("bad status payload: {e}"))?;
    let mut out = format!(
        "epoch {}  sim {:.1} ms  {} GPUs  {} dark  {} decisions  {} reconfigs  \
         {} GPU-epochs{}\n",
        status.epoch,
        status.sim_ms,
        status.gpus,
        status.dark_servers,
        status.decisions,
        status.reconfigs,
        status.gpu_epochs,
        if status.draining { "  DRAINING" } else { "" },
    );
    out.push_str(&format!(
        "{:<14} {:>4} {:>9} {:>12} {:>12} {:>9} {:>11}\n",
        "pod", "id", "replicas", "est req/s", "plan req/s", "offered", "attainment"
    ));
    for s in &status.services {
        out.push_str(&format!(
            "{:<14} {:>4} {:>9} {:>12.1} {:>12.1} {:>9} {:>10.2}%\n",
            s.name,
            s.id,
            s.replicas,
            s.demand_est_rps,
            s.planned_rps,
            s.offered,
            s.slo_attainment * 100.0
        ));
    }
    Ok(out)
}

/// `parvactl scale <service> <multiplier> --addr A`: inject true demand.
///
/// # Errors
/// Connection failures or a non-200 daemon response.
pub fn run_daemon_scale(addr: &str, service: u32, multiplier: f64) -> Result<String, String> {
    let body = format!("{{\"service\":{service},\"multiplier\":{multiplier}}}");
    let (code, reply) = parvad::http_request(addr, "POST", "/scale", Some(&body))?;
    if code == 200 {
        Ok(reply + "\n")
    } else {
        Err(format!("daemon refused ({code}): {reply}"))
    }
}

/// `parvactl drain --addr A`: stop admissions and shut down gracefully.
///
/// # Errors
/// Connection failures or a non-200 daemon response.
pub fn run_daemon_drain(addr: &str) -> Result<String, String> {
    let (code, reply) = parvad::http_request(addr, "POST", "/drain", None)?;
    if code == 200 {
        Ok(reply + "\n")
    } else {
        Err(format!("daemon refused ({code}): {reply}"))
    }
}

// ---------------------------------------------------------------------------
// `parvactl trace` — offline analytics over exported traces and shard dirs.
// ---------------------------------------------------------------------------

/// Resolve a `parvactl trace` input path: a streamed shard directory
/// yields the concatenated trace lane plus the metrics lane; a plain
/// file yields its text (metrics must then come via `--metrics`).
fn load_trace_input(path: &str) -> Result<(String, Option<String>), String> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let trace = crate::obs::read_concat_shards(p, "trace")
            .map_err(|e| format!("cannot read trace shards in {path}: {e}"))?;
        let metrics = crate::obs::read_concat_shards(p, "metrics")
            .map_err(|e| format!("cannot read metrics shards in {path}: {e}"))?;
        Ok((trace, Some(metrics)))
    } else {
        std::fs::read_to_string(p)
            .map(|t| (t, None))
            .map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// Parse report JSON for the audit: the tagged
/// [`crate::scenarios::ScenarioReport`] (`parvactl run --json`), or the
/// raw per-engine reports (`parvactl fleet --json`, `parvactl region
/// --json`).
fn parse_report(text: &str) -> Result<crate::scenarios::ScenarioReport, String> {
    use crate::scenarios::ScenarioReport;
    let text = text.trim();
    if let Ok(r) = serde_json::from_str::<ScenarioReport>(text) {
        return Ok(r);
    }
    if let Ok(r) = serde_json::from_str::<ServingReport>(text) {
        return Ok(ScenarioReport::Serve(r));
    }
    if let Ok(r) = serde_json::from_str::<crate::fleet::FleetReport>(text) {
        return Ok(ScenarioReport::Fleet(r));
    }
    serde_json::from_str::<crate::region::FederationReport>(text)
        .map(ScenarioReport::Region)
        .map_err(|e| {
            format!("report JSON is not a scenario, serving, fleet or federation report: {e}")
        })
}

/// Comparison accumulator for `parvactl trace audit`. Every field pair
/// is one check; divergences collect as human-readable lines. Floats
/// compare *exactly* by default — both sides of the audit are written
/// with shortest-round-trip rendering and parsed back losslessly, so any
/// inequality is a real accounting divergence, not float noise. An
/// explicit tolerance relaxes that for hand-edited or cross-version
/// artifacts.
struct Audit {
    tolerance: Option<f64>,
    checks: usize,
    failures: Vec<String>,
}

impl Audit {
    fn new(tolerance: Option<f64>) -> Self {
        Audit {
            tolerance,
            checks: 0,
            failures: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }

    fn u64(&mut self, what: &str, recomputed: u64, reported: u64) {
        self.checks += 1;
        if recomputed != reported {
            self.fail(format!(
                "{what}: trace says {recomputed}, report says {reported}"
            ));
        }
    }

    fn str(&mut self, what: &str, recomputed: &str, reported: &str) {
        self.checks += 1;
        if recomputed != reported {
            self.fail(format!(
                "{what}: trace says '{recomputed}', report says '{reported}'"
            ));
        }
    }

    fn bool(&mut self, what: &str, recomputed: Option<bool>, reported: bool) {
        self.checks += 1;
        if recomputed != Some(reported) {
            self.fail(format!(
                "{what}: trace says {recomputed:?}, report says {reported}"
            ));
        }
    }

    #[allow(clippy::float_cmp)] // exact equality is the audit's point
    fn f64(&mut self, what: &str, recomputed: f64, reported: f64) {
        self.checks += 1;
        let ok = match self.tolerance {
            Some(t) => (recomputed - reported).abs() <= t,
            None => recomputed == reported,
        };
        if !ok {
            self.fail(format!(
                "{what}: trace says {recomputed}, report says {reported}"
            ));
        }
    }

    fn finish(self, what: &str) -> Result<String, String> {
        let mode = match self.tolerance {
            Some(t) => format!("tolerance {t}"),
            None => "exact".to_string(),
        };
        if self.failures.is_empty() {
            Ok(format!(
                "trace audit: {what} — {} checks, all match ({mode})\n",
                self.checks
            ))
        } else {
            Err(format!(
                "trace audit FAILED ({what}, {mode}): {} of {} checks diverged:\n  {}",
                self.failures.len(),
                self.checks,
                self.failures.join("\n  ")
            ))
        }
    }
}

/// Serve-mode audit: replay the trace's request spans through
/// [`crate::obs::analyze::recompute_serving`] and compare every counter,
/// attainment and latency quantile against the report.
fn audit_serve(trace: &str, report: &ServingReport, audit: &mut Audit) -> Result<(), String> {
    use crate::obs::analyze;
    let events = analyze::parse_trace(trace)?;
    let rc = analyze::recompute_serving(&events)?;
    for s in &report.services {
        let id = u64::from(s.service_id);
        let what = format!("service #{id}");
        match rc.service(id) {
            // A service with no spans at all must also have reported
            // nothing; otherwise the trace is missing its traffic.
            None => {
                audit.u64(&format!("{what} offered"), 0, s.offered);
                audit.u64(&format!("{what} rejected"), 0, s.rejected);
                audit.u64(&format!("{what} completed"), 0, s.completed);
                audit.u64(&format!("{what} timeouts"), 0, s.timeouts);
                audit.u64(&format!("{what} retries"), 0, s.retries);
                audit.u64(&format!("{what} shed"), 0, s.shed);
            }
            Some(r) => {
                audit.u64(&format!("{what} offered"), r.offered, s.offered);
                audit.u64(&format!("{what} rejected"), r.rejected, s.rejected);
                audit.u64(&format!("{what} completed"), r.completed, s.completed);
                // The resilience lifecycle counters recount from the
                // dedicated `resilience`-category instants (zero on both
                // sides for resilience-free runs).
                audit.u64(&format!("{what} timeouts"), r.timeouts, s.timeouts);
                audit.u64(&format!("{what} retries"), r.retries, s.retries);
                audit.u64(&format!("{what} shed"), r.shed, s.shed);
                audit.u64(&format!("{what} hedges"), r.hedges, s.hedges);
                audit.u64(&format!("{what} hedge wins"), r.hedge_wins, s.hedge_wins);
                audit.u64(
                    &format!("{what} within SLO"),
                    r.completed_within_slo,
                    s.completed_within_slo,
                );
                audit.f64(
                    &format!("{what} attainment"),
                    r.attainment(),
                    s.request_compliance_rate(),
                );
                audit.f64(
                    &format!("{what} p50 ms"),
                    r.latency.quantile_ms(0.5),
                    s.latency.quantile_ms(0.5),
                );
                audit.f64(
                    &format!("{what} p99 ms"),
                    r.latency.quantile_ms(0.99),
                    s.latency.quantile_ms(0.99),
                );
            }
        }
    }
    for id in rc.services.iter().map(|s| s.service_id) {
        if !report
            .services
            .iter()
            .any(|s| u64::from(s.service_id) == id)
        {
            audit.fail(format!(
                "service #{id} appears in the trace but not in the report"
            ));
        }
    }
    for c in &report.classes {
        let id = u64::from(c.service_id);
        let cls = c.class as u64;
        let what = format!("service #{id} class {cls}");
        match rc.class(id, cls) {
            None => audit.u64(&format!("{what} offered"), 0, c.offered),
            Some(r) => {
                audit.u64(&format!("{what} offered"), r.offered, c.offered);
                audit.u64(&format!("{what} completed"), r.completed, c.completed);
                audit.u64(
                    &format!("{what} within SLO"),
                    r.completed_within_slo,
                    c.completed_within_slo,
                );
                audit.f64(
                    &format!("{what} attainment"),
                    r.attainment(),
                    c.request_compliance_rate(),
                );
                audit.f64(
                    &format!("{what} p99 ms"),
                    r.latency.quantile_ms(0.99),
                    c.latency.quantile_ms(0.99),
                );
            }
        }
    }
    // Per-tenant recount: admission accounting (offered / admitted /
    // rejected) comes from the tagged arrival instants, completions from
    // the tagged request spans — the quota gate can't misreport without
    // the trace catching it.
    for t in &report.tenants {
        let id = u64::from(t.tenant);
        let what = if t.name.is_empty() {
            format!("tenant #{id}")
        } else {
            format!("tenant #{id} ({})", t.name)
        };
        match rc.tenant(id) {
            None => {
                audit.u64(&format!("{what} offered"), 0, t.offered);
                audit.u64(&format!("{what} completed"), 0, t.completed);
            }
            Some(r) => {
                audit.u64(&format!("{what} offered"), r.offered, t.offered);
                audit.u64(&format!("{what} admitted"), r.admitted, t.admitted);
                audit.u64(&format!("{what} rejected"), r.rejected, t.rejected);
                audit.u64(&format!("{what} completed"), r.completed, t.completed);
                audit.u64(
                    &format!("{what} within SLO"),
                    r.completed_within_slo,
                    t.completed_within_slo,
                );
                audit.f64(
                    &format!("{what} attainment"),
                    r.attainment(),
                    t.attainment(),
                );
                audit.f64(
                    &format!("{what} p50 ms"),
                    r.latency.quantile_ms(0.5),
                    t.latency.quantile_ms(0.5),
                );
                audit.f64(
                    &format!("{what} p99 ms"),
                    r.latency.quantile_ms(0.99),
                    t.latency.quantile_ms(0.99),
                );
            }
        }
    }
    // Tenant 0 is the unbound bucket (services outside every tenant): it
    // legitimately has no report row. Any other traced tenant must.
    for id in rc.tenants.iter().map(|t| t.tenant).filter(|&id| id != 0) {
        if !report.tenants.iter().any(|t| u64::from(t.tenant) == id) {
            audit.fail(format!(
                "tenant #{id} appears in the trace but not in the report"
            ));
        }
    }
    audit.f64(
        "overall attainment",
        rc.overall_attainment(),
        report.overall_request_compliance_rate(),
    );
    Ok(())
}

/// Billing audit shared by the fleet and region layers: the
/// `kind: "billing"` gauge rows must reproduce the report's
/// per-(interval, tenant) P&L ledger row for row — and a report without a
/// ledger must not have emitted any billing rows.
fn audit_billing(
    rows: &[crate::obs::analyze::GaugeRow],
    billing: Option<&crate::cluster::BillingReport>,
    audit: &mut Audit,
) {
    let gauges: Vec<_> = rows.iter().filter(|r| r.kind() == "billing").collect();
    let reported = billing.map_or(&[][..], |b| b.rows.as_slice());
    audit.u64(
        "billing gauge rows",
        gauges.len() as u64,
        reported.len() as u64,
    );
    for b in reported {
        let what = format!("interval {} tenant #{} billing", b.interval, b.tenant);
        let Some(row) = gauges.iter().find(|g| {
            g.u64_of("interval") == Some(b.interval as u64)
                && g.u64_of("tenant") == Some(u64::from(b.tenant))
        }) else {
            audit.fail(format!("{what}: no billing gauge row"));
            continue;
        };
        // The fleet layer's rows carry no tenant_name; only compare it
        // where the emitter stamped one (the region layer).
        if let Some(name) = row.str_of("tenant_name") {
            audit.str(&format!("{what} tenant_name"), name, &b.tenant_name);
        }
        audit.u64(
            &format!("{what} offered"),
            row.u64_of("offered").unwrap_or(u64::MAX),
            b.offered,
        );
        audit.u64(
            &format!("{what} rejected"),
            row.u64_of("rejected").unwrap_or(u64::MAX),
            b.rejected,
        );
        audit.u64(
            &format!("{what} within SLO"),
            row.u64_of("completed_within_slo").unwrap_or(u64::MAX),
            b.completed_within_slo,
        );
        for (field, reported) in [
            ("revenue_usd", b.revenue_usd),
            ("cost_usd", b.cost_usd),
            ("margin_usd", b.margin_usd()),
        ] {
            audit.f64(
                &format!("{what} {field}"),
                row.f64_of(field).unwrap_or(f64::NAN),
                reported,
            );
        }
    }
}

/// Fleet-mode audit: the `kind: "fleet"` gauge rows must reproduce the
/// report's per-event recovery accounting row for row.
fn audit_fleet(
    metrics: &str,
    report: &crate::fleet::FleetReport,
    audit: &mut Audit,
) -> Result<(), String> {
    use crate::obs::analyze;
    let all = analyze::parse_metrics(metrics)?;
    let rows: Vec<_> = all.iter().filter(|r| r.kind() == "fleet").collect();
    audit.u64(
        "fleet gauge rows",
        rows.len() as u64,
        report.events.len() as u64 + 1,
    );
    let row_at = |interval: u64| rows.iter().find(|r| r.u64_of("interval") == Some(interval));
    match row_at(0) {
        None => audit.fail("no baseline (interval 0) fleet row".into()),
        Some(row) => {
            audit.str(
                "baseline event",
                row.str_of("event").unwrap_or(""),
                "baseline",
            );
            audit.f64(
                "baseline compliance",
                row.f64_of("compliance_before").unwrap_or(f64::NAN),
                report.baseline_compliance,
            );
            audit.f64(
                "baseline $/h",
                row.f64_of("usd_per_hour").unwrap_or(f64::NAN),
                report.baseline_usd_per_hour,
            );
        }
    }
    for e in &report.events {
        let what = format!("interval {}", e.interval);
        let Some(row) = row_at(e.interval as u64) else {
            audit.fail(format!("{what}: no fleet gauge row"));
            continue;
        };
        audit.str(
            &format!("{what} event"),
            row.str_of("event").unwrap_or(""),
            crate::fleet::event_label(&e.event),
        );
        for (field, reported) in [
            ("compliance_before", e.compliance_before),
            ("compliance_during", e.compliance_during),
            ("compliance_shadowed", e.compliance_shadowed),
            ("compliance_measured", e.compliance_measured),
            ("compliance_after", e.compliance_after),
            ("recovery_ms", e.simulated_recovery_ms),
            ("precopied_gib", e.precopied_gib),
            ("usd_per_hour", e.usd_per_hour),
        ] {
            audit.f64(
                &format!("{what} {field}"),
                row.f64_of(field).unwrap_or(f64::NAN),
                reported,
            );
        }
        audit.u64(
            &format!("{what} migrated_segments"),
            row.u64_of("migrated_segments").unwrap_or(u64::MAX),
            e.migration.migrated_segments as u64,
        );
        audit.u64(
            &format!("{what} nodes_in_service"),
            row.u64_of("nodes_in_service").unwrap_or(u64::MAX),
            e.nodes_in_service as u64,
        );
    }
    audit_billing(&all, report.billing.as_ref(), audit);
    Ok(())
}

/// Region-mode audit: the `kind: "federation"` rows must reproduce the
/// per-interval aggregates, the `kind: "region"` rows every region's
/// outcome (baseline included), and the `kind: "billing"` rows the
/// per-tenant P&L ledger.
fn audit_region(
    metrics: &str,
    report: &crate::region::FederationReport,
    audit: &mut Audit,
) -> Result<(), String> {
    use crate::obs::analyze;
    let all = analyze::parse_metrics(metrics)?;
    let fed: Vec<_> = all.iter().filter(|r| r.kind() == "federation").collect();
    let reg: Vec<_> = all.iter().filter(|r| r.kind() == "region").collect();
    let outcomes: Vec<&crate::region::IntervalOutcome> = std::iter::once(&report.baseline)
        .chain(report.intervals.iter())
        .collect();
    audit.u64(
        "federation gauge rows",
        fed.len() as u64,
        outcomes.len() as u64,
    );
    audit.u64(
        "region gauge rows",
        reg.len() as u64,
        outcomes.iter().map(|o| o.regions.len() as u64).sum(),
    );
    for o in outcomes {
        let what = format!("interval {}", o.interval);
        let Some(row) = fed
            .iter()
            .find(|r| r.u64_of("interval") == Some(o.interval as u64))
        else {
            audit.fail(format!("{what}: no federation gauge row"));
            continue;
        };
        audit.str(
            &format!("{what} event"),
            row.str_of("event").unwrap_or(""),
            &o.event.to_string(),
        );
        for (field, reported) in [
            ("global_compliance", o.global_compliance),
            ("spilled_rps", o.spilled_rps),
            ("unrouted_rps", o.unrouted_rps),
            ("usd_per_hour", o.usd_per_hour),
        ] {
            audit.f64(
                &format!("{what} {field}"),
                row.f64_of(field).unwrap_or(f64::NAN),
                reported,
            );
        }
        audit.u64(
            &format!("{what} forced_failovers"),
            row.u64_of("forced_failovers").unwrap_or(u64::MAX),
            o.forced_failovers.len() as u64,
        );
        for r in &o.regions {
            let what = format!("interval {} region {}", o.interval, r.name);
            let Some(row) = reg.iter().find(|g| {
                g.u64_of("interval") == Some(o.interval as u64)
                    && g.str_of("region") == Some(r.name.as_str())
            }) else {
                audit.fail(format!("{what}: no region gauge row"));
                continue;
            };
            audit.bool(&format!("{what} active"), row.bool_of("active"), r.active);
            for (field, reported) in [
                ("offered_rps", r.offered_rps),
                ("routed_in_rps", r.routed_in_rps),
                ("spill_in_rps", r.spill_in_rps),
                ("spill_out_rps", r.spill_out_rps),
                ("compliance", r.compliance),
                ("local_p99_ms", r.local_p99_ms),
                ("recovery_latency_ms", r.recovery_latency_ms),
                ("usd_per_hour", r.usd_per_hour),
            ] {
                audit.f64(
                    &format!("{what} {field}"),
                    row.f64_of(field).unwrap_or(f64::NAN),
                    reported,
                );
            }
            audit.u64(
                &format!("{what} migrated_segments"),
                row.u64_of("migrated_segments").unwrap_or(u64::MAX),
                r.migrated_segments as u64,
            );
            audit.u64(
                &format!("{what} nodes_in_service"),
                row.u64_of("nodes_in_service").unwrap_or(u64::MAX),
                r.nodes_in_service as u64,
            );
        }
    }
    audit_billing(&all, report.billing.as_ref(), audit);
    Ok(())
}

/// `parvactl trace audit`: replay a run's trace/metrics stream and
/// independently recompute the accounting its JSON report claims —
/// serve-mode SLO attainment and latency quantiles (per service, class
/// and tenant) from raw request spans, fleet/region recovery and
/// per-tenant billing rows from the gauge stream. Returns the
/// check summary on agreement; any divergence is an `Err` (nonzero exit
/// in the binary), making the observability pipeline self-auditing: a
/// report can't drift from what its own trace records.
///
/// `trace_path` may be a streamed shard directory (metrics lane included
/// automatically) or an exported trace file; `metrics_path` supplies the
/// gauge rows for fleet/region audits when the input is a plain file.
/// `tolerance` relaxes float comparisons from exact to `|a−b| ≤ tol`.
///
/// # Errors
/// Unreadable inputs, unparseable trace/report, or any audit divergence.
pub fn run_trace_audit(
    trace_path: &str,
    report_path: &str,
    metrics_path: Option<&str>,
    tolerance: Option<f64>,
) -> Result<String, String> {
    let (trace_text, dir_metrics) = load_trace_input(trace_path)?;
    let metrics_text = match metrics_path {
        Some(p) => Some(std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?),
        None => dir_metrics,
    };
    let report_text = std::fs::read_to_string(report_path)
        .map_err(|e| format!("cannot read {report_path}: {e}"))?;
    let need_metrics = || {
        metrics_text.as_deref().ok_or(
            "this audit recounts gauge rows: pass a shard directory or --metrics FILE".to_string(),
        )
    };
    let mut audit = Audit::new(tolerance);
    let what = match parse_report(&report_text)? {
        crate::scenarios::ScenarioReport::Serve(r) => {
            audit_serve(&trace_text, &r, &mut audit)?;
            "serve"
        }
        crate::scenarios::ScenarioReport::Fleet(r) => {
            audit_fleet(need_metrics()?, &r, &mut audit)?;
            "fleet"
        }
        crate::scenarios::ScenarioReport::Region(r) => {
            audit_region(need_metrics()?, &r, &mut audit)?;
            "region"
        }
    };
    audit.finish(what)
}

/// `parvactl trace summary`: per-phase span breakdown (count, total and
/// max duration per `(cat, name)`), instant counts, and the top-k
/// slowest requests; serve traces get their recomputed overall SLO
/// attainment appended.
///
/// # Errors
/// Unreadable or unparseable trace input.
pub fn run_trace_summary(trace_path: &str, top_k: usize) -> Result<String, String> {
    use crate::obs::analyze;
    let (text, _) = load_trace_input(trace_path)?;
    let events = analyze::parse_trace(&text)?;
    let mut out = analyze::summarize(&events, top_k).render();
    if let Ok(rc) = analyze::recompute_serving(&events) {
        out.push_str(&format!(
            "recomputed SLO attainment over [{} µs, {} µs): {:.4}\n",
            rc.window_start_us,
            rc.window_end_us,
            rc.overall_attainment()
        ));
    }
    Ok(out)
}

/// `parvactl trace diff`: span-population and attainment deltas between
/// two runs' traces (files or shard directories).
///
/// # Errors
/// Unreadable or unparseable trace input.
pub fn run_trace_diff(path_a: &str, path_b: &str) -> Result<String, String> {
    use crate::obs::analyze;
    let (text_a, _) = load_trace_input(path_a)?;
    let (text_b, _) = load_trace_input(path_b)?;
    let a = analyze::parse_trace(&text_a)?;
    let b = analyze::parse_trace(&text_b)?;
    Ok(analyze::diff(&a, &b).render())
}

/// `parvactl trace tail`: follow a live shard directory, emitting each
/// complete new line (trace events or gauge rows) as the producer
/// retires it, across shard rotations and retention deletions. Returns
/// when the stream is finalized (`stream.done`) and drained, or after
/// `max_polls` polls. Lines go through `emit` so the binary can stream
/// them to stdout while tests collect them.
///
/// # Errors
/// Shard-directory read failures.
pub fn run_trace_tail(
    dir: &str,
    lane: &str,
    poll_ms: u64,
    max_polls: Option<u64>,
    emit: &mut dyn FnMut(&str),
) -> Result<(), String> {
    let mut follower = crate::obs::TailFollower::new(dir, lane);
    let mut polls: u64 = 0;
    loop {
        // Check `done` *before* polling: lines appended between the poll
        // and the marker check would otherwise be droppable.
        let finished = follower.done();
        let lines = follower
            .poll()
            .map_err(|e| format!("cannot tail {dir}: {e}"))?;
        for line in &lines {
            emit(line);
        }
        if finished && lines.is_empty() {
            return Ok(());
        }
        polls += 1;
        if max_polls.is_some_and(|max| polls >= max) {
            return Ok(());
        }
        if lines.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        }
    }
}

/// `parvactl scenarios`: render Table IV.
#[must_use]
pub fn run_scenarios() -> String {
    let mut out = String::from("Table IV scenarios (rate req/s @ SLO ms):\n");
    for sc in Scenario::ALL {
        out.push_str(&format!(
            "\n{sc} — total {:.0} req/s\n",
            sc.total_rate_rps()
        ));
        for s in sc.services() {
            out.push_str(&format!(
                "  {:<14} {:>6.0} @ {:>5.0}\n",
                s.model.name(),
                s.request_rate_rps,
                s.slo.latency_ms
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"[
        {"model": "ResNet-50", "rate_rps": 829.0, "slo_ms": 205.0},
        {"model": "mobilenetv2", "rate_rps": 677.0, "slo_ms": 167.0}
    ]"#;

    #[test]
    fn parse_good_input() {
        let specs = parse_services(GOOD).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].model, Model::ResNet50);
        assert_eq!(specs[1].model, Model::MobileNetV2);
        assert_eq!(specs[1].id, 1);
    }

    #[test]
    fn parse_explicit_ids() {
        let json = r#"[{"model": "VGG-16", "rate_rps": 10.0, "slo_ms": 300.0, "id": 42}]"#;
        assert_eq!(parse_services(json).unwrap()[0].id, 42);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_services("not json")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(parse_services("[]").unwrap_err().contains("empty"));
        let bad_model = r#"[{"model": "GPT-9", "rate_rps": 1.0, "slo_ms": 1.0}]"#;
        assert!(parse_services(bad_model).unwrap_err().contains("GPT-9"));
        let bad_rate = r#"[{"model": "VGG-16", "rate_rps": -1.0, "slo_ms": 100.0}]"#;
        assert!(parse_services(bad_rate).unwrap_err().contains("positive"));
    }

    #[test]
    fn scheduler_lookup() {
        let book = ProfileBook::builtin();
        for name in [
            "parvagpu",
            "single",
            "unoptimized",
            "gpulet",
            "igniter",
            "MIG-serving",
        ] {
            assert!(make_scheduler(name, &book).is_ok(), "{name}");
        }
        assert!(make_scheduler("slurm", &book).is_err());
    }

    #[test]
    fn known_name_predicate_agrees_with_make_scheduler() {
        // Both functions read the same SCHEDULERS table, so agreement is
        // structural; spot-check both directions and the normalization.
        let book = ProfileBook::builtin();
        for (key, _) in super::SCHEDULERS {
            assert!(scheduler_name_is_known(key), "{key}");
            assert!(make_scheduler(key, &book).is_ok(), "{key}");
        }
        for bad in ["slurm", "", "parvagpu2", "mps"] {
            assert!(!scheduler_name_is_known(bad), "{bad}");
            assert!(make_scheduler(bad, &book).is_err(), "{bad}");
        }
        // Normalization matches too.
        assert!(scheduler_name_is_known("MIG-Serving"));
        assert!(scheduler_name_is_known("paris_elsa"));
    }

    #[test]
    fn plan_renders_deployment() {
        let out = run_plan(GOOD, "parvagpu").unwrap();
        assert!(out.contains("GPU 0"));
        assert!(out.contains("fragmentation 0.0%"));
    }

    #[test]
    fn simulate_reports_compliance() {
        let out = run_simulate(GOOD, "parvagpu", 2.0, 7).unwrap();
        assert!(out.contains("compliance 100.00%"), "{out}");
    }

    #[test]
    fn compare_lists_all_frameworks() {
        let out = run_compare(GOOD).unwrap();
        for name in ["gpulet", "iGniter", "MIG-serving", "ParvaGPU"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn scenarios_table_renders() {
        let out = run_scenarios();
        assert!(out.contains("S5"));
        assert!(out.contains("MobileNetV2"));
    }

    #[test]
    fn new_baseline_lookup() {
        let book = ProfileBook::builtin();
        for name in ["gslice", "paris-elsa", "paris"] {
            assert!(make_scheduler(name, &book).is_ok(), "{name}");
        }
    }

    #[test]
    fn fleet_chaos_renders_and_is_deterministic() {
        let a = run_fleet(None, 7, 3, 2, false, false).unwrap();
        let b = run_fleet(None, 7, 3, 2, false, false).unwrap();
        assert_eq!(a, b, "fleet chaos must be deterministic per seed");
        assert!(a.contains("chaos run"), "{a}");
        assert!(a.contains("all events recovered"), "{a}");
        assert!(a.contains("worst measured dip"), "{a}");
        assert!(run_fleet(Some("not json"), 1, 1, 1, false, false).is_err());
    }

    #[test]
    fn fleet_json_output_round_trips() {
        let out = run_fleet(None, 7, 3, 2, true, false).unwrap();
        let report: crate::fleet::FleetReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.seed, 7);
        assert_eq!(report.events.len(), 3);
    }

    #[test]
    fn fleet_analytic_fallback_runs() {
        let out = run_fleet(None, 7, 3, 2, true, true).unwrap();
        let report: crate::fleet::FleetReport = serde_json::from_str(&out).unwrap();
        // With the DES path off, every measured window equals the
        // analytic blackout window and no simulated latency is reported.
        for e in &report.events {
            assert_eq!(e.compliance_measured, e.compliance_during);
            assert_eq!(e.simulated_recovery_ms, 0.0);
        }
    }

    #[test]
    fn region_drill_renders_and_is_deterministic() {
        let a = run_region(None, 5, 4, false).unwrap();
        let b = run_region(None, 5, 4, false).unwrap();
        assert_eq!(a, b, "federation runs must be deterministic per seed");
        assert!(a.contains("federation run"), "{a}");
        assert!(a.contains("EVACUATE"), "drill must evacuate a region:\n{a}");
        assert!(run_region(Some("not json"), 1, 3, false).is_err());
    }

    #[test]
    fn region_json_output_round_trips() {
        let out = run_region(None, 5, 4, true).unwrap();
        let report: crate::region::FederationReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.seed, 5);
        assert_eq!(report.intervals.len(), 4);
        assert_eq!(report.region_names.len(), 3);
    }

    #[test]
    fn run_spec_by_name_is_deterministic_json() {
        let a = run_spec("quickstart", true, true).unwrap();
        let b = run_spec("quickstart", true, true).unwrap();
        assert_eq!(a, b, "spec runs must be deterministic");
        let report: crate::scenarios::ScenarioReport = serde_json::from_str(&a).unwrap();
        assert!(matches!(report, crate::scenarios::ScenarioReport::Serve(_)));
    }

    #[test]
    fn run_spec_accepts_raw_json_and_rejects_garbage() {
        let spec = crate::scenarios::spec_by_name("single_node_mps").unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let out = run_spec(&json, false, true).unwrap();
        assert!(out.contains("single_node_mps"), "{out}");
        let err = run_spec("definitely_not_registered", false, true).unwrap_err();
        assert!(err.contains("--list"), "{err}");
    }

    #[test]
    fn run_spec_renders_fleet_and_region_summaries() {
        let fleet = run_spec("fleet_chaos", false, true).unwrap();
        assert!(fleet.contains("chaos run"), "{fleet}");
        let region = run_spec("region_failover", false, true).unwrap();
        assert!(region.contains("federation run"), "{region}");
        assert!(region.contains("EVACUATE"), "{region}");
    }

    #[test]
    fn list_specs_covers_the_registry() {
        let listing = list_specs(false);
        let names = list_specs(true);
        for spec in crate::scenarios::builtin_specs() {
            assert!(listing.contains(&spec.name), "{} missing", spec.name);
            assert!(
                names.lines().any(|l| l == spec.name),
                "{} missing from --names",
                spec.name
            );
        }
    }

    #[test]
    fn run_spec_with_writes_deterministic_artifacts() {
        let dir = std::env::temp_dir().join("parva-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = |n: &str| dir.join(n).to_string_lossy().into_owned();
        let obs = ObsPaths {
            trace: Some(path("trace.json")),
            metrics: Some(path("metrics.csv")),
            profile: Some(path("profile.json")),
            stream: None,
        };
        let a = run_spec_with("fleet_chaos", true, true, &obs).unwrap();
        let trace1 = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let metrics1 = std::fs::read_to_string(dir.join("metrics.csv")).unwrap();
        let b = run_spec_with("fleet_chaos", true, true, &obs).unwrap();
        let trace2 = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let metrics2 = std::fs::read_to_string(dir.join("metrics.csv")).unwrap();
        // Byte-identical artifacts and identical reports across runs.
        assert_eq!(trace1, trace2);
        assert_eq!(metrics1, metrics2);
        assert_eq!(a.stdout, b.stdout);
        assert!(trace1.contains("\"traceEvents\""));
        // Rows lead with the stable run id (`name@seed`) so concatenated
        // multi-run exports stay attributable.
        assert!(metrics1.starts_with("run,kind,"), "{metrics1}");
        assert!(metrics1.contains("fleet_chaos@"), "{metrics1}");
        let profile = std::fs::read_to_string(dir.join("profile.json")).unwrap();
        assert!(profile.contains("\"deterministic\":false"), "{profile}");
        // Observation is behavior-neutral: same stdout as an unobserved run.
        let plain = run_spec("fleet_chaos", true, true).unwrap();
        assert_eq!(a.stdout, plain);
    }

    #[test]
    fn run_spec_with_json_keeps_stdout_machine_pure() {
        let dir = std::env::temp_dir().join("parva-cli-obs-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = ObsPaths {
            trace: Some(dir.join("t.json").to_string_lossy().into_owned()),
            ..ObsPaths::default()
        };
        let out = run_spec_with("quickstart", true, true, &obs).unwrap();
        // stdout is exactly one JSON document; narration lives on stderr.
        serde_json::from_str::<crate::scenarios::ScenarioReport>(out.stdout.trim()).unwrap();
        assert!(out.stderr.contains("== quickstart =="), "{}", out.stderr);
        assert!(out.stderr.contains("wrote trace"), "{}", out.stderr);
        // Human mode keeps the header on stdout and notes on stderr.
        let human = run_spec_with("quickstart", false, true, &obs).unwrap();
        assert!(human.stdout.contains("== quickstart =="));
        assert!(!human.stdout.contains("wrote trace"));
        assert!(human.stderr.contains("wrote trace"));
    }

    #[test]
    fn obs_paths_any_reflects_fields() {
        assert!(!ObsPaths::default().any());
        assert!(ObsPaths {
            metrics: Some("m.jsonl".into()),
            ..ObsPaths::default()
        }
        .any());
    }

    #[test]
    fn streamed_run_audits_summarizes_and_tails() {
        let dir = std::env::temp_dir().join("parva-cli-stream-test");
        let _ = std::fs::remove_dir_all(&dir);
        let shard_dir = dir.join("shards").to_string_lossy().into_owned();
        std::fs::create_dir_all(&dir).unwrap();
        let obs = ObsPaths {
            stream: Some(shard_dir.clone()),
            ..ObsPaths::default()
        };
        let out = run_spec_with("quickstart", true, true, &obs).unwrap();
        assert!(out.stderr.contains("streamed"), "{}", out.stderr);
        let report_path = dir.join("report.json").to_string_lossy().into_owned();
        std::fs::write(&report_path, &out.stdout).unwrap();

        // The audit recomputes the report from the shards and agrees.
        let msg = run_trace_audit(&shard_dir, &report_path, None, None).unwrap();
        assert!(msg.contains("all match"), "{msg}");
        assert!(msg.contains("serve"), "{msg}");

        // A doctored report diverges: inflate a counter and re-audit.
        let doctored = out.stdout.replacen("\"offered\":", "\"offered\":9", 1);
        assert_ne!(doctored, out.stdout, "replacen must hit an offered field");
        let bad_path = dir.join("doctored.json").to_string_lossy().into_owned();
        std::fs::write(&bad_path, &doctored).unwrap();
        let err = run_trace_audit(&shard_dir, &bad_path, None, None).unwrap_err();
        assert!(err.contains("diverged"), "{err}");

        // Summary renders span stats and the recomputed attainment.
        let summary = run_trace_summary(&shard_dir, 3).unwrap();
        assert!(summary.contains("request"), "{summary}");
        assert!(summary.contains("recomputed SLO attainment"), "{summary}");

        // Self-diff shows identical populations.
        let diff = run_trace_diff(&shard_dir, &shard_dir).unwrap();
        assert!(diff.contains("request"), "{diff}");

        // Tailing the finalized directory drains exactly the trace lane.
        let mut lines = Vec::new();
        run_trace_tail(&shard_dir, "trace", 1, None, &mut |l| {
            lines.push(l.to_string());
        })
        .unwrap();
        let concat =
            crate::obs::read_concat_shards(std::path::Path::new(&shard_dir), "trace").unwrap();
        assert_eq!(lines.len(), concat.lines().count());
        assert!(!lines.is_empty());
    }

    #[test]
    fn streamed_fleet_run_audit_checks_gauge_rows() {
        let dir = std::env::temp_dir().join("parva-cli-stream-fleet-test");
        let _ = std::fs::remove_dir_all(&dir);
        let shard_dir = dir.join("shards").to_string_lossy().into_owned();
        std::fs::create_dir_all(&dir).unwrap();
        let obs = ObsPaths {
            stream: Some(shard_dir.clone()),
            ..ObsPaths::default()
        };
        let out = run_spec_with("fleet_chaos", true, true, &obs).unwrap();
        let report_path = dir.join("report.json").to_string_lossy().into_owned();
        std::fs::write(&report_path, &out.stdout).unwrap();
        let msg = run_trace_audit(&shard_dir, &report_path, None, None).unwrap();
        assert!(msg.contains("all match"), "{msg}");
        assert!(msg.contains("fleet"), "{msg}");
        // Without gauge rows (trace file alone) the fleet audit refuses.
        let trace_only = dir.join("trace.jsonl").to_string_lossy().into_owned();
        let text =
            crate::obs::read_concat_shards(std::path::Path::new(&shard_dir), "trace").unwrap();
        std::fs::write(&trace_only, text).unwrap();
        let err = run_trace_audit(&trace_only, &report_path, None, None).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
    }

    #[test]
    fn stream_is_exclusive_with_batch_artifacts() {
        let obs = ObsPaths {
            trace: Some("t.json".into()),
            stream: Some("shards".into()),
            ..ObsPaths::default()
        };
        let err = run_spec_with("quickstart", true, true, &obs).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
    }

    #[test]
    fn cost_renders_pricing_ladder() {
        let out = run_cost(GOOD, "parvagpu").unwrap();
        assert!(out.contains("p4de.24xlarge"), "{out}");
        assert!(out.contains("OnDemand") && out.contains("Spot"));
    }

    #[test]
    fn feasibility_matrix_for_llm() {
        let out = run_feasibility("Guanaco-65B").unwrap();
        assert!(out.contains("A100-40GB") && out.contains("none"), "{out}");
        assert!(out.contains("B200-192GB"), "{out}");
        assert!(run_feasibility("GPT-9").is_err());
    }
}
