//! Pin test: every cell of the paper's Table IV, restated independently of
//! the crate's own tables. A transcription slip in either place fails here.

use parva_perf::Model;
use parva_scenarios::Scenario;

/// One scenario's rows: `(model, rate req/s, SLO ms)` for present models.
type ScenarioRows = Vec<(Model, f64, f64)>;

/// (scenario, [(model, rate req/s, SLO ms); present models only]).
fn paper_table4() -> Vec<(Scenario, ScenarioRows)> {
    use Model::*;
    vec![
        (
            Scenario::S1,
            vec![
                (BertLarge, 19.0, 6_434.0),
                (DenseNet121, 353.0, 183.0),
                (InceptionV3, 460.0, 419.0),
                (MobileNetV2, 677.0, 167.0),
                (ResNet50, 829.0, 205.0),
                (Vgg19, 354.0, 397.0),
            ],
        ),
        (
            Scenario::S2,
            vec![
                (BertLarge, 19.0, 6_434.0),
                (DenseNet121, 353.0, 183.0),
                (DenseNet169, 308.0, 217.0),
                (DenseNet201, 276.0, 169.0),
                (InceptionV3, 460.0, 419.0),
                (MobileNetV2, 677.0, 167.0),
                (ResNet101, 393.0, 212.0),
                (ResNet152, 281.0, 213.0),
                (ResNet50, 829.0, 205.0),
                (Vgg16, 410.0, 400.0),
                (Vgg19, 354.0, 397.0),
            ],
        ),
        (
            Scenario::S3,
            vec![
                (BertLarge, 46.0, 4_294.0),
                (DenseNet121, 728.0, 126.0),
                (DenseNet169, 633.0, 150.0),
                (DenseNet201, 493.0, 119.0),
                (InceptionV3, 1_051.0, 282.0),
                (MobileNetV2, 1_546.0, 113.0),
                (ResNet101, 760.0, 144.0),
                (ResNet152, 543.0, 146.0),
                (ResNet50, 1_463.0, 138.0),
                (Vgg16, 780.0, 227.0),
                (Vgg19, 673.0, 265.0),
            ],
        ),
        (
            Scenario::S4,
            vec![
                (BertLarge, 69.0, 4_294.0),
                (DenseNet121, 1_091.0, 126.0),
                (DenseNet169, 949.0, 150.0),
                (DenseNet201, 739.0, 119.0),
                (InceptionV3, 1_576.0, 282.0),
                (MobileNetV2, 2_318.0, 113.0),
                (ResNet101, 1_140.0, 144.0),
                (ResNet152, 815.0, 146.0),
                (ResNet50, 2_195.0, 138.0),
                (Vgg16, 1_169.0, 227.0),
                (Vgg19, 1_010.0, 265.0),
            ],
        ),
        (
            Scenario::S5,
            vec![
                (BertLarge, 843.0, 2_153.0),
                (DenseNet121, 2_228.0, 69.0),
                (DenseNet169, 3_507.0, 84.0),
                (DenseNet201, 1_513.0, 70.0),
                (InceptionV3, 3_815.0, 146.0),
                (MobileNetV2, 5_009.0, 59.0),
                (ResNet101, 1_874.0, 77.0),
                (ResNet152, 1_340.0, 80.0),
                (ResNet50, 2_796.0, 72.0),
                (Vgg16, 1_773.0, 115.0),
                (Vgg19, 1_531.0, 134.0),
            ],
        ),
        (
            Scenario::S6,
            vec![
                (BertLarge, 1_264.0, 6_434.0),
                (DenseNet121, 3_342.0, 183.0),
                (DenseNet169, 5_260.0, 217.0),
                (DenseNet201, 2_269.0, 169.0),
                (InceptionV3, 5_722.0, 419.0),
                (MobileNetV2, 7_513.0, 167.0),
                (ResNet101, 2_811.0, 212.0),
                (ResNet152, 2_010.0, 213.0),
                (ResNet50, 4_196.0, 205.0),
                (Vgg16, 2_659.0, 400.0),
                (Vgg19, 2_296.0, 397.0),
            ],
        ),
    ]
}

#[test]
fn every_table4_cell_matches_the_paper() {
    for (scenario, expected) in paper_table4() {
        let services = scenario.services();
        assert_eq!(
            services.len(),
            expected.len(),
            "{scenario:?}: service count"
        );
        for (model, rate, slo) in expected {
            let svc = services
                .iter()
                .find(|s| s.model == model)
                .unwrap_or_else(|| panic!("{scenario:?}: {model} missing"));
            assert_eq!(svc.request_rate_rps, rate, "{scenario:?} {model} rate");
            assert_eq!(svc.slo.latency_ms, slo, "{scenario:?} {model} SLO");
        }
    }
}

#[test]
fn s1_is_a_strict_subset_of_s2() {
    // Paper: "Scenario 1 is designed to observe performance changes when
    // the number of services is reduced, using six models from Scenario 2."
    let s2 = Scenario::S2.services();
    for s1_svc in Scenario::S1.services() {
        let twin = s2
            .iter()
            .find(|s| s.model == s1_svc.model)
            .expect("model in S2");
        assert_eq!(twin.request_rate_rps, s1_svc.request_rate_rps);
        assert_eq!(twin.slo.latency_ms, s1_svc.slo.latency_ms);
    }
}

#[test]
fn s3_to_s4_scales_rate_at_constant_slo() {
    // Paper: "Scenarios 3 and 4 explore increasing request rates while
    // maintaining the same SLO latency."
    let (s3, s4) = (Scenario::S3.services(), Scenario::S4.services());
    for (a, b) in s3.iter().zip(&s4) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.slo.latency_ms, b.slo.latency_ms, "{}", a.model);
        assert!(b.request_rate_rps > a.request_rate_rps, "{}", a.model);
        let factor = b.request_rate_rps / a.request_rate_rps;
        assert!((1.4..1.6).contains(&factor), "{}: ×{factor:.2}", a.model);
    }
}

#[test]
fn s6_reuses_s2_slos_at_higher_rates() {
    let (s2, s6) = (Scenario::S2.services(), Scenario::S6.services());
    for (a, b) in s2.iter().zip(&s6) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.slo.latency_ms, b.slo.latency_ms, "{}", a.model);
        assert!(b.request_rate_rps > 5.0 * a.request_rate_rps, "{}", a.model);
    }
}

#[test]
fn s5_has_the_tightest_slos() {
    // Paper: S5 "reflect[s] conditions that require high computational
    // power, with stricter SLO latency".
    let min_slo = |sc: Scenario| {
        sc.services()
            .iter()
            .map(|s| s.slo.latency_ms)
            .fold(f64::INFINITY, f64::min)
    };
    let s5 = min_slo(Scenario::S5);
    for sc in [
        Scenario::S1,
        Scenario::S2,
        Scenario::S3,
        Scenario::S4,
        Scenario::S6,
    ] {
        assert!(s5 < min_slo(sc), "{sc:?}");
    }
}
