//! # parva-scenarios — the paper's evaluation scenarios (Table IV)
//!
//! Six scenarios combining the 11 DNN models with varying request rates
//! (req/s) and SLO latencies (ms), copied verbatim from Table IV:
//!
//! * **S1** — six of S2's models (reduced service count),
//! * **S2** — all 11 models at moderate rates,
//! * **S3/S4** — increasing request rates at fixed SLO latencies,
//! * **S5** — high rates with strict SLOs,
//! * **S6** — the highest rates at S2's SLOs.
//!
//! [`Scenario::scaled`] replicates a scenario's services k-fold for the
//! model-scalability experiment of Figs. 10–11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parva_deploy::ServiceSpec;
use parva_perf::Model;
use serde::{Deserialize, Serialize};

/// One of the paper's six evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Scenario {
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
}

/// `(rate req/s, SLO ms)` per model; `None` = model absent from scenario.
type Row = [Option<(f64, f64)>; 11];

const S1: Row = [
    Some((19.0, 6_434.0)), // BERT-large
    Some((353.0, 183.0)),  // DenseNet-121
    None,                  // DenseNet-169
    None,                  // DenseNet-201
    Some((460.0, 419.0)),  // InceptionV3
    Some((677.0, 167.0)),  // MobileNetV2
    None,                  // ResNet-101
    None,                  // ResNet-152
    Some((829.0, 205.0)),  // ResNet-50
    None,                  // VGG-16
    Some((354.0, 397.0)),  // VGG-19
];

const S2: Row = [
    Some((19.0, 6_434.0)),
    Some((353.0, 183.0)),
    Some((308.0, 217.0)),
    Some((276.0, 169.0)),
    Some((460.0, 419.0)),
    Some((677.0, 167.0)),
    Some((393.0, 212.0)),
    Some((281.0, 213.0)),
    Some((829.0, 205.0)),
    Some((410.0, 400.0)),
    Some((354.0, 397.0)),
];

const S3: Row = [
    Some((46.0, 4_294.0)),
    Some((728.0, 126.0)),
    Some((633.0, 150.0)),
    Some((493.0, 119.0)),
    Some((1_051.0, 282.0)),
    Some((1_546.0, 113.0)),
    Some((760.0, 144.0)),
    Some((543.0, 146.0)),
    Some((1_463.0, 138.0)),
    Some((780.0, 227.0)),
    Some((673.0, 265.0)),
];

const S4: Row = [
    Some((69.0, 4_294.0)),
    Some((1_091.0, 126.0)),
    Some((949.0, 150.0)),
    Some((739.0, 119.0)),
    Some((1_576.0, 282.0)),
    Some((2_318.0, 113.0)),
    Some((1_140.0, 144.0)),
    Some((815.0, 146.0)),
    Some((2_195.0, 138.0)),
    Some((1_169.0, 227.0)),
    Some((1_010.0, 265.0)),
];

const S5: Row = [
    Some((843.0, 2_153.0)),
    Some((2_228.0, 69.0)),
    Some((3_507.0, 84.0)),
    Some((1_513.0, 70.0)),
    Some((3_815.0, 146.0)),
    Some((5_009.0, 59.0)),
    Some((1_874.0, 77.0)),
    Some((1_340.0, 80.0)),
    Some((2_796.0, 72.0)),
    Some((1_773.0, 115.0)),
    Some((1_531.0, 134.0)),
];

const S6: Row = [
    Some((1_264.0, 6_434.0)),
    Some((3_342.0, 183.0)),
    Some((5_260.0, 217.0)),
    Some((2_269.0, 169.0)),
    Some((5_722.0, 419.0)),
    Some((7_513.0, 167.0)),
    Some((2_811.0, 212.0)),
    Some((2_010.0, 213.0)),
    Some((4_196.0, 205.0)),
    Some((2_659.0, 400.0)),
    Some((2_296.0, 397.0)),
];

impl Scenario {
    /// All six scenarios in paper order.
    pub const ALL: [Scenario; 6] = [
        Scenario::S1,
        Scenario::S2,
        Scenario::S3,
        Scenario::S4,
        Scenario::S5,
        Scenario::S6,
    ];

    fn row(self) -> &'static Row {
        match self {
            Scenario::S1 => &S1,
            Scenario::S2 => &S2,
            Scenario::S3 => &S3,
            Scenario::S4 => &S4,
            Scenario::S5 => &S5,
            Scenario::S6 => &S6,
        }
    }

    /// The paper's label, e.g. `"S3"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scenario::S1 => "S1",
            Scenario::S2 => "S2",
            Scenario::S3 => "S3",
            Scenario::S4 => "S4",
            Scenario::S5 => "S5",
            Scenario::S6 => "S6",
        }
    }

    /// The scenario's services with ids 0..n in Table IV column order.
    #[must_use]
    pub fn services(self) -> Vec<ServiceSpec> {
        let mut out = Vec::new();
        for (model, cell) in Model::ALL.iter().zip(self.row()) {
            if let Some((rate, slo)) = cell {
                out.push(ServiceSpec::new(out.len() as u32, *model, *rate, *slo));
            }
        }
        out
    }

    /// Replicate the scenario's services `k`-fold with distinct ids — the
    /// predictor scalability experiment of Figs. 10–11 ("incrementally
    /// increase the number of services in S5 … from 1 to 10 fold").
    #[must_use]
    pub fn scaled(self, k: u32) -> Vec<ServiceSpec> {
        let base = self.services();
        let mut out = Vec::with_capacity(base.len() * k as usize);
        for rep in 0..k.max(1) {
            for spec in &base {
                out.push(ServiceSpec::new(
                    rep * base.len() as u32 + spec.id,
                    spec.model,
                    spec.request_rate_rps,
                    spec.slo.latency_ms,
                ));
            }
        }
        out
    }

    /// Aggregate offered request rate, req/s.
    #[must_use]
    pub fn total_rate_rps(self) -> f64 {
        self.services().iter().map(|s| s.request_rate_rps).sum()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Phase-offset diurnal demand multiplier — how a region's offered load
/// follows the sun.
///
/// `hour_utc` is the global wall clock; `phase_hours` shifts a region's
/// local day against it (a region at UTC+6 peaks six hours before the
/// reference region). The multiplier swings sinusoidally between `low`
/// (local 3 a.m. trough) and `high` (local 3 p.m. peak), matching the
/// single-region [`RateTrace::diurnal`] shape of `parva-autoscale`.
///
/// # Panics
/// Panics unless `0 < low <= high`.
#[must_use]
pub fn diurnal_multiplier(hour_utc: f64, low: f64, high: f64, phase_hours: f64) -> f64 {
    assert!(
        low > 0.0 && high >= low && low.is_finite() && high.is_finite(),
        "need 0 < low <= high"
    );
    let local = (hour_utc + phase_hours).rem_euclid(24.0);
    let mid = f64::midpoint(low, high);
    let amp = (high - low) / 2.0;
    // Trough at local hour 0 (≈ 3 a.m.), peak half a day later.
    mid - amp * (2.0 * std::f64::consts::PI * local / 24.0).cos()
}

/// Cloud spot two-minute reclaim warning, seconds (AWS/GCP/Azure all give
/// ~120 s of notice before pulling a spot instance).
pub const SPOT_WARNING_S: f64 = 120.0;

/// How many GiB of model weights a spot warning buys time to pre-copy at
/// `link_gib_per_s` of host-to-device bandwidth. A recovery whose total
/// copy volume exceeds this budget cannot be fully staged before the
/// capacity dies and must pay its window live.
#[must_use]
pub fn warning_precopy_budget_gib(link_gib_per_s: f64) -> f64 {
    SPOT_WARNING_S * link_gib_per_s.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_has_six_services() {
        // Paper: "Scenario 1 is designed to observe performance changes when
        // the number of services is reduced, using six models from S2".
        assert_eq!(Scenario::S1.services().len(), 6);
    }

    #[test]
    fn s2_through_s6_have_eleven_services() {
        for s in [
            Scenario::S2,
            Scenario::S3,
            Scenario::S4,
            Scenario::S5,
            Scenario::S6,
        ] {
            assert_eq!(s.services().len(), 11, "{s}");
        }
    }

    #[test]
    fn s1_is_a_subset_of_s2() {
        let s2 = Scenario::S2.services();
        for svc in Scenario::S1.services() {
            let twin = s2.iter().find(|t| t.model == svc.model).unwrap();
            assert_eq!(twin.request_rate_rps, svc.request_rate_rps);
            assert_eq!(twin.slo.latency_ms, svc.slo.latency_ms);
        }
    }

    #[test]
    fn s4_rates_grow_from_s3_at_same_slos() {
        // Paper: "Scenarios 3 and 4 explore increasing request rates while
        // maintaining the same SLO latency".
        let s3 = Scenario::S3.services();
        let s4 = Scenario::S4.services();
        for (a, b) in s3.iter().zip(&s4) {
            assert_eq!(a.slo.latency_ms, b.slo.latency_ms);
            assert!(b.request_rate_rps > a.request_rate_rps);
        }
    }

    #[test]
    fn s6_uses_s2_slos_with_higher_rates() {
        let s2 = Scenario::S2.services();
        let s6 = Scenario::S6.services();
        for (a, b) in s2.iter().zip(&s6) {
            assert_eq!(a.slo.latency_ms, b.slo.latency_ms);
            assert!(b.request_rate_rps > a.request_rate_rps);
        }
    }

    #[test]
    fn spot_check_table_iv_values() {
        let s5 = Scenario::S5.services();
        let bert = &s5[0];
        assert_eq!(bert.model, Model::BertLarge);
        assert_eq!(bert.request_rate_rps, 843.0);
        assert_eq!(bert.slo.latency_ms, 2_153.0);
        let mnv2 = s5.iter().find(|s| s.model == Model::MobileNetV2).unwrap();
        assert_eq!(mnv2.request_rate_rps, 5_009.0);
        assert_eq!(mnv2.slo.latency_ms, 59.0);
    }

    #[test]
    fn scaling_replicates_with_unique_ids() {
        let scaled = Scenario::S5.scaled(10);
        assert_eq!(scaled.len(), 110);
        let mut ids: Vec<u32> = scaled.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 110, "duplicate service ids");
    }

    #[test]
    fn scaled_one_equals_base() {
        let base = Scenario::S3.services();
        let scaled = Scenario::S3.scaled(1);
        assert_eq!(base, scaled);
    }

    #[test]
    fn total_rates_ordered() {
        // S2 < S3 < S4 < S5 < S6 in aggregate offered load.
        let rates: Vec<f64> = [
            Scenario::S2,
            Scenario::S3,
            Scenario::S4,
            Scenario::S5,
            Scenario::S6,
        ]
        .iter()
        .map(|s| s.total_rate_rps())
        .collect();
        for w in rates.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn all_services_valid() {
        for sc in Scenario::ALL {
            for s in sc.services() {
                assert!(s.is_valid(), "{sc}: {s}");
            }
        }
    }

    #[test]
    fn diurnal_multiplier_swings_between_bounds() {
        for h in 0..48 {
            let m = diurnal_multiplier(f64::from(h) * 0.5, 0.4, 1.2, 0.0);
            assert!((0.4 - 1e-12..=1.2 + 1e-12).contains(&m), "{m}");
        }
        // Trough at phase-local hour 0, peak at hour 12.
        assert!((diurnal_multiplier(0.0, 0.4, 1.2, 0.0) - 0.4).abs() < 1e-12);
        assert!((diurnal_multiplier(12.0, 0.4, 1.2, 0.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn warning_budget_scales_with_bandwidth() {
        assert!((warning_precopy_budget_gib(22.0) - 2_640.0).abs() < 1e-9);
        assert_eq!(warning_precopy_budget_gib(0.0), 0.0);
        assert_eq!(warning_precopy_budget_gib(-5.0), 0.0);
    }

    #[test]
    fn demand_follows_the_sun() {
        // A region 6 hours ahead peaks 6 hours earlier on the UTC clock.
        let (low, high) = (0.5, 1.0);
        assert!((diurnal_multiplier(6.0, low, high, 6.0) - high).abs() < 1e-12);
        assert!((diurnal_multiplier(18.0, low, high, 6.0) - low).abs() < 1e-12);
        // Offsetting the clock by the phase difference maps one region's
        // curve onto the other's.
        for h in 0..24 {
            let a = diurnal_multiplier(f64::from(h), low, high, 9.5);
            let b = diurnal_multiplier(f64::from(h) + 9.5, low, high, 0.0);
            assert!((a - b).abs() < 1e-12, "hour {h}");
        }
        // Phase wraps modulo 24.
        assert_eq!(
            diurnal_multiplier(3.0, low, high, 25.0),
            diurnal_multiplier(3.0, low, high, 1.0)
        );
    }
}
