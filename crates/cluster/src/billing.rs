//! Per-tenant profit & loss: revenue for in-SLO completions minus the
//! tenant's share of node cost.
//!
//! "No DNN Left Behind" argues inference should be planned for the
//! *operator* across tenants, not per model. This module gives that
//! argument a ledger: every chaos/federation interval yields one
//! [`BillingRow`] per tenant — requests offered, completed within SLO,
//! revenue earned at the tenant's contracted rate, and the slice of the
//! fleet's hourly node bill attributed to the tenant by offered-rate share.
//! Rows only exist when tenants are configured, so single-tenant reports
//! are byte-identical to the pre-tenant era.

use serde::{Deserialize, Serialize, Value};

/// One interval's follow-the-sun ledger entry: how much overnight demand
/// was shipped to cheaper daytime regions and what the shift was worth.
/// The counterfactual (`local_usd_per_hour`) prices the same fleets
/// retargeted to the *unshifted* demand — a pure pricing question, so no
/// second serving simulation is run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowTheSunRow {
    /// Interval index (0 = baseline).
    pub interval: usize,
    /// Overnight demand shifted cross-region this interval, req/s.
    pub shifted_rps: f64,
    /// Actual federation cost with the shift applied, USD/h.
    pub usd_per_hour: f64,
    /// Counterfactual cost had every region kept its demand local, USD/h.
    pub local_usd_per_hour: f64,
    /// USD saved over the interval's wall-clock span
    /// (`(local − actual) × hours`); negative when the shift lost money.
    pub saved_usd: f64,
}

/// One tenant's P&L for one interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingRow {
    /// Interval index (0 = baseline).
    pub interval: usize,
    /// Tenant id.
    pub tenant: u32,
    /// Tenant display name (may be empty).
    #[serde(default)]
    pub tenant_name: String,
    /// Requests offered by the tenant's services in the measured window.
    pub offered: u64,
    /// Requests rejected at admission (over quota).
    #[serde(default)]
    pub rejected: u64,
    /// Requests completed within their SLO.
    pub completed_within_slo: u64,
    /// Revenue earned: in-SLO completions × contracted USD per 1k requests.
    pub revenue_usd: f64,
    /// Node cost attributed to this tenant for the interval (offered-rate
    /// share of the fleet's hourly bill, scaled to the measured window).
    pub cost_usd: f64,
}

impl BillingRow {
    /// Operating margin for the interval: revenue minus attributed cost.
    #[must_use]
    pub fn margin_usd(&self) -> f64 {
        self.revenue_usd - self.cost_usd
    }

    /// Fraction of offered requests completed within SLO (1.0 when no
    /// requests were offered).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed_within_slo as f64 / self.offered as f64
        }
    }
}

/// The operator's P&L across tenants and intervals.
#[derive(Debug, Clone, Default, PartialEq, Deserialize)]
pub struct BillingReport {
    /// One row per (interval, tenant), interval-major.
    pub rows: Vec<BillingRow>,
    /// Follow-the-sun ledger, one row per interval in which overnight
    /// demand actually shifted. Empty when the optimizer is off (and
    /// omitted from the serialized form, so pre-optimizer reports are
    /// byte-identical).
    #[serde(default)]
    pub follow_the_sun: Vec<FollowTheSunRow>,
}

// Hand-written so optimizer-free runs serialize exactly as before the
// follow-the-sun ledger existed: the trailing list is emitted only when
// a shift actually happened.
impl Serialize for BillingReport {
    fn to_value(&self) -> Value {
        let mut map = vec![(String::from("rows"), self.rows.to_value())];
        if !self.follow_the_sun.is_empty() {
            map.push((
                String::from("follow_the_sun"),
                self.follow_the_sun.to_value(),
            ));
        }
        Value::Map(map)
    }
}

impl BillingReport {
    /// Total revenue across all rows, USD.
    #[must_use]
    pub fn revenue_usd(&self) -> f64 {
        self.rows.iter().map(|r| r.revenue_usd).sum()
    }

    /// Total attributed node cost across all rows, USD.
    #[must_use]
    pub fn cost_usd(&self) -> f64 {
        self.rows.iter().map(|r| r.cost_usd).sum()
    }

    /// Total margin across all rows, USD.
    #[must_use]
    pub fn margin_usd(&self) -> f64 {
        self.revenue_usd() - self.cost_usd()
    }

    /// Net USD saved by follow-the-sun shifts across the run (0 when the
    /// optimizer never fired; negative when shifting lost money overall).
    #[must_use]
    pub fn follow_the_sun_savings_usd(&self) -> f64 {
        self.follow_the_sun.iter().map(|r| r.saved_usd).sum()
    }

    /// All rows for one tenant, in interval order.
    pub fn tenant_rows(&self, tenant: u32) -> impl Iterator<Item = &BillingRow> {
        self.rows.iter().filter(move |r| r.tenant == tenant)
    }

    /// Distinct tenant ids in first-appearance order.
    #[must_use]
    pub fn tenants(&self) -> Vec<u32> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.tenant) {
                seen.push(r.tenant);
            }
        }
        seen
    }

    /// Human-readable per-tenant totals plus, when the follow-the-sun
    /// optimizer fired, its shift-by-shift ledger.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.follow_the_sun.is_empty() {
            out.push_str("follow-the-sun: ivl  shifted rps   actual $/h    local $/h    saved $\n");
            for r in &self.follow_the_sun {
                out.push_str(&format!(
                    "                {:<4} {:>11.0} {:>12.2} {:>12.2} {:>10.2}\n",
                    r.interval, r.shifted_rps, r.usd_per_hour, r.local_usd_per_hour, r.saved_usd
                ));
            }
            out.push_str(&format!(
                "follow-the-sun total: {:+.2} USD over the run\n",
                self.follow_the_sun_savings_usd()
            ));
            if self.rows.is_empty() {
                return out;
            }
        }
        out.push_str(
            "tenant            offered  rejected   in-SLO   revenue$     cost$   margin$\n",
        );
        for t in self.tenants() {
            let mut offered = 0u64;
            let mut rejected = 0u64;
            let mut within = 0u64;
            let mut revenue = 0.0f64;
            let mut cost = 0.0f64;
            let mut name = String::new();
            for r in self.tenant_rows(t) {
                offered += r.offered;
                rejected += r.rejected;
                within += r.completed_within_slo;
                revenue += r.revenue_usd;
                cost += r.cost_usd;
                if name.is_empty() {
                    name.clone_from(&r.tenant_name);
                }
            }
            let label = if name.is_empty() {
                format!("#{t}")
            } else {
                format!("#{t} {name}")
            };
            out.push_str(&format!(
                "{label:<16} {offered:>8} {rejected:>9} {within:>8} {revenue:>10.2} {cost:>9.2} {margin:>9.2}\n",
                margin = revenue - cost,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(interval: usize, tenant: u32, within: u64, revenue: f64, cost: f64) -> BillingRow {
        BillingRow {
            interval,
            tenant,
            tenant_name: String::new(),
            offered: within + 10,
            rejected: 2,
            completed_within_slo: within,
            revenue_usd: revenue,
            cost_usd: cost,
        }
    }

    #[test]
    fn margins_and_totals() {
        let report = BillingReport {
            rows: vec![
                row(0, 1, 100, 5.0, 3.0),
                row(0, 2, 50, 2.0, 3.5),
                row(1, 1, 80, 4.0, 3.0),
            ],
            follow_the_sun: Vec::new(),
        };
        assert!((report.revenue_usd() - 11.0).abs() < 1e-12);
        assert!((report.cost_usd() - 9.5).abs() < 1e-12);
        assert!((report.margin_usd() - 1.5).abs() < 1e-12);
        assert_eq!(report.tenants(), vec![1, 2]);
        assert_eq!(report.tenant_rows(1).count(), 2);
        assert!(report.rows[1].margin_usd() < 0.0);
    }

    #[test]
    fn attainment_handles_zero_offered() {
        let mut r = row(0, 1, 90, 1.0, 1.0);
        assert!((r.attainment() - 0.9).abs() < 1e-12);
        r.offered = 0;
        assert_eq!(r.attainment(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let report = BillingReport {
            rows: vec![row(3, 9, 7, 0.7, 0.1)],
            follow_the_sun: Vec::new(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BillingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_lists_each_tenant_once() {
        let report = BillingReport {
            rows: vec![
                row(0, 1, 1, 0.0, 0.0),
                row(1, 1, 1, 0.0, 0.0),
                row(0, 2, 1, 0.0, 0.0),
            ],
            follow_the_sun: Vec::new(),
        };
        let text = report.render();
        assert_eq!(text.matches("#1").count(), 1);
        assert_eq!(text.matches("#2").count(), 1);
    }
}
