//! Pricing plans and scheduler cost comparison.

use crate::node::NodeType;
use crate::pack::NodePlan;
use serde::{Deserialize, Serialize};

/// How the nodes are paid for. Multipliers are representative of public
/// AWS pricing ratios (reserved ≈ 37% off 1-yr, ≈ 60% off 3-yr; spot
/// fluctuates around one third of on-demand for p4-class capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PricingPlan {
    /// Pay-as-you-go.
    OnDemand,
    /// 1-year reserved / savings plan.
    Reserved1Yr,
    /// 3-year reserved / savings plan.
    Reserved3Yr,
    /// Spot capacity (interruptible).
    Spot,
}

impl PricingPlan {
    /// Price multiplier applied to the node's on-demand rate.
    #[must_use]
    pub fn multiplier(self) -> f64 {
        match self {
            Self::OnDemand => 1.0,
            Self::Reserved1Yr => 0.63,
            Self::Reserved3Yr => 0.40,
            Self::Spot => 0.35,
        }
    }

    /// Hourly price of one node under this plan, USD.
    #[must_use]
    pub fn node_usd_per_hour(self, node: NodeType) -> f64 {
        node.on_demand_usd_per_hour * self.multiplier()
    }

    /// Hourly price of one node under this plan in a region whose price
    /// index is `region_multiplier` (1.0 = the reference region; e.g.
    /// us-east-1 ≈ 1.0, eu-west ≈ 1.05–1.10, ap-south ≈ 1.10–1.20 for
    /// GPU capacity). The regional index composes multiplicatively with
    /// the plan discount.
    #[must_use]
    pub fn node_usd_per_hour_in_region(self, node: NodeType, region_multiplier: f64) -> f64 {
        self.node_usd_per_hour(node) * region_multiplier
    }

    /// Like [`Self::node_usd_per_hour_in_region`], but with an optional
    /// spot-market discount override: when this plan is [`Self::Spot`] and
    /// a valid override is given, it replaces the built-in 0.35 multiplier
    /// (spec-driven spot markets). Other plans ignore the override.
    #[must_use]
    pub fn node_usd_per_hour_in_region_with(
        self,
        node: NodeType,
        region_multiplier: f64,
        spot_discount: Option<f64>,
    ) -> f64 {
        match (self, spot_discount) {
            (Self::Spot, Some(d)) if d > 0.0 && d.is_finite() => {
                node.on_demand_usd_per_hour * d * region_multiplier
            }
            _ => self.node_usd_per_hour_in_region(node, region_multiplier),
        }
    }
}

/// The dollar view of one scheduler's deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostReport {
    /// Scheduler name.
    pub scheduler: String,
    /// GPUs in the deployment map.
    pub gpus: usize,
    /// Nodes rented.
    pub nodes: usize,
    /// GPUs rented but idle.
    pub idle_gpus: usize,
    /// Hourly cost, USD.
    pub usd_per_hour: f64,
    /// Monthly cost (730 h), USD.
    pub usd_per_month: f64,
}

impl CostReport {
    /// Build from a node plan.
    #[must_use]
    pub fn from_plan(scheduler: &str, plan: &NodePlan, pricing: PricingPlan) -> Self {
        Self::from_plan_in_region(scheduler, plan, pricing, 1.0)
    }

    /// Build from a node plan priced in a region with the given price
    /// index (see [`PricingPlan::node_usd_per_hour_in_region`]).
    #[must_use]
    pub fn from_plan_in_region(
        scheduler: &str,
        plan: &NodePlan,
        pricing: PricingPlan,
        region_multiplier: f64,
    ) -> Self {
        let hourly = plan.node_count() as f64
            * pricing.node_usd_per_hour_in_region(plan.node, region_multiplier);
        Self {
            scheduler: scheduler.to_string(),
            gpus: plan.nodes.iter().map(|n| n.gpu_indices.len()).sum(),
            nodes: plan.node_count(),
            idle_gpus: plan.idle_gpus,
            usd_per_hour: hourly,
            usd_per_month: hourly * 730.0,
        }
    }

    /// Relative saving of `self` versus `other` on the monthly bill, in
    /// `[0, 1]` (negative when `self` is more expensive).
    #[must_use]
    pub fn saving_vs(&self, other: &CostReport) -> f64 {
        if other.usd_per_month <= 0.0 {
            return 0.0;
        }
        1.0 - self.usd_per_month / other.usd_per_month
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackedNode;

    fn plan(nodes: usize, gpus_on_last: usize) -> NodePlan {
        let node = NodeType::P4DE_24XLARGE;
        let mut packed = Vec::new();
        for i in 0..nodes {
            let count = if i + 1 == nodes { gpus_on_last } else { 8 };
            packed.push(PackedNode {
                gpu_indices: (0..count).collect(),
                vcpus_used: 4,
            });
        }
        let used: usize = packed.iter().map(|n| n.gpu_indices.len()).sum();
        NodePlan {
            node,
            nodes: packed,
            idle_gpus: nodes * 8 - used,
        }
    }

    #[test]
    fn plan_multipliers_ordered() {
        assert!(PricingPlan::OnDemand.multiplier() > PricingPlan::Reserved1Yr.multiplier());
        assert!(PricingPlan::Reserved1Yr.multiplier() > PricingPlan::Reserved3Yr.multiplier());
        assert!(PricingPlan::Reserved3Yr.multiplier() > PricingPlan::Spot.multiplier());
    }

    #[test]
    fn report_from_plan() {
        let r = CostReport::from_plan("ParvaGPU", &plan(2, 3), PricingPlan::OnDemand);
        assert_eq!(r.nodes, 2);
        assert_eq!(r.gpus, 11);
        assert_eq!(r.idle_gpus, 5);
        assert!((r.usd_per_hour - 2.0 * 40.97).abs() < 1e-9);
        assert!((r.usd_per_month - r.usd_per_hour * 730.0).abs() < 1e-9);
    }

    #[test]
    fn savings_comparison() {
        let parva = CostReport::from_plan("ParvaGPU", &plan(2, 8), PricingPlan::OnDemand);
        let gpulet = CostReport::from_plan("gpulet", &plan(4, 8), PricingPlan::OnDemand);
        assert!((parva.saving_vs(&gpulet) - 0.5).abs() < 1e-12);
        assert!(gpulet.saving_vs(&parva) < 0.0);
    }

    #[test]
    fn reserved_discount_applies() {
        let od = CostReport::from_plan("x", &plan(1, 8), PricingPlan::OnDemand);
        let r3 = CostReport::from_plan("x", &plan(1, 8), PricingPlan::Reserved3Yr);
        assert!((r3.usd_per_hour / od.usd_per_hour - 0.40).abs() < 1e-9);
    }

    #[test]
    fn spot_discount_override_only_touches_spot() {
        let node = NodeType::P4DE_24XLARGE;
        let discounted = PricingPlan::Spot.node_usd_per_hour_in_region_with(node, 1.0, Some(0.22));
        assert!((discounted / node.on_demand_usd_per_hour - 0.22).abs() < 1e-12);
        // Non-spot plans and invalid overrides fall back to the builtin.
        assert_eq!(
            PricingPlan::OnDemand.node_usd_per_hour_in_region_with(node, 1.1, Some(0.22)),
            PricingPlan::OnDemand.node_usd_per_hour_in_region(node, 1.1)
        );
        assert_eq!(
            PricingPlan::Spot.node_usd_per_hour_in_region_with(node, 1.0, Some(0.0)),
            PricingPlan::Spot.node_usd_per_hour(node)
        );
        assert_eq!(
            PricingPlan::Spot.node_usd_per_hour_in_region_with(node, 1.0, None),
            PricingPlan::Spot.node_usd_per_hour(node)
        );
    }

    #[test]
    fn regional_index_composes_with_plan_discount() {
        let node = NodeType::P4DE_24XLARGE;
        let base = PricingPlan::Reserved1Yr.node_usd_per_hour(node);
        let eu = PricingPlan::Reserved1Yr.node_usd_per_hour_in_region(node, 1.08);
        assert!((eu / base - 1.08).abs() < 1e-12);
        // The reference region is the identity.
        assert_eq!(
            PricingPlan::Spot.node_usd_per_hour_in_region(node, 1.0),
            PricingPlan::Spot.node_usd_per_hour(node)
        );
        let report = CostReport::from_plan_in_region("x", &plan(2, 8), PricingPlan::OnDemand, 1.15);
        let reference = CostReport::from_plan("x", &plan(2, 8), PricingPlan::OnDemand);
        assert!((report.usd_per_hour / reference.usd_per_hour - 1.15).abs() < 1e-12);
    }
}
