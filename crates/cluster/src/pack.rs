//! Packing a deployment's GPUs onto cloud nodes.

use crate::node::NodeType;
use parva_deploy::Deployment;
use serde::{Deserialize, Serialize};

/// vCPUs consumed per inference-server process (model worker + data
/// feeding); the paper's servers are PyTorch processes pinned to host cores.
pub const VCPUS_PER_PROCESS: u32 = 2;

/// One packed node: which deployment GPUs it hosts and its vCPU load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedNode {
    /// Deployment GPU indices resident on this node.
    pub gpu_indices: Vec<usize>,
    /// vCPUs consumed by the inference-server processes of those GPUs.
    pub vcpus_used: u32,
}

/// The node-level view of a deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// The node type packed onto.
    pub node: NodeType,
    /// Nodes in fleet order.
    pub nodes: Vec<PackedNode>,
    /// GPUs rented but unused (tail of the last node).
    pub idle_gpus: usize,
}

impl NodePlan {
    /// Number of nodes rented.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fraction of rented GPUs actually used, in `[0, 1]` (1.0 for an
    /// empty plan).
    #[must_use]
    pub fn gpu_utilization(&self) -> f64 {
        let rented = self.node_count() * usize::from(self.node.gpus);
        if rented == 0 {
            return 1.0;
        }
        let used: usize = self.nodes.iter().map(|n| n.gpu_indices.len()).sum();
        used as f64 / rented as f64
    }
}

/// Per-GPU process counts of a deployment (vCPU demand driver).
fn processes_per_gpu(deployment: &Deployment) -> Vec<u32> {
    match deployment {
        Deployment::Mig(d) => {
            let mut v = vec![0u32; d.gpu_count()];
            for ps in d.segments() {
                v[ps.gpu] += ps.segment.triplet.procs;
            }
            v
        }
        Deployment::Mps(d) => d
            .gpus
            .iter()
            .map(|g| g.partitions.iter().map(|p| p.procs).sum())
            .collect(),
    }
}

/// Pack the deployment's GPUs onto nodes of `node` type, in fleet order,
/// opening a new node when either the GPU slots or the vCPU budget of the
/// current node is exhausted. GPU order is preserved (the deployment's GPU
/// indices are physical — NVLink-local work stays local).
#[must_use]
pub fn pack(deployment: &Deployment, node: NodeType) -> NodePlan {
    let procs = processes_per_gpu(deployment);
    let mut nodes: Vec<PackedNode> = Vec::new();
    let mut current = PackedNode {
        gpu_indices: Vec::new(),
        vcpus_used: 0,
    };
    for (gpu, p) in procs.iter().enumerate() {
        let demand = p * VCPUS_PER_PROCESS;
        let gpu_slots_full = current.gpu_indices.len() >= usize::from(node.gpus);
        let vcpus_full = current.vcpus_used + demand > node.vcpus;
        if !current.gpu_indices.is_empty() && (gpu_slots_full || vcpus_full) {
            nodes.push(std::mem::replace(
                &mut current,
                PackedNode {
                    gpu_indices: Vec::new(),
                    vcpus_used: 0,
                },
            ));
        }
        current.gpu_indices.push(gpu);
        current.vcpus_used += demand;
    }
    if !current.gpu_indices.is_empty() {
        nodes.push(current);
    }
    let used: usize = nodes.iter().map(|n| n.gpu_indices.len()).sum();
    let idle = nodes.len() * usize::from(node.gpus) - used;
    NodePlan {
        node,
        nodes,
        idle_gpus: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_deploy::{MigDeployment, Segment};
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn mig_deployment(gpu_count: usize, procs_per_gpu: u32) -> Deployment {
        let mut d = MigDeployment::new();
        for _ in 0..gpu_count {
            // One 7g segment per GPU keeps indices aligned.
            d.place_first_fit(Segment {
                service_id: 0,
                model: Model::ResNet50,
                triplet: Triplet::new(InstanceProfile::G7, 8, procs_per_gpu),
                throughput_rps: 1000.0,
                latency_ms: 10.0,
            });
        }
        Deployment::Mig(d)
    }

    #[test]
    fn eight_gpus_fill_one_p4de() {
        let plan = pack(&mig_deployment(8, 2), NodeType::P4DE_24XLARGE);
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.idle_gpus, 0);
        assert!((plan.gpu_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nine_gpus_need_two_nodes() {
        let plan = pack(&mig_deployment(9, 2), NodeType::P4DE_24XLARGE);
        assert_eq!(plan.node_count(), 2);
        assert_eq!(plan.idle_gpus, 7);
        assert!((plan.gpu_utilization() - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn vcpu_pressure_opens_nodes_early() {
        // 7 GPUs × 3 procs × 2 vCPU = 42 per... per GPU: 6 vCPU. A node
        // with a tiny vCPU budget forces splits before GPU slots fill.
        let tight = NodeType {
            name: "tiny",
            gpus: 8,
            gpu_model: parva_mig::GpuModel::A100_80GB,
            vcpus: 12,
            host_memory_gib: 256,
            on_demand_usd_per_hour: 10.0,
        };
        // Each GPU: 3 procs → 6 vCPUs; 2 GPUs fit per 12-vCPU node.
        let plan = pack(&mig_deployment(6, 3), tight);
        assert_eq!(plan.node_count(), 3);
        for n in &plan.nodes {
            assert!(n.vcpus_used <= tight.vcpus);
            assert_eq!(n.gpu_indices.len(), 2);
        }
    }

    #[test]
    fn gpu_order_preserved() {
        let plan = pack(&mig_deployment(10, 1), NodeType::P4DE_24XLARGE);
        let all: Vec<usize> = plan
            .nodes
            .iter()
            .flat_map(|n| n.gpu_indices.clone())
            .collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_deployment_packs_to_nothing() {
        let plan = pack(
            &Deployment::Mig(MigDeployment::new()),
            NodeType::P4DE_24XLARGE,
        );
        assert_eq!(plan.node_count(), 0);
        assert_eq!(plan.idle_gpus, 0);
        assert_eq!(plan.gpu_utilization(), 1.0);
    }

    #[test]
    fn mps_deployment_vcpu_accounting() {
        use parva_deploy::{MpsDeployment, MpsGpu, MpsPartition};
        let mut mps = MpsDeployment::new();
        mps.gpus.push(MpsGpu {
            partitions: vec![
                MpsPartition {
                    service_id: 0,
                    model: Model::ResNet50,
                    fraction: 0.5,
                    batch: 8,
                    procs: 2,
                    throughput_rps: 100.0,
                    latency_ms: 10.0,
                },
                MpsPartition {
                    service_id: 1,
                    model: Model::Vgg16,
                    fraction: 0.5,
                    batch: 8,
                    procs: 1,
                    throughput_rps: 100.0,
                    latency_ms: 10.0,
                },
            ],
        });
        let plan = pack(&Deployment::Mps(mps), NodeType::P4DE_24XLARGE);
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.nodes[0].vcpus_used, 3 * VCPUS_PER_PROCESS);
    }
}
