//! Cloud node (instance) types.

use parva_mig::GpuModel;
use serde::{Deserialize, Serialize};

/// A GPU cloud instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    /// Instance-type name, e.g. `"p4de.24xlarge"`.
    pub name: &'static str,
    /// GPUs per node.
    pub gpus: u8,
    /// GPU model installed.
    pub gpu_model: GpuModel,
    /// vCPUs per node.
    pub vcpus: u32,
    /// Host memory per node, GiB.
    pub host_memory_gib: u32,
    /// On-demand price, USD per hour.
    pub on_demand_usd_per_hour: f64,
}

impl NodeType {
    /// Amazon p4de.24xlarge — the paper's evaluation node (§IV-A: eight
    /// A100 80 GB, 96 vCPUs, 1,152 GiB of main memory).
    pub const P4DE_24XLARGE: NodeType = NodeType {
        name: "p4de.24xlarge",
        gpus: 8,
        gpu_model: GpuModel::A100_80GB,
        vcpus: 96,
        host_memory_gib: 1_152,
        on_demand_usd_per_hour: 40.97,
    };

    /// Amazon p4d.24xlarge — the 40 GB A100 sibling.
    pub const P4D_24XLARGE: NodeType = NodeType {
        name: "p4d.24xlarge",
        gpus: 8,
        gpu_model: GpuModel::A100_40GB,
        vcpus: 96,
        host_memory_gib: 1_152,
        on_demand_usd_per_hour: 32.77,
    };

    /// vCPUs available per GPU if spread evenly (the budget the packer
    /// charges inference-server processes against).
    #[must_use]
    pub fn vcpus_per_gpu(&self) -> u32 {
        self.vcpus / u32::from(self.gpus.max(1))
    }

    /// Nodes needed for `gpus` GPUs, ignoring vCPU pressure.
    #[must_use]
    pub fn nodes_for_gpus(&self, gpus: usize) -> usize {
        gpus.div_ceil(usize::from(self.gpus.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4de_matches_paper_section_iv_a() {
        let n = NodeType::P4DE_24XLARGE;
        assert_eq!(n.gpus, 8);
        assert_eq!(n.vcpus, 96);
        assert_eq!(n.host_memory_gib, 1_152);
        assert_eq!(n.gpu_model, GpuModel::A100_80GB);
    }

    #[test]
    fn node_count_rounds_up() {
        let n = NodeType::P4DE_24XLARGE;
        assert_eq!(n.nodes_for_gpus(0), 0);
        assert_eq!(n.nodes_for_gpus(1), 1);
        assert_eq!(n.nodes_for_gpus(8), 1);
        assert_eq!(n.nodes_for_gpus(9), 2);
        assert_eq!(n.nodes_for_gpus(33), 5);
    }

    #[test]
    fn vcpu_budget_per_gpu() {
        assert_eq!(NodeType::P4DE_24XLARGE.vcpus_per_gpu(), 12);
    }
}
