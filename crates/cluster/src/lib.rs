//! # parva-cluster — cloud-node packing and cost accounting
//!
//! The paper's whole motivation is cost: "the pay-per-use nature of cloud
//! environments requires paying additional costs for any underutilized
//! resources" (§I), and the evaluation rents GPUs by the *node* — "multiple
//! Amazon p4de.24xlarge instances, each equipped with eight A100 GPUs"
//! (§IV-A). A deployment map therefore translates to money only through
//! node granularity: 9 GPUs cost two full p4de nodes, not 9/8 of one.
//!
//! This crate closes that last mile:
//!
//! * [`NodeType`] — cloud instance types (p4de/p4d) with GPU count, vCPUs,
//!   host memory and hourly price;
//! * [`PricingPlan`] — on-demand / reserved / spot multipliers;
//! * [`pack`] — mapping a deployment's GPUs onto nodes, honouring the
//!   per-node vCPU budget consumed by inference-server processes;
//! * [`CostReport`] — per-scheduler dollars (hourly/monthly) and savings
//!   versus a baseline, turning Figure 5's GPU counts into the cost claim
//!   the paper states in prose ("ParvaGPU can further reduce costs by the
//!   same percentages", §IV-B1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod cost;
pub mod node;
pub mod pack;

pub use billing::{BillingReport, BillingRow, FollowTheSunRow};
pub use cost::{CostReport, PricingPlan};
pub use node::NodeType;
pub use pack::{pack, NodePlan, PackedNode, VCPUS_PER_PROCESS};
