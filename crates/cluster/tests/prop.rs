//! Property tests: node packing invariants over arbitrary deployments.

use parva_cluster::{pack, CostReport, NodeType, PricingPlan, VCPUS_PER_PROCESS};
use parva_deploy::{Deployment, MigDeployment, Segment};
use parva_mig::InstanceProfile;
use parva_perf::Model;
use parva_profile::Triplet;
use proptest::prelude::*;

fn arb_deployment(max_segments: usize) -> impl Strategy<Value = Deployment> {
    prop::collection::vec((0u32..8, 0usize..5, 1u32..=3), 0..max_segments).prop_map(|items| {
        let mut d = MigDeployment::new();
        for (svc, prof_idx, procs) in items {
            let profile = InstanceProfile::ALL[prof_idx];
            d.place_first_fit(Segment {
                service_id: svc,
                model: Model::ALL[(svc as usize) % Model::ALL.len()],
                triplet: Triplet::new(profile, 8, procs),
                throughput_rps: 100.0,
                latency_ms: 10.0,
            });
        }
        Deployment::Mig(d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_gpu_packed_exactly_once(d in arb_deployment(40)) {
        let plan = pack(&d, NodeType::P4DE_24XLARGE);
        let mut all: Vec<usize> =
            plan.nodes.iter().flat_map(|n| n.gpu_indices.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..d.gpu_count()).collect::<Vec<_>>());
    }

    #[test]
    fn node_budgets_respected(d in arb_deployment(40)) {
        let node = NodeType::P4DE_24XLARGE;
        let plan = pack(&d, node);
        for n in &plan.nodes {
            prop_assert!(n.gpu_indices.len() <= usize::from(node.gpus));
            prop_assert!(n.vcpus_used <= node.vcpus);
            prop_assert!(!n.gpu_indices.is_empty());
        }
    }

    #[test]
    fn vcpus_conserved(d in arb_deployment(40)) {
        let plan = pack(&d, NodeType::P4DE_24XLARGE);
        let total_vcpus: u32 = plan.nodes.iter().map(|n| n.vcpus_used).sum();
        let total_procs: u32 = match &d {
            Deployment::Mig(m) => m.segments().iter().map(|ps| ps.segment.triplet.procs).sum(),
            Deployment::Mps(_) => unreachable!("strategy builds MIG maps"),
        };
        prop_assert_eq!(total_vcpus, total_procs * VCPUS_PER_PROCESS);
    }

    #[test]
    fn idle_accounting_consistent(d in arb_deployment(40)) {
        let node = NodeType::P4DE_24XLARGE;
        let plan = pack(&d, node);
        let rented = plan.node_count() * usize::from(node.gpus);
        let used: usize = plan.nodes.iter().map(|n| n.gpu_indices.len()).sum();
        prop_assert_eq!(plan.idle_gpus, rented - used);
        let util = plan.gpu_utilization();
        prop_assert!((0.0..=1.0).contains(&util));
    }

    #[test]
    fn cost_monotone_in_nodes(d in arb_deployment(40)) {
        let plan = pack(&d, NodeType::P4DE_24XLARGE);
        let report = CostReport::from_plan("x", &plan, PricingPlan::OnDemand);
        prop_assert!(report.usd_per_hour >= 0.0);
        prop_assert!(
            (report.usd_per_hour
                - plan.node_count() as f64 * NodeType::P4DE_24XLARGE.on_demand_usd_per_hour)
                .abs()
                < 1e-9
        );
    }
}
