//! Compute-share abstraction: MIG instances vs MPS fractional partitions.
//!
//! ParvaGPU always runs a workload inside a MIG instance (isolated, integer
//! GPC count). The MPS-only baselines (gpulet, iGniter) instead carve a
//! *fraction* of a whole GPU's SMs via `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`.
//! Both map onto the same performance model through an effective GPC count.

use parva_mig::InstanceProfile;
use serde::{Deserialize, Serialize};

/// A share of one GPU's compute resources assigned to a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComputeShare {
    /// An isolated MIG instance (1/2/3/4/7 GPCs, own L2 and memory
    /// controllers — no inter-workload interference).
    Mig(InstanceProfile),
    /// An MPS partition covering `fraction` ∈ (0, 1] of a whole GPU's SMs.
    /// Caches and memory controllers are shared, so co-located workloads
    /// interfere (paper §II-A).
    Fraction(f64),
}

impl ComputeShare {
    /// Effective GPC count used by the performance model.
    ///
    /// A whole GPU is 7 GPCs; an MPS partition of fraction *f* behaves like
    /// `7·f` GPCs of compute (it has no cache isolation, which is charged
    /// separately through interference).
    #[must_use]
    pub fn effective_gpcs(self) -> f64 {
        match self {
            ComputeShare::Mig(p) => f64::from(p.gpcs()),
            ComputeShare::Fraction(f) => 7.0 * f,
        }
    }

    /// SM count of this share (A100: 14 SMs per GPC, 98 per GPU).
    #[must_use]
    pub fn sms(self) -> f64 {
        self.effective_gpcs() * f64::from(parva_mig::SMS_PER_SLICE)
    }

    /// Memory available to the workload(s) in this share, GiB.
    ///
    /// MIG instances have dedicated memory (10/20/40/40/80 GiB on an 80 GiB
    /// GPU); MPS partitions share the full GPU memory, so a partition's
    /// nominal ceiling is the whole card (enforcement against co-residents
    /// happens at the GPU level by the caller).
    #[must_use]
    pub fn memory_gib(self, gpu: parva_mig::GpuModel) -> f64 {
        match self {
            ComputeShare::Mig(p) => gpu.instance_memory_gib(p),
            ComputeShare::Fraction(_) => gpu.total_memory_gib(),
        }
    }

    /// Whether this share is isolated from co-located workloads.
    #[must_use]
    pub fn is_isolated(self) -> bool {
        matches!(self, ComputeShare::Mig(_))
    }
}

impl std::fmt::Display for ComputeShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeShare::Mig(p) => write!(f, "MIG:{p}"),
            ComputeShare::Fraction(x) => write!(f, "MPS:{:.0}%", x * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::GpuModel;

    #[test]
    fn mig_effective_gpcs() {
        assert_eq!(ComputeShare::Mig(InstanceProfile::G3).effective_gpcs(), 3.0);
        assert_eq!(ComputeShare::Mig(InstanceProfile::G7).effective_gpcs(), 7.0);
    }

    #[test]
    fn fraction_effective_gpcs() {
        assert!((ComputeShare::Fraction(0.5).effective_gpcs() - 3.5).abs() < 1e-12);
        assert!((ComputeShare::Fraction(1.0).effective_gpcs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn isolation() {
        assert!(ComputeShare::Mig(InstanceProfile::G1).is_isolated());
        assert!(!ComputeShare::Fraction(0.3).is_isolated());
    }

    #[test]
    fn memory_ceilings() {
        let gpu = GpuModel::A100_80GB;
        assert_eq!(ComputeShare::Mig(InstanceProfile::G2).memory_gib(gpu), 20.0);
        assert_eq!(ComputeShare::Fraction(0.2).memory_gib(gpu), 80.0);
    }

    #[test]
    fn sm_counts() {
        assert_eq!(ComputeShare::Mig(InstanceProfile::G7).sms(), 98.0);
        assert!((ComputeShare::Fraction(0.5).sms() - 49.0).abs() < 1e-12);
    }
}
