//! The batch-cycle performance equations (see crate docs for derivation).

use crate::model::Model;
use crate::params::{PerfParams, CTX_GIB_PER_PROCESS, ETA};
use crate::resource::ComputeShare;
use serde::{Deserialize, Serialize};

/// SM-occupying compute time for one batch, ms.
#[must_use]
pub fn t_comp(params: &PerfParams, gpcs: f64, batch: u32) -> f64 {
    debug_assert!(gpcs > 0.0, "compute share must be positive");
    (params.c0 + params.c1 * f64::from(batch)) / gpcs + params.serial
}

/// Non-SM overhead (host work + transfers) for one batch, ms.
#[must_use]
pub fn t_ovh(params: &PerfParams, batch: u32) -> f64 {
    params.o0 + params.o1 * f64::from(batch)
}

/// Steady-state batch cycle time with `procs` homogeneous MPS processes, ms.
///
/// `interference` is the pairwise-κ sum from heterogeneous co-residents on
/// the same (non-isolated) GPU; pass `0.0` for MIG instances.
#[must_use]
pub fn cycle_ms_with_interference(
    params: &PerfParams,
    gpcs: f64,
    batch: u32,
    procs: u32,
    interference: f64,
) -> f64 {
    let comp = t_comp(params, gpcs, batch) * (1.0 + interference.max(0.0));
    let unsaturated = comp + t_ovh(params, batch);
    let saturated = f64::from(procs.max(1)) * comp * ETA;
    unsaturated.max(saturated)
}

/// Steady-state batch cycle time (isolated share), ms.
#[must_use]
pub fn cycle_ms(model: Model, share: ComputeShare, batch: u32, procs: u32) -> f64 {
    let params = PerfParams::for_model(model);
    cycle_ms_with_interference(&params, share.effective_gpcs(), batch, procs, 0.0)
}

/// Per-request inference latency (one full batch cycle), ms.
#[must_use]
pub fn latency_ms(model: Model, share: ComputeShare, batch: u32, procs: u32) -> f64 {
    cycle_ms(model, share, batch, procs)
}

/// Aggregate steady-state throughput of the share, requests per second.
#[must_use]
pub fn throughput_rps(model: Model, share: ComputeShare, batch: u32, procs: u32) -> f64 {
    let cycle = cycle_ms(model, share, batch, procs);
    f64::from(procs) * f64::from(batch) * 1000.0 / cycle
}

/// GPU memory demand of `procs` MPS processes serving batches of `batch`, GiB.
///
/// Every process maps its own CUDA context, weights copy and activation
/// workspace (MPS does not share allocations across processes).
#[must_use]
pub fn memory_gib(model: Model, batch: u32, procs: u32) -> f64 {
    let p = PerfParams::for_model(model);
    f64::from(procs.max(1))
        * (CTX_GIB_PER_PROCESS + p.weights_gib + p.act_gib_per_sample * f64::from(batch))
}

/// Whether the share's memory can hold the working set (the Profiler's OOM
/// filter, paper §III-C) on the paper's evaluation GPU (A100 80 GB).
#[must_use]
pub fn fits_memory(model: Model, share: ComputeShare, batch: u32, procs: u32) -> bool {
    fits_memory_on(model, share, batch, procs, parva_mig::GpuModel::A100_80GB)
}

/// [`fits_memory`] generalized over the GPU model — the §V discussion's
/// question: which segments stay feasible for memory-hungry workloads as
/// per-slice memory grows (A100 → H200 → B200)?
#[must_use]
pub fn fits_memory_on(
    model: Model,
    share: ComputeShare,
    batch: u32,
    procs: u32,
    gpu: parva_mig::GpuModel,
) -> bool {
    memory_gib(model, batch, procs) <= share.memory_gib(gpu)
}

/// One evaluated profiling point: the tuple the Profiler records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Aggregate throughput, requests/s.
    pub throughput_rps: f64,
    /// Per-request latency, ms.
    pub latency_ms: f64,
    /// GPU memory demand, GiB.
    pub memory_gib: f64,
}

/// Evaluate the full performance point for a (share, batch, procs) triple.
#[must_use]
pub fn evaluate(model: Model, share: ComputeShare, batch: u32, procs: u32) -> PerfPoint {
    PerfPoint {
        throughput_rps: throughput_rps(model, share, batch, procs),
        latency_ms: latency_ms(model, share, batch, procs),
        memory_gib: memory_gib(model, batch, procs),
    }
}

/// Fraction of the share's SMs kept busy when serving `served_rps` requests
/// per second with the given triplet — the DCGM "SM activity" semantics used
/// by the paper's internal-slack metric (Eq. 3): each completed batch
/// occupies the SMs for `T_comp` ms.
#[must_use]
pub fn sm_activity(model: Model, share: ComputeShare, batch: u32, served_rps: f64) -> f64 {
    let params = PerfParams::for_model(model);
    let comp = t_comp(&params, share.effective_gpcs(), batch);
    let batches_per_ms = served_rps / f64::from(batch) / 1000.0;
    (batches_per_ms * comp).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::InstanceProfile;

    const G: [ComputeShare; 5] = [
        ComputeShare::Mig(InstanceProfile::G1),
        ComputeShare::Mig(InstanceProfile::G2),
        ComputeShare::Mig(InstanceProfile::G3),
        ComputeShare::Mig(InstanceProfile::G4),
        ComputeShare::Mig(InstanceProfile::G7),
    ];

    #[test]
    fn throughput_monotone_in_instance_size() {
        for m in Model::ALL {
            for b in [1u32, 4, 16, 64] {
                for p in 1..=3u32 {
                    let tputs: Vec<f64> = G.iter().map(|g| throughput_rps(m, *g, b, p)).collect();
                    for w in tputs.windows(2) {
                        assert!(w[1] >= w[0] - 1e-9, "{m} b={b} p={p}: {tputs:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn latency_monotone_decreasing_in_instance_size() {
        for m in Model::ALL {
            for b in [1u32, 8, 32] {
                let lats: Vec<f64> = G.iter().map(|g| latency_ms(m, *g, b, 1)).collect();
                for w in lats.windows(2) {
                    assert!(w[1] <= w[0] + 1e-9, "{m} b={b}: {lats:?}");
                }
            }
        }
    }

    #[test]
    fn latency_monotone_in_batch() {
        for m in Model::ALL {
            for g in G {
                for p in 1..=3u32 {
                    let lats: Vec<f64> = [1u32, 2, 4, 8, 16, 32]
                        .iter()
                        .map(|b| latency_ms(m, g, *b, p))
                        .collect();
                    for w in lats.windows(2) {
                        assert!(w[1] >= w[0] - 1e-9, "{m} {g} p={p}: {lats:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn latency_monotone_in_procs() {
        for m in Model::ALL {
            for g in G {
                for b in [1u32, 8, 64] {
                    let l1 = latency_ms(m, g, b, 1);
                    let l2 = latency_ms(m, g, b, 2);
                    let l3 = latency_ms(m, g, b, 3);
                    assert!(l2 >= l1 - 1e-9 && l3 >= l2 - 1e-9, "{m} {g} b={b}");
                }
            }
        }
    }

    #[test]
    fn interference_slows_down() {
        let params = PerfParams::for_model(Model::ResNet50);
        let clean = cycle_ms_with_interference(&params, 3.5, 8, 1, 0.0);
        let dirty = cycle_ms_with_interference(&params, 3.5, 8, 1, 0.25);
        assert!(dirty > clean * 1.1);
    }

    #[test]
    fn memory_scales_with_procs_and_batch() {
        let m = Model::Vgg16;
        assert!(memory_gib(m, 8, 2) > memory_gib(m, 8, 1));
        assert!(memory_gib(m, 16, 1) > memory_gib(m, 8, 1));
    }

    #[test]
    fn oom_on_small_instance_large_batch() {
        // 128-sample BERT activations cannot fit a 1-GPC (10 GiB) instance.
        assert!(!fits_memory(
            Model::BertLarge,
            ComputeShare::Mig(InstanceProfile::G1),
            128,
            1
        ));
        // But a tiny batch fits.
        assert!(fits_memory(
            Model::BertLarge,
            ComputeShare::Mig(InstanceProfile::G1),
            1,
            1
        ));
    }

    #[test]
    fn sm_activity_bounds() {
        let g = ComputeShare::Mig(InstanceProfile::G2);
        let cap = throughput_rps(Model::ResNet50, g, 8, 2);
        // Serving at capacity → activity near (but never above) 1.
        let a = sm_activity(Model::ResNet50, g, 8, cap);
        assert!(a > 0.5 && a <= 1.0, "{a}");
        // Idle → zero.
        assert_eq!(sm_activity(Model::ResNet50, g, 8, 0.0), 0.0);
    }

    #[test]
    fn llm_memory_gates_follow_section_v() {
        // Guanaco-65B (41 GiB weights): no instance below the full GPU fits
        // on A100-80, but a 4-GPC instance fits from the H200 up and a
        // 2-GPC instance on the B200 — the §V spatial-sharing argument.
        use parva_mig::GpuModel;
        let m = Model::Guanaco65B;
        let g2 = ComputeShare::Mig(InstanceProfile::G2);
        let g4 = ComputeShare::Mig(InstanceProfile::G4);
        let g7 = ComputeShare::Mig(InstanceProfile::G7);
        assert!(!fits_memory_on(m, g4, 1, 1, GpuModel::A100_80GB));
        assert!(fits_memory_on(m, g7, 1, 1, GpuModel::A100_80GB));
        assert!(fits_memory_on(m, g4, 1, 1, GpuModel::H200_141GB));
        assert!(fits_memory_on(m, g2, 1, 1, GpuModel::B200_192GB));
        // The lightweight 7B models fit a single slice even on A100-80.
        assert!(fits_memory_on(
            Model::Guanaco7B,
            ComputeShare::Mig(InstanceProfile::G1),
            1,
            1,
            GpuModel::A100_80GB
        ));
        assert!(fits_memory_on(
            Model::LlamaLite7B,
            ComputeShare::Mig(InstanceProfile::G1),
            1,
            1,
            GpuModel::A100_80GB
        ));
    }

    #[test]
    fn llms_slower_than_cnns() {
        let g7 = ComputeShare::Mig(InstanceProfile::G7);
        assert!(latency_ms(Model::LlamaLite7B, g7, 1, 1) > latency_ms(Model::BertLarge, g7, 1, 1));
        assert!(latency_ms(Model::Guanaco65B, g7, 1, 1) > latency_ms(Model::LlamaLite7B, g7, 1, 1));
    }

    #[test]
    fn evaluate_is_consistent() {
        let g = ComputeShare::Mig(InstanceProfile::G3);
        let pt = evaluate(Model::DenseNet169, g, 16, 2);
        assert_eq!(
            pt.throughput_rps,
            throughput_rps(Model::DenseNet169, g, 16, 2)
        );
        assert_eq!(pt.latency_ms, latency_ms(Model::DenseNet169, g, 16, 2));
        assert_eq!(pt.memory_gib, memory_gib(Model::DenseNet169, 16, 2));
    }

    #[test]
    fn throughput_efficiency_peaks_at_small_instances_for_light_models() {
        // Throughput per GPC should be no worse on g=1 than g=7 for light
        // models at moderate batch — this is what makes Demand Matching pick
        // small optimal segments and is the source of MIG's fine-tuning win.
        let m = Model::MobileNetV2;
        let per_gpc = |g: ComputeShare| throughput_rps(m, g, 32, 3) / g.effective_gpcs();
        assert!(per_gpc(G[0]) >= per_gpc(G[4]) * 0.9);
    }
}
