//! # parva-perf — analytic DNN workload performance model
//!
//! The substitute for the paper's measured PyTorch inference on A100 MIG/MPS
//! partitions. For each of the 11 evaluation workloads (paper Table IV) it
//! provides deterministic throughput, latency and memory functions over the
//! three profiling axes of §III-C:
//!
//! * **instance size** `g` (1–7 GPCs, or a fractional MPS share of a GPU),
//! * **batch size** `b`,
//! * **process count** `p` (MPS processes of the *same* workload).
//!
//! ## The batch-cycle model
//!
//! One inference batch alternates between SM-occupying compute and
//! non-SM overhead (host work, H2D/D2H transfer, kernel launch):
//!
//! ```text
//! T_comp(g, b) = (c0 + c1·b) / g + serial          (ms, occupies the SMs)
//! T_ovh(b)     = o0 + o1·b                          (ms, SMs idle)
//! cycle(g,b,p) = max(T_comp + T_ovh,  p · T_comp · η)
//! latency      = cycle
//! throughput   = p · b / cycle
//! ```
//!
//! With one process the SMs idle during `T_ovh`; additional MPS processes of
//! the same model fill those gaps (throughput rises, latency flat) until the
//! instance saturates at `p·T_comp ≥ T_comp + T_ovh`, after which processes
//! time-share the SMs and latency grows linearly with `p` while throughput
//! plateaus — exactly the behaviour of the paper's Figures 3–4. η (< 1)
//! models the small efficiency *gain* of overlapping kernels under MPS
//! (intra-kernel tail slack is filled).
//!
//! Parameters are calibrated so InceptionV3 reproduces the anchor points the
//! paper quotes in §III-B (354/444/446 req/s and 11/18/27 ms at g=1, b=4;
//! 786/1695/1810 req/s and 10/9/13 ms at g=4, b=8); see
//! `tests::inceptionv3_paper_anchors`.
//!
//! Heterogeneous MPS co-location (used by the gpulet/iGniter baselines, never
//! by ParvaGPU, which isolates workloads in MIG instances) inflates `T_comp`
//! by pairwise interference coefficients κ — see [`interference`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interference;
pub mod math;
pub mod model;
pub mod params;
pub mod resource;

pub use interference::kappa;
pub use math::{cycle_ms, latency_ms, memory_gib, throughput_rps, PerfPoint};
pub use model::Model;
pub use params::PerfParams;
pub use resource::ComputeShare;

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::InstanceProfile;

    /// Relative error helper.
    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() <= tol * expected
    }

    #[test]
    fn inceptionv3_paper_anchors() {
        // Paper §III-B: instance size 1, batch 4 → throughput 354/444/446,
        // latency 11/18/27 ms for p = 1/2/3.
        let m = Model::InceptionV3;
        let g1 = ComputeShare::Mig(InstanceProfile::G1);
        let tol = 0.20;
        assert!(within(throughput_rps(m, g1, 4, 1), 354.0, tol));
        assert!(within(throughput_rps(m, g1, 4, 2), 444.0, tol));
        assert!(within(throughput_rps(m, g1, 4, 3), 446.0, tol));
        assert!(within(latency_ms(m, g1, 4, 1), 11.0, 0.25));
        assert!(within(latency_ms(m, g1, 4, 2), 18.0, tol));
        assert!(within(latency_ms(m, g1, 4, 3), 27.0, tol));

        // Instance size 4, batch 8 → throughput 786/1695/1810, latency
        // 10/9/13 ms.
        let g4 = ComputeShare::Mig(InstanceProfile::G4);
        assert!(within(throughput_rps(m, g4, 8, 1), 786.0, tol));
        assert!(within(throughput_rps(m, g4, 8, 2), 1695.0, tol));
        assert!(within(throughput_rps(m, g4, 8, 3), 1810.0, tol));
        assert!(within(latency_ms(m, g4, 8, 1), 10.0, tol));
        assert!(within(latency_ms(m, g4, 8, 2), 9.0, 0.25));
        assert!(within(latency_ms(m, g4, 8, 3), 13.0, tol));
    }

    #[test]
    fn paper_observation_small_instance_saturates() {
        // §III-B: "with a fixed MIG instance size, larger batch sizes can
        // lead to diminishing returns ... as the number of processes
        // increases". On g=1/b=4 the 2→3 process step must gain almost
        // nothing in throughput but hurt latency significantly.
        let m = Model::InceptionV3;
        let g1 = ComputeShare::Mig(InstanceProfile::G1);
        let tp2 = throughput_rps(m, g1, 4, 2);
        let tp3 = throughput_rps(m, g1, 4, 3);
        assert!(
            (tp3 - tp2) / tp2 < 0.05,
            "saturated instance should plateau"
        );
        let lat2 = latency_ms(m, g1, 4, 2);
        let lat3 = latency_ms(m, g1, 4, 3);
        assert!(lat3 / lat2 > 1.3, "latency should grow disproportionately");
    }

    #[test]
    fn paper_observation_large_instance_benefits_from_mps() {
        // §III-B: on g=4/b=8, adding a 2nd process nearly doubles throughput
        // with minimal latency change.
        let m = Model::InceptionV3;
        let g4 = ComputeShare::Mig(InstanceProfile::G4);
        let tp1 = throughput_rps(m, g4, 8, 1);
        let tp2 = throughput_rps(m, g4, 8, 2);
        assert!(tp2 / tp1 > 1.8);
        let lat1 = latency_ms(m, g4, 8, 1);
        let lat2 = latency_ms(m, g4, 8, 2);
        assert!((lat2 - lat1).abs() / lat1 < 0.15);
    }
}
