//! Heterogeneous MPS co-location interference model.
//!
//! When two *different* workloads share a GPU through MPS alone (no MIG), the
//! L2 cache and memory controllers are shared and performance becomes
//! workload-combination dependent (paper §II-A, citing Prophet). ParvaGPU
//! sidesteps this entirely — it only ever co-locates homogeneous processes
//! inside isolated MIG instances — but the gpulet and iGniter baselines live
//! in this regime, and their pathologies (misprediction → SLO violations;
//! over-provisioning → internal slack) come from how well they estimate κ.
//!
//! κ(a, b) is the fractional slowdown model `a` suffers from one co-resident
//! `b`. It is deterministic and symmetric-ish in magnitude (derived from both
//! models' memory intensities) so experiments are reproducible.

use crate::model::Model;
use crate::params::PerfParams;

/// Fractional compute slowdown of `victim` per co-resident `aggressor`
/// sharing the same GPU through MPS, in `[0.05, 0.30]`.
#[must_use]
pub fn kappa(victim: Model, aggressor: Model) -> f64 {
    let v = PerfParams::for_model(victim).memory_intensity();
    let a = PerfParams::for_model(aggressor).memory_intensity();
    // The aggressor's bandwidth appetite dominates; the victim's own
    // sensitivity contributes less. Blend and clamp to the observed range.
    0.05 + 0.25 * (0.7 * a + 0.3 * v)
}

/// Total interference seen by `victim` from all co-residents.
#[must_use]
pub fn total_interference(victim: Model, co_residents: &[Model]) -> f64 {
    co_residents.iter().map(|m| kappa(victim, *m)).sum()
}

/// A *predictor's* estimate of κ with a deterministic model-pair-specific
/// error, used by the gpulet baseline. Real systems' interference models are
/// imperfect (gpulet's 3.5% violations in S2 come from exactly this); the
/// error is a reproducible pseudo-random ±`max_rel_err` keyed on the pair.
#[must_use]
pub fn kappa_estimate(victim: Model, aggressor: Model, max_rel_err: f64) -> f64 {
    let true_k = kappa(victim, aggressor);
    // Cheap deterministic hash of the pair → error in [-1, 1].
    let h = (victim.index() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(aggressor.index() as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let unit = ((h >> 11) as f64) / ((1u64 << 53) as f64); // [0,1)
    let err = (2.0 * unit - 1.0) * max_rel_err;
    (true_k * (1.0 + err)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kappa_within_documented_range() {
        for a in Model::ALL {
            for b in Model::ALL {
                let k = kappa(a, b);
                assert!((0.05..=0.30).contains(&k), "{a}/{b}: {k}");
            }
        }
    }

    #[test]
    fn memory_hungry_aggressors_hurt_more() {
        // DenseNet-121 is the most bandwidth-intensive model per unit of
        // compute; VGG-16 the least. Any victim suffers more from the former.
        let v = Model::ResNet50;
        assert!(kappa(v, Model::DenseNet121) > kappa(v, Model::Vgg16));
    }

    #[test]
    fn total_interference_adds_up() {
        let v = Model::ResNet50;
        let one = total_interference(v, &[Model::Vgg16]);
        let two = total_interference(v, &[Model::Vgg16, Model::DenseNet169]);
        assert!(two > one);
        assert_eq!(total_interference(v, &[]), 0.0);
    }

    #[test]
    fn estimate_is_deterministic_and_bounded() {
        for a in Model::ALL {
            for b in Model::ALL {
                let e1 = kappa_estimate(a, b, 0.4);
                let e2 = kappa_estimate(a, b, 0.4);
                assert_eq!(e1, e2);
                let k = kappa(a, b);
                assert!((e1 - k).abs() <= 0.4 * k + 1e-12, "{a}/{b}");
            }
        }
    }

    #[test]
    fn some_pairs_are_underestimated() {
        // The gpulet pathology requires that at least some pairs be
        // *under*-estimated (predicted interference < real).
        let mut under = 0;
        for a in Model::ALL {
            for b in Model::ALL {
                if kappa_estimate(a, b, 0.4) < kappa(a, b) {
                    under += 1;
                }
            }
        }
        assert!(under > 10, "only {under} underestimated pairs");
    }
}
