//! Per-model calibration parameters of the batch-cycle performance model.
//!
//! The values are synthetic but anchored: InceptionV3 reproduces the paper's
//! quoted §III-B throughput/latency points, and the remaining models are
//! scaled by their relative cost so the Table IV scenarios produce GPU
//! fleets of the same order as the paper's Figure 5 (see DESIGN.md §5).

use crate::model::Model;
use serde::{Deserialize, Serialize};

/// CUDA context overhead per MPS process, GiB (driver + allocator pools).
pub const CTX_GIB_PER_PROCESS: f64 = 0.3;

/// MPS kernel-overlap efficiency factor η (paper-observed slight super-unity
/// packing when homogeneous kernels share an instance).
pub const ETA: f64 = 0.90;

/// Calibration parameters of one workload (all times in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfParams {
    /// Fixed compute per batch (kernel-count dominated), divided by GPCs.
    pub c0: f64,
    /// Compute per sample, divided by GPCs.
    pub c1: f64,
    /// Non-parallelizable compute per batch (Amdahl tail), GPC-independent.
    pub serial: f64,
    /// Fixed non-SM overhead per batch (host work, launches).
    pub o0: f64,
    /// Per-sample non-SM overhead (H2D/D2H transfer).
    pub o1: f64,
    /// Model weights in GiB (fp16/fp32 mix as served).
    pub weights_gib: f64,
    /// Activation/workspace memory per in-flight sample, GiB.
    pub act_gib_per_sample: f64,
}

impl PerfParams {
    /// Calibrated parameters for a built-in model.
    #[must_use]
    pub const fn for_model(model: Model) -> PerfParams {
        // (c0, c1, serial, o0, o1, weights, act/sample)
        let (c0, c1, serial, o0, o1, w, a) = match model {
            Model::BertLarge => (15.0, 30.0, 2.0, 0.5, 0.30, 1.40, 0.20),
            Model::DenseNet121 => (2.6, 2.40, 0.5, 0.2, 0.10, 0.04, 0.09),
            Model::DenseNet169 => (3.4, 3.10, 0.6, 0.2, 0.11, 0.06, 0.11),
            Model::DenseNet201 => (4.2, 3.80, 0.7, 0.2, 0.12, 0.08, 0.13),
            Model::InceptionV3 => (2.0, 1.85, 0.6, 0.2, 0.55, 0.11, 0.10),
            Model::MobileNetV2 => (0.9, 0.80, 0.2, 0.2, 0.05, 0.02, 0.06),
            Model::ResNet101 => (3.3, 3.10, 0.6, 0.2, 0.10, 0.18, 0.11),
            Model::ResNet152 => (4.8, 4.40, 0.8, 0.2, 0.12, 0.24, 0.13),
            Model::ResNet50 => (1.9, 1.70, 0.4, 0.2, 0.09, 0.10, 0.09),
            Model::Vgg16 => (3.9, 4.10, 0.5, 0.2, 0.12, 0.55, 0.12),
            Model::Vgg19 => (4.5, 4.80, 0.5, 0.2, 0.13, 0.57, 0.13),
            // §V LLM workloads: one request = one bounded-length generation.
            // Weight memory is the paper's quoted figure (7 / 5 / 41 GB);
            // compute scales with parameter count, and the KV-cache makes
            // the per-sample activation footprint an order of magnitude
            // larger than the CNNs'.
            Model::LlamaLite7B => (110.0, 55.0, 5.0, 1.0, 0.40, 7.0, 0.50),
            Model::Guanaco7B => (130.0, 65.0, 6.0, 1.0, 0.40, 5.0, 0.50),
            Model::Guanaco65B => (850.0, 420.0, 30.0, 2.0, 0.80, 41.0, 1.50),
        };
        PerfParams {
            c0,
            c1,
            serial,
            o0,
            o1,
            weights_gib: w,
            act_gib_per_sample: a,
        }
    }

    /// Relative memory-bandwidth intensity in `[0, 1]`: GiB moved per ms of
    /// compute per sample, normalized. Drives the heterogeneous-MPS
    /// interference coefficients (models that stream more data per unit of
    /// compute contend harder for L2/DRAM, paper §II-A).
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        let ratio = self.act_gib_per_sample / self.c1; // GiB per compute-ms
        (ratio / 0.075).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_positive_params() {
        for m in Model::ALL {
            let p = PerfParams::for_model(m);
            assert!(p.c0 > 0.0 && p.c1 > 0.0 && p.serial >= 0.0, "{m}");
            assert!(p.o0 >= 0.0 && p.o1 >= 0.0, "{m}");
            assert!(p.weights_gib > 0.0 && p.act_gib_per_sample > 0.0, "{m}");
        }
    }

    #[test]
    fn bert_is_the_heaviest() {
        let bert = PerfParams::for_model(Model::BertLarge);
        for m in Model::ALL {
            if m != Model::BertLarge {
                assert!(PerfParams::for_model(m).c1 < bert.c1, "{m}");
            }
        }
    }

    #[test]
    fn mobilenet_is_the_lightest() {
        let mnv2 = PerfParams::for_model(Model::MobileNetV2);
        for m in Model::ALL {
            if m != Model::MobileNetV2 {
                assert!(PerfParams::for_model(m).c1 > mnv2.c1, "{m}");
            }
        }
    }

    #[test]
    fn weights_track_parameter_counts() {
        // Weight memory must be ordered consistently with Table IV parameter
        // counts within each family.
        let w = |m: Model| PerfParams::for_model(m).weights_gib;
        assert!(w(Model::Vgg19) > w(Model::Vgg16));
        assert!(w(Model::ResNet152) > w(Model::ResNet101));
        assert!(w(Model::ResNet101) > w(Model::ResNet50));
        assert!(w(Model::DenseNet201) > w(Model::DenseNet169));
        assert!(w(Model::DenseNet169) > w(Model::DenseNet121));
        assert!(w(Model::BertLarge) > w(Model::Vgg19));
    }

    #[test]
    fn memory_intensity_in_unit_range() {
        for m in Model::ALL {
            let mi = PerfParams::for_model(m).memory_intensity();
            assert!((0.0..=1.0).contains(&mi), "{m}: {mi}");
        }
    }

    #[test]
    fn densenets_more_memory_intense_than_vggs() {
        // DenseNets are famously bandwidth-bound; VGG is compute-bound.
        let mi = |m: Model| PerfParams::for_model(m).memory_intensity();
        assert!(mi(Model::DenseNet121) > mi(Model::Vgg16));
    }
}
