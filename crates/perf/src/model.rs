//! The 11 DNN inference workloads of the paper's evaluation (Table IV).

use serde::{Deserialize, Serialize};

/// A DNN inference workload from the paper's model zoo.
///
/// Parameter counts are the "Workload features" row of Table IV; they drive
/// the synthetic memory model and the display tables only — the performance
/// parameters live in [`crate::params::PerfParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Model {
    BertLarge,
    DenseNet121,
    DenseNet169,
    DenseNet201,
    InceptionV3,
    MobileNetV2,
    ResNet101,
    ResNet152,
    ResNet50,
    Vgg16,
    Vgg19,
    /// Lightweight LLaMA-class 7B model served in 8-bit (paper §V: "a
    /// lightweight LLaMA model requires only 7GB of memory while maintaining
    /// accuracy close to that of larger models").
    LlamaLite7B,
    /// Guanaco 7B with QLoRA tuning (paper §V: "memory usage of 5GB for 7B
    /// parameters").
    Guanaco7B,
    /// Guanaco 65B with QLoRA tuning (paper §V: "41GB for 65B parameters").
    Guanaco65B,
}

impl Model {
    /// All 11 models, in the column order of Table IV.
    pub const ALL: [Model; 11] = [
        Model::BertLarge,
        Model::DenseNet121,
        Model::DenseNet169,
        Model::DenseNet201,
        Model::InceptionV3,
        Model::MobileNetV2,
        Model::ResNet101,
        Model::ResNet152,
        Model::ResNet50,
        Model::Vgg16,
        Model::Vgg19,
    ];

    /// The memory-intensive LLM workloads of the paper's §V discussion.
    /// They are not part of the Table IV evaluation set ([`Model::ALL`]);
    /// they drive the GPU-memory feasibility analysis on H200/B200-class
    /// parts.
    pub const LLMS: [Model; 3] = [Model::LlamaLite7B, Model::Guanaco7B, Model::Guanaco65B];

    /// Every built-in workload: the Table IV zoo followed by the §V LLMs.
    pub const EXTENDED: [Model; 14] = [
        Model::BertLarge,
        Model::DenseNet121,
        Model::DenseNet169,
        Model::DenseNet201,
        Model::InceptionV3,
        Model::MobileNetV2,
        Model::ResNet101,
        Model::ResNet152,
        Model::ResNet50,
        Model::Vgg16,
        Model::Vgg19,
        Model::LlamaLite7B,
        Model::Guanaco7B,
        Model::Guanaco65B,
    ];

    /// Human-readable name as printed in the paper.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Model::BertLarge => "BERT-large",
            Model::DenseNet121 => "DenseNet-121",
            Model::DenseNet169 => "DenseNet-169",
            Model::DenseNet201 => "DenseNet-201",
            Model::InceptionV3 => "InceptionV3",
            Model::MobileNetV2 => "MobileNetV2",
            Model::ResNet101 => "ResNet-101",
            Model::ResNet152 => "ResNet-152",
            Model::ResNet50 => "ResNet-50",
            Model::Vgg16 => "VGG-16",
            Model::Vgg19 => "VGG-19",
            Model::LlamaLite7B => "LLaMA-7B-lite",
            Model::Guanaco7B => "Guanaco-7B",
            Model::Guanaco65B => "Guanaco-65B",
        }
    }

    /// Number of parameters in millions (Table IV "Number of parameters").
    #[must_use]
    pub const fn params_millions(self) -> f64 {
        match self {
            Model::BertLarge => 330.0,
            Model::DenseNet121 => 8.0,
            Model::DenseNet169 => 14.1,
            Model::DenseNet201 => 20.0,
            Model::InceptionV3 => 27.2,
            Model::MobileNetV2 => 3.5,
            Model::ResNet101 => 44.5,
            Model::ResNet152 => 60.2,
            Model::ResNet50 => 25.6,
            Model::Vgg16 => 138.4,
            Model::Vgg19 => 143.7,
            Model::LlamaLite7B => 6_700.0,
            Model::Guanaco7B => 7_000.0,
            Model::Guanaco65B => 65_000.0,
        }
    }

    /// Parse the paper's display name (case-insensitive, punctuation-tolerant).
    #[must_use]
    pub fn parse(s: &str) -> Option<Model> {
        let key: String = s
            .chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_lowercase();
        Model::EXTENDED.iter().copied().find(|m| {
            m.name()
                .chars()
                .filter(char::is_ascii_alphanumeric)
                .collect::<String>()
                .to_lowercase()
                == key
        })
    }

    /// Stable small integer id (index in [`Model::EXTENDED`]; the first 11
    /// indices coincide with the Table IV column order).
    #[must_use]
    pub fn index(self) -> usize {
        Model::EXTENDED
            .iter()
            .position(|m| *m == self)
            .expect("model in EXTENDED")
    }

    /// Whether this is one of the §V LLM workloads.
    #[must_use]
    pub fn is_llm(self) -> bool {
        Model::LLMS.contains(&self)
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_models() {
        assert_eq!(Model::ALL.len(), 11);
    }

    #[test]
    fn table_iv_parameter_counts() {
        assert_eq!(Model::BertLarge.params_millions(), 330.0);
        assert_eq!(Model::MobileNetV2.params_millions(), 3.5);
        assert_eq!(Model::Vgg19.params_millions(), 143.7);
    }

    #[test]
    fn parse_roundtrip() {
        for m in Model::ALL {
            assert_eq!(Model::parse(m.name()), Some(m), "{m}");
        }
        assert_eq!(Model::parse("resnet50"), Some(Model::ResNet50));
        assert_eq!(Model::parse("BERT LARGE"), Some(Model::BertLarge));
        assert_eq!(Model::parse("no-such-model"), None);
    }

    #[test]
    fn index_is_stable() {
        for (i, m) in Model::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        for (i, m) in Model::EXTENDED.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn extended_is_all_then_llms() {
        assert_eq!(&Model::EXTENDED[..11], &Model::ALL[..]);
        assert_eq!(&Model::EXTENDED[11..], &Model::LLMS[..]);
    }

    #[test]
    fn llm_classification() {
        assert!(Model::Guanaco65B.is_llm());
        assert!(!Model::BertLarge.is_llm());
        assert_eq!(Model::parse("guanaco-65b"), Some(Model::Guanaco65B));
    }
}
