//! The daemon proper: streaming engine + closed-loop autoscaler.
//!
//! [`Daemon`] owns everything a running control plane is: the epoch-stepped
//! serving DES ([`parva_serve::StreamEngine`]), the observed-demand
//! estimator, the live deployment, the admitted pods and the autoscaling
//! policy. The whole struct is `serde`-serializable, which is what makes
//! [`crate::checkpoint`] trivial and *complete*: there is no daemon state
//! outside this struct, so a resumed daemon is the suspended daemon.
//!
//! The control loop (one call to [`Daemon::step`] per epoch):
//!
//! 1. advance the engine one epoch — requests arrive, batch, complete;
//! 2. feed the epoch's *observed* per-service arrival counts to the
//!    [`DemandEstimator`] (the autoscaler never sees the injected demand
//!    multipliers — only their consequences);
//! 3. every `decide_every` epochs, run [`Daemon::decide`]: turn estimates
//!    into target rates, skip services within the hysteresis band, re-plan
//!    the rest through the paper's §III-F incremental path
//!    ([`parva_core::reconfigure::update_service`]), and actuate through
//!    the measured-recovery path — re-sliced GPUs go dark for a real
//!    reflash + weight-copy latency before serving again.

use crate::pod::PodSpec;
use parva_autoscale::DemandEstimator;
use parva_core::{reconfigure, ParvaGpu, Service};
use parva_deploy::{Deployment, MigDeployment, ServiceSpec};
use parva_obs::{Row, TraceSink};
use parva_profile::ProfileBook;
use parva_serve::{ArrivalProcess, IngressClass, RecoveryOp, RecoverySpec, StreamEngine};
use serde::{Deserialize, Serialize};

/// Closed-loop autoscaler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Run a scaling decision every this many epochs (0 = never).
    pub decide_every: u64,
    /// Demand-estimator trailing window, epochs.
    pub window: usize,
    /// Provisioning headroom multiplied into every demand estimate.
    pub headroom: f64,
    /// Relative rate change (vs the last plan) below which a service is
    /// left alone — the anti-flapping band.
    pub hysteresis: f64,
    /// Control-plane reaction delay before physical work starts, ms.
    pub control_plane_ms: f64,
    /// One MIG re-flash on a churned GPU, ms.
    pub reflash_ms: f64,
    /// Host-to-device weight-copy bandwidth per node, GiB/s.
    pub link_gib_per_s: f64,
    /// Model weights copied onto each churned GPU, GiB.
    pub copy_gib: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            decide_every: 4,
            window: 4,
            headroom: 1.1,
            hysteresis: 0.15,
            control_plane_ms: 50.0,
            reflash_ms: 400.0,
            link_gib_per_s: 16.0,
            copy_gib: 1.0,
        }
    }
}

/// Live per-service status, shaped for the control socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStatus {
    /// Daemon-assigned service id.
    pub id: u32,
    /// Pod name (or `svc-<id>` for services present at boot).
    pub name: String,
    /// Model display name.
    pub model: String,
    /// Current replica count (placed segments).
    pub replicas: u64,
    /// Headroom-free observed-demand estimate, req/s (0 until observed).
    pub demand_est_rps: f64,
    /// Rate the current deployment was last planned for, req/s.
    pub planned_rps: f64,
    /// Requests offered in the last completed epoch.
    pub offered: u64,
    /// Requests completed in the last completed epoch.
    pub completed: u64,
    /// SLO attainment over the last completed epoch.
    pub slo_attainment: f64,
}

/// Live daemon status, shaped for the control socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Completed epochs.
    pub epoch: u64,
    /// Simulation time, ms.
    pub sim_ms: f64,
    /// GPUs in the live deployment.
    pub gpus: u64,
    /// Servers currently dark (recovery in progress).
    pub dark_servers: u64,
    /// Whether the daemon is draining (no new admissions).
    pub draining: bool,
    /// Autoscale decisions taken.
    pub decisions: u64,
    /// Incremental reconfigurations applied (services re-planned).
    pub reconfigs: u64,
    /// GPUs physically re-sliced across all decisions.
    pub churned_gpus: u64,
    /// Σ (deployment size × epochs) — the provisioning bill, GPU-epochs.
    pub gpu_epochs: u64,
    /// Per-service rows.
    pub services: Vec<ServiceStatus>,
}

/// The serving daemon: engine, estimator, deployment and autoscaler in one
/// serializable state machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Daemon {
    /// Admission-time specs: the *true* base demand and SLOs. The engine's
    /// offered load is `base × multiplier`; the autoscaler must rediscover
    /// it from observations.
    base: Vec<ServiceSpec>,
    /// What the allocator last planned against (post-estimate rates).
    planned: Vec<ServiceSpec>,
    /// Pod name per service (boot services get `svc-<id>`).
    names: Vec<String>,
    /// Injected demand multiplier per service (the world, not the plan).
    multipliers: Vec<f64>,
    /// Configured services (Table II state for the incremental path).
    services: Vec<Service>,
    /// The live MIG deployment.
    deployment: MigDeployment,
    /// The epoch-streamed serving DES.
    engine: StreamEngine,
    /// Observed-demand estimator.
    estimator: DemandEstimator,
    /// Autoscaler policy.
    policy: AutoscalePolicy,
    /// Pods admitted over the control socket.
    pods: Vec<PodSpec>,
    decisions: u64,
    reconfigs: u64,
    churned_gpus: u64,
    gpu_epochs: u64,
    draining: bool,
    next_id: u32,
}

impl Daemon {
    /// Boot a daemon serving `specs` from epoch 0.
    ///
    /// # Errors
    /// Initial plan infeasibility, as a string.
    pub fn new(
        specs: &[ServiceSpec],
        arrivals: ArrivalProcess,
        seed: u64,
        epoch_us: u64,
        policy: AutoscalePolicy,
    ) -> Result<Self, String> {
        let (services, deployment) = Self::scheduler()
            .plan(specs)
            .map_err(|e| format!("initial plan infeasible: {e}"))?;
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| vec![IngressClass::local(s.request_rate_rps)])
            .collect();
        let engine = StreamEngine::new(
            Deployment::Mig(deployment.clone()),
            specs.to_vec(),
            &ingress,
            arrivals,
            seed,
            epoch_us,
        );
        let estimator =
            DemandEstimator::new(specs.len(), policy.window.max(1)).with_headroom(policy.headroom);
        let next_id = specs.iter().map(|s| s.id + 1).max().unwrap_or(0);
        Ok(Self {
            base: specs.to_vec(),
            planned: specs.to_vec(),
            names: specs.iter().map(|s| format!("svc-{}", s.id)).collect(),
            multipliers: vec![1.0; specs.len()],
            services,
            deployment,
            engine,
            estimator,
            policy,
            pods: Vec::new(),
            decisions: 0,
            reconfigs: 0,
            churned_gpus: 0,
            gpu_epochs: 0,
            draining: false,
            next_id,
        })
    }

    fn scheduler() -> ParvaGpu {
        // Pure function of the builtin profile book — reconstructed at each
        // decision rather than serialized into checkpoints.
        ParvaGpu::new(&ProfileBook::builtin())
    }

    /// Completed epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Whether the daemon refuses new admissions.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Σ (deployment size × epochs): the provisioning bill so far.
    #[must_use]
    pub fn gpu_epochs(&self) -> u64 {
        self.gpu_epochs
    }

    /// The underlying streaming engine (read-only).
    #[must_use]
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// Cumulative serving report.
    #[must_use]
    pub fn report(&self) -> parva_serve::StreamReport {
        self.engine.report()
    }

    /// Advance one epoch and run the control loop.
    pub fn step<S: TraceSink>(&mut self, sink: &mut S) {
        self.engine.step_epoch(sink);
        let counts: Vec<u64> = self.engine.last_epoch().iter().map(|o| o.offered).collect();
        self.estimator
            .observe_counts(&counts, self.engine.epoch_seconds());
        self.gpu_epochs += self.deployment.gpu_count() as u64;
        if self.policy.decide_every > 0
            && self.engine.epoch().is_multiple_of(self.policy.decide_every)
        {
            self.decide(sink);
        }
    }

    /// One autoscale decision: estimate demand, re-plan out-of-band
    /// services incrementally, actuate with measured recovery.
    pub fn decide<S: TraceSink>(&mut self, sink: &mut S) {
        self.decisions += 1;
        let demand = self.estimator.demand_specs(&self.base);
        let scheduler = Self::scheduler();
        let mut churned: Vec<usize> = Vec::new();
        let mut applied: u64 = 0;
        let mut infeasible: u64 = 0;
        for (i, d) in demand.iter().enumerate() {
            let current = self.planned[i].request_rate_rps;
            let rel = (d.request_rate_rps - current).abs() / current.max(f64::MIN_POSITIVE);
            if rel <= self.policy.hysteresis {
                continue;
            }
            match reconfigure::update_service(&scheduler, &self.deployment, &self.services, *d) {
                Ok(out) => {
                    self.deployment = out.deployment;
                    let slot = self
                        .services
                        .iter_mut()
                        .find(|s| s.spec.id == d.id)
                        .expect("planned service exists");
                    *slot = out.service;
                    self.planned[i] = *d;
                    churned.extend(out.reconfigured_gpus);
                    applied += 1;
                }
                Err(_) => {
                    // Demand spike the fleet cannot absorb right now: keep
                    // serving on the old plan rather than dying.
                    infeasible += 1;
                }
            }
        }
        churned.sort_unstable();
        churned.dedup();
        if applied > 0 {
            self.reconfigs += applied;
            self.churned_gpus += churned.len() as u64;
            let recovery = self.recovery_for(&churned);
            self.engine.reconfigure(
                Deployment::Mig(self.deployment.clone()),
                self.planned.clone(),
                recovery.as_ref(),
                sink,
            );
        }
        sink.sample(
            Row::new()
                .str("kind", "parvad-decision")
                .u64("epoch", self.engine.epoch())
                .u64("decision", self.decisions)
                .u64("applied", applied)
                .u64("infeasible", infeasible)
                .u64("churned_gpus", churned.len() as u64)
                .u64("gpus", self.deployment.gpu_count() as u64),
        );
    }

    /// Lower churned-GPU indices to a measured-recovery plan: each
    /// re-sliced GPU pays the control-plane delay, a MIG re-flash
    /// (serialized per 8-GPU node) and a weight copy before serving again.
    fn recovery_for(&self, churned: &[usize]) -> Option<RecoverySpec> {
        if churned.is_empty() {
            return None;
        }
        Some(RecoverySpec {
            start_ms: 0.0,
            control_plane_ms: self.policy.control_plane_ms,
            reflash_ms: self.policy.reflash_ms,
            link_gib_per_s: self.policy.link_gib_per_s,
            ops: churned
                .iter()
                .map(|&g| RecoveryOp {
                    node: g / 8,
                    logical_gpu: Some(g),
                    reflash: true,
                    copy_gib: self.policy.copy_gib,
                    prepared: false,
                })
                .collect(),
        })
    }

    /// Admit a pod: validate, plan it incrementally into the live
    /// deployment, start serving it. Returns the assigned service id.
    ///
    /// # Errors
    /// Validation failures, duplicate names, a draining daemon, or an
    /// infeasible placement — all as strings, the daemon keeps serving.
    pub fn submit<S: TraceSink>(&mut self, pod: &PodSpec, sink: &mut S) -> Result<u32, String> {
        pod.validate()?;
        if self.draining {
            return Err("daemon is draining; not admitting new pods".to_string());
        }
        if self.names.iter().any(|n| n == &pod.name) {
            return Err(format!("pod name {:?} already admitted", pod.name));
        }
        let id = self.next_id;
        let spec = pod.to_service_spec(id)?;
        let out =
            reconfigure::update_service(&Self::scheduler(), &self.deployment, &self.services, spec)
                .map_err(|e| format!("admission failed: {e}"))?;
        self.deployment = out.deployment;
        self.services.push(out.service);
        self.base.push(spec);
        self.planned.push(spec);
        self.names.push(pod.name.clone());
        self.multipliers.push(1.0);
        self.pods.push(pod.clone());
        self.next_id = id + 1;
        let mut churned = out.reconfigured_gpus;
        churned.sort_unstable();
        churned.dedup();
        self.reconfigs += 1;
        self.churned_gpus += churned.len() as u64;
        let recovery = self.recovery_for(&churned);
        self.engine.reconfigure(
            Deployment::Mig(self.deployment.clone()),
            self.planned.clone(),
            recovery.as_ref(),
            sink,
        );
        Ok(id)
    }

    /// Inject a true-demand multiplier for one service (the world changing,
    /// not a control action — the autoscaler only sees the fallout).
    ///
    /// # Errors
    /// Unknown service or non-positive multiplier.
    pub fn scale(&mut self, service: u32, multiplier: f64) -> Result<(), String> {
        if !(multiplier.is_finite() && multiplier > 0.0) {
            return Err("multiplier must be positive".to_string());
        }
        let idx = self
            .base
            .iter()
            .position(|s| s.id == service)
            .ok_or_else(|| format!("unknown service {service}"))?;
        self.multipliers[idx] = multiplier;
        self.engine.set_demand_multiplier(&self.multipliers);
        Ok(())
    }

    /// Inject one multiplier across every service (diurnal drivers).
    ///
    /// # Panics
    /// Non-positive multiplier.
    pub fn scale_all(&mut self, multiplier: f64) {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive"
        );
        for m in &mut self.multipliers {
            *m = multiplier;
        }
        self.engine.set_demand_multiplier(&self.multipliers);
    }

    /// Stop admitting new pods; the engine keeps serving what it has.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Live status snapshot for the control socket.
    #[must_use]
    pub fn status(&self) -> DaemonStatus {
        let last = self.engine.last_epoch();
        DaemonStatus {
            epoch: self.engine.epoch(),
            sim_ms: self.engine.now().micros() as f64 / 1000.0,
            gpus: self.deployment.gpu_count() as u64,
            dark_servers: self.engine.dark_servers() as u64,
            draining: self.draining,
            decisions: self.decisions,
            reconfigs: self.reconfigs,
            churned_gpus: self.churned_gpus,
            gpu_epochs: self.gpu_epochs,
            services: self
                .base
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let obs = last.get(i);
                    let completed = obs.map_or(0, |o| o.completed);
                    let within = obs.map_or(0, |o| o.within_slo);
                    ServiceStatus {
                        id: s.id,
                        name: self.names[i].clone(),
                        model: s.model.name().to_string(),
                        replicas: self.deployment.segments_of(s.id).count() as u64,
                        demand_est_rps: self.estimator.estimate(i).unwrap_or(0.0),
                        planned_rps: self.planned[i].request_rate_rps,
                        offered: obs.map_or(0, |o| o.offered),
                        completed,
                        slo_attainment: if completed == 0 {
                            1.0
                        } else {
                            within as f64 / completed as f64
                        },
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaugeLog;
    use parva_obs::NullSink;
    use parva_perf::Model;

    fn boot(policy: AutoscalePolicy) -> Daemon {
        let specs = vec![
            ServiceSpec::new(1, Model::ResNet50, 400.0, 40.0),
            ServiceSpec::new(2, Model::MobileNetV2, 300.0, 30.0),
        ];
        Daemon::new(&specs, ArrivalProcess::Poisson, 11, 500_000, policy).unwrap()
    }

    #[test]
    fn steps_serve_and_observe() {
        let mut d = boot(AutoscalePolicy::default());
        let mut sink = NullSink;
        for _ in 0..4 {
            d.step(&mut sink);
        }
        let st = d.status();
        assert_eq!(st.epoch, 4);
        assert!(st.services.iter().any(|s| s.completed > 0));
        assert!(st.services[0].demand_est_rps > 0.0);
        assert_eq!(st.gpu_epochs, 4 * st.gpus);
    }

    #[test]
    fn autoscaler_tracks_a_demand_drop() {
        let mut d = boot(AutoscalePolicy {
            decide_every: 2,
            window: 2,
            ..AutoscalePolicy::default()
        });
        let mut sink = NullSink;
        let gpus_before = d.status().gpus;
        d.scale_all(0.3);
        for _ in 0..8 {
            d.step(&mut sink);
        }
        let st = d.status();
        assert!(st.decisions > 0);
        assert!(
            st.gpus <= gpus_before,
            "shrinking demand must not grow the fleet"
        );
        assert!(st.reconfigs > 0, "a 70% demand drop must trigger re-plans");
    }

    #[test]
    fn submit_admits_and_serves_a_pod() {
        let mut d = boot(AutoscalePolicy::default());
        let mut log = GaugeLog::new();
        let pod = PodSpec::new("bert-qa", Model::BertLarge, 130.0, 80.0);
        let id = d.submit(&pod, &mut log).unwrap();
        assert_eq!(id, 3);
        // Duplicate names are rejected; the daemon keeps serving.
        assert!(d.submit(&pod, &mut log).unwrap_err().contains("already"));
        for _ in 0..3 {
            d.step(&mut log);
        }
        let st = d.status();
        let bert = st.services.iter().find(|s| s.id == id).unwrap();
        assert_eq!(bert.name, "bert-qa");
        assert!(bert.replicas > 0);
        assert!(bert.offered > 0, "admitted pod must receive traffic");
    }

    #[test]
    fn drain_refuses_admission() {
        let mut d = boot(AutoscalePolicy::default());
        d.drain();
        let err = d
            .submit(
                &PodSpec::new("late", Model::ResNet50, 100.0, 10.0),
                &mut NullSink,
            )
            .unwrap_err();
        assert!(err.contains("draining"));
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let policy = AutoscalePolicy {
            decide_every: 3,
            ..AutoscalePolicy::default()
        };
        let mut control = boot(policy);
        let mut interrupted = boot(policy);
        let mut control_log = GaugeLog::new();
        let mut resumed_log = GaugeLog::new();
        for _ in 0..4 {
            control.step(&mut control_log);
            interrupted.step(&mut resumed_log);
        }
        // Suspend mid-run: serialize, drop, decode, continue.
        let frozen = crate::checkpoint::encode_checkpoint(&interrupted).unwrap();
        drop(interrupted);
        let mut resumed: Daemon = crate::checkpoint::decode_checkpoint(&frozen).unwrap();
        for _ in 0..5 {
            control.step(&mut control_log);
            resumed.step(&mut resumed_log);
        }
        assert_eq!(control_log.to_jsonl(), resumed_log.to_jsonl());
        assert_eq!(
            serde_json::to_string(&control.status()).unwrap(),
            serde_json::to_string(&resumed.status()).unwrap()
        );
    }
}
