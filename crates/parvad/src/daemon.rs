//! The daemon run loop and its HTTP/JSON control socket.
//!
//! `parvad` speaks the smallest useful dialect of HTTP/1.1: one request per
//! connection, JSON bodies, `Connection: close`. The socket is polled
//! *between* epochs — control actions land at epoch boundaries, which is
//! exactly the granularity the engine can checkpoint at, so an interrupted
//! daemon never loses a half-applied action.
//!
//! | Endpoint           | Body                                 | Effect |
//! |--------------------|--------------------------------------|--------|
//! | `GET /status`      | —                                    | [`crate::DaemonStatus`] |
//! | `GET /report`      | —                                    | cumulative [`parva_serve::StreamReport`] |
//! | `POST /submit`     | [`crate::PodSpec`] JSON              | admit a pod, `{"id":n}` |
//! | `POST /scale`      | `{"service":n,"multiplier":x}`       | inject true demand |
//! | `POST /drain`      | —                                    | stop admissions, exit after the epoch |
//! | `POST /checkpoint` | `{"path":"…"}`                       | write a checkpoint now |
//!
//! Artifacts under `--out`: `gauges.jsonl` (appended per epoch — the
//! byte-gate stream), `report.json` and `status.json` (written at exit),
//! `endpoint` (the bound address, for scripts). With a stream directory the
//! same rows (plus trace spans) tee into a live [`parva_obs::StreamSink`]
//! whose shards `parvactl trace` tooling can follow.

use crate::engine::Daemon;
use crate::{checkpoint, GaugeLog, PodSpec};
use parva_obs::{Row, StreamConfig, StreamSink, TraceEvent, TraceSink};
use serde::Deserialize;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

/// How to run the daemon loop.
#[derive(Debug, Clone, Default)]
pub struct DaemonOpts {
    /// Bind a control socket (`"127.0.0.1:0"` picks a free port). `None`
    /// runs headless — the deterministic mode CI byte-gates.
    pub listen: Option<String>,
    /// Stop once this many *total* epochs have completed (`None`: run until
    /// drained). A resumed daemon counts from its checkpointed epoch.
    pub epochs: Option<u64>,
    /// Artifact directory (`gauges.jsonl`, `report.json`, `status.json`,
    /// `endpoint`).
    pub out_dir: Option<PathBuf>,
    /// Write a checkpoint when the total epoch count reaches this value.
    pub checkpoint_at: Option<u64>,
    /// Where the checkpoint goes (required with `checkpoint_at`).
    pub checkpoint_path: Option<PathBuf>,
    /// Exit right after writing the scheduled checkpoint (simulating a
    /// suspension; a later `--resume` run continues the epoch stream).
    pub halt_at_checkpoint: bool,
    /// Tee gauges and trace events into a live `StreamSink` here.
    pub stream_dir: Option<PathBuf>,
    /// Wall-clock pause between epochs, ms (live demos; keep 0 for CI).
    pub throttle_ms: u64,
}

/// What a finished run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonOutcome {
    /// Total completed epochs (including any resumed-from checkpoint).
    pub epochs: u64,
    /// Whether a checkpoint was written.
    pub checkpointed: bool,
    /// Whether the loop exited because of a drain request.
    pub drained: bool,
    /// Bound control-socket address, if listening.
    pub bound_addr: Option<String>,
}

#[derive(Deserialize)]
struct ScaleRequest {
    service: u32,
    multiplier: f64,
}

#[derive(Deserialize)]
struct CheckpointRequest {
    path: String,
}

/// Gauges into the byte-gated log, traces into the live stream.
struct TeeSink<'a> {
    log: GaugeLog,
    stream: &'a mut StreamSink,
}

impl TraceSink for TeeSink<'_> {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: TraceEvent) {
        self.stream.emit(ev);
    }

    fn next_sample_us(&self) -> u64 {
        u64::MAX
    }

    fn sample(&mut self, row: Row) {
        self.log.lines.push(row.to_json());
        self.stream.sample(row);
    }

    fn advance_sampler(&mut self) {}
}

/// Drive `daemon` to completion under `opts`.
///
/// # Errors
/// Socket, filesystem or checkpoint failures, as strings. Control-socket
/// request errors are reported to the client, never fatal to the daemon.
pub fn run_daemon(daemon: &mut Daemon, opts: &DaemonOpts) -> Result<DaemonOutcome, String> {
    let listener = match &opts.listen {
        Some(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            l.set_nonblocking(true)
                .map_err(|e| format!("socket setup: {e}"))?;
            Some(l)
        }
        None => None,
    };
    let bound_addr = listener
        .as_ref()
        .map(|l| l.local_addr().map_err(|e| e.to_string()))
        .transpose()?
        .map(|a| a.to_string());

    let mut gauge_file = match &opts.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
            if let Some(addr) = &bound_addr {
                std::fs::write(dir.join("endpoint"), addr)
                    .map_err(|e| format!("writing endpoint: {e}"))?;
            }
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("gauges.jsonl"))
                .map_err(|e| format!("opening gauges.jsonl: {e}"))?;
            Some(f)
        }
        None => None,
    };
    let mut stream = match &opts.stream_dir {
        Some(dir) => Some(
            StreamSink::create(dir, 0, StreamConfig::default())
                .map_err(|e| format!("creating stream dir: {e}"))?,
        ),
        None => None,
    };

    let mut checkpointed = false;
    let mut drained = false;
    loop {
        if let Some(l) = &listener {
            poll_control(l, daemon);
        }
        if daemon.draining() {
            drained = true;
            break;
        }
        if let Some(target) = opts.epochs {
            if daemon.epoch() >= target {
                break;
            }
        }

        let lines = match stream.as_mut() {
            Some(s) => {
                let mut sink = TeeSink {
                    log: GaugeLog::new(),
                    stream: s,
                };
                daemon.step(&mut sink);
                sink.log.lines
            }
            None => {
                let mut sink = GaugeLog::new();
                daemon.step(&mut sink);
                sink.lines
            }
        };
        if let Some(f) = gauge_file.as_mut() {
            for line in &lines {
                writeln!(f, "{line}").map_err(|e| format!("writing gauges.jsonl: {e}"))?;
            }
            f.flush()
                .map_err(|e| format!("flushing gauges.jsonl: {e}"))?;
        }

        if opts.checkpoint_at == Some(daemon.epoch()) {
            let path = opts
                .checkpoint_path
                .as_ref()
                .ok_or("checkpoint_at set without a checkpoint path")?;
            checkpoint::save_checkpoint(daemon, path)?;
            checkpointed = true;
            if opts.halt_at_checkpoint {
                break;
            }
        }
        if opts.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.throttle_ms));
        }
    }

    if let Some(dir) = &opts.out_dir {
        let report = serde_json::to_string_pretty(&daemon.report())
            .map_err(|e| format!("report encoding: {e}"))?;
        std::fs::write(dir.join("report.json"), report)
            .map_err(|e| format!("writing report.json: {e}"))?;
        let status = serde_json::to_string_pretty(&daemon.status())
            .map_err(|e| format!("status encoding: {e}"))?;
        std::fs::write(dir.join("status.json"), status)
            .map_err(|e| format!("writing status.json: {e}"))?;
    }
    if let Some(mut s) = stream {
        s.finish().map_err(|e| format!("finishing stream: {e}"))?;
    }
    Ok(DaemonOutcome {
        epochs: daemon.epoch(),
        checkpointed,
        drained,
        bound_addr,
    })
}

/// Handle every connection currently pending on the listener.
fn poll_control(listener: &TcpListener, daemon: &mut Daemon) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, daemon),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, daemon: &mut Daemon) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Some((method, path, body)) = read_request(&mut stream) else {
        respond(&mut stream, 400, "{\"error\":\"malformed request\"}");
        return;
    };
    let (code, reply) = dispatch(daemon, &method, &path, &body);
    respond(&mut stream, code, &reply);
}

fn dispatch(daemon: &mut Daemon, method: &str, path: &str, body: &str) -> (u16, String) {
    let err = |code: u16, msg: &str| (code, format!("{{\"error\":{}}}", quote_json(msg)));
    match (method, path) {
        ("GET", "/status") => match serde_json::to_string(&daemon.status()) {
            Ok(s) => (200, s),
            Err(e) => err(500, &e.to_string()),
        },
        ("GET", "/report") => match serde_json::to_string(&daemon.report()) {
            Ok(s) => (200, s),
            Err(e) => err(500, &e.to_string()),
        },
        ("POST", "/submit") => match serde_json::from_str::<PodSpec>(body) {
            Ok(pod) => match daemon.submit(&pod, &mut parva_obs::NullSink) {
                Ok(id) => (200, format!("{{\"id\":{id}}}")),
                Err(e) => err(409, &e),
            },
            Err(e) => err(400, &format!("bad pod spec: {e}")),
        },
        ("POST", "/scale") => match serde_json::from_str::<ScaleRequest>(body) {
            Ok(req) => match daemon.scale(req.service, req.multiplier) {
                Ok(()) => (200, "{\"ok\":true}".to_string()),
                Err(e) => err(409, &e),
            },
            Err(e) => err(400, &format!("bad scale request: {e}")),
        },
        ("POST", "/drain") => {
            daemon.drain();
            (200, "{\"ok\":true,\"draining\":true}".to_string())
        }
        ("POST", "/checkpoint") => match serde_json::from_str::<CheckpointRequest>(body) {
            Ok(req) => match checkpoint::save_checkpoint(daemon, std::path::Path::new(&req.path)) {
                Ok(()) => (
                    200,
                    format!("{{\"ok\":true,\"path\":{}}}", quote_json(&req.path)),
                ),
                Err(e) => err(500, &e),
            },
            Err(e) => err(400, &format!("bad checkpoint request: {e}")),
        },
        _ => err(404, &format!("no such endpoint: {method} {path}")),
    }
}

fn quote_json(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_else(|_| "\"?\"".to_string())
}

fn read_request(stream: &mut TcpStream) -> Option<(String, String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return None;
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.lines();
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let content_length = lines
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse::<usize>().ok())?
        })
        .next()
        .unwrap_or(0);
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Some((method, path, String::from_utf8_lossy(&body).to_string()))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, code: u16, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        _ => "Internal Server Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Minimal blocking HTTP/1.1 client for `parvactl` and tests.
///
/// # Errors
/// Connection or protocol failures, as strings.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("sending request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;
    let code = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed response: {raw:.60}"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((code, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoscalePolicy;
    use parva_deploy::ServiceSpec;
    use parva_perf::Model;
    use parva_serve::ArrivalProcess;

    fn boot() -> Daemon {
        let specs = vec![
            ServiceSpec::new(1, Model::ResNet50, 400.0, 40.0),
            ServiceSpec::new(2, Model::MobileNetV2, 300.0, 30.0),
        ];
        Daemon::new(
            &specs,
            ArrivalProcess::Poisson,
            11,
            500_000,
            AutoscalePolicy::default(),
        )
        .unwrap()
    }

    #[test]
    fn headless_run_writes_artifacts() {
        let dir = std::env::temp_dir().join("parvad-test-headless");
        let _ = std::fs::remove_dir_all(&dir);
        let mut daemon = boot();
        let outcome = run_daemon(
            &mut daemon,
            &DaemonOpts {
                epochs: Some(3),
                out_dir: Some(dir.clone()),
                ..DaemonOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.epochs, 3);
        assert!(!outcome.checkpointed);
        let gauges = std::fs::read_to_string(dir.join("gauges.jsonl")).unwrap();
        assert_eq!(
            gauges
                .lines()
                .filter(|l| l.contains("parvad-epoch"))
                .count(),
            3
        );
        assert!(dir.join("report.json").exists());
        assert!(dir.join("status.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn halt_and_resume_reproduces_the_uninterrupted_byte_stream() {
        let base = std::env::temp_dir().join("parvad-test-resume");
        let _ = std::fs::remove_dir_all(&base);
        let control_dir = base.join("control");
        let resumed_dir = base.join("resumed");
        let ckpt = base.join("ckpt.json");

        let mut control = boot();
        run_daemon(
            &mut control,
            &DaemonOpts {
                epochs: Some(9),
                out_dir: Some(control_dir.clone()),
                ..DaemonOpts::default()
            },
        )
        .unwrap();

        let mut first = boot();
        let outcome = run_daemon(
            &mut first,
            &DaemonOpts {
                epochs: Some(9),
                out_dir: Some(resumed_dir.clone()),
                checkpoint_at: Some(4),
                checkpoint_path: Some(ckpt.clone()),
                halt_at_checkpoint: true,
                ..DaemonOpts::default()
            },
        )
        .unwrap();
        assert!(outcome.checkpointed);
        assert_eq!(outcome.epochs, 4);
        drop(first);

        let mut resumed: Daemon = checkpoint::load_checkpoint(&ckpt).unwrap();
        run_daemon(
            &mut resumed,
            &DaemonOpts {
                epochs: Some(9),
                out_dir: Some(resumed_dir.clone()),
                ..DaemonOpts::default()
            },
        )
        .unwrap();

        for artifact in ["gauges.jsonl", "report.json", "status.json"] {
            let a = std::fs::read_to_string(control_dir.join(artifact)).unwrap();
            let b = std::fs::read_to_string(resumed_dir.join(artifact)).unwrap();
            assert_eq!(a, b, "{artifact} diverged across suspend/resume");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn control_socket_serves_the_full_lifecycle() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let server = std::thread::spawn(move || {
            let mut daemon = boot();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            tx.send(listener.local_addr().unwrap().to_string()).unwrap();
            // Serve requests until a drain arrives, stepping in between so
            // submitted pods actually receive traffic.
            while !daemon.draining() {
                poll_control(&listener, &mut daemon);
                daemon.step(&mut parva_obs::NullSink);
            }
            daemon
        });
        let addr = rx.recv().unwrap();

        let (code, body) = http_request(&addr, "GET", "/status", None).unwrap();
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"services\""));

        let pod = PodSpec::new("bert-qa", Model::BertLarge, 130.0, 60.0);
        let pod_json = serde_json::to_string(&pod).unwrap();
        let (code, body) = http_request(&addr, "POST", "/submit", Some(&pod_json)).unwrap();
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"id\":3"));
        // Duplicate admission conflicts.
        let (code, _) = http_request(&addr, "POST", "/submit", Some(&pod_json)).unwrap();
        assert_eq!(code, 409);

        let (code, _) = http_request(
            &addr,
            "POST",
            "/scale",
            Some("{\"service\":1,\"multiplier\":0.5}"),
        )
        .unwrap();
        assert_eq!(code, 200);

        let (code, body) = http_request(&addr, "GET", "/status", None).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("bert-qa"), "{body}");

        let (code, body) = http_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(code, 404, "{body}");

        let (code, _) = http_request(&addr, "POST", "/drain", None).unwrap();
        assert_eq!(code, 200);
        let daemon = server.join().unwrap();
        assert!(daemon.draining());
        assert!(daemon.epoch() > 0);
    }
}
