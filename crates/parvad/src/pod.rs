//! Pod specs: the daemon's admission-time resource, fastpod-style.
//!
//! A [`PodSpec`] describes one inference service the way a Kubernetes-ish
//! control plane would: a name, the model image, the client SLO, the
//! expected demand, and *fractional GPU* resource annotations (quota of a
//! physical GPU, an SM percentage cap, a memory request) in the style of
//! fractional-GPU pod schedulers. Admission validates the annotations
//! against the model's real footprint, then the pod becomes a
//! [`ServiceSpec`] for the §III-F incremental allocator — which sizes the
//! actual MIG slices and MPS process counts; the annotations are
//! constraints the chosen slicing must satisfy, not a placement decision.

use parva_deploy::ServiceSpec;
use parva_perf::{math, Model};
use serde::{Deserialize, Serialize};

/// One admitted (or submitted) serving pod.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Human handle, unique within a daemon (e.g. `"bert-qa"`).
    pub name: String,
    /// Served model, by the paper's display name (`"ResNet-50"`;
    /// case/punctuation-insensitive on input).
    pub model: String,
    /// Client-facing latency SLO, milliseconds.
    pub slo_ms: f64,
    /// Expected offered demand, requests per second (the admission-time
    /// estimate; the autoscaler chases the *observed* rate afterwards).
    pub rate_rps: f64,
    /// Owning tenant id; 0 = untenanted.
    #[serde(default)]
    pub tenant: u32,
    /// Fractional-GPU quota annotation: the largest share of one physical
    /// GPU any single replica of this pod may occupy, in GPU units
    /// (e.g. `0.5` = half a GPU ≈ a 3–4 GPC slice). `0` (default) leaves
    /// slicing entirely to the allocator.
    #[serde(default)]
    pub gpu_quota: f64,
    /// SM-percentage cap annotation (1–100); `0` (default) = uncapped.
    /// Checked against the quota for consistency at admission.
    #[serde(default)]
    pub sm_percent: u32,
    /// GPU-memory request, GiB per replica; `0` (default) = sized from
    /// the model. Admission rejects a request below the model's minimal
    /// footprint (weights + one process context + batch-1 activations).
    #[serde(default)]
    pub memory_gib: f64,
}

impl PodSpec {
    /// A minimal pod: name, model, SLO and rate, no annotations.
    #[must_use]
    pub fn new(name: &str, model: Model, slo_ms: f64, rate_rps: f64) -> Self {
        Self {
            name: name.to_string(),
            model: model.name().to_string(),
            slo_ms,
            rate_rps,
            tenant: 0,
            gpu_quota: 0.0,
            sm_percent: 0,
            memory_gib: 0.0,
        }
    }

    /// The parsed model.
    ///
    /// # Errors
    /// Unknown model name.
    pub fn parsed_model(&self) -> Result<Model, String> {
        Model::parse(&self.model).ok_or_else(|| format!("unknown model {:?}", self.model))
    }

    /// Validate the pod for admission.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("pod needs a name".into());
        }
        let model = self.parsed_model()?;
        if !(self.slo_ms.is_finite() && self.slo_ms > 0.0) {
            return Err(format!("pod {}: slo_ms must be positive", self.name));
        }
        if !(self.rate_rps.is_finite() && self.rate_rps > 0.0) {
            return Err(format!("pod {}: rate_rps must be positive", self.name));
        }
        if !(self.gpu_quota.is_finite() && (0.0..=8.0).contains(&self.gpu_quota)) {
            return Err(format!(
                "pod {}: gpu_quota must be in [0, 8] GPUs",
                self.name
            ));
        }
        if self.sm_percent > 100 {
            return Err(format!("pod {}: sm_percent must be ≤ 100", self.name));
        }
        if self.gpu_quota > 0.0 && self.sm_percent > 0 {
            // Both annotations present: they must agree (an SM cap tighter
            // than the quota would silently override it).
            let quota_pct = (self.gpu_quota.min(1.0) * 100.0).round() as u32;
            if self.sm_percent < quota_pct {
                return Err(format!(
                    "pod {}: sm_percent {} is tighter than gpu_quota {} \
                     ({quota_pct}% of one GPU); drop one annotation",
                    self.name, self.sm_percent, self.gpu_quota
                ));
            }
        }
        if self.memory_gib < 0.0 || !self.memory_gib.is_finite() {
            return Err(format!("pod {}: memory_gib must be ≥ 0", self.name));
        }
        if self.memory_gib > 0.0 {
            let floor = math::memory_gib(model, 1, 1);
            if self.memory_gib < floor {
                return Err(format!(
                    "pod {}: memory_gib {:.1} below the model's minimal \
                     footprint {:.1} GiB",
                    self.name, self.memory_gib, floor
                ));
            }
        }
        Ok(())
    }

    /// Lower the pod to the allocator's [`ServiceSpec`] under daemon id
    /// `id`. Call [`PodSpec::validate`] first.
    ///
    /// # Errors
    /// Unknown model name.
    pub fn to_service_spec(&self, id: u32) -> Result<ServiceSpec, String> {
        let model = self.parsed_model()?;
        Ok(ServiceSpec {
            id,
            model,
            request_rate_rps: self.rate_rps,
            slo: parva_deploy::Slo::from_latency_ms(self.slo_ms),
            tenant: self.tenant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_pod_admits() {
        let pod = PodSpec::new("bert-qa", Model::BertLarge, 130.0, 150.0);
        pod.validate().unwrap();
        let spec = pod.to_service_spec(7).unwrap();
        assert_eq!(spec.id, 7);
        assert_eq!(spec.model, Model::BertLarge);
        assert_eq!(spec.slo.latency_ms, 130.0);
    }

    #[test]
    fn model_names_parse_loosely() {
        let mut pod = PodSpec::new("r", Model::ResNet50, 100.0, 10.0);
        pod.model = "resnet50".into();
        pod.validate().unwrap();
        pod.model = "no-such-model".into();
        assert!(pod.validate().unwrap_err().contains("unknown model"));
    }

    #[test]
    fn degenerate_fields_rejected() {
        let good = PodSpec::new("p", Model::ResNet50, 100.0, 10.0);
        for tweak in [
            &mut |p: &mut PodSpec| p.name.clear() as _,
            &mut |p: &mut PodSpec| p.slo_ms = 0.0,
            &mut |p: &mut PodSpec| p.rate_rps = -1.0,
            &mut |p: &mut PodSpec| p.gpu_quota = 9.0,
            &mut |p: &mut PodSpec| p.sm_percent = 101,
            &mut |p: &mut PodSpec| p.memory_gib = f64::NAN,
        ] as [&mut dyn FnMut(&mut PodSpec); 6]
        {
            let mut p = good.clone();
            tweak(&mut p);
            assert!(p.validate().is_err(), "{p:?} should be rejected");
        }
        good.validate().unwrap();
    }

    #[test]
    fn inconsistent_quota_annotations_rejected() {
        let mut pod = PodSpec::new("p", Model::ResNet50, 100.0, 10.0);
        pod.gpu_quota = 0.5;
        pod.sm_percent = 25; // tighter than the 50% quota
        let err = pod.validate().unwrap_err();
        assert!(err.contains("tighter than gpu_quota"), "{err}");
        pod.sm_percent = 75;
        pod.validate().unwrap();
    }

    #[test]
    fn memory_request_must_cover_model_footprint() {
        let mut pod = PodSpec::new("p", Model::BertLarge, 130.0, 50.0);
        pod.memory_gib = 0.1;
        let err = pod.validate().unwrap_err();
        assert!(err.contains("minimal footprint"), "{err}");
        pod.memory_gib = 64.0;
        pod.validate().unwrap();
    }

    #[test]
    fn json_round_trip() {
        let mut pod = PodSpec::new("bert-qa", Model::BertLarge, 130.0, 150.0);
        pod.gpu_quota = 0.5;
        pod.sm_percent = 60;
        let text = serde_json::to_string(&pod).unwrap();
        let back: PodSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(pod, back);
    }

    #[test]
    fn annotations_default_when_absent() {
        let pod: PodSpec = serde_json::from_str(
            r#"{"name":"x","model":"ResNet-50","slo_ms":100.0,"rate_rps":10.0}"#,
        )
        .unwrap();
        assert_eq!(pod.tenant, 0);
        assert_eq!(pod.gpu_quota, 0.0);
        assert_eq!(pod.sm_percent, 0);
        pod.validate().unwrap();
    }
}
