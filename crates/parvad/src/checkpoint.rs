//! Checksummed daemon checkpoints.
//!
//! A checkpoint is a single JSON document:
//!
//! ```json
//! {"schema":"parvad/checkpoint/v1","checksum":1234567890,"state":{…}}
//! ```
//!
//! `state` is the full serialized [`crate::Daemon`]; `checksum` is FNV-1a
//! (64-bit) over the compact canonical JSON encoding of `state`. Decoding
//! verifies both the schema tag and the checksum before any field is
//! interpreted, so a truncated, hand-edited or bit-flipped file fails
//! loudly ("checkpoint checksum mismatch") instead of resuming a subtly
//! corrupted simulation.
//!
//! Canonical-form note: checksum stability across encode → parse → re-encode
//! relies on the vendored `serde_json` printing every `f64` in shortest
//! round-trip form and keeping map entries in insertion order. Both hold
//! throughout this workspace, so re-serializing the parsed `state` subtree
//! reproduces the exact bytes that were checksummed.

use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Schema tag of the current checkpoint format.
pub const SCHEMA: &str = "parvad/checkpoint/v1";

/// FNV-1a, 64-bit — tiny, dependency-free, deterministic.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn value_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::Int(n) => u64::try_from(n).ok(),
        Value::UInt(n) => Some(n),
        _ => None,
    }
}

/// Encode `state` into the checkpoint document (pretty-printed JSON).
///
/// # Errors
/// Non-finite floats in the state (not valid JSON).
pub fn encode_checkpoint<T: Serialize>(state: &T) -> Result<String, String> {
    let state = state.to_value();
    let canon = serde_json::to_string(&state).map_err(|e| e.to_string())?;
    let checksum = fnv1a64(canon.as_bytes());
    let doc = Value::Map(vec![
        ("schema".to_string(), Value::Str(SCHEMA.to_string())),
        ("checksum".to_string(), Value::UInt(checksum)),
        ("state".to_string(), state),
    ]);
    serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())
}

/// Decode a checkpoint document, verifying schema and checksum.
///
/// # Errors
/// Unparseable JSON, wrong schema tag, missing fields, checksum mismatch
/// (a corrupted or tampered checkpoint), or a `state` that no longer
/// deserializes into `T`.
pub fn decode_checkpoint<T: Deserialize>(text: &str) -> Result<T, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("checkpoint is not valid JSON: {e}"))?;
    let map = doc
        .as_map()
        .ok_or_else(|| "checkpoint must be a JSON object".to_string())?;
    let schema = match serde::find_field(map, "schema") {
        Some(Value::Str(s)) => s.as_str(),
        _ => return Err("checkpoint has no schema tag".to_string()),
    };
    if schema != SCHEMA {
        return Err(format!(
            "unsupported checkpoint schema {schema:?} (this build reads {SCHEMA:?})"
        ));
    }
    let recorded = serde::find_field(map, "checksum")
        .and_then(value_u64)
        .ok_or_else(|| "checkpoint has no checksum".to_string())?;
    let state =
        serde::find_field(map, "state").ok_or_else(|| "checkpoint has no state".to_string())?;
    let canon = serde_json::to_string(state).map_err(|e| e.to_string())?;
    let actual = fnv1a64(canon.as_bytes());
    if actual != recorded {
        return Err(format!(
            "checkpoint checksum mismatch (recorded {recorded}, computed {actual}): \
             the file is corrupted or was edited; refusing to resume"
        ));
    }
    T::from_value(state).map_err(|e| format!("checkpoint state does not decode: {e}"))
}

/// Write a checkpoint file.
///
/// # Errors
/// Encoding or filesystem errors, as strings.
pub fn save_checkpoint<T: Serialize>(state: &T, path: &Path) -> Result<(), String> {
    let text = encode_checkpoint(state)?;
    std::fs::write(path, text).map_err(|e| format!("writing checkpoint {}: {e}", path.display()))
}

/// Read and verify a checkpoint file.
///
/// # Errors
/// Filesystem errors or any [`decode_checkpoint`] failure, as strings.
pub fn load_checkpoint<T: Deserialize>(path: &Path) -> Result<T, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading checkpoint {}: {e}", path.display()))?;
    decode_checkpoint(&text).map_err(|e| format!("checkpoint {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn round_trip() {
        let state = vec![1u64, 2, 3];
        let text = encode_checkpoint(&state).unwrap();
        let back: Vec<u64> = decode_checkpoint(&text).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn tampered_state_is_rejected() {
        let text = encode_checkpoint(&vec![10u64, 20]).unwrap();
        let tampered = text.replace("20", "21");
        assert_ne!(tampered, text, "tamper must hit the state body");
        let err = decode_checkpoint::<Vec<u64>>(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = encode_checkpoint(&0u64)
            .unwrap()
            .replace("parvad/checkpoint/v1", "parvad/checkpoint/v0");
        let err = decode_checkpoint::<u64>(&text).unwrap_err();
        assert!(err.contains("unsupported checkpoint schema"));
    }

    #[test]
    fn garbage_is_rejected_with_clear_errors() {
        for (text, needle) in [
            ("not json at all", "not valid JSON"),
            ("[1,2,3]", "must be a JSON object"),
            ("{\"x\":1}", "no schema tag"),
        ] {
            let err = decode_checkpoint::<u64>(text).unwrap_err();
            assert!(err.contains(needle), "{text} → {err}");
        }
    }
}
