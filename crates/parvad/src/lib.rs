//! `parvad` — the serving daemon.
//!
//! Everything below the facade simulates one *batch* run: build a
//! deployment, stream requests through it, report. `parvad` turns that
//! into a long-running control plane:
//!
//! * the serving DES runs as a [`parva_serve::StreamEngine`], advanced in
//!   bounded epochs, so the daemon can interleave simulation with control
//!   work and **suspend at any epoch boundary**;
//! * [`checkpoint`] snapshots the entire daemon — event queue, in-flight
//!   requests, RNG streams, estimator history, autoscaler counters — to a
//!   checksummed JSON file and resumes it **bit-identically** (the resumed
//!   gauge stream is byte-equal to an uninterrupted run at the same seed);
//! * a closed-loop autoscaler estimates per-service demand from trailing
//!   *observed* arrivals ([`parva_autoscale::DemandEstimator`]) — never the
//!   oracle spec — and actuates through the paper's §III-F incremental
//!   reconfiguration path with measured recovery latencies;
//! * [`pod::PodSpec`] is the admission-time resource: a fastpod-style pod
//!   with fractional-GPU annotations, admitted over a line-delimited
//!   HTTP/JSON control socket ([`daemon`]) while the engine keeps serving.
//!
//! `parvactl daemon` hosts this crate; `parvactl submit|status|scale|drain`
//! are thin clients of the control socket.

pub mod checkpoint;
pub mod daemon;
pub mod engine;
pub mod pod;

pub use checkpoint::{decode_checkpoint, encode_checkpoint, load_checkpoint, save_checkpoint};
pub use daemon::{http_request, run_daemon, DaemonOpts, DaemonOutcome};
pub use engine::{AutoscalePolicy, Daemon, DaemonStatus, ServiceStatus};
pub use pod::PodSpec;

use parva_obs::{Row, TraceEvent, TraceSink};

/// A gauge-only sink collecting each row as its canonical JSON line.
///
/// This is the daemon's byte-gate artifact: gauge lines appended across a
/// suspend/resume must concatenate to exactly the lines an uninterrupted
/// run writes. Trace events are dropped (`ENABLED = false` keeps the
/// engine's span bookkeeping off the hot path); live trace streaming goes
/// through [`parva_obs::StreamSink`] instead.
#[derive(Debug, Default)]
pub struct GaugeLog {
    /// Canonical JSON gauge lines, in emission order.
    pub lines: Vec<String>,
}

impl GaugeLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All lines joined with trailing newlines — the `gauges.jsonl` body.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for GaugeLog {
    const ENABLED: bool = false;

    fn emit(&mut self, _ev: TraceEvent) {}

    fn next_sample_us(&self) -> u64 {
        u64::MAX
    }

    fn sample(&mut self, row: Row) {
        self.lines.push(row.to_json());
    }

    fn advance_sampler(&mut self) {}
}
