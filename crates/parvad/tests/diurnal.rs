//! The closed-loop acceptance demo: under a diurnal 0.4×–1.6× demand
//! swing the daemon — which only ever sees *observed* arrivals — must
//! track demand well enough to stay within two points of an oracle that
//! re-plans from the true rates every epoch with free actuation, while
//! provisioning fewer GPU-epochs than a fleet statically sized for the
//! 1.6× peak.

use parva_core::ParvaGpu;
use parva_deploy::{Deployment, ServiceSpec};
use parva_obs::NullSink;
use parva_perf::Model;
use parva_profile::ProfileBook;
use parva_serve::{ArrivalProcess, IngressClass, StreamEngine};
use parvad::{AutoscalePolicy, Daemon};

const EPOCH_US: u64 = 45_000_000;
const HOURS: u64 = 24;

/// Rates sized so the plan spans several GPUs at the trough and grows
/// substantially toward the 1.6x peak — a fleet that actually scales.
fn base_specs() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(1, Model::ResNet50, 9600.0, 205.0),
        ServiceSpec::new(2, Model::MobileNetV2, 8000.0, 167.0),
        ServiceSpec::new(3, Model::DenseNet121, 3600.0, 183.0),
    ]
}

/// The diurnal multiplier at hour `h`: 0.4 at the trough (h = 0), 1.6 at
/// the peak (h = 12), cosine in between.
fn swing(h: u64) -> f64 {
    1.0 - 0.6 * (std::f64::consts::TAU * h as f64 / HOURS as f64).cos()
}

fn attainment(report: &parva_serve::StreamReport) -> f64 {
    let completed: u64 = report.services.iter().map(|s| s.completed).sum();
    let within: u64 = report.services.iter().map(|s| s.within_slo).sum();
    if completed == 0 {
        1.0
    } else {
        within as f64 / completed as f64
    }
}

#[test]
fn daemon_tracks_diurnal_swing_within_two_points_of_oracle() {
    let seed = 42;
    let specs = base_specs();
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);

    // The closed loop: demand multipliers are injected into the world;
    // the autoscaler only sees their fallout in the observed gauges.
    let policy = AutoscalePolicy {
        decide_every: 2,
        window: 2,
        headroom: 1.25,
        ..AutoscalePolicy::default()
    };
    let mut daemon = Daemon::new(&specs, ArrivalProcess::Poisson, seed, EPOCH_US, policy).unwrap();
    let mut sink = NullSink;
    for h in 0..HOURS {
        daemon.scale_all(swing(h));
        daemon.step(&mut sink);
    }
    let daemon_attainment = attainment(&daemon.report());
    let status = daemon.status();
    assert!(status.decisions > 0, "the control loop never ran");
    assert!(
        status.reconfigs > 0,
        "a 4x demand swing must trigger incremental re-plans"
    );

    // The oracle: re-plans from the *true* rates every epoch, actuates for
    // free (no reflash/copy dark time), serves the same arrival stream.
    let ingress: Vec<Vec<IngressClass>> = specs
        .iter()
        .map(|s| vec![IngressClass::local(s.request_rate_rps)])
        .collect();
    let (_, boot) = scheduler.plan(&specs).unwrap();
    let mut oracle = StreamEngine::new(
        Deployment::Mig(boot),
        specs.clone(),
        &ingress,
        ArrivalProcess::Poisson,
        seed,
        EPOCH_US,
    );
    let mut oracle_gpu_epochs = 0u64;
    for h in 0..HOURS {
        let m = swing(h);
        let true_specs: Vec<ServiceSpec> = specs
            .iter()
            .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * m, s.slo.latency_ms))
            .collect();
        let (_, dep) = scheduler.plan(&true_specs).unwrap();
        oracle_gpu_epochs += dep.gpu_count() as u64;
        oracle.reconfigure(Deployment::Mig(dep), true_specs, None, &mut sink);
        oracle.set_demand_multiplier(&[m; 3]);
        oracle.step_epoch(&mut sink);
    }
    let oracle_attainment = attainment(&oracle.report());

    assert!(
        daemon_attainment >= oracle_attainment - 0.02,
        "closed loop fell more than 2 points behind the oracle: \
         daemon {daemon_attainment:.4} vs oracle {oracle_attainment:.4}"
    );

    // Static peak provisioning: a fleet sized for 1.6x around the clock.
    let peak_specs: Vec<ServiceSpec> = specs
        .iter()
        .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 1.6, s.slo.latency_ms))
        .collect();
    let (_, peak) = scheduler.plan(&peak_specs).unwrap();
    let static_peak_gpu_epochs = peak.gpu_count() as u64 * HOURS;
    assert!(
        daemon.gpu_epochs() < static_peak_gpu_epochs,
        "closed loop must provision fewer GPU-epochs than static peak: \
         daemon {} vs static {static_peak_gpu_epochs}",
        daemon.gpu_epochs()
    );
    // Sanity on the oracle's own bill: free hourly replanning is the
    // floor, and the daemon should land between it and static peak.
    assert!(
        oracle_gpu_epochs < static_peak_gpu_epochs,
        "oracle bill {oracle_gpu_epochs} vs static {static_peak_gpu_epochs}"
    );
}
