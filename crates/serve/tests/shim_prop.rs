//! Deprecation-shim equivalence: the three legacy free functions
//! (`simulate`, `simulate_with_ingress`, `simulate_with_recovery`) must
//! produce byte-identical JSON to the equivalent [`Simulation`] builder
//! chain across seeds, MIG/MPS deployment mixes, ingress splits and
//! recovery specs — the contract that lets callers migrate mechanically.

#![allow(deprecated)]

use parva_deploy::{Deployment, Scheduler, ServiceSpec};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::{
    simulate, simulate_with_ingress, simulate_with_recovery, ArrivalProcess, IngressClass,
    RecoveryOp, RecoverySpec, ServingConfig, Simulation,
};
use proptest::prelude::*;

fn deployment(mps: bool) -> (Deployment, Vec<ServiceSpec>) {
    let specs = Scenario::S1.services();
    let d = if mps {
        parva_baselines::Gpulet::new().schedule(&specs).unwrap()
    } else {
        let book = ProfileBook::builtin();
        parva_core::ParvaGpu::new(&book).schedule(&specs).unwrap()
    };
    (d, specs)
}

fn json(r: &parva_serve::ServingReport) -> String {
    serde_json::to_string(r).expect("serializable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulate_shim_matches_builder(
        seed in 0u64..1_000_000,
        duration_tenths in 5u32..20,
        mps in 0u32..2,
        arrivals_pick in 0usize..3,
    ) {
        let (d, specs) = deployment(mps == 1);
        let config = ServingConfig {
            warmup_s: 0.3,
            duration_s: f64::from(duration_tenths) / 10.0,
            drain_s: 0.4,
            seed,
            arrivals: match arrivals_pick {
                0 => ArrivalProcess::Poisson,
                1 => ArrivalProcess::Deterministic,
                _ => ArrivalProcess::Mmpp { burst_factor: 3.0, mean_phase_s: 0.3 },
            },
        };
        let shim = simulate(&d, &specs, &config);
        let builder = Simulation::new(&d, &specs).config(&config).run();
        prop_assert_eq!(json(&shim), json(&builder));
    }

    #[test]
    fn ingress_shim_matches_builder(
        seed in 0u64..1_000_000,
        mps in 0u32..2,
        remote_tenths in 0u32..=6,
        rtt in 1.0f64..200.0,
    ) {
        let (d, specs) = deployment(mps == 1);
        let config = ServingConfig {
            warmup_s: 0.3,
            duration_s: 1.2,
            drain_s: 0.4,
            seed,
            arrivals: ArrivalProcess::Poisson,
        };
        let share = f64::from(remote_tenths) / 10.0;
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| {
                vec![
                    IngressClass::local(s.request_rate_rps * (1.0 - share)),
                    IngressClass { rate_rps: s.request_rate_rps * share, network_ms: rtt },
                ]
            })
            .collect();
        let shim = simulate_with_ingress(&d, &specs, &ingress, &config);
        let builder = Simulation::new(&d, &specs)
            .ingress(&ingress)
            .config(&config)
            .run();
        prop_assert_eq!(json(&shim), json(&builder));
    }

    #[test]
    fn recovery_shim_matches_builder(
        seed in 0u64..1_000_000,
        mps in 0u32..2,
        ops in 0usize..4,        // 0: None spec (the optional-path identity)
        prepared in 0u32..2,
        start_ms in 100.0f64..2_000.0,
    ) {
        let (d, specs) = deployment(mps == 1);
        let config = ServingConfig {
            warmup_s: 0.3,
            duration_s: 1.2,
            drain_s: 0.4,
            seed,
            arrivals: ArrivalProcess::Poisson,
        };
        let recovery = (ops > 0).then(|| RecoverySpec {
            start_ms,
            control_plane_ms: 150.0,
            reflash_ms: 800.0,
            link_gib_per_s: 22.0,
            ops: (0..ops)
                .map(|i| RecoveryOp {
                    node: i / 2,
                    logical_gpu: Some(i),
                    reflash: i % 2 == 0,
                    copy_gib: 3.0 * (i + 1) as f64,
                    prepared: prepared == 1,
                })
                .collect(),
        });
        let shim = simulate_with_recovery(&d, &specs, &[], recovery.as_ref(), &config);
        let builder = Simulation::new(&d, &specs)
            .recovery_opt(recovery.as_ref())
            .config(&config)
            .run();
        prop_assert_eq!(json(&shim), json(&builder));
    }
}
