//! The streaming engine's suspend/resume contract, property-tested: a run
//! interrupted at any epoch boundary — full engine state serialized,
//! dropped, deserialized — must be **byte-identical** to an uninterrupted
//! run at the same seed, in all three artifacts: the gauge shard
//! (`metrics_jsonl`), the trace shard (`chrome_trace`) and the final
//! cumulative report. Coverage spans seeds × suspension points × MIG/MPS
//! deployments × ingress splits × arrival processes, with workloads drawn
//! from the paper's Table IV scenario registry.

use parva_deploy::{Deployment, Scheduler, ServiceSpec};
use parva_obs::Recorder;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::{ArrivalProcess, IngressClass, StreamEngine};
use proptest::prelude::*;

/// Epochs are short (0.2 s of simulated traffic) so a case stays cheap
/// while still crossing many batch/timeout boundaries per epoch.
const EPOCH_US: u64 = 200_000;
const TOTAL_EPOCHS: u64 = 6;

/// Schedule one Table IV scenario on the requested scheduler family.
/// `None` when that scheduler cannot host the mix (the property is about
/// resume fidelity, not feasibility).
fn deployment(scenario: Scenario, mps: bool) -> Option<(Deployment, Vec<ServiceSpec>)> {
    let specs = scenario.services();
    let d = if mps {
        parva_baselines::Gpulet::new().schedule(&specs).ok()?
    } else {
        let book = ProfileBook::builtin();
        parva_core::ParvaGpu::new(&book).schedule(&specs).ok()?
    };
    Some((d, specs))
}

fn ingress_for(specs: &[ServiceSpec], remote_share: f64, rtt_ms: f64) -> Vec<Vec<IngressClass>> {
    specs
        .iter()
        .map(|s| {
            if remote_share == 0.0 {
                vec![IngressClass::local(s.request_rate_rps)]
            } else {
                vec![
                    IngressClass::local(s.request_rate_rps * (1.0 - remote_share)),
                    IngressClass {
                        rate_rps: s.request_rate_rps * remote_share,
                        network_ms: rtt_ms,
                    },
                ]
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resumed_stream_is_byte_identical_to_uninterrupted(
        seed in 0u64..1_000_000,
        scenario_idx in 0usize..6,
        mps in 0u32..2,
        suspend_at in 1u64..TOTAL_EPOCHS,
        remote_tenths in 0u32..=5,
        rtt in 1.0f64..120.0,
        arrivals_pick in 0usize..3,
    ) {
        let scenario = Scenario::ALL[scenario_idx];
        let Some((d, specs)) = deployment(scenario, mps == 1) else {
            return Ok(());
        };
        let ingress = ingress_for(&specs, f64::from(remote_tenths) / 10.0, rtt);
        let arrivals = match arrivals_pick {
            0 => ArrivalProcess::Poisson,
            1 => ArrivalProcess::Deterministic,
            _ => ArrivalProcess::Mmpp { burst_factor: 3.0, mean_phase_s: 0.3 },
        };

        // Control: one uninterrupted run.
        let mut control = StreamEngine::new(
            d.clone(), specs.clone(), &ingress, arrivals, seed, EPOCH_US,
        );
        let mut control_rec = Recorder::new(0);
        for _ in 0..TOTAL_EPOCHS {
            control.step_epoch(&mut control_rec);
        }

        // Interrupted: suspend at an arbitrary epoch boundary, freeze the
        // whole engine to JSON, drop it, thaw, continue. The recorder
        // persists — its shards are append-only artifacts, exactly like
        // the daemon's gauge log across a process restart.
        let mut live = StreamEngine::new(d, specs, &ingress, arrivals, seed, EPOCH_US);
        let mut resumed_rec = Recorder::new(0);
        for _ in 0..suspend_at {
            live.step_epoch(&mut resumed_rec);
        }
        let frozen = serde_json::to_string(&live).expect("engine serializes");
        drop(live);
        let mut resumed: StreamEngine =
            serde_json::from_str(&frozen).expect("engine deserializes");
        for _ in suspend_at..TOTAL_EPOCHS {
            resumed.step_epoch(&mut resumed_rec);
        }

        prop_assert_eq!(control_rec.metrics_jsonl(), resumed_rec.metrics_jsonl());
        prop_assert_eq!(control_rec.chrome_trace(), resumed_rec.chrome_trace());
        prop_assert_eq!(
            serde_json::to_string(&control.report()).expect("report serializes"),
            serde_json::to_string(&resumed.report()).expect("report serializes")
        );
    }
}
