//! Property: the deficit-style weighted router is *prefix-fair*.
//!
//! For any rational weight vector, after any number of routed requests
//! `t`, every backend's `sent()` count stays within one request of its
//! ideal weighted share `w_i · t` — not just in the long-run average but
//! over every prefix. This pins down the scheduling discipline itself
//! (largest-outstanding-credit), and locks in the zero/negative-weight
//! normalization semantics: degenerate weights get share 0, and an
//! all-degenerate vector falls back to uniform.

use parva_serve::Router;
use proptest::prelude::*;

/// Check the prefix-share bound for `steps` requests over integer weight
/// numerators (rational weights `n_i / Σn`).
fn assert_prefix_fair(numerators: &[u32], steps: usize) -> Result<(), TestCaseError> {
    let total: u64 = numerators.iter().map(|&n| u64::from(n)).sum();
    let mut router = Router::new(numerators.iter().map(|&n| f64::from(n)).collect());
    for t in 1..=steps {
        router.route();
        for (i, &sent) in router.sent().iter().enumerate() {
            let ideal = t as f64 * f64::from(numerators[i]) / total as f64;
            prop_assert!(
                (sent as f64 - ideal).abs() <= 1.0 + 1e-9,
                "after {t} requests, backend {i} sent {sent} vs ideal {ideal:.3} \
                 (weights {numerators:?})"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_backend_prefix_shares_stay_within_one_request(
        numerators in prop::collection::vec(1u32..=24, 1..7),
        steps in 1usize..300,
    ) {
        assert_prefix_fair(&numerators, steps)?;
    }

    #[test]
    fn skewed_weights_also_prefix_fair(
        big in 50u32..=400,
        small in 1u32..=3,
        steps in 1usize..500,
    ) {
        // Heavily skewed vectors are where naive round-robin drifts.
        assert_prefix_fair(&[big, small, small], steps)?;
    }

    #[test]
    fn zero_weight_backends_never_perturb_the_fair_ones(
        numerators in prop::collection::vec(1u32..=9, 2..5),
        zero_at in 0usize..5,
        steps in 1usize..200,
    ) {
        // Insert a zero-weight (dead) backend anywhere: the live backends'
        // prefix shares must be exactly as fair as without it, and the
        // dead backend must receive (almost) nothing.
        let at = zero_at % (numerators.len() + 1);
        let mut weights: Vec<f64> = numerators.iter().map(|&n| f64::from(n)).collect();
        weights.insert(at, 0.0);
        let total: u64 = numerators.iter().map(|&n| u64::from(n)).sum();
        let mut router = Router::new(weights);
        for t in 1..=steps {
            router.route();
            prop_assert!(router.sent()[at] <= 1, "dead backend got traffic");
            for (i, &n) in numerators.iter().enumerate() {
                let idx = if i >= at { i + 1 } else { i };
                let ideal = t as f64 * f64::from(n) / total as f64;
                let sent = router.sent()[idx] as f64;
                prop_assert!((sent - ideal).abs() <= 1.0 + 1e-9);
            }
        }
    }
}
