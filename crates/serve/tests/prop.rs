//! Property tests: serving-simulator physics over arbitrary single-service
//! deployments.

use parva_deploy::{Deployment, MigDeployment, Segment, ServiceSpec};
use parva_mig::InstanceProfile;
use parva_perf::{ComputeShare, Model};
use parva_profile::Triplet;
use parva_serve::{ArrivalProcess, ServingConfig, Simulation};
use proptest::prelude::*;

/// A single-service MIG deployment with `n` segments of one profile, sized
/// from the true performance model.
fn deployment(
    model: Model,
    profile: InstanceProfile,
    batch: u32,
    procs: u32,
    n: usize,
) -> Deployment {
    let point = parva_perf::math::evaluate(model, ComputeShare::Mig(profile), batch, procs);
    let mut d = MigDeployment::new();
    for _ in 0..n {
        d.place_first_fit(Segment {
            service_id: 0,
            model,
            triplet: Triplet::new(profile, batch, procs),
            throughput_rps: point.throughput_rps,
            latency_ms: point.latency_ms,
        });
    }
    Deployment::Mig(d)
}

fn cfg(seed: u64) -> ServingConfig {
    ServingConfig {
        warmup_s: 0.5,
        duration_s: 2.0,
        drain_s: 1.0,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_bounds(
        model_idx in 0usize..11,
        prof_idx in 0usize..5,
        batch in prop::sample::select(vec![1u32, 4, 16]),
        procs in 1u32..=3,
        seed in 0u64..1000,
    ) {
        let model = Model::ALL[model_idx];
        let profile = InstanceProfile::ALL[prof_idx];
        if !parva_perf::math::fits_memory(model, ComputeShare::Mig(profile), batch, procs) {
            return Ok(()); // OOM point: the profiler would have dropped it
        }
        let d = deployment(model, profile, batch, procs, 2);
        let cap = d.capacity_of(0);
        // Offer 60% of capacity with a latency bound 4 full cycles wide.
        let lat = parva_perf::latency_ms(model, ComputeShare::Mig(profile), batch, procs);
        let spec = ServiceSpec::new(0, model, cap * 0.6, (lat * 8.0).max(20.0));
        let report = Simulation::new(&d, &[spec]).config(&cfg(seed)).run();
        let s = &report.services[0];
        prop_assert!(s.completed_within_slo <= s.completed);
        prop_assert!(s.violated_batches <= s.batches);
        prop_assert_eq!(s.latency.count(), s.completed);
        // Latency can never beat one batch-compute floor.
        if s.completed > 0 {
            let floor = parva_perf::math::t_comp(
                &parva_perf::PerfParams::for_model(model),
                f64::from(profile.gpcs()),
                1,
            );
            prop_assert!(s.latency.quantile_ms(0.01) >= floor * 0.5);
        }
        for server in &report.servers {
            prop_assert!((0.0..=1.0).contains(&server.activity));
        }
    }

    #[test]
    fn more_capacity_never_hurts_compliance(
        model_idx in 0usize..11,
        seed in 0u64..100,
    ) {
        let model = Model::ALL[model_idx];
        let profile = InstanceProfile::G2;
        let batch = 8u32;
        if !parva_perf::math::fits_memory(model, ComputeShare::Mig(profile), batch, 2) {
            return Ok(());
        }
        let small = deployment(model, profile, batch, 2, 1);
        let big = deployment(model, profile, batch, 2, 3);
        // Offer 1.2× the small deployment's capacity: small overloads,
        // big has 2.5× headroom.
        let rate = small.capacity_of(0) * 1.2;
        let lat = parva_perf::latency_ms(model, ComputeShare::Mig(profile), batch, 2);
        let spec = ServiceSpec::new(0, model, rate, (lat * 6.0).max(20.0));
        let r_small = Simulation::new(&small, &[spec]).config(&cfg(seed)).run();
        let r_big = Simulation::new(&big, &[spec]).config(&cfg(seed)).run();
        prop_assert!(
            r_big.overall_request_compliance_rate()
                >= r_small.overall_request_compliance_rate() - 0.02
        );
    }

    #[test]
    fn arrival_processes_agree_on_mean_throughput(
        model_idx in 0usize..11,
        seed in 0u64..100,
    ) {
        let model = Model::ALL[model_idx];
        let d = deployment(model, InstanceProfile::G3, 8, 2, 2);
        let rate = d.capacity_of(0) * 0.5;
        let spec = ServiceSpec::new(0, model, rate, 10_000.0);
        for arrivals in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Deterministic,
            ArrivalProcess::Mmpp { burst_factor: 3.0, mean_phase_s: 0.3 },
        ] {
            let c = ServingConfig { arrivals, duration_s: 4.0, ..cfg(seed) };
            let r = Simulation::new(&d, &[spec]).config(&c).run();
            let s = &r.services[0];
            // Conservation at 2× headroom: everything offered in the window
            // gets served (up to boundary effects of one batch per server).
            prop_assert!(
                s.completed as f64 >= s.offered as f64 * 0.93,
                "{arrivals:?}: served {} of {} offered",
                s.completed,
                s.offered
            );
            // Deterministic arrivals additionally pin the offered count to
            // the nominal rate (±1% for the µs rounding of the gap, which
            // accumulates at high rates); the random processes only agree
            // in expectation, which a 4 s window does not resolve for MMPP.
            if arrivals == ArrivalProcess::Deterministic {
                let tol = (rate * 4.0 * 0.01).max(2.0);
                prop_assert!(
                    (s.offered as f64 - rate * 4.0).abs() <= tol,
                    "offered {} vs nominal {:.0}",
                    s.offered,
                    rate * 4.0
                );
            }
        }
    }
}
