//! Serving measurement reports.

use crate::recovery::RecoverySimReport;
use parva_des::LatencyHistogram;
use serde::{Deserialize, Serialize, Value};

/// Per-service serving outcome.
#[derive(Debug, Clone, Deserialize)]
pub struct ServiceReport {
    /// Service id.
    pub service_id: u32,
    /// Offered requests during the measurement window.
    pub offered: u64,
    /// Requests completed during the window.
    pub completed: u64,
    /// Batches completed during the window.
    pub batches: u64,
    /// Batches whose worst request latency exceeded the client SLO.
    pub violated_batches: u64,
    /// Requests completed within the client SLO.
    pub completed_within_slo: u64,
    /// Per-request latency distribution (ms).
    pub latency: LatencyHistogram,
    /// Requests rejected at ingress because the owning tenant was over its
    /// admission quota. Always zero without tenant quotas.
    #[serde(default)]
    pub rejected: u64,
    /// Per-attempt queueing timeouts fired in-window. Always zero without
    /// a resilience policy ([`crate::ResilienceSpec`]).
    #[serde(default)]
    pub timeouts: u64,
    /// Timed-out requests re-enqueued (post-backoff) in-window.
    #[serde(default)]
    pub retries: u64,
    /// Requests dropped by queue-depth load shedding in-window.
    #[serde(default)]
    pub shed: u64,
    /// Hedge copies dispatched to a second server in-window.
    #[serde(default)]
    pub hedges: u64,
    /// Batched requests whose hedge copy won the race in-window.
    #[serde(default)]
    pub hedge_wins: u64,
}

// Hand-written so quota-free runs serialize exactly as before the tenant
// layer existed (`rejected` only when non-zero) and resilience-free runs
// exactly as before the resilience layer existed (counters only when
// non-zero).
impl Serialize for ServiceReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("service_id"), self.service_id.to_value()),
            (String::from("offered"), self.offered.to_value()),
            (String::from("completed"), self.completed.to_value()),
            (String::from("batches"), self.batches.to_value()),
            (
                String::from("violated_batches"),
                self.violated_batches.to_value(),
            ),
            (
                String::from("completed_within_slo"),
                self.completed_within_slo.to_value(),
            ),
            (String::from("latency"), self.latency.to_value()),
        ];
        if self.rejected != 0 {
            map.push((String::from("rejected"), self.rejected.to_value()));
        }
        for (key, v) in [
            ("timeouts", self.timeouts),
            ("retries", self.retries),
            ("shed", self.shed),
            ("hedges", self.hedges),
            ("hedge_wins", self.hedge_wins),
        ] {
            if v != 0 {
                map.push((String::from(key), v.to_value()));
            }
        }
        Value::Map(map)
    }
}

/// Rollup of the resilience counters across services — the shape the
/// fleet/region layers attach to their per-event/per-region outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Per-attempt queueing timeouts fired in-window.
    pub timeouts: u64,
    /// Timed-out requests re-enqueued (post-backoff) in-window.
    pub retries: u64,
    /// Requests dropped by queue-depth load shedding in-window.
    pub shed: u64,
    /// Hedge copies dispatched to a second server in-window.
    pub hedges: u64,
    /// Batched requests whose hedge copy won the race in-window.
    pub hedge_wins: u64,
}

impl ResilienceCounters {
    /// Did anything at all happen?
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulate another rollup into this one.
    pub fn add(&mut self, other: &Self) {
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.shed += other.shed;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
    }
}

impl ServiceReport {
    /// SLO compliance rate over batches (1.0 when no batch completed).
    #[must_use]
    pub fn compliance_rate(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            1.0 - self.violated_batches as f64 / self.batches as f64
        }
    }

    /// Request-level SLO compliance: in-SLO completions over *offered*
    /// requests, so requests a crippled deployment never serves count as
    /// violations. The batch-level [`ServiceReport::compliance_rate`]
    /// (the paper's Fig. 8 metric) is blind to dropped traffic — a service
    /// with zero capacity completes zero batches and scores 1.0 there;
    /// this metric scores it 0.0. Used by the §III-F disruption analysis.
    #[must_use]
    pub fn request_compliance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }
}

/// Per-ingress-class serving outcome (see
/// [`crate::sim::simulate_with_ingress`]): one row per `(service, class)`.
/// Latencies here *include* the class's network term, so a spilled class's
/// histogram directly shows the RTT-shifted distribution its remote users
/// experience.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassReport {
    /// Owning service id.
    pub service_id: u32,
    /// Class index within the service (0 = local by convention).
    pub class: usize,
    /// Network latency charged to every request of this class, ms.
    pub network_ms: f64,
    /// Offered requests during the measurement window.
    pub offered: u64,
    /// Requests completed during the window.
    pub completed: u64,
    /// Requests completed within the client SLO (network term included).
    pub completed_within_slo: u64,
    /// Per-request latency distribution including the network term (ms).
    pub latency: LatencyHistogram,
}

impl ClassReport {
    /// Request-level SLO compliance of this class: in-SLO completions over
    /// offered requests (1.0 when nothing was offered).
    #[must_use]
    pub fn request_compliance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }
}

/// Per-tenant serving rollup: the sum of the tenant's service rows plus
/// admission-control accounting. Only present when the run was configured
/// with tenants ([`crate::Simulation::tenants`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// Tenant display name (may be empty).
    #[serde(default)]
    pub name: String,
    /// Requests offered by the tenant's services during the window.
    pub offered: u64,
    /// Requests admitted past the quota gate (`offered - rejected`).
    pub admitted: u64,
    /// Requests rejected at ingress (over quota).
    pub rejected: u64,
    /// Requests completed during the window.
    pub completed: u64,
    /// Requests completed within their service's SLO.
    pub completed_within_slo: u64,
    /// Merged per-request latency distribution across the tenant's
    /// services (ms).
    pub latency: LatencyHistogram,
}

impl TenantReport {
    /// SLO attainment against *offered* load: rejected requests count as
    /// misses, so quota pressure is visible (1.0 when nothing offered).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }

    /// Fraction of offered requests admitted past the quota gate.
    #[must_use]
    pub fn admission_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.admitted as f64 / self.offered as f64
        }
    }
}

/// Per-server (segment or partition) activity for the slack metric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServerActivity {
    /// Owning service.
    pub service_id: u32,
    /// SMs allocated to this server.
    pub sms: f64,
    /// Measured SM activity ∈ [0, 1] over the window (DCGM semantics).
    pub activity: f64,
}

/// Full serving report for one deployment run.
#[derive(Debug, Clone, Deserialize)]
pub struct ServingReport {
    /// Measurement window length, seconds.
    pub duration_s: f64,
    /// Per-service outcomes, ordered by service id.
    pub services: Vec<ServiceReport>,
    /// Per-server activity (order follows the deployment's server list).
    pub servers: Vec<ServerActivity>,
    /// Per-ingress-class outcomes, service-major then class order. Plain
    /// [`crate::sim::simulate`] runs have exactly one (local) class per
    /// service.
    #[serde(default)]
    pub classes: Vec<ClassReport>,
    /// What the DES measured about recovery work riding this window
    /// ([`crate::sim::simulate_with_recovery`]); `None` when no recovery
    /// was simulated.
    #[serde(default)]
    pub recovery: Option<RecoverySimReport>,
    /// Per-tenant rollups ([`TenantReport`]); empty (and omitted from the
    /// serialized form) when the run had no tenants configured.
    #[serde(default)]
    pub tenants: Vec<TenantReport>,
}

// Hand-written so tenant-free runs serialize exactly as before the tenant
// layer existed: `tenants` is emitted only when non-empty.
impl Serialize for ServingReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("duration_s"), self.duration_s.to_value()),
            (String::from("services"), self.services.to_value()),
            (String::from("servers"), self.servers.to_value()),
            (String::from("classes"), self.classes.to_value()),
            (String::from("recovery"), self.recovery.to_value()),
        ];
        if !self.tenants.is_empty() {
            map.push((String::from("tenants"), self.tenants.to_value()));
        }
        Value::Map(map)
    }
}

impl ServingReport {
    /// Batch-weighted SLO compliance across services (Fig. 8's y-axis).
    #[must_use]
    pub fn overall_compliance_rate(&self) -> f64 {
        let batches: u64 = self.services.iter().map(|s| s.batches).sum();
        if batches == 0 {
            return 1.0;
        }
        let violated: u64 = self.services.iter().map(|s| s.violated_batches).sum();
        1.0 - violated as f64 / batches as f64
    }

    /// Offered-request-weighted SLO compliance across services, counting
    /// unserved requests as violations (see
    /// [`ServiceReport::request_compliance_rate`]).
    #[must_use]
    pub fn overall_request_compliance_rate(&self) -> f64 {
        let offered: u64 = self.services.iter().map(|s| s.offered).sum();
        if offered == 0 {
            return 1.0;
        }
        let within: u64 = self.services.iter().map(|s| s.completed_within_slo).sum();
        (within as f64 / offered as f64).min(1.0)
    }

    /// GPU internal slack (paper Eq. 3): `1 − Σ(SMᵢ·Aᵢ) / Σ SMᵢ`.
    #[must_use]
    pub fn internal_slack(&self) -> f64 {
        let sm_total: f64 = self.servers.iter().map(|s| s.sms).sum();
        if sm_total <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self.servers.iter().map(|s| s.sms * s.activity).sum();
        1.0 - weighted / sm_total
    }

    /// The report for one service, if present.
    #[must_use]
    pub fn service(&self, id: u32) -> Option<&ServiceReport> {
        self.services.iter().find(|s| s.service_id == id)
    }

    /// The per-class rows of one service, class order.
    #[must_use]
    pub fn classes_of(&self, id: u32) -> Vec<&ClassReport> {
        self.classes.iter().filter(|c| c.service_id == id).collect()
    }

    /// Sum of the resilience counters across services; `None` when no
    /// resilience mechanism fired (including every resilience-free run).
    #[must_use]
    pub fn resilience_totals(&self) -> Option<ResilienceCounters> {
        let mut total = ResilienceCounters::default();
        for s in &self.services {
            total.add(&ResilienceCounters {
                timeouts: s.timeouts,
                retries: s.retries,
                shed: s.shed,
                hedges: s.hedges,
                hedge_wins: s.hedge_wins,
            });
        }
        (!total.is_zero()).then_some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(id: u32, batches: u64, violated: u64) -> ServiceReport {
        ServiceReport {
            service_id: id,
            offered: batches * 8,
            completed: batches * 8,
            batches,
            violated_batches: violated,
            completed_within_slo: batches * 8 - violated * 8,
            latency: LatencyHistogram::new(),
            rejected: 0,
            timeouts: 0,
            retries: 0,
            shed: 0,
            hedges: 0,
            hedge_wins: 0,
        }
    }

    #[test]
    fn compliance_math() {
        let r = svc(0, 200, 7);
        assert!((r.compliance_rate() - 0.965).abs() < 1e-12);
        assert_eq!(svc(0, 0, 0).compliance_rate(), 1.0);
    }

    #[test]
    fn overall_compliance_weighted_by_batches() {
        let report = ServingReport {
            duration_s: 10.0,
            services: vec![svc(0, 100, 0), svc(1, 300, 30)],
            servers: vec![],
            classes: vec![],
            recovery: None,
            tenants: vec![],
        };
        // 30 violations / 400 batches.
        assert!((report.overall_compliance_rate() - 0.925).abs() < 1e-12);
    }

    #[test]
    fn internal_slack_eq3() {
        let report = ServingReport {
            duration_s: 10.0,
            services: vec![],
            servers: vec![
                ServerActivity {
                    service_id: 0,
                    sms: 42.0,
                    activity: 1.0,
                },
                ServerActivity {
                    service_id: 1,
                    sms: 42.0,
                    activity: 0.5,
                },
            ],
            classes: vec![],
            recovery: None,
            tenants: vec![],
        };
        // 1 - (42 + 21)/84 = 0.25.
        assert!((report.internal_slack() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_defaults() {
        let report = ServingReport {
            duration_s: 1.0,
            services: vec![],
            servers: vec![],
            classes: vec![],
            recovery: None,
            tenants: vec![],
        };
        assert_eq!(report.overall_compliance_rate(), 1.0);
        assert_eq!(report.internal_slack(), 0.0);
        assert!(report.service(3).is_none());
    }
}
