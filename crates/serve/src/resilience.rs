//! The resilient request lifecycle: timeouts, budgeted retries, hedging,
//! load shedding and health-checked routing.
//!
//! Real inference frontends do not treat a request as fire-and-forget: a
//! request that sits too long in a queue times out and is retried (with
//! exponential backoff), a tail-latency-sensitive client hedges a second
//! copy after a quantile delay, an overloaded replica sheds instead of
//! queueing unboundedly, and the load balancer drains replicas it knows to
//! be dark. Whether those mechanisms produce graceful degradation or a
//! metastable retry storm is a *policy* question — the classic failure mode
//! is retry amplification: under overload every timeout injects another
//! request, offered load doubles and redoubles, queueing delay exceeds the
//! timeout for every request, and goodput collapses to zero even after the
//! original overload subsides. The industry fix is a **retry budget**: a
//! token bucket capping cluster-wide retry injection so retries help at the
//! margin but cannot become the dominant traffic class.
//!
//! [`ResilienceSpec`] configures all of it. Every field is serde-defaulted
//! and every mechanism is individually disableable; an absent `resilience`
//! block (or an [inert](ResilienceSpec::is_inert) one) leaves the serving
//! engine on its original code path and the report byte-identical —
//! property-tested against the frozen reference, the same discipline as
//! tenant neutrality.

use serde::{find_field, Deserialize, Error, Serialize, Value};

/// Frontend resilience policy for a serving run.
///
/// All fields have inert-leaning defaults; the spec block can name any
/// subset. Semantics:
///
/// * **Timeout + retries** — a request that has waited `timeout_ms` in a
///   queue (minus its ingress class's network term, floored at zero) is
///   pulled out and, if it has attempts left *and* the retry budget admits,
///   re-enqueued after an exponential backoff with optional jitter; a
///   request that exhausts retries (or is denied by the budget) dies and
///   counts against SLO attainment exactly like an unserved request.
/// * **Retry budget** — one token bucket across the whole run refilled at
///   `retry_budget_rps`; `0` means unbudgeted (every eligible timeout
///   retries — the retry-storm configuration).
/// * **Hedging** — when `hedge_quantile ∈ (0, 1)`, a queued request fires a
///   second copy onto another replica after the service's observed
///   `hedge_quantile` latency (its SLO × quantile until enough completions
///   have been observed). Whichever copy is drafted into a batch first
///   wins; the twin is cancelled at that instant, so at most one copy ever
///   executes.
/// * **Load shedding** — an arrival or retry routed to a server whose
///   queue already holds `shed_queue_depth` requests is dropped on the
///   floor (counted, never served). `0` disables.
/// * **Health-checked routing** — the router zero-weights servers whose
///   GPU has recovery work outstanding and re-admits them on
///   `GpuRecovered`, like a health-checked load balancer draining dark
///   replicas toward live ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceSpec {
    /// Per-attempt queueing timeout, ms (`0` disables timeouts/retries).
    pub timeout_ms: f64,
    /// Retry attempts after the first (`0` = fail fast on timeout).
    pub max_retries: u32,
    /// First retry's backoff delay, ms.
    pub backoff_base_ms: f64,
    /// Backoff growth per attempt (attempt `n` waits `base · mult^(n-1)`).
    pub backoff_multiplier: f64,
    /// Multiplicative backoff jitter fraction in `[0, 1]`: the delay is
    /// scaled by `1 + jitter · U(0, 1)` drawn from the run's seeded RNG.
    pub jitter: f64,
    /// Cluster-wide retry budget, retries/s (`0` = unbudgeted).
    pub retry_budget_rps: f64,
    /// Latency quantile after which a queued request hedges (`0` disables).
    pub hedge_quantile: f64,
    /// Per-server queue depth beyond which new work is shed (`0` disables).
    pub shed_queue_depth: u32,
    /// Drain dark/recovering servers at the router (on by default — the
    /// whole point of a health-checked frontend).
    pub health_checked: bool,
}

impl Default for ResilienceSpec {
    fn default() -> Self {
        Self {
            timeout_ms: 0.0,
            max_retries: 0,
            backoff_base_ms: 25.0,
            backoff_multiplier: 2.0,
            jitter: 0.0,
            retry_budget_rps: 0.0,
            hedge_quantile: 0.0,
            shed_queue_depth: 0,
            health_checked: true,
        }
    }
}

impl ResilienceSpec {
    /// Does this spec change *any* engine behavior? An inert spec — no
    /// timeout, no hedging, no shedding, health checks off — runs the
    /// original code path and is byte-identical to no spec at all.
    /// `health_checked: true` alone is **not** inert: it reroutes traffic
    /// whenever recovery work darkens a server.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.timeout_ms <= 0.0
            && self.hedge_quantile <= 0.0
            && self.shed_queue_depth == 0
            && !self.health_checked
    }

    /// Validate every field (finite, in range). Returns a description of
    /// the first violation.
    ///
    /// # Errors
    /// When any field is non-finite or out of its documented range.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |name: &str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("resilience.{name} must be finite and >= 0"))
            }
        };
        finite_nonneg("timeout_ms", self.timeout_ms)?;
        finite_nonneg("backoff_base_ms", self.backoff_base_ms)?;
        finite_nonneg("retry_budget_rps", self.retry_budget_rps)?;
        if !self.backoff_multiplier.is_finite() || self.backoff_multiplier < 1.0 {
            return Err("resilience.backoff_multiplier must be finite and >= 1".into());
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err("resilience.jitter must be in [0, 1]".into());
        }
        if !self.hedge_quantile.is_finite() || !(0.0..1.0).contains(&self.hedge_quantile) {
            return Err("resilience.hedge_quantile must be in [0, 1)".into());
        }
        Ok(())
    }
}

// Hand-written: the vendored derive only defaults to `Default::default()`
// of the field *type* (zero), but several fields here have non-zero
// defaults (backoff shape, `health_checked: true`), and a spec block
// should be able to name any subset of fields.
impl Deserialize for ResilienceSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("resilience: expected a map"))?;
        let d = Self::default();
        let f64_or = |key: &str, default: f64| -> Result<f64, Error> {
            match find_field(map, key) {
                Some(v) => f64::from_value(v),
                None => Ok(default),
            }
        };
        let u32_or = |key: &str, default: u32| -> Result<u32, Error> {
            match find_field(map, key) {
                Some(v) => u32::from_value(v),
                None => Ok(default),
            }
        };
        let bool_or = |key: &str, default: bool| -> Result<bool, Error> {
            match find_field(map, key) {
                Some(v) => bool::from_value(v),
                None => Ok(default),
            }
        };
        Ok(Self {
            timeout_ms: f64_or("timeout_ms", d.timeout_ms)?,
            max_retries: u32_or("max_retries", d.max_retries)?,
            backoff_base_ms: f64_or("backoff_base_ms", d.backoff_base_ms)?,
            backoff_multiplier: f64_or("backoff_multiplier", d.backoff_multiplier)?,
            jitter: f64_or("jitter", d.jitter)?,
            retry_budget_rps: f64_or("retry_budget_rps", d.retry_budget_rps)?,
            hedge_quantile: f64_or("hedge_quantile", d.hedge_quantile)?,
            shed_queue_depth: u32_or("shed_queue_depth", d.shed_queue_depth)?,
            health_checked: bool_or("health_checked", d.health_checked)?,
        })
    }
}

// Hand-written for symmetry: every field is emitted (the spec is config,
// not a report — stability beats minimality here) in declaration order.
impl Serialize for ResilienceSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (String::from("timeout_ms"), self.timeout_ms.to_value()),
            (String::from("max_retries"), self.max_retries.to_value()),
            (
                String::from("backoff_base_ms"),
                self.backoff_base_ms.to_value(),
            ),
            (
                String::from("backoff_multiplier"),
                self.backoff_multiplier.to_value(),
            ),
            (String::from("jitter"), self.jitter.to_value()),
            (
                String::from("retry_budget_rps"),
                self.retry_budget_rps.to_value(),
            ),
            (
                String::from("hedge_quantile"),
                self.hedge_quantile.to_value(),
            ),
            (
                String::from("shed_queue_depth"),
                self.shed_queue_depth.to_value(),
            ),
            (
                String::from("health_checked"),
                self.health_checked.to_value(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert_except_health_checks() {
        let d = ResilienceSpec::default();
        assert!(!d.is_inert(), "health_checked defaults on");
        assert!(ResilienceSpec {
            health_checked: false,
            ..d
        }
        .is_inert());
        d.validate().expect("defaults validate");
    }

    #[test]
    fn round_trips_through_the_value_tree() {
        let spec = ResilienceSpec {
            timeout_ms: 250.0,
            max_retries: 3,
            backoff_base_ms: 10.0,
            backoff_multiplier: 1.5,
            jitter: 0.2,
            retry_budget_rps: 80.0,
            hedge_quantile: 0.95,
            shed_queue_depth: 512,
            health_checked: false,
        };
        let back = ResilienceSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn partial_map_fills_defaults() {
        let v = Value::Map(vec![
            (String::from("timeout_ms"), Value::Float(100.0)),
            (String::from("max_retries"), Value::Int(2)),
        ]);
        let spec = ResilienceSpec::from_value(&v).unwrap();
        assert_eq!(spec.timeout_ms, 100.0);
        assert_eq!(spec.max_retries, 2);
        assert_eq!(spec.backoff_base_ms, 25.0);
        assert_eq!(spec.backoff_multiplier, 2.0);
        assert!(spec.health_checked);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let with = |patch: fn(&mut ResilienceSpec)| {
            let mut s = ResilienceSpec::default();
            patch(&mut s);
            s
        };
        assert!(with(|s| s.jitter = 1.5).validate().is_err());
        assert!(with(|s| s.hedge_quantile = 1.0).validate().is_err());
        assert!(with(|s| s.backoff_multiplier = 0.5).validate().is_err());
        assert!(with(|s| s.timeout_ms = f64::NAN).validate().is_err());
    }
}
