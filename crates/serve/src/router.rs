//! Capacity-weighted deterministic request routing.

/// Weighted round-robin router (deficit style): each arrival goes to the
/// server with the largest outstanding credit `weight_i · total − sent_i`,
/// so long-run shares converge to the capacity weights without randomness.
#[derive(Debug, Clone)]
pub struct Router {
    weights: Vec<f64>,
    sent: Vec<u64>,
    total: u64,
}

impl Router {
    /// Build from capacity weights (must be non-empty; non-positive weights
    /// are clamped to a tiny epsilon so the server can still drain).
    #[must_use]
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "router needs at least one server");
        let sum: f64 = weights.iter().map(|w| w.max(1e-12)).sum();
        let weights = weights.iter().map(|w| w.max(1e-12) / sum).collect::<Vec<_>>();
        let n = weights.len();
        Self { weights, sent: vec![0; n], total: 0 }
    }

    /// Route one request, returning the chosen server index.
    pub fn route(&mut self) -> usize {
        self.total += 1;
        let mut best = 0usize;
        let mut best_credit = f64::NEG_INFINITY;
        for (i, w) in self.weights.iter().enumerate() {
            let credit = w * self.total as f64 - self.sent[i] as f64;
            if credit > best_credit {
                best_credit = credit;
                best = i;
            }
        }
        self.sent[best] += 1;
        best
    }

    /// Requests sent to each server so far.
    #[must_use]
    pub fn sent(&self) -> &[u64] {
        &self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_converge_to_weights() {
        let mut r = Router::new(vec![3.0, 1.0]);
        for _ in 0..4000 {
            r.route();
        }
        let s = r.sent();
        assert!((s[0] as f64 / 4000.0 - 0.75).abs() < 0.01, "{s:?}");
    }

    #[test]
    fn single_server_gets_everything() {
        let mut r = Router::new(vec![42.0]);
        for _ in 0..10 {
            assert_eq!(r.route(), 0);
        }
    }

    #[test]
    fn equal_weights_alternate() {
        let mut r = Router::new(vec![1.0, 1.0]);
        let seq: Vec<usize> = (0..6).map(|_| r.route()).collect();
        assert_eq!(seq.iter().filter(|&&i| i == 0).count(), 3);
    }

    #[test]
    fn zero_weight_servers_starved_but_alive() {
        let mut r = Router::new(vec![1.0, 0.0]);
        for _ in 0..1000 {
            r.route();
        }
        assert!(r.sent()[1] <= 1);
    }

    #[test]
    fn deterministic() {
        let mut a = Router::new(vec![2.0, 1.0, 1.0]);
        let mut b = Router::new(vec![2.0, 1.0, 1.0]);
        for _ in 0..100 {
            assert_eq!(a.route(), b.route());
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_rejected() {
        let _ = Router::new(vec![]);
    }
}
