//! Capacity-weighted deterministic request routing.

use serde::{Deserialize, Serialize};

/// Weighted round-robin router (deficit style): each arrival goes to the
/// server with the largest outstanding credit `weight_i · total − sent_i`,
/// so long-run shares converge to the capacity weights without randomness.
///
/// The full decision state (normalized weights, per-server deficits, health
/// mask) serializes, so a suspended simulation resumes with bit-identical
/// routing decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    weights: Vec<f64>,
    sent: Vec<u64>,
    total: u64,
    /// Health mask for health-checked routing: unhealthy servers get no
    /// traffic while any healthy alternative exists. All-healthy routing is
    /// bit-identical to the pre-health router (the mask is only consulted
    /// when at least one server is marked down).
    healthy: Vec<bool>,
    down: usize,
}

impl Router {
    /// Build from capacity weights (must be non-empty). Negative, NaN and
    /// zero weights are clamped to zero *before* normalization, so a
    /// healthy server never loses share to a degenerate co-server; when no
    /// weight is positive the router falls back to uniform shares instead
    /// of normalizing an epsilon-sum (which amplified the clamp values by
    /// ~1e12 and made the shares depend on the clamp constant).
    #[must_use]
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "router needs at least one server");
        let clamped: Vec<f64> = weights
            .iter()
            .map(|w| if w.is_finite() && *w > 0.0 { *w } else { 0.0 })
            .collect();
        let sum: f64 = clamped.iter().sum();
        let n = clamped.len();
        let weights = if sum > 0.0 {
            clamped.iter().map(|w| w / sum).collect()
        } else {
            vec![1.0 / n as f64; n]
        };
        Self {
            weights,
            sent: vec![0; n],
            total: 0,
            healthy: vec![true; n],
            down: 0,
        }
    }

    /// Mark one server up or down for health-checked routing. A down
    /// server is skipped by [`Router::route`] while any healthy server
    /// remains; when every server is down the router falls back to the
    /// plain weighted choice (requests must land *somewhere* — they queue
    /// on the dark server and drain at recovery, exactly as before).
    pub fn set_healthy(&mut self, i: usize, healthy: bool) {
        if self.healthy[i] != healthy {
            self.healthy[i] = healthy;
            if healthy {
                self.down -= 1;
            } else {
                self.down += 1;
            }
        }
    }

    /// Route one request, returning the chosen server index.
    pub fn route(&mut self) -> usize {
        self.total += 1;
        // Hot fast path: a single-server service has no decision to make
        // (and single-segment services are common in real deployments).
        if self.weights.len() == 1 {
            self.sent[0] += 1;
            return 0;
        }
        let mask = self.down > 0 && self.down < self.healthy.len();
        let mut best = 0usize;
        let mut best_credit = f64::NEG_INFINITY;
        let total = self.total as f64;
        for (i, (w, sent)) in self.weights.iter().zip(&self.sent).enumerate() {
            if mask && !self.healthy[i] {
                continue;
            }
            let credit = w * total - *sent as f64;
            if credit > best_credit {
                best_credit = credit;
                best = i;
            }
        }
        self.sent[best] += 1;
        best
    }

    /// Requests sent to each server so far.
    #[must_use]
    pub fn sent(&self) -> &[u64] {
        &self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_converge_to_weights() {
        let mut r = Router::new(vec![3.0, 1.0]);
        for _ in 0..4000 {
            r.route();
        }
        let s = r.sent();
        assert!((s[0] as f64 / 4000.0 - 0.75).abs() < 0.01, "{s:?}");
    }

    #[test]
    fn single_server_gets_everything() {
        let mut r = Router::new(vec![42.0]);
        for _ in 0..10 {
            assert_eq!(r.route(), 0);
        }
    }

    #[test]
    fn equal_weights_alternate() {
        let mut r = Router::new(vec![1.0, 1.0]);
        let seq: Vec<usize> = (0..6).map(|_| r.route()).collect();
        assert_eq!(seq.iter().filter(|&&i| i == 0).count(), 3);
    }

    #[test]
    fn zero_weight_servers_starved_but_alive() {
        let mut r = Router::new(vec![1.0, 0.0]);
        for _ in 0..1000 {
            r.route();
        }
        assert!(r.sent()[1] <= 1);
    }

    #[test]
    fn deterministic() {
        let mut a = Router::new(vec![2.0, 1.0, 1.0]);
        let mut b = Router::new(vec![2.0, 1.0, 1.0]);
        for _ in 0..100 {
            assert_eq!(a.route(), b.route());
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_rejected() {
        let _ = Router::new(vec![]);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        // Regression: the old clamp-then-normalize path divided 1e-12 by an
        // n·1e-12 sum, so all-zero inputs silently produced shares defined
        // by the clamp constant rather than an explicit uniform fallback.
        let mut r = Router::new(vec![0.0, 0.0, 0.0]);
        for _ in 0..3000 {
            r.route();
        }
        for &s in r.sent() {
            assert!((s as f64 - 1000.0).abs() <= 1.0, "{:?}", r.sent());
        }
    }

    #[test]
    fn negative_and_nan_weights_are_starved_not_amplified() {
        // A negative or NaN weight is a scheduler bug upstream; the router
        // must treat it as "no capacity", not as epsilon capacity that
        // steals share under normalization.
        let mut r = Router::new(vec![2.0, -5.0, f64::NAN]);
        for _ in 0..1000 {
            r.route();
        }
        assert_eq!(r.sent()[0], 1000, "{:?}", r.sent());
        assert_eq!(r.sent()[1], 0);
        assert_eq!(r.sent()[2], 0);
    }

    #[test]
    fn unhealthy_servers_are_drained_and_readmitted() {
        let mut r = Router::new(vec![1.0, 1.0]);
        r.set_healthy(0, false);
        for _ in 0..100 {
            assert_eq!(r.route(), 1);
        }
        r.set_healthy(0, true);
        // Back in rotation: credit built up while drained, so server 0
        // catches up first.
        assert_eq!(r.route(), 0);
        let mut zero = 0;
        for _ in 0..1000 {
            if r.route() == 0 {
                zero += 1;
            }
        }
        assert!(zero > 400, "recovered server got only {zero}/1000");
    }

    #[test]
    fn all_down_falls_back_to_plain_weighted_choice() {
        let mut healthy = Router::new(vec![2.0, 1.0]);
        let mut down = Router::new(vec![2.0, 1.0]);
        down.set_healthy(0, false);
        down.set_healthy(1, false);
        for _ in 0..100 {
            assert_eq!(healthy.route(), down.route());
        }
    }

    #[test]
    fn all_healthy_routing_matches_pre_health_router() {
        // Marking down then up restores bit-identical decisions.
        let mut a = Router::new(vec![3.0, 1.0, 2.0]);
        let mut b = Router::new(vec![3.0, 1.0, 2.0]);
        b.set_healthy(1, false);
        b.set_healthy(1, true);
        for _ in 0..500 {
            assert_eq!(a.route(), b.route());
        }
    }

    #[test]
    fn snapshot_resumes_identical_decisions() {
        use serde::{Deserialize as _, Serialize as _};
        let mut live = Router::new(vec![3.0, 1.0, 2.0]);
        live.set_healthy(1, false);
        for _ in 0..37 {
            live.route();
        }
        let mut restored = Router::from_value(&live.to_value()).unwrap();
        for _ in 0..500 {
            assert_eq!(live.route(), restored.route());
        }
    }

    #[test]
    fn mixed_zero_weight_normalization_unchanged() {
        let mut r = Router::new(vec![3.0, 0.0, 1.0]);
        for _ in 0..4000 {
            r.route();
        }
        let s = r.sent();
        assert!((s[0] as f64 / 4000.0 - 0.75).abs() < 0.01, "{s:?}");
        assert!(s[1] <= 1, "{s:?}");
    }
}
