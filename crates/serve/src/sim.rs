//! The serving simulation proper.
//!
//! The inner event loop is allocation-free in steady state: events ride a
//! [`CalendarQueue`] as packed 128-bit keys, batch membership lives in a
//! recycled slab instead of per-batch `Vec`s, per-(service, class)
//! accounting is flat and contiguous, and per-server batch timings are
//! memoized. The optimized engine is property-tested to produce
//! byte-identical reports to the frozen pre-optimization simulator
//! (`crate::reference`, compiled for tests only).

use crate::recovery::{RecoverySimReport, RecoverySpec};
use crate::report::{ClassReport, ServerActivity, ServiceReport, ServingReport, TenantReport};
use crate::resilience::ResilienceSpec;
use crate::router::Router;
use parva_deploy::{Deployment, ServiceSpec, Tenant};
use parva_des::{CalendarQueue, LatencyHistogram, RngStream, SerialResource, SimTime};
use parva_obs::{Row, TraceEvent, TraceSink, PID_SERVE};
use parva_perf::interference::total_interference;
use parva_perf::{ComputeShare, Model, PerfParams};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// One ingress class of a service's offered load.
///
/// A class is a sub-stream of a service's traffic that enters the cluster
/// with a fixed network latency already spent — the multi-region serving
/// model: class 0 is the region's local traffic (`network_ms == 0`), later
/// classes are traffic spilled from remote regions, each charged the
/// inter-region RTT. The network term rides through the DES request path:
/// every completed request's measured latency is `queue + service +
/// network_ms`, and the SLO check runs against that sum, so a spilled
/// request has a tighter effective queueing budget than a local one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngressClass {
    /// Offered rate of this class, req/s.
    pub rate_rps: f64,
    /// Network latency each request of this class has already paid before
    /// reaching the cluster, ms (charged against the SLO).
    pub network_ms: f64,
}

impl IngressClass {
    /// A purely local class at `rate_rps` (no network term).
    #[must_use]
    pub fn local(rate_rps: f64) -> Self {
        Self {
            rate_rps,
            network_ms: 0.0,
        }
    }
}

/// The request arrival process offered to each service.
///
/// The paper's load generator offers each service its Table IV rate; a
/// Poisson stream is the standard open-loop model (and what the SLO/2
/// queuing budget of §IV-A is sized for). The bursty variant stresses that
/// budget: a Markov-modulated Poisson process alternates calm and burst
/// phases around the same mean rate, fattening the queue-length tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at the offered rate (the default).
    Poisson,
    /// Two-phase Markov-modulated Poisson process with the same mean rate:
    /// phases flip after exp-distributed durations, the burst phase runs at
    /// `burst_factor` × the calm phase's rate.
    Mmpp {
        /// Burst-to-calm rate ratio (> 1).
        burst_factor: f64,
        /// Mean phase duration, seconds.
        mean_phase_s: f64,
    },
    /// Evenly spaced arrivals (variance-free control case).
    Deterministic,
}

impl ArrivalProcess {
    /// Instantaneous rate multiplier of the current phase.
    pub(crate) fn phase_rate(self, rate_rps: f64, bursting: bool) -> f64 {
        match self {
            Self::Poisson | Self::Deterministic => rate_rps,
            Self::Mmpp { burst_factor, .. } => {
                // Mean preserved: (calm + burst)/2 = rate.
                let calm = 2.0 * rate_rps / (1.0 + burst_factor);
                if bursting {
                    calm * burst_factor
                } else {
                    calm
                }
            }
        }
    }
}

/// Serving-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Warm-up period excluded from measurement, seconds.
    pub warmup_s: f64,
    /// Measurement window, seconds.
    pub duration_s: f64,
    /// Post-window drain period (events beyond it are discarded), seconds.
    pub drain_s: f64,
    /// Master RNG seed (per-service arrival streams derive from it).
    pub seed: u64,
    /// Arrival process shape.
    pub arrivals: ArrivalProcess,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            warmup_s: 2.0,
            duration_s: 10.0,
            drain_s: 5.0,
            seed: 42,
            arrivals: ArrivalProcess::Poisson,
        }
    }
}

/// Sentinel marking an empty batch-timing memo slot.
const MEMO_EMPTY: SimTime = SimTime(u64::MAX);

/// Deterministic per-tenant admission gate: a token bucket refilled
/// continuously at the tenant's quota rate, with one second of burst
/// capacity (floored at one token so a tiny quota still admits). No RNG
/// is involved, so quota enforcement never perturbs any sample path — a
/// rejected arrival simply skips the routing stage.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last_us: u64,
    rate_per_us: f64,
    cap: f64,
}

impl TokenBucket {
    fn new(quota_rps: f64) -> Self {
        let cap = quota_rps.max(1.0);
        Self {
            tokens: cap,
            last_us: 0,
            rate_per_us: quota_rps * 1e-6,
            cap,
        }
    }

    /// Admit one request at simulation time `t`?
    fn admit(&mut self, t: SimTime) -> bool {
        let now = t.micros();
        let dt = now.saturating_sub(self.last_us) as f64;
        self.last_us = now;
        self.tokens = (self.tokens + dt * self.rate_per_us).min(self.cap);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One live request in the resilience request table. Without a resilience
/// policy the engine never materializes request identity (queue entries are
/// plain `(arrival, class)` pairs); with one, queue/slab entries carry a
/// request id into this table so timeouts, retries and hedge cancellation
/// can find a request wherever it sits.
#[derive(Debug, Clone, Copy)]
struct ResReq {
    service: u32,
    class: u32,
    /// The *original* arrival: latency (and the SLO check) is always
    /// measured from here, so a retried request that finally completes
    /// still pays for every failed attempt — the accounting that makes
    /// retry storms visible instead of laundering them.
    first_arrival: SimTime,
    /// Failed attempts so far (bounds retries).
    attempts: u32,
    /// Staleness guard for pending timeout/retry/hedge events.
    epoch: u32,
    /// Server whose queue holds the primary copy.
    server: u32,
    /// Server whose queue holds the hedge copy (`-1` = not hedged).
    hedge_server: i64,
}

/// All mutable resilience state of one run: the request table (slab with a
/// free list — steady state allocates nothing), the cluster-wide retry
/// budget, the backoff-jitter RNG stream, and per-service counters.
#[derive(Debug)]
struct ResState {
    spec: ResilienceSpec,
    reqs: Vec<ResReq>,
    free: Vec<u32>,
    budget: Option<TokenBucket>,
    rng: RngStream,
    timeouts: Vec<u64>,
    retries: Vec<u64>,
    shed: Vec<u64>,
    hedges: Vec<u64>,
    hedge_wins: Vec<u64>,
}

impl ResState {
    fn new(spec: ResilienceSpec, seed: u64, services: usize) -> Self {
        Self {
            spec,
            reqs: Vec::new(),
            free: Vec::new(),
            budget: (spec.retry_budget_rps > 0.0).then(|| TokenBucket::new(spec.retry_budget_rps)),
            // A dedicated stream: backoff jitter draws must not perturb
            // any arrival stream's sample path.
            rng: RngStream::new(seed ^ 0x52E5_111E_4CE5_7A7E, 0xBAC0FF),
            timeouts: vec![0; services],
            retries: vec![0; services],
            shed: vec![0; services],
            hedges: vec![0; services],
            hedge_wins: vec![0; services],
        }
    }

    fn alloc(&mut self, service: u32, class: u32, t: SimTime, server: u32) -> u32 {
        if let Some(rid) = self.free.pop() {
            let r = &mut self.reqs[rid as usize];
            r.service = service;
            r.class = class;
            r.first_arrival = t;
            r.attempts = 0;
            // The epoch survives recycling (bumped at free), so events
            // addressed to the previous occupant stay stale.
            r.server = server;
            r.hedge_server = -1;
            rid
        } else {
            self.reqs.push(ResReq {
                service,
                class,
                first_arrival: t,
                attempts: 0,
                epoch: 0,
                server,
                hedge_server: -1,
            });
            (self.reqs.len() - 1) as u32
        }
    }

    /// Retire a request id: bump its epoch (stale-ing every pending event
    /// addressed to it) and return it to the free list.
    fn free_req(&mut self, rid: u32) {
        let r = &mut self.reqs[rid as usize];
        r.epoch = r.epoch.wrapping_add(1);
        self.free.push(rid);
    }

    /// Is `epoch_bits` (an event's 20-bit payload field) current for `rid`?
    fn epoch_current(&self, rid: usize, epoch_bits: usize) -> bool {
        u64::from(self.reqs[rid].epoch) & B_MASK == epoch_bits as u64
    }
}

/// Drop one request id out of a server queue (timeout pull or hedge twin
/// cancellation). O(queue) — both paths are rare relative to arrivals.
fn remove_rid(queue: &mut VecDeque<(SimTime, u32)>, rid: u32) {
    if let Some(pos) = queue.iter().position(|&(_, x)| x == rid) {
        queue.remove(pos);
    }
}

/// One executable server: a MIG segment (p processes) or an MPS partition.
#[derive(Debug)]
struct Server {
    service: usize,
    /// Logical GPU hosting this server (MIG: the segment's GPU index; MPS:
    /// the partition's GPU index) — the unit recovery events darken.
    gpu: usize,
    model: Model,
    share: ComputeShare,
    batch: u32,
    procs: u32,
    /// True interference sum from heterogeneous MPS co-residents.
    interference: f64,
    /// Adaptive-batching deadline: a partial batch launches once its oldest
    /// request has waited this long (SLO/2 queue budget minus one full batch
    /// cycle — the standard batching-with-timeout of Clipper/GSLICE, which
    /// every scheduler in the paper's lineup assumes).
    batch_timeout: SimTime,
    /// Per-ingress-class deadlines: the class's network term is already
    /// spent before arrival, so remote classes get the base timeout minus
    /// their RTT (floored at zero) — holding a spilled request for queueing
    /// budget it no longer has would blow its SLO for free.
    class_timeouts: Vec<SimTime>,
    /// Memoized `(cycle, comp_us)` per `(b_eff, n_busy)` point — the
    /// perf-model arithmetic is pure, so each point is computed at most
    /// once per sim. Indexed `(b_eff - 1) * procs + (n_busy - 1)`;
    /// [`MEMO_EMPTY`] marks an unevaluated slot.
    perf_memo: Vec<(SimTime, u64)>,
    /// True while the server's GPU has recovery work outstanding (re-flash
    /// or weight copy): requests queue but no batch launches.
    dark: bool,
    /// Waiting requests: `(arrival time, ingress class)`.
    queue: VecDeque<(SimTime, u32)>,
    busy: u32,
    /// SM-occupancy microseconds accumulated inside the window.
    busy_comp_us: u64,
}

// ---- packed event encoding (48-bit CalendarQueue payloads) ----
//
// tag (4 bits) | a (24 bits) | b (20 bits). Index widths are asserted at
// encode time in debug builds; real deployments sit orders of magnitude
// below them (b: up to ~1M servers / classes, a: up to ~16M services /
// in-flight batches / recovery ops).

const TAG_SHIFT: u32 = 44;
const A_SHIFT: u32 = 20;
const A_MASK: u64 = (1 << 24) - 1;
const B_MASK: u64 = (1 << 20) - 1;

const TAG_ARRIVAL: u64 = 0;
const TAG_DONE: u64 = 1;
const TAG_DEADLINE: u64 = 2;
const TAG_RECOVERY_BEGIN: u64 = 3;
const TAG_GPU_RECOVERED: u64 = 4;
// Resilience lifecycle events (only scheduled when a non-inert
// `ResilienceSpec` is configured). Each carries `a` = request id into the
// resilience request table and `b` = the request's epoch (mod 2^20): any
// state change — launch, timeout, retry, completion — bumps the epoch, so
// stale events fall through without a lookup table of cancellations.
const TAG_TIMEOUT: u64 = 5;
const TAG_RETRY: u64 = 6;
const TAG_HEDGE: u64 = 7;

#[inline]
fn ev(tag: u64, a: u64, b: u64) -> u64 {
    debug_assert!(a <= A_MASK, "event field a exceeds 24 bits");
    debug_assert!(b <= B_MASK, "event field b exceeds 20 bits");
    (tag << TAG_SHIFT) | (a << A_SHIFT) | b
}

/// Batching deadline for a server: the SLO/2 queuing budget minus one full
/// batch cycle, floored at 1 ms and capped at 250 ms (production batchers
/// cap the artificial delay regardless of how loose the SLO is).
fn batch_timeout(spec: &ServiceSpec, server: &Server) -> SimTime {
    let (full_cycle, _) = batch_times(server, server.batch, server.procs);
    timeout_from_budget(spec, full_cycle)
}

/// The pure budget arithmetic behind [`batch_timeout`], shared with the
/// streaming engine (which carries its own server representation).
pub(crate) fn timeout_from_budget(spec: &ServiceSpec, full_cycle: SimTime) -> SimTime {
    let budget_us = SimTime::from_ms(spec.slo.internal_target_ms()).micros();
    SimTime(
        budget_us
            .saturating_sub(full_cycle.micros())
            .clamp(1_000, 250_000),
    )
}

/// Hedge-fire delay for one request: the service's observed in-window
/// latency at the configured quantile once enough completions exist, else
/// the SLO scaled by the quantile (the cold-start prior — before any
/// measurement the SLO is the only latency expectation the frontend has).
/// Deterministic: both inputs are pure functions of simulation state.
fn hedge_delay(hist: &LatencyHistogram, spec: &ServiceSpec, quantile: f64) -> SimTime {
    let ms = if hist.count() >= 50 {
        hist.quantile_ms(quantile)
    } else {
        spec.slo.latency_ms * quantile
    };
    SimTime::from_ms(ms)
}

fn build_servers(deployment: &Deployment, specs: &[ServiceSpec]) -> Vec<Server> {
    let idx_of = |id: u32| specs.iter().position(|s| s.id == id);
    let mut servers = Vec::new();
    match deployment {
        Deployment::Mig(d) => {
            for ps in d.segments() {
                let Some(service) = idx_of(ps.segment.service_id) else {
                    continue;
                };
                let mut server = Server {
                    service,
                    gpu: ps.gpu,
                    model: ps.segment.model,
                    share: ComputeShare::Mig(ps.segment.triplet.instance),
                    batch: ps.segment.triplet.batch,
                    procs: ps.segment.triplet.procs,
                    interference: 0.0, // MIG isolates (paper §II-B)
                    batch_timeout: SimTime::ZERO,
                    class_timeouts: Vec::new(),
                    perf_memo: Vec::new(),
                    dark: false,
                    queue: VecDeque::new(),
                    busy: 0,
                    busy_comp_us: 0,
                };
                server.batch_timeout = batch_timeout(&specs[service], &server);
                servers.push(server);
            }
        }
        Deployment::Mps(d) => {
            for (gi, gpu) in d.gpus.iter().enumerate() {
                for (pi, p) in gpu.partitions.iter().enumerate() {
                    let Some(service) = idx_of(p.service_id) else {
                        continue;
                    };
                    let co = d.gpus[gi].co_residents(pi);
                    let mut server = Server {
                        service,
                        gpu: gi,
                        model: p.model,
                        share: ComputeShare::Fraction(p.fraction),
                        batch: p.batch,
                        procs: p.procs.max(1),
                        interference: total_interference(p.model, &co),
                        batch_timeout: SimTime::ZERO,
                        class_timeouts: Vec::new(),
                        perf_memo: Vec::new(),
                        dark: false,
                        queue: VecDeque::new(),
                        busy: 0,
                        busy_comp_us: 0,
                    };
                    server.batch_timeout = batch_timeout(&specs[service], &server);
                    servers.push(server);
                }
            }
        }
    }
    for s in &mut servers {
        s.perf_memo = vec![(MEMO_EMPTY, 0); (s.batch * s.procs) as usize];
    }
    servers
}

/// Routing weight of each server (its scheduler-predicted throughput).
fn predicted_weights(deployment: &Deployment, specs: &[ServiceSpec]) -> Vec<Vec<(usize, f64)>> {
    // For each service index: list of (server index, weight).
    let mut per_service: Vec<Vec<(usize, f64)>> = vec![Vec::new(); specs.len()];
    let mut si = 0usize;
    match deployment {
        Deployment::Mig(d) => {
            for ps in d.segments() {
                if let Some(s) = specs.iter().position(|x| x.id == ps.segment.service_id) {
                    per_service[s].push((si, ps.segment.throughput_rps));
                    si += 1;
                }
            }
        }
        Deployment::Mps(d) => {
            for (_, p) in d.partitions() {
                if let Some(s) = specs.iter().position(|x| x.id == p.service_id) {
                    per_service[s].push((si, p.throughput_rps));
                    si += 1;
                }
            }
        }
    }
    per_service
}

/// Service time and SM-occupancy of one batch starting now on `server` with
/// `n_busy` concurrently active processes.
fn batch_times(server: &Server, b_eff: u32, n_busy: u32) -> (SimTime, u64) {
    perf_batch_times(
        server.model,
        server.share,
        server.interference,
        b_eff,
        n_busy,
    )
}

/// The pure perf-model evaluation behind [`batch_times`]: service time and
/// SM-occupancy of one batch of `b_eff` with `n_busy` concurrently active
/// processes on a `(model, share, interference)` executor. Shared with the
/// streaming engine so both engines price batches identically.
pub(crate) fn perf_batch_times(
    model: Model,
    share: ComputeShare,
    interference: f64,
    b_eff: u32,
    n_busy: u32,
) -> (SimTime, u64) {
    let params = PerfParams::for_model(model);
    let gpcs = share.effective_gpcs();
    let cycle_ms =
        parva_perf::math::cycle_ms_with_interference(&params, gpcs, b_eff, n_busy, interference);
    let comp_ms = parva_perf::math::t_comp(&params, gpcs, b_eff) * (1.0 + interference);
    (
        SimTime::from_ms(cycle_ms),
        SimTime::from_ms(comp_ms).micros(),
    )
}

/// Memoized [`batch_times`]: one perf-model evaluation per distinct
/// `(b_eff, n_busy)` point per server.
#[inline]
fn batch_times_memo(
    servers: &mut [Server],
    server: usize,
    b_eff: u32,
    n_busy: u32,
) -> (SimTime, u64) {
    let idx = ((b_eff - 1) * servers[server].procs + (n_busy - 1)) as usize;
    let cached = servers[server].perf_memo[idx];
    if cached.0 != MEMO_EMPTY {
        return cached;
    }
    let computed = batch_times(&servers[server], b_eff, n_busy);
    servers[server].perf_memo[idx] = computed;
    computed
}

/// Book the deterministic recovery timeline: per op, the instant the GPU
/// is fully recovered. The control plane reacts first; re-flashes then
/// serialize on each node's NVML lock in op order; weight copies become
/// eligible when their GPU's re-flash completes (immediately for prepared
/// / no-re-flash ops) and are granted FIFO by eligibility on the node's
/// PCIe link.
pub(crate) fn recovery_timeline<S: TraceSink>(
    spec: &RecoverySpec,
    t0: SimTime,
    sink: &mut S,
) -> Vec<SimTime> {
    let t_cp = t0 + SimTime::from_ms(spec.control_plane_ms);
    let mut reflash_locks: BTreeMap<usize, SerialResource> = BTreeMap::new();
    let mut ready: Vec<SimTime> = Vec::with_capacity(spec.ops.len());
    for (i, op) in spec.ops.iter().enumerate() {
        if !op.prepared && op.reflash {
            let (start, done) = reflash_locks
                .entry(op.node)
                .or_default()
                .acquire(t_cp, SimTime::from_ms(spec.reflash_ms));
            if S::ENABLED {
                sink.emit(
                    TraceEvent::span("reflash", "recovery", start.micros(), spec_dur(start, done))
                        .pid(PID_SERVE)
                        .tid(op.node as u32)
                        .arg_u64("op", i as u64)
                        .arg_u64("node", op.node as u64),
                );
            }
            ready.push(done);
        } else {
            ready.push(t_cp);
        }
    }
    let mut requests: Vec<(usize, SimTime, usize)> = spec
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| !op.prepared && op.copy_gib > 0.0)
        .map(|(i, op)| (op.node, ready[i], i))
        .collect();
    requests.sort_unstable_by_key(|&(node, eligible, i)| (node, eligible, i));
    let mut links: BTreeMap<usize, SerialResource> = BTreeMap::new();
    for (node, eligible, i) in requests {
        let secs = spec.ops[i].copy_gib / spec.link_gib_per_s.max(1e-9);
        let (start, done) = links
            .entry(node)
            .or_default()
            .acquire(eligible, SimTime::from_secs(secs));
        if S::ENABLED {
            sink.emit(
                TraceEvent::span("copy", "recovery", start.micros(), spec_dur(start, done))
                    .pid(PID_SERVE)
                    .tid(node as u32)
                    .arg_u64("op", i as u64)
                    .arg_f64("gib", spec.ops[i].copy_gib),
            );
        }
        ready[i] = done;
    }
    ready
}

/// Span duration in µs between two booked instants (monotone by
/// construction of [`SerialResource::acquire`]).
#[inline]
fn spec_dur(start: SimTime, done: SimTime) -> u64 {
    done.micros().saturating_sub(start.micros())
}

/// Run the serving simulation for `deployment` under `specs`' offered load.
///
/// Fully deterministic for a given `config.seed`. Each service is offered
/// one purely local ingress class at its spec rate.
#[must_use]
#[deprecated(
    since = "0.2.0",
    note = "use serve::Simulation::new(deployment, specs).config(config).run()"
)]
pub fn simulate(
    deployment: &Deployment,
    specs: &[ServiceSpec],
    config: &ServingConfig,
) -> ServingReport {
    crate::Simulation::new(deployment, specs)
        .config(config)
        .run()
}

/// Salt mixed into the arrival stream seed of ingress classes ≥ 1 so every
/// class has an independent sample path. Class 0 uses the raw seed, which
/// keeps single-class runs bit-identical to [`simulate`] from before
/// ingress classes existed.
pub(crate) fn class_seed(seed: u64, class: usize) -> u64 {
    seed ^ (class as u64).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Run the serving simulation with explicit per-service ingress classes.
///
/// `ingress[i]` lists the arrival classes of `specs[i]`; when `ingress` is
/// empty (or shorter than `specs`) the missing services fall back to one
/// local class at the spec's rate. A class's `network_ms` is added to every
/// one of its requests' measured latency and charged against the service
/// SLO — the RTT term of cross-region serving. Per-class outcomes land in
/// [`ServingReport::classes`].
///
/// Fully deterministic for a given `config.seed`.
#[must_use]
#[deprecated(
    since = "0.2.0",
    note = "use serve::Simulation::new(deployment, specs).ingress(ingress).config(config).run()"
)]
pub fn simulate_with_ingress(
    deployment: &Deployment,
    specs: &[ServiceSpec],
    ingress: &[Vec<IngressClass>],
    config: &ServingConfig,
) -> ServingReport {
    crate::Simulation::new(deployment, specs)
        .ingress(ingress)
        .config(config)
        .run()
}

/// Launch one batch of `size` on `server` (caller checked feasibility).
///
/// With a resilience policy, launching is the **commit point** of every
/// drafted request: its epoch bumps (pending timeout/hedge events go
/// stale) and, for hedged requests, first-wins cancellation pulls the twin
/// copy out of the other server's queue — exactly one copy ever executes.
#[inline]
#[allow(clippy::too_many_arguments)]
fn launch<S: TraceSink>(
    q: &mut CalendarQueue,
    servers: &mut [Server],
    slab: &mut Vec<Vec<(SimTime, u32)>>,
    slab_comp: &mut Vec<u64>,
    free: &mut Vec<u32>,
    server: usize,
    size: u32,
    res: &mut Option<ResState>,
    specs: &[ServiceSpec],
    win: (SimTime, SimTime),
    sink: &mut S,
) {
    let id = free.pop().unwrap_or_else(|| {
        slab.push(Vec::new());
        slab_comp.push(0);
        (slab.len() - 1) as u32
    });
    let batch = &mut slab[id as usize];
    batch.clear();
    batch.extend(servers[server].queue.drain(..size as usize));
    if let Some(rs) = res.as_mut() {
        let service = servers[server].service;
        for &(_, rid) in &slab[id as usize] {
            let r = &mut rs.reqs[rid as usize];
            r.epoch = r.epoch.wrapping_add(1);
            let hedge_server = r.hedge_server;
            let primary = r.server as usize;
            r.hedge_server = -1;
            r.server = server as u32;
            if hedge_server >= 0 {
                // First-wins: cancel whichever copy is still queued.
                let hedge_won = hedge_server as usize == server;
                let twin = if hedge_won {
                    primary
                } else {
                    hedge_server as usize
                };
                remove_rid(&mut servers[twin].queue, rid);
                if hedge_won {
                    let now = q.now();
                    if now >= win.0 && now < win.1 {
                        rs.hedge_wins[service] += 1;
                    }
                    if S::ENABLED {
                        sink.emit(
                            TraceEvent::instant("hedge-win", "resilience", now.micros())
                                .pid(PID_SERVE)
                                .tid(server as u32)
                                .arg_u64("service", u64::from(specs[service].id)),
                        );
                    }
                }
            }
        }
    }
    servers[server].busy += 1;
    let n_busy = servers[server].busy;
    let (cycle, comp_us) = batch_times_memo(servers, server, size, n_busy);
    slab_comp[id as usize] = comp_us;
    if S::ENABLED {
        let now = q.now();
        // Batch formation: from the oldest member's arrival to launch.
        let head = slab[id as usize]
            .iter()
            .map(|&(t, _)| t)
            .min()
            .unwrap_or(now);
        let service = servers[server].service as u64;
        sink.emit(
            TraceEvent::span("batch-form", "batch", head.micros(), spec_dur(head, now))
                .pid(PID_SERVE)
                .tid(server as u32)
                .arg_u64("service", service)
                .arg_u64("size", u64::from(size)),
        );
        sink.emit(
            TraceEvent::span("execute", "batch", now.micros(), cycle.micros())
                .pid(PID_SERVE)
                .tid(server as u32)
                .arg_u64("service", service)
                .arg_u64("size", u64::from(size))
                .arg_u64("n_busy", u64::from(n_busy)),
        );
    }
    q.schedule_in(cycle, ev(TAG_DONE, u64::from(id), server as u64));
}

/// Adaptive batching: launch full batches eagerly; for a partial queue,
/// launch once the head request's deadline expires, else arm a deadline.
/// Dark servers (recovery outstanding on their GPU) launch nothing —
/// their queues drain when the GPU's recovery op completes.
#[inline]
#[allow(clippy::too_many_arguments)]
fn try_start<S: TraceSink>(
    q: &mut CalendarQueue,
    servers: &mut [Server],
    slab: &mut Vec<Vec<(SimTime, u32)>>,
    slab_comp: &mut Vec<u64>,
    free: &mut Vec<u32>,
    server: usize,
    res: &mut Option<ResState>,
    specs: &[ServiceSpec],
    win: (SimTime, SimTime),
    sink: &mut S,
) {
    loop {
        let s = &servers[server];
        if s.dark || s.busy >= s.procs {
            return;
        }
        let queued = s.queue.len();
        let full = s.batch;
        if queued >= full as usize {
            launch(
                q, servers, slab, slab_comp, free, server, full, res, specs, win, sink,
            );
            continue;
        }
        if queued == 0 {
            return;
        }
        let (head, x) = *s.queue.front().expect("non-empty");
        // Queue entries carry the ingress class directly, or (with a
        // resilience policy) a request id the class is looked up through.
        let class = match res.as_ref() {
            Some(rs) => rs.reqs[x as usize].class,
            None => x,
        };
        let timeout = s
            .class_timeouts
            .get(class as usize)
            .copied()
            .unwrap_or(s.batch_timeout);
        let deadline = head + timeout;
        if q.now() >= deadline {
            let size = (queued as u32).min(full);
            launch(
                q, servers, slab, slab_comp, free, server, size, res, specs, win, sink,
            );
        } else {
            q.schedule(deadline, ev(TAG_DEADLINE, 0, server as u64));
        }
        return;
    }
}

/// Run the serving simulation with recovery work riding the same event
/// queue as the traffic.
///
/// `recovery` lowers a fleet migration into simulator events: at
/// [`RecoverySpec::start_ms`] the affected servers go **dark** (requests
/// keep arriving and queueing, batches stop launching), the control plane
/// reacts, MIG re-flashes serialize per node, and weight copies queue FIFO
/// on each node's PCIe link. Servers light back up as their GPU's op
/// completes, so the disruption-window compliance dip and the end-to-end
/// recovery latency are *measured* outcomes of the DES
/// ([`ServingReport::recovery`]), not closed-form estimates. `None` (or an
/// empty spec) is bit-identical to a recovery-free run.
///
/// Fully deterministic for a given `config.seed`.
#[must_use]
#[deprecated(
    since = "0.2.0",
    note = "use serve::Simulation::new(deployment, specs).ingress(ingress)\
            .recovery_opt(recovery).config(config).run()"
)]
pub fn simulate_with_recovery(
    deployment: &Deployment,
    specs: &[ServiceSpec],
    ingress: &[Vec<IngressClass>],
    recovery: Option<&RecoverySpec>,
    config: &ServingConfig,
) -> ServingReport {
    crate::Simulation::new(deployment, specs)
        .ingress(ingress)
        .recovery_opt(recovery)
        .config(config)
        .run()
}

/// Deliver the gauge rows for one sampling boundary: an aggregate
/// `tick` row (queue depth, in-flight batches, GPU busy fraction, dark
/// servers) followed by one `service` row per service with its
/// cumulative in-window SLO attainment, and — only when tenants are
/// configured — a `tenant` column on the service rows plus one `tenant`
/// row per tenant with its admission/attainment rollup. All values derive
/// from simulation state only, so sampled series are byte-identical
/// across runs, and tenant-free runs emit rows byte-identical to the
/// pre-tenant schema.
#[allow(clippy::too_many_arguments)]
fn sample_serve_gauges<S: TraceSink>(
    sink: &mut S,
    ts_us: u64,
    servers: &[Server],
    specs: &[ServiceSpec],
    tenants: &[Tenant],
    offered: &[u64],
    completed: &[u64],
    within_slo: &[u64],
    rejected: &[u64],
    res: Option<&ResState>,
) {
    let t_ms = ts_us as f64 / 1_000.0;
    let mut queue_depth = 0u64;
    let mut inflight = 0u64;
    let mut busy_procs = 0u64;
    let mut total_procs = 0u64;
    let mut dark = 0u64;
    for s in servers {
        queue_depth += s.queue.len() as u64;
        inflight += u64::from(s.busy);
        busy_procs += u64::from(s.busy);
        total_procs += u64::from(s.procs);
        dark += u64::from(s.dark);
    }
    let all_completed: u64 = completed.iter().sum();
    let all_within: u64 = within_slo.iter().sum();
    let attainment = |within: u64, done: u64| {
        if done == 0 {
            1.0
        } else {
            within as f64 / done as f64
        }
    };
    let mut tick = Row::new()
        .str("kind", "tick")
        .f64("t_ms", t_ms)
        .u64("queue_depth", queue_depth)
        .u64("inflight_batches", inflight)
        .f64(
            "gpu_busy_frac",
            if total_procs == 0 {
                0.0
            } else {
                busy_procs as f64 / total_procs as f64
            },
        )
        .u64("dark_servers", dark)
        .u64("offered", offered.iter().sum())
        .u64("completed", all_completed)
        .u64("within_slo", all_within)
        .f64("slo_attainment", attainment(all_within, all_completed));
    // Resilience columns ride the tick row only when a policy is active,
    // so resilience-free runs keep the pre-resilience gauge schema
    // byte-exactly. Values are cumulative in-window counts, like the
    // offered/completed columns beside them.
    if let Some(rs) = res {
        tick = tick
            .u64("timeouts", rs.timeouts.iter().sum())
            .u64("retries", rs.retries.iter().sum())
            .u64("shed", rs.shed.iter().sum())
            .u64("hedges", rs.hedges.iter().sum())
            .u64("hedge_wins", rs.hedge_wins.iter().sum());
    }
    sink.sample(tick);
    let has_tenants = !tenants.is_empty();
    for (i, spec) in specs.iter().enumerate() {
        let mut row = Row::new()
            .str("kind", "service")
            .f64("t_ms", t_ms)
            .u64("service", u64::from(spec.id))
            .u64("offered", offered[i])
            .u64("completed", completed[i])
            .u64("within_slo", within_slo[i])
            .f64("slo_attainment", attainment(within_slo[i], completed[i]));
        if has_tenants {
            row = row.u64("tenant", u64::from(spec.tenant));
        }
        sink.sample(row);
    }
    if has_tenants {
        for t in tenants {
            let mut t_offered = 0u64;
            let mut t_rejected = 0u64;
            let mut t_completed = 0u64;
            let mut t_within = 0u64;
            for (i, spec) in specs.iter().enumerate() {
                if spec.tenant == t.id {
                    t_offered += offered[i];
                    t_rejected += rejected[i];
                    t_completed += completed[i];
                    t_within += within_slo[i];
                }
            }
            sink.sample(
                Row::new()
                    .str("kind", "tenant")
                    .f64("t_ms", t_ms)
                    .u64("tenant", u64::from(t.id))
                    .u64("offered", t_offered)
                    .u64("rejected", t_rejected)
                    .u64("completed", t_completed)
                    .u64("within_slo", t_within)
                    .f64("slo_attainment", attainment(t_within, t_completed)),
            );
        }
    }
    sink.advance_sampler();
}

/// The serving engine proper — every public surface ([`crate::Simulation`]
/// and the deprecated `simulate*` shims) funnels through this one
/// function, so there is exactly one event loop to optimize and one to
/// property-test against the frozen reference. Generic over the trace
/// sink: with [`parva_obs::NullSink`] every instrumentation branch is
/// `if false` and monomorphizes away, leaving the pre-observability hot
/// loop; a recording sink collects request/batch/recovery spans and
/// per-tick gauges without perturbing a single simulation decision.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn run_simulation<S: TraceSink>(
    deployment: &Deployment,
    specs: &[ServiceSpec],
    ingress: &[Vec<IngressClass>],
    recovery: Option<&RecoverySpec>,
    tenants: &[Tenant],
    arrival_overrides: &[Option<ArrivalProcess>],
    resilience: Option<&ResilienceSpec>,
    config: &ServingConfig,
    sink: &mut S,
) -> ServingReport {
    let classes: Vec<Vec<IngressClass>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| match ingress.get(i) {
            Some(c) if !c.is_empty() => c.clone(),
            _ => vec![IngressClass::local(s.request_rate_rps)],
        })
        .collect();
    let mut servers = build_servers(deployment, specs);
    // A class's network term is queueing budget already spent before the
    // request reached the cluster: its batching deadline shrinks by the
    // RTT, floored at zero (class 0 keeps the base timeout bit-exactly).
    for s in &mut servers {
        s.class_timeouts = classes[s.service]
            .iter()
            .map(|c| {
                SimTime(
                    s.batch_timeout
                        .micros()
                        .saturating_sub(SimTime::from_ms(c.network_ms).micros()),
                )
            })
            .collect();
    }
    let weights = predicted_weights(deployment, specs);
    let mut routers: Vec<Option<Router>> = weights
        .iter()
        .map(|w| {
            if w.is_empty() {
                None
            } else {
                Some(Router::new(w.iter().map(|(_, t)| *t).collect()))
            }
        })
        .collect();

    let win_start = SimTime::from_secs(config.warmup_s);
    let win_end = SimTime::from_secs(config.warmup_s + config.duration_s);
    let sim_end = SimTime::from_secs(config.warmup_s + config.duration_s + config.drain_s);
    let win = (win_start, win_end);

    // The resilience layer, strictly inert (None) without a policy: the
    // engine then never materializes request identity and every code path
    // below is the pre-resilience one, bit-exactly. An inert spec (all
    // mechanisms disabled) is normalized to None for the same guarantee.
    let mut res: Option<ResState> = resilience
        .filter(|r| !r.is_inert())
        .map(|r| ResState::new(*r, config.seed, specs.len()));
    // Per-(service, class) effective attempt timeout: the class's network
    // term is budget already spent, so remote classes time out sooner
    // (floored at zero — an attempt can be dead on arrival).
    let res_timeout: Vec<SimTime> = match res.as_ref() {
        Some(rs) if rs.spec.timeout_ms > 0.0 => classes
            .iter()
            .flat_map(|cls| {
                cls.iter().map(|c| {
                    SimTime(
                        SimTime::from_ms(rs.spec.timeout_ms)
                            .micros()
                            .saturating_sub(SimTime::from_ms(c.network_ms).micros()),
                    )
                })
            })
            .collect(),
        _ => Vec::new(),
    };
    // Server index → (service, router slot), for health-checked routing.
    let slot_of: Vec<Option<(usize, usize)>> = if res.is_some() {
        let mut m = vec![None; servers.len()];
        for (svc, w) in weights.iter().enumerate() {
            for (k, &(sidx, _)) in w.iter().enumerate() {
                m[sidx] = Some((svc, k));
            }
        }
        m
    } else {
        Vec::new()
    };
    let health_checked = res.as_ref().is_some_and(|rs| rs.spec.health_checked);

    if S::ENABLED {
        // Stamp the measurement window into the trace: every report
        // counter covers `[start_us, end_us)`, so offline analyzers
        // (`parva_obs::analyze`, `parvactl trace audit`) can recompute
        // the report's accounting from spans alone, without the config.
        sink.emit(
            TraceEvent::instant("window", "meta", 0)
                .pid(PID_SERVE)
                .arg_u64("start_us", win_start.micros())
                .arg_u64("end_us", win_end.micros()),
        );
    }

    let mut q = CalendarQueue::with_capacity(128);

    // Flat per-(service, class) layout: entries of service `i` live at
    // `cbase[i] .. cbase[i + 1]` in every class-indexed array below.
    let mut cbase: Vec<usize> = Vec::with_capacity(specs.len() + 1);
    let mut total_classes = 0usize;
    for cls in &classes {
        cbase.push(total_classes);
        total_classes += cls.len();
    }
    cbase.push(total_classes);
    // Services with exactly one ingress class take a fast accounting path:
    // the class-level row provably equals the service-level row (same
    // increment conditions, same record sequence), so the hot loop
    // maintains only the service row and the report derives the class row.
    let single: Vec<bool> = classes.iter().map(|c| c.len() == 1).collect();
    let class_net: Vec<f64> = classes
        .iter()
        .flat_map(|c| c.iter().map(|cl| cl.network_ms))
        .collect();
    let class_rate: Vec<f64> = classes
        .iter()
        .flat_map(|c| c.iter().map(|cl| cl.rate_rps))
        .collect();
    // Per-service arrival process: the configured default, unless an
    // override targets the service (the noisy-neighbor axis — one
    // tenant's services can burst while the rest stay calm). With no
    // overrides every entry equals `config.arrivals`, so all draw
    // sequences are bit-identical to the pre-override engine.
    let svc_proc: Vec<ArrivalProcess> = (0..specs.len())
        .map(|i| {
            arrival_overrides
                .get(i)
                .copied()
                .flatten()
                .unwrap_or(config.arrivals)
        })
        .collect();
    // Memoryless arrivals need no phase state: the hot loop draws the gap
    // straight from the class's stream (identical draw to `next_gap`).
    let poisson = svc_proc
        .iter()
        .all(|p| matches!(p, ArrivalProcess::Poisson));

    // Tenant machinery, strictly inert when no tenants are configured:
    // per-service tenant binding, one admission token bucket per limited
    // tenant (shared across the tenant's services — the quota is a
    // tenant-wide contract), and per-service rejection counters.
    let has_tenants = !tenants.is_empty();
    let svc_tenant_idx: Vec<Option<usize>> = specs
        .iter()
        .map(|s| {
            if s.tenant == 0 {
                None
            } else {
                tenants.iter().position(|t| t.id == s.tenant)
            }
        })
        .collect();
    let mut quota: Vec<Option<TokenBucket>> = tenants
        .iter()
        .map(|t| t.is_limited().then(|| TokenBucket::new(t.quota_rps)))
        .collect();
    let mut rejected = vec![0u64; specs.len()];

    // One arrival stream per (service, class); class 0 reuses the exact
    // pre-ingress stream derivation for backwards-identical sample paths.
    let mut arrival_rng: Vec<RngStream> = specs
        .iter()
        .zip(&classes)
        .flat_map(|(s, cls)| {
            (0..cls.len()).map(|c| RngStream::new(class_seed(config.seed, c), u64::from(s.id)))
        })
        .collect();

    // MMPP phase state per service (ignored by the other processes). Phase
    // streams are separate RNG streams so flipping the arrival process does
    // not perturb the arrival sample path structure.
    let mut bursting: Vec<bool> = vec![false; specs.len()];
    let mut phase_until: Vec<SimTime> = vec![SimTime::ZERO; specs.len()];
    let mut phase_rng: Vec<RngStream> = specs
        .iter()
        .map(|s| RngStream::new(config.seed ^ 0x9E37_79B9, u64::from(s.id)))
        .collect();

    // Draw the next interarrival gap for class `c` of service `i` as of
    // time `now`. The MMPP phase state is shared across a service's classes
    // (one demand process, several ingress paths).
    let next_gap = |i: usize,
                    c: usize,
                    now: SimTime,
                    rng: &mut Vec<RngStream>,
                    bursting: &mut Vec<bool>,
                    phase_until: &mut Vec<SimTime>,
                    phase_rng: &mut Vec<RngStream>|
     -> SimTime {
        let rate = classes[i][c].rate_rps;
        match svc_proc[i] {
            ArrivalProcess::Poisson => rng[cbase[i] + c].exp_interarrival(rate),
            ArrivalProcess::Deterministic => SimTime::from_secs(1.0 / rate),
            ArrivalProcess::Mmpp { mean_phase_s, .. } => {
                while now >= phase_until[i] {
                    bursting[i] = !bursting[i];
                    phase_until[i] += phase_rng[i].exp_interarrival(1.0 / mean_phase_s.max(1e-6));
                }
                let phase_rate = svc_proc[i].phase_rate(rate, bursting[i]);
                rng[cbase[i] + c].exp_interarrival(phase_rate)
            }
        }
    };

    // Per-service accounting, plus flat per-(service, class) accounting
    // (class rows of single-class services are derived at report time).
    let mut offered = vec![0u64; specs.len()];
    let mut completed = vec![0u64; specs.len()];
    let mut batches = vec![0u64; specs.len()];
    let mut violated = vec![0u64; specs.len()];
    let mut within_slo = vec![0u64; specs.len()];
    let mut latency: Vec<LatencyHistogram> =
        (0..specs.len()).map(|_| LatencyHistogram::new()).collect();
    let mut class_offered = vec![0u64; total_classes];
    let mut class_completed = vec![0u64; total_classes];
    let mut class_within = vec![0u64; total_classes];
    let mut class_latency: Vec<LatencyHistogram> = (0..total_classes)
        .map(|_| LatencyHistogram::new())
        .collect();

    // Seed first arrivals (zero-rate classes never generate traffic).
    // `next_gap` holds a shared borrow of `classes`, which coexists with
    // this shared iteration.
    for (i, cls) in classes.iter().enumerate() {
        for (c, class) in cls.iter().enumerate() {
            if class.rate_rps <= 0.0 {
                continue;
            }
            let t = next_gap(
                i,
                c,
                SimTime::ZERO,
                &mut arrival_rng,
                &mut bursting,
                &mut phase_until,
                &mut phase_rng,
            );
            q.schedule(t, ev(TAG_ARRIVAL, i as u64, c as u64));
        }
    }

    // Recovery riding the same queue: the capacity loss fires at
    // `start_ms`; the op timeline (per-node serialized re-flashes, FIFO
    // PCIe copies) is booked when it fires. `None`/empty specs schedule
    // nothing, keeping the plain path bit-identical.
    let rec_spec = recovery.filter(|r| !r.is_empty());
    let mut rec_report: Option<RecoverySimReport> = None;
    if let Some(spec) = rec_spec {
        q.schedule(
            SimTime::from_ms(spec.start_ms),
            ev(TAG_RECOVERY_BEGIN, 0, 0),
        );
    }

    // The recycled batch slab: `slab[id]` is a batch's request list,
    // `slab_comp[id]` its SM-occupancy, `free` the ids open for reuse —
    // steady-state launches allocate nothing.
    let mut slab: Vec<Vec<(SimTime, u32)>> = Vec::new();
    let mut slab_comp: Vec<u64> = Vec::new();
    let mut free: Vec<u32> = Vec::new();

    // The event loop stops at the window's end, not at `sim_end`: every
    // report field is accumulated strictly inside `[win_start, win_end)`
    // (post-window completions are discarded by the `in_window` gates), so
    // events in the drain tail cannot influence the report — with one
    // exception, a recovery spec whose start lands after the window, which
    // the post-loop fixup below reproduces exactly as the drained loop
    // would have (the recovery report is fully determined at its begin
    // event). Skipping the tail is therefore bit-identical and saves the
    // whole drain period's event processing.
    // When tracing, remember when each server went dark so the `dark`
    // span can be closed at its GPU's recovery instant.
    let mut dark_since: Vec<SimTime> = if S::ENABLED {
        vec![SimTime::ZERO; servers.len()]
    } else {
        Vec::new()
    };

    let loop_started = std::time::Instant::now();
    let cpu_started = parva_des::counters::thread_cpu_nanos();
    while let Some((t, payload)) = q.pop() {
        if S::ENABLED {
            // Deliver any gauge boundaries the simulation clock just
            // crossed (state as of strictly before `t`), capped at the
            // window's end; the post-loop flush covers a queue that
            // drains before `win_end`.
            while sink.next_sample_us() < t.micros() && sink.next_sample_us() <= win_end.micros() {
                sample_serve_gauges(
                    sink,
                    sink.next_sample_us(),
                    &servers,
                    specs,
                    tenants,
                    &offered,
                    &completed,
                    &within_slo,
                    &rejected,
                    res.as_ref(),
                );
            }
        }
        if t > win_end {
            break;
        }
        let a = ((payload >> A_SHIFT) & A_MASK) as usize;
        let b = (payload & B_MASK) as usize;
        match payload >> TAG_SHIFT {
            TAG_ARRIVAL => {
                let (service, class) = (a, b);
                // Schedule the next arrival while load generation is on.
                let flat = cbase[service] + class;
                let next = if poisson {
                    t + arrival_rng[flat].exp_interarrival(class_rate[flat])
                } else {
                    t + next_gap(
                        service,
                        class,
                        t,
                        &mut arrival_rng,
                        &mut bursting,
                        &mut phase_until,
                        &mut phase_rng,
                    )
                };
                if next < win_end {
                    q.schedule(next, payload);
                }
                if t >= win_start && t < win_end {
                    offered[service] += 1;
                    if !single[service] {
                        class_offered[flat] += 1;
                    }
                }
                // Per-tenant admission quota: an over-quota request is
                // rejected and reported, never silently queued — it still
                // counts as offered, lands in the rejection counters, and
                // leaves a traced arrival so `trace audit` can recount
                // per-tenant attainment exactly.
                if has_tenants {
                    if let Some(ti) = svc_tenant_idx[service] {
                        if let Some(bucket) = quota[ti].as_mut() {
                            if !bucket.admit(t) {
                                if t >= win_start && t < win_end {
                                    rejected[service] += 1;
                                }
                                if S::ENABLED {
                                    sink.emit(
                                        TraceEvent::instant("arrival", "request", t.micros())
                                            .pid(PID_SERVE)
                                            .tid(0)
                                            .arg_u64("service", u64::from(specs[service].id))
                                            .arg_u64("class", class as u64)
                                            .arg_u64("tenant", u64::from(specs[service].tenant))
                                            .arg_bool("rejected", true),
                                    );
                                }
                                continue;
                            }
                        }
                    }
                }
                if let Some(router) = routers[service].as_mut() {
                    let k = router.route();
                    let (sidx, _) = weights[service][k];
                    if S::ENABLED {
                        let mut arrival = TraceEvent::instant("arrival", "request", t.micros())
                            .pid(PID_SERVE)
                            .tid(sidx as u32)
                            .arg_u64("service", u64::from(specs[service].id))
                            .arg_u64("class", class as u64);
                        if has_tenants {
                            arrival = arrival.arg_u64("tenant", u64::from(specs[service].tenant));
                        }
                        sink.emit(arrival);
                    }
                    // Queue-depth load shedding: an arrival routed to a
                    // server already holding `shed_queue_depth` requests
                    // is dropped (counted as offered, never served) —
                    // bounded queues instead of unbounded latency.
                    if let Some(rs) = res.as_mut() {
                        let depth = rs.spec.shed_queue_depth as usize;
                        if depth > 0 && servers[sidx].queue.len() >= depth {
                            if t >= win_start && t < win_end {
                                rs.shed[service] += 1;
                            }
                            if S::ENABLED {
                                sink.emit(
                                    TraceEvent::instant("shed", "resilience", t.micros())
                                        .pid(PID_SERVE)
                                        .tid(sidx as u32)
                                        .arg_u64("service", u64::from(specs[service].id)),
                                );
                            }
                            continue;
                        }
                    }
                    let entry = match res.as_mut() {
                        Some(rs) => {
                            let rid = rs.alloc(service as u32, class as u32, t, sidx as u32);
                            let epoch = u64::from(rs.reqs[rid as usize].epoch) & B_MASK;
                            if rs.spec.timeout_ms > 0.0 {
                                let fire = t + res_timeout[flat];
                                // Events past the window can never be
                                // observed (the loop breaks there) — skip
                                // booking them at all.
                                if fire <= win_end {
                                    q.schedule(fire, ev(TAG_TIMEOUT, u64::from(rid), epoch));
                                }
                            }
                            if rs.spec.hedge_quantile > 0.0 {
                                let fire = t + hedge_delay(
                                    &latency[service],
                                    &specs[service],
                                    rs.spec.hedge_quantile,
                                );
                                if fire <= win_end {
                                    q.schedule(fire, ev(TAG_HEDGE, u64::from(rid), epoch));
                                }
                            }
                            (t, rid)
                        }
                        None => (t, class as u32),
                    };
                    servers[sidx].queue.push_back(entry);
                    try_start(
                        &mut q,
                        &mut servers,
                        &mut slab,
                        &mut slab_comp,
                        &mut free,
                        sidx,
                        &mut res,
                        specs,
                        win,
                        sink,
                    );
                }
            }
            TAG_DONE => {
                let (batch_id, server) = (a, b);
                servers[server].busy -= 1;
                let service = servers[server].service;
                let in_window = t >= win_start && t < win_end;
                if S::ENABLED {
                    // One request-lifecycle span per member: arrival →
                    // completion, tagged ok/miss against the SLO
                    // (network RTT included, exactly as accounted). With
                    // a resilience policy the span runs from the request's
                    // *first* arrival — retried attempts pay for the time
                    // their failed predecessors burned.
                    let slo_ms = specs[service].slo.latency_ms;
                    let base = cbase[service];
                    for &(enq, x) in &slab[batch_id] {
                        let (arrived, class) = match res.as_ref() {
                            Some(rs) => {
                                let r = &rs.reqs[x as usize];
                                (r.first_arrival, r.class)
                            }
                            None => (enq, x),
                        };
                        let lat_ms = t.since(arrived).as_ms() + class_net[base + class as usize];
                        let mut span = TraceEvent::span(
                            "request",
                            "request",
                            arrived.micros(),
                            spec_dur(arrived, t),
                        )
                        .pid(PID_SERVE)
                        .tid(server as u32)
                        .arg_u64("service", u64::from(specs[service].id))
                        .arg_u64("class", u64::from(class))
                        .arg_f64("latency_ms", lat_ms)
                        .arg_bool("ok", lat_ms <= slo_ms);
                        if has_tenants {
                            span = span.arg_u64("tenant", u64::from(specs[service].tenant));
                        }
                        sink.emit(span);
                    }
                }
                if in_window {
                    servers[server].busy_comp_us += slab_comp[batch_id];
                    batches[service] += 1;
                    let slo_ms = specs[service].slo.latency_ms;
                    let base = cbase[service];
                    let single_class = single[service];
                    let hist = &mut latency[service];
                    let mut done_n = 0u64;
                    let mut ok_n = 0u64;
                    let mut worst = 0.0f64;
                    for &(enq, x) in &slab[batch_id] {
                        let (arrived, class) = match res.as_ref() {
                            Some(rs) => {
                                let r = &rs.reqs[x as usize];
                                (r.first_arrival, r.class)
                            }
                            None => (enq, x),
                        };
                        let c = class as usize;
                        // The RTT term: network latency already spent by
                        // this ingress class counts against the SLO.
                        let lat_ms = t.since(arrived).as_ms() + class_net[base + c];
                        hist.record_ms(lat_ms);
                        worst = worst.max(lat_ms);
                        done_n += 1;
                        let ok = lat_ms <= slo_ms;
                        ok_n += u64::from(ok);
                        if !single_class {
                            class_latency[base + c].record_ms(lat_ms);
                            class_completed[base + c] += 1;
                            if ok {
                                class_within[base + c] += 1;
                            }
                        }
                    }
                    completed[service] += done_n;
                    within_slo[service] += ok_n;
                    if worst > slo_ms {
                        violated[service] += 1;
                    }
                }
                if let Some(rs) = res.as_mut() {
                    // Completed requests retire: epoch bump stales any
                    // straggler timeout/hedge events, the id recycles.
                    for &(_, rid) in &slab[batch_id] {
                        rs.free_req(rid);
                    }
                }
                free.push(batch_id as u32);
                try_start(
                    &mut q,
                    &mut servers,
                    &mut slab,
                    &mut slab_comp,
                    &mut free,
                    server,
                    &mut res,
                    specs,
                    win,
                    sink,
                );
            }
            TAG_DEADLINE => {
                // Stale deadlines (batch already launched) fall through
                // harmlessly: try_start re-evaluates the queue state.
                try_start(
                    &mut q,
                    &mut servers,
                    &mut slab,
                    &mut slab_comp,
                    &mut free,
                    b,
                    &mut res,
                    specs,
                    win,
                    sink,
                );
            }
            TAG_RECOVERY_BEGIN => {
                let spec = rec_spec.expect("recovery event without a spec");
                let mut dark = 0usize;
                for op in &spec.ops {
                    let Some(g) = op.logical_gpu else { continue };
                    for (si, s) in servers.iter_mut().enumerate() {
                        if s.gpu == g && !s.dark {
                            s.dark = true;
                            dark += 1;
                            if S::ENABLED {
                                dark_since[si] = t;
                            }
                            // Health-checked routing: a dark server is
                            // drained — new arrivals go to its healthy
                            // siblings instead of queueing on a corpse.
                            if health_checked {
                                if let Some((svc, slot)) = slot_of[si] {
                                    if let Some(r) = routers[svc].as_mut() {
                                        r.set_healthy(slot, false);
                                    }
                                }
                            }
                        }
                    }
                }
                if S::ENABLED {
                    sink.emit(
                        TraceEvent::instant("recovery-begin", "recovery", t.micros())
                            .pid(PID_SERVE)
                            .arg_u64("dark_servers", dark as u64)
                            .arg_u64("ops", spec.ops.len() as u64),
                    );
                }
                let timeline = recovery_timeline(spec, t, sink);
                let mut last = t + SimTime::from_ms(spec.control_plane_ms);
                for (i, ready) in timeline.iter().enumerate() {
                    q.schedule(*ready, ev(TAG_GPU_RECOVERED, i as u64, 0));
                    last = last.max(*ready);
                }
                rec_report = Some(RecoverySimReport {
                    started_ms: t.as_ms(),
                    latency_ms: last.since(t).as_ms(),
                    dark_servers: dark,
                    reflashes_done: spec.ops.iter().filter(|o| o.reflash && !o.prepared).count(),
                    copied_gib: spec.pending_copy_gib(),
                    precopied_gib: spec.prepared_gib(),
                });
            }
            TAG_GPU_RECOVERED => {
                // Op `a` finished; light its GPU up.
                let spec = rec_spec.expect("recovery event without a spec");
                let Some(g) = spec.ops[a].logical_gpu else {
                    continue;
                };
                for si in 0..servers.len() {
                    if servers[si].gpu == g && servers[si].dark {
                        servers[si].dark = false;
                        if S::ENABLED {
                            // Close the server's dark window: capacity
                            // was offline from recovery-begin to now.
                            sink.emit(
                                TraceEvent::span(
                                    "dark",
                                    "recovery",
                                    dark_since[si].micros(),
                                    spec_dur(dark_since[si], t),
                                )
                                .pid(PID_SERVE)
                                .tid(si as u32)
                                .arg_u64("gpu", g as u64),
                            );
                            sink.emit(
                                TraceEvent::instant("live", "recovery", t.micros())
                                    .pid(PID_SERVE)
                                    .tid(si as u32)
                                    .arg_u64("gpu", g as u64),
                            );
                        }
                        // Re-admit to health-checked routing: credit
                        // accumulated while drained, so the recovered
                        // server catches up on its fair share.
                        if health_checked {
                            if let Some((svc, slot)) = slot_of[si] {
                                if let Some(r) = routers[svc].as_mut() {
                                    r.set_healthy(slot, true);
                                }
                            }
                        }
                        try_start(
                            &mut q,
                            &mut servers,
                            &mut slab,
                            &mut slab_comp,
                            &mut free,
                            si,
                            &mut res,
                            specs,
                            win,
                            sink,
                        );
                    }
                }
            }
            TAG_TIMEOUT => {
                // Attempt timeout: pull the request (and its hedge twin)
                // out of the queues, then retry if the attempt cap and the
                // cluster-wide retry budget both allow — else give up.
                let rs = res.as_mut().expect("resilience event without state");
                if !rs.epoch_current(a, b) {
                    continue; // already launched / completed / retired
                }
                let rid = a as u32;
                let (service, primary, hedge) = {
                    let r = &rs.reqs[a];
                    (r.service as usize, r.server as usize, r.hedge_server)
                };
                remove_rid(&mut servers[primary].queue, rid);
                if hedge >= 0 {
                    remove_rid(&mut servers[hedge as usize].queue, rid);
                }
                if t >= win_start && t < win_end {
                    rs.timeouts[service] += 1;
                }
                if S::ENABLED {
                    sink.emit(
                        TraceEvent::instant("timeout", "resilience", t.micros())
                            .pid(PID_SERVE)
                            .tid(primary as u32)
                            .arg_u64("service", u64::from(specs[service].id)),
                    );
                }
                let attempts = {
                    let r = &mut rs.reqs[a];
                    r.epoch = r.epoch.wrapping_add(1);
                    r.hedge_server = -1;
                    r.attempts
                };
                let can_retry = attempts < rs.spec.max_retries;
                // The budget is only consulted for retries that would
                // actually happen — a drained bucket is what breaks the
                // metastable feedback loop under overload.
                let admitted = can_retry && rs.budget.as_mut().is_none_or(|bk| bk.admit(t));
                if admitted {
                    let mut delay_ms =
                        rs.spec.backoff_base_ms * rs.spec.backoff_multiplier.powi(attempts as i32);
                    if rs.spec.jitter > 0.0 {
                        // Draw only when configured: zero-jitter runs
                        // share the no-resilience RNG state bit-exactly.
                        delay_ms *= 1.0 + rs.spec.jitter * rs.rng.uniform();
                    }
                    let fire = t + SimTime::from_ms(delay_ms);
                    if fire <= win_end {
                        let epoch = u64::from(rs.reqs[a].epoch) & B_MASK;
                        q.schedule(fire, ev(TAG_RETRY, u64::from(rid), epoch));
                    } else {
                        rs.free_req(rid);
                    }
                } else {
                    rs.free_req(rid);
                }
            }
            TAG_RETRY => {
                // Backoff expired: re-route the request as a fresh attempt
                // (sheddable like any arrival — a shed retry is a shed,
                // not a retry).
                let Some(rs) = res.as_mut() else { continue };
                if !rs.epoch_current(a, b) {
                    continue;
                }
                let rid = a as u32;
                let service = rs.reqs[a].service as usize;
                let Some(router) = routers[service].as_mut() else {
                    rs.free_req(rid);
                    continue;
                };
                let k = router.route();
                let (sidx, _) = weights[service][k];
                let depth = rs.spec.shed_queue_depth as usize;
                if depth > 0 && servers[sidx].queue.len() >= depth {
                    if t >= win_start && t < win_end {
                        rs.shed[service] += 1;
                    }
                    if S::ENABLED {
                        sink.emit(
                            TraceEvent::instant("shed", "resilience", t.micros())
                                .pid(PID_SERVE)
                                .tid(sidx as u32)
                                .arg_u64("service", u64::from(specs[service].id)),
                        );
                    }
                    rs.free_req(rid);
                    continue;
                }
                {
                    let r = &mut rs.reqs[a];
                    r.attempts += 1;
                    r.server = sidx as u32;
                }
                if t >= win_start && t < win_end {
                    rs.retries[service] += 1;
                }
                if S::ENABLED {
                    sink.emit(
                        TraceEvent::instant("retry", "resilience", t.micros())
                            .pid(PID_SERVE)
                            .tid(sidx as u32)
                            .arg_u64("service", u64::from(specs[service].id)),
                    );
                }
                // Re-arm the attempt's timeout and hedge against the
                // epoch set at the timeout that spawned this retry.
                let epoch = u64::from(rs.reqs[a].epoch) & B_MASK;
                if rs.spec.timeout_ms > 0.0 {
                    let class = rs.reqs[a].class as usize;
                    let fire = t + res_timeout[cbase[service] + class];
                    if fire <= win_end {
                        q.schedule(fire, ev(TAG_TIMEOUT, u64::from(rid), epoch));
                    }
                }
                if rs.spec.hedge_quantile > 0.0 {
                    let fire =
                        t + hedge_delay(&latency[service], &specs[service], rs.spec.hedge_quantile);
                    if fire <= win_end {
                        q.schedule(fire, ev(TAG_HEDGE, u64::from(rid), epoch));
                    }
                }
                servers[sidx].queue.push_back((t, rid));
                try_start(
                    &mut q,
                    &mut servers,
                    &mut slab,
                    &mut slab_comp,
                    &mut free,
                    sidx,
                    &mut res,
                    specs,
                    win,
                    sink,
                );
            }
            TAG_HEDGE => {
                // Hedge-fire: the attempt outlived the service's
                // p-quantile latency; enqueue a second copy on another
                // server. First copy to launch wins; `launch` cancels the
                // twin. Epoch discipline guarantees at most one pending
                // hedge per attempt.
                let Some(rs) = res.as_mut() else { continue };
                if !rs.epoch_current(a, b) {
                    continue;
                }
                let rid = a as u32;
                let (service, primary) = {
                    let r = &rs.reqs[a];
                    (r.service as usize, r.server as usize)
                };
                let Some(router) = routers[service].as_mut() else {
                    continue;
                };
                let k = router.route();
                let (sidx, _) = weights[service][k];
                if sidx == primary {
                    // No alternative server drawn — nothing to hedge to.
                    continue;
                }
                let depth = rs.spec.shed_queue_depth as usize;
                if depth > 0 && servers[sidx].queue.len() >= depth {
                    continue; // hedges are best-effort: full queue, no copy
                }
                rs.reqs[a].hedge_server = sidx as i64;
                if t >= win_start && t < win_end {
                    rs.hedges[service] += 1;
                }
                if S::ENABLED {
                    sink.emit(
                        TraceEvent::instant("hedge", "resilience", t.micros())
                            .pid(PID_SERVE)
                            .tid(sidx as u32)
                            .arg_u64("service", u64::from(specs[service].id)),
                    );
                }
                servers[sidx].queue.push_back((t, rid));
                try_start(
                    &mut q,
                    &mut servers,
                    &mut slab,
                    &mut slab_comp,
                    &mut free,
                    sidx,
                    &mut res,
                    specs,
                    win,
                    sink,
                );
            }
            _ => unreachable!("unknown event tag"),
        }
    }
    parva_des::counters::record_sim(
        q.processed(),
        q.peak_pending(),
        loop_started.elapsed().as_nanos() as u64,
        parva_des::counters::thread_cpu_nanos().saturating_sub(cpu_started),
    );

    if S::ENABLED {
        // The event queue can drain before `win_end`; deliver the
        // remaining gauge boundaries from final state so the series
        // always spans the full measurement window.
        while sink.next_sample_us() <= win_end.micros() {
            sample_serve_gauges(
                sink,
                sink.next_sample_us(),
                &servers,
                specs,
                tenants,
                &offered,
                &completed,
                &within_slo,
                &rejected,
                res.as_ref(),
            );
        }
    }

    // Post-window recovery fixup: a recovery that begins inside the drain
    // tail `(win_end, sim_end]` no longer fires in the loop, but its
    // report was always fully determined at the begin event — the timeline
    // is booked analytically there, and no server can already be dark (the
    // one begin event is this one). Reproduce exactly what the drained
    // loop computed.
    if rec_report.is_none() {
        if let Some(spec) = rec_spec {
            let fire = SimTime::from_ms(spec.start_ms);
            if fire > win_end && fire <= sim_end {
                let mut dark = 0usize;
                let mut darkened = vec![false; servers.len()];
                for op in &spec.ops {
                    let Some(g) = op.logical_gpu else { continue };
                    for (si, s) in servers.iter().enumerate() {
                        if s.gpu == g && !darkened[si] {
                            darkened[si] = true;
                            dark += 1;
                        }
                    }
                }
                let timeline = recovery_timeline(spec, fire, sink);
                let mut last = fire + SimTime::from_ms(spec.control_plane_ms);
                for ready in &timeline {
                    last = last.max(*ready);
                }
                rec_report = Some(RecoverySimReport {
                    started_ms: fire.as_ms(),
                    latency_ms: last.since(fire).as_ms(),
                    dark_servers: dark,
                    reflashes_done: spec.ops.iter().filter(|o| o.reflash && !o.prepared).count(),
                    copied_gib: spec.pending_copy_gib(),
                    precopied_gib: spec.prepared_gib(),
                });
            }
        }
    }

    let window_us = win_end.since(win_start).micros() as f64;
    let server_reports = servers
        .iter()
        .map(|s| ServerActivity {
            service_id: specs[s.service].id,
            sms: s.share.sms(),
            activity: (s.busy_comp_us as f64 / window_us).clamp(0.0, 1.0),
        })
        .collect();

    // Class rows first: single-class rows copy the service-level data
    // before the service rows take ownership of the histograms below;
    // multi-class rows move their own histograms out of the flat array.
    let mut class_reports = Vec::with_capacity(total_classes);
    for (i, spec) in specs.iter().enumerate() {
        if single[i] {
            class_reports.push(ClassReport {
                service_id: spec.id,
                class: 0,
                network_ms: classes[i][0].network_ms,
                offered: offered[i],
                completed: completed[i],
                completed_within_slo: within_slo[i],
                latency: latency[i].clone(),
            });
        } else {
            for (c, cls) in classes[i].iter().enumerate() {
                class_reports.push(ClassReport {
                    service_id: spec.id,
                    class: c,
                    network_ms: cls.network_ms,
                    offered: class_offered[cbase[i] + c],
                    completed: class_completed[cbase[i] + c],
                    completed_within_slo: class_within[cbase[i] + c],
                    latency: std::mem::take(&mut class_latency[cbase[i] + c]),
                });
            }
        }
    }

    // Tenant rollups before the service rows take ownership of the
    // histograms: each tenant's row sums its services' counters and merges
    // their latency distributions. Empty when no tenants are configured,
    // which the report serializer omits entirely.
    let tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .map(|t| {
            let mut t_offered = 0u64;
            let mut t_rejected = 0u64;
            let mut t_completed = 0u64;
            let mut t_within = 0u64;
            let mut hist = LatencyHistogram::new();
            for (i, spec) in specs.iter().enumerate() {
                if spec.tenant == t.id {
                    t_offered += offered[i];
                    t_rejected += rejected[i];
                    t_completed += completed[i];
                    t_within += within_slo[i];
                    hist.merge(&latency[i]);
                }
            }
            TenantReport {
                tenant: t.id,
                name: t.name.clone(),
                offered: t_offered,
                admitted: t_offered - t_rejected,
                rejected: t_rejected,
                completed: t_completed,
                completed_within_slo: t_within,
                latency: hist,
            }
        })
        .collect();

    ServingReport {
        duration_s: config.duration_s,
        services: specs
            .iter()
            .enumerate()
            .map(|(i, spec)| ServiceReport {
                service_id: spec.id,
                offered: offered[i],
                completed: completed[i],
                batches: batches[i],
                violated_batches: violated[i],
                completed_within_slo: within_slo[i],
                latency: std::mem::take(&mut latency[i]),
                rejected: rejected[i],
                timeouts: res.as_ref().map_or(0, |r| r.timeouts[i]),
                retries: res.as_ref().map_or(0, |r| r.retries[i]),
                shed: res.as_ref().map_or(0, |r| r.shed[i]),
                hedges: res.as_ref().map_or(0, |r| r.hedges[i]),
                hedge_wins: res.as_ref().map_or(0, |r| r.hedge_wins[i]),
            })
            .collect(),
        servers: server_reports,
        classes: class_reports,
        recovery: rec_report,
        tenants: tenant_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local shorthand for the builder chain (the deprecated shims
    /// have their own equivalence proptests; behavioral tests run through
    /// the one real entry point).
    fn sim(
        d: &Deployment,
        specs: &[ServiceSpec],
        cfg: &ServingConfig,
    ) -> crate::report::ServingReport {
        crate::Simulation::new(d, specs).config(cfg).run()
    }

    fn sim_ingress(
        d: &Deployment,
        specs: &[ServiceSpec],
        ingress: &[Vec<IngressClass>],
        cfg: &ServingConfig,
    ) -> crate::report::ServingReport {
        crate::Simulation::new(d, specs)
            .ingress(ingress)
            .config(cfg)
            .run()
    }

    fn sim_recovery(
        d: &Deployment,
        specs: &[ServiceSpec],
        ingress: &[Vec<IngressClass>],
        recovery: Option<&RecoverySpec>,
        cfg: &ServingConfig,
    ) -> crate::report::ServingReport {
        crate::Simulation::new(d, specs)
            .ingress(ingress)
            .recovery_opt(recovery)
            .config(cfg)
            .run()
    }

    use parva_core::ParvaGpu;
    use parva_deploy::Scheduler;
    use parva_profile::ProfileBook;
    use parva_scenarios::Scenario;

    fn quick_config() -> ServingConfig {
        ServingConfig {
            warmup_s: 1.0,
            duration_s: 4.0,
            drain_s: 2.0,
            seed: 7,
            ..Default::default()
        }
    }

    fn parva_s2() -> (Deployment, Vec<ServiceSpec>) {
        let book = ProfileBook::builtin();
        let specs = Scenario::S2.services();
        let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
        (d, specs)
    }

    #[test]
    fn parvagpu_s2_no_slo_violations() {
        let (d, specs) = parva_s2();
        let report = sim(&d, &specs, &quick_config());
        assert!(
            (report.overall_compliance_rate() - 1.0).abs() < 1e-9,
            "compliance {:.4}",
            report.overall_compliance_rate()
        );
    }

    #[test]
    fn parvagpu_s2_bounded_internal_slack() {
        // S2's configured demand (~17 GPCs) is padded to 3 full GPUs for 0%
        // fragmentation, which physically bounds slack from below at ~20%
        // on this substrate (see EXPERIMENTS.md); the paper's 3-5% regime
        // is reproduced at the larger scenarios (tested in end_to_end).
        let (d, specs) = parva_s2();
        let report = sim(&d, &specs, &quick_config());
        let slack = report.internal_slack();
        assert!(slack < 0.35, "slack {slack:.3} too high");
        assert!(slack >= 0.0);
    }

    #[test]
    fn conservation_laws() {
        let (d, specs) = parva_s2();
        let report = sim(&d, &specs, &quick_config());
        for s in &report.services {
            // Completions within the window may exceed window arrivals only
            // by what was queued at window start; bound loosely.
            assert!(s.completed <= s.offered + 1_000, "service {}", s.service_id);
            assert!(s.violated_batches <= s.batches);
            assert_eq!(s.latency.count(), s.completed);
        }
    }

    #[test]
    fn throughput_matches_offered_rate() {
        let (d, specs) = parva_s2();
        let report = sim(&d, &specs, &quick_config());
        for (spec, s) in specs.iter().zip(&report.services) {
            let measured_rps = s.completed as f64 / report.duration_s;
            assert!(
                measured_rps > spec.request_rate_rps * 0.85,
                "service {} served only {measured_rps:.0}/{:.0} req/s",
                spec.id,
                spec.request_rate_rps
            );
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let (d, specs) = parva_s2();
        let a = sim(&d, &specs, &quick_config());
        let b = sim(&d, &specs, &quick_config());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn different_seed_different_sample_path() {
        let (d, specs) = parva_s2();
        let a = sim(&d, &specs, &quick_config());
        let b = sim(
            &d,
            &specs,
            &ServingConfig {
                seed: 1234,
                ..quick_config()
            },
        );
        let oa: u64 = a.services.iter().map(|s| s.offered).sum();
        let ob: u64 = b.services.iter().map(|s| s.offered).sum();
        assert_ne!(oa, ob);
    }

    #[test]
    fn activities_bounded() {
        let (d, specs) = parva_s2();
        let report = sim(&d, &specs, &quick_config());
        for s in &report.servers {
            assert!((0.0..=1.0).contains(&s.activity));
            assert!(s.sms > 0.0);
        }
    }

    #[test]
    fn undersized_deployment_violates_slo() {
        // Serve S2's ResNet-50 (829 req/s) with a single 1-GPC segment of
        // roughly a third the capacity: the queue must blow through the SLO.
        use parva_deploy::{MigDeployment, Segment};
        use parva_mig::InstanceProfile;
        use parva_profile::Triplet;
        let triplet = Triplet::new(InstanceProfile::G1, 2, 1);
        let point = parva_perf::math::evaluate(
            parva_perf::Model::ResNet50,
            parva_perf::ComputeShare::Mig(InstanceProfile::G1),
            2,
            1,
        );
        let mut mig = MigDeployment::new();
        mig.place_first_fit(Segment {
            service_id: 0,
            model: parva_perf::Model::ResNet50,
            triplet,
            throughput_rps: point.throughput_rps,
            latency_ms: point.latency_ms,
        });
        assert!(point.throughput_rps < 500.0, "segment unexpectedly large");
        let real = vec![ServiceSpec::new(
            0,
            parva_perf::Model::ResNet50,
            829.0,
            205.0,
        )];
        let report = sim(&Deployment::Mig(mig), &real, &quick_config());
        assert!(
            report.overall_compliance_rate() < 0.9,
            "compliance {:.3} despite ~2× overload",
            report.overall_compliance_rate()
        );
    }

    /// `segments` 1-GPC ResNet-50 segments (~290 req/s each) against the
    /// full 829 req/s spec rate: the knob for overload factor in the
    /// resilience tests below.
    fn undersized_resnet(segments: usize) -> (Deployment, Vec<ServiceSpec>) {
        use parva_deploy::{MigDeployment, Segment};
        use parva_mig::InstanceProfile;
        use parva_profile::Triplet;
        let triplet = Triplet::new(InstanceProfile::G1, 2, 1);
        let point = parva_perf::math::evaluate(
            parva_perf::Model::ResNet50,
            parva_perf::ComputeShare::Mig(InstanceProfile::G1),
            2,
            1,
        );
        let mut mig = MigDeployment::new();
        for _ in 0..segments {
            mig.place_first_fit(Segment {
                service_id: 0,
                model: parva_perf::Model::ResNet50,
                triplet,
                throughput_rps: point.throughput_rps,
                latency_ms: point.latency_ms,
            });
        }
        let specs = vec![ServiceSpec::new(
            0,
            parva_perf::Model::ResNet50,
            829.0,
            205.0,
        )];
        (Deployment::Mig(mig), specs)
    }

    #[test]
    fn timeouts_fire_and_retry_budget_caps_amplification() {
        let (d, specs) = undersized_resnet(1);
        let policy = ResilienceSpec {
            timeout_ms: 205.0,
            max_retries: 3,
            retry_budget_rps: 50.0,
            health_checked: false,
            ..ResilienceSpec::default()
        };
        let report = crate::Simulation::new(&d, &specs)
            .resilience(&policy)
            .config(&quick_config())
            .run();
        let s = &report.services[0];
        assert!(s.timeouts > 0, "~3× overload never timed out");
        assert!(s.retries > 0, "budget admitted no retries");
        // The budget bound: rate × window plus one bucket of burst. This
        // is the whole point — timeouts may number in the thousands, but
        // retry *injection* cannot exceed the budget.
        assert!(
            (s.retries as f64) <= 50.0 * 4.0 + 50.0 + 1.0,
            "retries {} blow the 50 rps budget",
            s.retries
        );
        assert!(s.retries <= s.timeouts);
        let totals = report.resilience_totals().expect("non-zero counters");
        assert_eq!(totals.timeouts, s.timeouts);
        assert_eq!(totals.retries, s.retries);
    }

    #[test]
    fn unbudgeted_retries_amplify_far_beyond_budgeted() {
        let (d, specs) = undersized_resnet(1);
        let budgeted = ResilienceSpec {
            timeout_ms: 205.0,
            max_retries: 3,
            retry_budget_rps: 50.0,
            health_checked: false,
            ..ResilienceSpec::default()
        };
        let unbudgeted = ResilienceSpec {
            retry_budget_rps: 0.0,
            ..budgeted
        };
        let cfg = quick_config();
        let with_budget = crate::Simulation::new(&d, &specs)
            .resilience(&budgeted)
            .config(&cfg)
            .run();
        let without = crate::Simulation::new(&d, &specs)
            .resilience(&unbudgeted)
            .config(&cfg)
            .run();
        // Same seed, same overload: removing the budget lets every
        // timeout re-inject, so retry traffic explodes.
        assert!(
            without.services[0].retries > 4 * with_budget.services[0].retries,
            "unbudgeted {} vs budgeted {}",
            without.services[0].retries,
            with_budget.services[0].retries
        );
    }

    #[test]
    fn shedding_bounds_tail_latency_under_overload() {
        let (d, specs) = undersized_resnet(1);
        let policy = ResilienceSpec {
            shed_queue_depth: 32,
            health_checked: false,
            ..ResilienceSpec::default()
        };
        let cfg = quick_config();
        let shed = crate::Simulation::new(&d, &specs)
            .resilience(&policy)
            .config(&cfg)
            .run();
        let open = sim(&d, &specs, &cfg);
        let s = &shed.services[0];
        assert!(s.shed > 0, "overloaded server never shed");
        // A bounded queue bounds queueing delay: the shedding run's p99
        // must sit far below the unbounded run's.
        let shed_p99 = s.latency.quantile_ms(0.99);
        let open_p99 = open.services[0].latency.quantile_ms(0.99);
        assert!(
            shed_p99 < open_p99 / 2.0,
            "shed p99 {shed_p99:.0} ms vs open {open_p99:.0} ms"
        );
    }

    #[test]
    fn hedges_fire_under_queueing_and_first_win_cancels_twin() {
        // ~10% overload across 3 segments: enough queueing for hedges to
        // fire, enough capacity for hedge copies to launch and win.
        let (d, specs) = undersized_resnet(3);
        let policy = ResilienceSpec {
            hedge_quantile: 0.5,
            health_checked: false,
            ..ResilienceSpec::default()
        };
        let report = crate::Simulation::new(&d, &specs)
            .resilience(&policy)
            .config(&quick_config())
            .run();
        let s = &report.services[0];
        assert!(s.hedges > 0, "no hedges under sustained queueing");
        assert!(s.hedge_wins > 0, "a hedge copy never launched first");
        assert!(s.hedge_wins <= s.hedges);
        // First-wins cancellation: every request completes at most once.
        assert!(
            s.completed <= s.offered + 100,
            "completed {} vs offered {} — hedges double-counted?",
            s.completed,
            s.offered
        );
    }

    #[test]
    fn health_checked_routing_improves_attainment_during_recovery() {
        let (d, specs) = parva_s2();
        // In the S2 MIG layout service 1 is the only multi-segment
        // service (one segment on GPU 1, one on GPU 2) — the only
        // service with a healthy sibling to drain toward. Dark GPU 1
        // mid-window; recovery holds it down for seconds.
        let recovery = RecoverySpec {
            start_ms: 1500.0,
            control_plane_ms: 150.0,
            reflash_ms: 2000.0,
            link_gib_per_s: 22.0,
            ops: vec![crate::recovery::RecoveryOp {
                node: 0,
                logical_gpu: Some(1),
                reflash: true,
                copy_gib: 24.0,
                prepared: false,
            }],
        };
        let cfg = quick_config();
        let health_on = ResilienceSpec {
            health_checked: true,
            ..ResilienceSpec::default()
        };
        let drained = crate::Simulation::new(&d, &specs)
            .recovery(&recovery)
            .resilience(&health_on)
            .config(&cfg)
            .run();
        let blind = crate::Simulation::new(&d, &specs)
            .recovery(&recovery)
            .config(&cfg)
            .run();
        // Requests routed around the dark segment complete within SLO;
        // requests queued on it blow their latency budget waiting.
        let att = |r: &crate::report::ServingReport| {
            let s = r.services.iter().find(|s| s.service_id == 1).unwrap();
            s.completed_within_slo as f64 / s.offered.max(1) as f64
        };
        assert!(
            att(&drained) > att(&blind),
            "health-checked {:.4} <= blind {:.4}",
            att(&drained),
            att(&blind)
        );
    }

    #[test]
    fn mmpp_preserves_mean_rate() {
        let (d, specs) = parva_s2();
        let cfg = ServingConfig {
            duration_s: 8.0,
            arrivals: ArrivalProcess::Mmpp {
                burst_factor: 4.0,
                mean_phase_s: 0.5,
            },
            ..quick_config()
        };
        let report = sim(&d, &specs, &cfg);
        let offered: f64 = report
            .services
            .iter()
            .map(|s| s.offered as f64)
            .sum::<f64>()
            / cfg.duration_s;
        let nominal: f64 = specs.iter().map(|s| s.request_rate_rps).sum();
        assert!(
            (offered - nominal).abs() / nominal < 0.15,
            "MMPP mean drifted: offered {offered:.0} vs nominal {nominal:.0}"
        );
    }

    #[test]
    fn bursts_fatten_the_latency_tail() {
        let (d, specs) = parva_s2();
        let calm = sim(&d, &specs, &quick_config());
        let bursty = sim(
            &d,
            &specs,
            &ServingConfig {
                arrivals: ArrivalProcess::Mmpp {
                    burst_factor: 6.0,
                    mean_phase_s: 0.5,
                },
                ..quick_config()
            },
        );
        // Aggregate p99 across services must degrade under bursts.
        let p99 = |r: &crate::report::ServingReport| {
            r.services
                .iter()
                .map(|s| s.latency.quantile_ms(0.99))
                .fold(0.0, f64::max)
        };
        assert!(
            p99(&bursty) > p99(&calm),
            "bursty p99 {:.1} ms not above calm {:.1} ms",
            p99(&bursty),
            p99(&calm)
        );
    }

    #[test]
    fn deterministic_arrivals_have_thinner_tails_than_poisson() {
        let (d, specs) = parva_s2();
        let poisson = sim(&d, &specs, &quick_config());
        let uniform = sim(
            &d,
            &specs,
            &ServingConfig {
                arrivals: ArrivalProcess::Deterministic,
                ..quick_config()
            },
        );
        let p99_sum = |r: &crate::report::ServingReport| {
            r.services
                .iter()
                .map(|s| s.latency.quantile_ms(0.99))
                .sum::<f64>()
        };
        assert!(p99_sum(&uniform) <= p99_sum(&poisson) * 1.05);
        // And the offered counts are exact (rate × window ± rounding).
        for (spec, s) in specs.iter().zip(&uniform.services) {
            let expect = spec.request_rate_rps * 4.0;
            assert!((s.offered as f64 - expect).abs() <= 2.0, "svc {}", spec.id);
        }
    }

    #[test]
    fn mps_deployment_runs_with_interference() {
        let specs = Scenario::S2.services();
        let d = parva_baselines::Gpulet::new().schedule(&specs).unwrap();
        let report = sim(&d, &specs, &quick_config());
        // gpulet must at least broadly serve the load.
        let total: u64 = report.services.iter().map(|s| s.completed).sum();
        assert!(total > 0);
        // And cannot beat perfect compliance.
        assert!(report.overall_compliance_rate() <= 1.0);
    }

    #[test]
    fn explicit_local_class_matches_plain_simulate() {
        // One local class per service at the spec rate is the defaulting
        // rule; spelling it out must not change a single sample path.
        let (d, specs) = parva_s2();
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| vec![IngressClass::local(s.request_rate_rps)])
            .collect();
        let plain = sim(&d, &specs, &quick_config());
        let classed = sim_ingress(&d, &specs, &ingress, &quick_config());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&classed).unwrap()
        );
        assert_eq!(plain.classes.len(), specs.len());
        for c in &plain.classes {
            assert_eq!(c.network_ms, 0.0);
            assert_eq!(c.class, 0);
        }
    }

    #[test]
    fn class_totals_conserve_service_totals() {
        let (d, specs) = parva_s2();
        // Split every service 70/30 between a local and a remote class.
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| {
                vec![
                    IngressClass::local(s.request_rate_rps * 0.7),
                    IngressClass {
                        rate_rps: s.request_rate_rps * 0.3,
                        network_ms: 40.0,
                    },
                ]
            })
            .collect();
        let report = sim_ingress(&d, &specs, &ingress, &quick_config());
        for (spec, svc) in specs.iter().zip(&report.services) {
            let classes = report.classes_of(spec.id);
            assert_eq!(classes.len(), 2, "service {}", spec.id);
            let offered: u64 = classes.iter().map(|c| c.offered).sum();
            let completed: u64 = classes.iter().map(|c| c.completed).sum();
            let within: u64 = classes.iter().map(|c| c.completed_within_slo).sum();
            assert_eq!(offered, svc.offered);
            assert_eq!(completed, svc.completed);
            assert_eq!(within, svc.completed_within_slo);
            // Both classes actually carried traffic.
            assert!(classes.iter().all(|c| c.offered > 0));
        }
    }

    #[test]
    fn network_term_shifts_latency_and_costs_compliance() {
        // A remote class whose RTT eats most of the SLO budget must show an
        // RTT-shifted latency distribution and strictly worse compliance.
        let (d, specs) = parva_s2();
        let rtt = 150.0;
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| {
                vec![
                    IngressClass::local(s.request_rate_rps * 0.8),
                    IngressClass {
                        rate_rps: s.request_rate_rps * 0.2,
                        network_ms: rtt,
                    },
                ]
            })
            .collect();
        let report = sim_ingress(&d, &specs, &ingress, &quick_config());
        let mut remote_worse = 0usize;
        for spec in &specs {
            let classes = report.classes_of(spec.id);
            let (local, remote) = (classes[0], classes[1]);
            // The remote distribution sits at least one RTT up.
            assert!(
                remote.latency.quantile_ms(0.5) >= rtt,
                "service {}: remote p50 {:.1} below the RTT floor",
                spec.id,
                remote.latency.quantile_ms(0.5)
            );
            assert!(remote.latency.quantile_ms(0.99) > local.latency.quantile_ms(0.99));
            if remote.request_compliance_rate() < local.request_compliance_rate() {
                remote_worse += 1;
            }
        }
        // Services with SLOs near the RTT must lose compliance remotely
        // (S2 has several sub-220 ms SLOs; 150 ms leaves them < 70 ms of
        // queueing budget).
        assert!(remote_worse >= 3, "only {remote_worse} services degraded");
    }

    #[test]
    fn zero_rate_class_is_inert() {
        let (d, specs) = parva_s2();
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| {
                vec![
                    IngressClass::local(s.request_rate_rps),
                    IngressClass {
                        rate_rps: 0.0,
                        network_ms: 500.0,
                    },
                ]
            })
            .collect();
        let report = sim_ingress(&d, &specs, &ingress, &quick_config());
        for spec in &specs {
            let classes = report.classes_of(spec.id);
            assert_eq!(classes[1].offered, 0);
            assert_eq!(classes[1].completed, 0);
        }
    }

    fn recovery_spec(ops: Vec<crate::recovery::RecoveryOp>) -> RecoverySpec {
        RecoverySpec {
            start_ms: 1_000.0, // the window start of quick_config()
            control_plane_ms: 150.0,
            reflash_ms: 800.0,
            link_gib_per_s: 22.0,
            ops,
        }
    }

    fn op(
        node: usize,
        gpu: Option<usize>,
        reflash: bool,
        copy_gib: f64,
    ) -> crate::recovery::RecoveryOp {
        crate::recovery::RecoveryOp {
            node,
            logical_gpu: gpu,
            reflash,
            copy_gib,
            prepared: false,
        }
    }

    #[test]
    fn empty_recovery_is_bit_identical_to_plain() {
        let (d, specs) = parva_s2();
        let plain = sim(&d, &specs, &quick_config());
        let empty = recovery_spec(vec![]);
        let with = sim_recovery(&d, &specs, &[], Some(&empty), &quick_config());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&with).unwrap()
        );
        assert!(with.recovery.is_none());
    }

    #[test]
    fn dark_window_dips_and_recovery_is_measured() {
        let (d, specs) = parva_s2();
        let control = sim(&d, &specs, &quick_config());
        // Knock out GPUs 0 and 1 at window start: re-flash plus a hefty
        // weight copy each, both on the same node (serialized).
        let spec = recovery_spec(vec![op(0, Some(0), true, 8.0), op(0, Some(1), true, 8.0)]);
        let hit = sim_recovery(&d, &specs, &[], Some(&spec), &quick_config());
        let rec = hit.recovery.as_ref().expect("recovery simulated");
        assert!(rec.dark_servers > 0, "ops must darken servers");
        assert_eq!(rec.reflashes_done, 2);
        // Same node: the two re-flashes serialize, then both copies queue
        // on one PCIe link — the analytic floor is control + 1 re-flash +
        // one copy; the measured latency must sit above it and below the
        // fully-serialized ceiling.
        let copy_ms = 8.0 / 22.0 * 1_000.0;
        let floor = 150.0 + 800.0 + copy_ms;
        let ceiling = 150.0 + 2.0 * 800.0 + 2.0 * copy_ms + 1.0;
        assert!(
            rec.latency_ms >= floor - 1e-6 && rec.latency_ms <= ceiling,
            "latency {:.0} outside [{floor:.0}, {ceiling:.0}]",
            rec.latency_ms
        );
        // And the dip is real: compliance over the window drops below the
        // undisturbed run.
        assert!(
            hit.overall_request_compliance_rate() < control.overall_request_compliance_rate(),
            "dark window did not dip: {:.4} vs {:.4}",
            hit.overall_request_compliance_rate(),
            control.overall_request_compliance_rate()
        );
    }

    #[test]
    fn reflashes_serialize_per_node_but_not_across_nodes() {
        let same_node = recovery_spec(vec![
            op(0, Some(0), true, 0.0),
            op(0, Some(1), true, 0.0),
            op(0, None, true, 0.0),
        ]);
        let spread = recovery_spec(vec![
            op(0, Some(0), true, 0.0),
            op(1, Some(1), true, 0.0),
            op(2, None, true, 0.0),
        ]);
        let t0 = SimTime::from_ms(0.0);
        let serial = recovery_timeline(&same_node, t0, &mut parva_obs::NullSink);
        let parallel = recovery_timeline(&spread, t0, &mut parva_obs::NullSink);
        assert_eq!(
            serial.iter().max().copied().unwrap(),
            SimTime::from_ms(150.0 + 3.0 * 800.0)
        );
        assert_eq!(
            parallel.iter().max().copied().unwrap(),
            SimTime::from_ms(150.0 + 800.0)
        );
    }

    #[test]
    fn copies_queue_fifo_on_the_node_link() {
        // Two copies to one node: the second waits for the first.
        let spec = recovery_spec(vec![
            op(0, Some(0), false, 11.0),
            op(0, Some(1), false, 11.0),
        ]);
        let ready = recovery_timeline(&spec, SimTime::ZERO, &mut parva_obs::NullSink);
        let copy = SimTime::from_secs(11.0 / 22.0);
        assert_eq!(ready[0], SimTime::from_ms(150.0) + copy);
        assert_eq!(ready[1], SimTime::from_ms(150.0) + copy + copy);
    }

    #[test]
    fn prepared_ops_cost_only_the_control_plane() {
        let (d, specs) = parva_s2();
        let spec = recovery_spec(vec![op(0, Some(0), true, 8.0), op(0, Some(1), true, 8.0)]);
        let cold = sim_recovery(&d, &specs, &[], Some(&spec), &quick_config());
        let warm_spec = spec.clone().prepared();
        let warm = sim_recovery(&d, &specs, &[], Some(&warm_spec), &quick_config());
        let (cold_rec, warm_rec) = (
            cold.recovery.clone().unwrap(),
            warm.recovery.clone().unwrap(),
        );
        assert!((warm_rec.latency_ms - 150.0).abs() < 1e-9);
        assert!(warm_rec.latency_ms < cold_rec.latency_ms);
        assert_eq!(warm_rec.reflashes_done, 0);
        assert_eq!(warm_rec.copied_gib, 0.0);
        assert!((warm_rec.precopied_gib - 16.0).abs() < 1e-9);
        // Pre-copy strictly shrinks the measured dip.
        assert!(
            warm.overall_request_compliance_rate() >= cold.overall_request_compliance_rate(),
            "prepared {:.4} vs cold {:.4}",
            warm.overall_request_compliance_rate(),
            cold.overall_request_compliance_rate()
        );
    }

    #[test]
    fn remote_class_deadline_subtracts_network_budget() {
        // A low-rate service whose batches never fill is deadline-
        // dominated: every request waits out the batching timeout. The old
        // batcher held remote requests for the full SLO/2 queue budget
        // although their RTT had already spent most of it; the fix launches
        // them once their *residual* budget expires. Old behavior is
        // exactly a zero-RTT class with the RTT added after the fact, so
        // compare against that.
        use parva_deploy::{MigDeployment, Segment};
        use parva_mig::InstanceProfile;
        use parva_profile::Triplet;
        let triplet = Triplet::new(InstanceProfile::G2, 8, 1);
        let point = parva_perf::math::evaluate(
            parva_perf::Model::ResNet50,
            parva_perf::ComputeShare::Mig(InstanceProfile::G2),
            8,
            1,
        );
        let mut mig = MigDeployment::new();
        mig.place_first_fit(Segment {
            service_id: 0,
            model: parva_perf::Model::ResNet50,
            triplet,
            throughput_rps: point.throughput_rps,
            latency_ms: point.latency_ms,
        });
        let d = Deployment::Mig(mig);
        let specs = vec![ServiceSpec::new(
            0,
            parva_perf::Model::ResNet50,
            20.0,
            400.0,
        )];
        let rtt = 150.0;
        let charged = vec![vec![
            IngressClass::local(10.0),
            IngressClass {
                rate_rps: 10.0,
                network_ms: rtt,
            },
        ]];
        let uncharged = vec![vec![
            IngressClass::local(10.0),
            IngressClass {
                rate_rps: 10.0,
                network_ms: 0.0,
            },
        ]];
        let new = sim_ingress(&d, &specs, &charged, &quick_config());
        let old = sim_ingress(&d, &specs, &uncharged, &quick_config());
        let remote_new = new.classes_of(0)[1].latency.quantile_ms(0.99);
        let remote_old = old.classes_of(0)[1].latency.quantile_ms(0.99) + rtt;
        assert!(
            remote_new < remote_old - rtt * 0.2,
            "remote p99 {remote_new:.0} not well below old behavior {remote_old:.0}"
        );
        // The mean is exact (no histogram bucketing): the residual-budget
        // deadline must shave a solid slice of the RTT off every
        // deadline-dominated remote request.
        let mean_new = new.classes_of(0)[1].latency.mean_ms();
        let mean_old = old.classes_of(0)[1].latency.mean_ms() + rtt;
        assert!(
            mean_new < mean_old - rtt * 0.2,
            "remote mean {mean_new:.1} not well below old behavior {mean_old:.1}"
        );
        // And remote compliance benefits too.
        assert!(
            new.classes_of(0)[1].request_compliance_rate()
                >= old.classes_of(0)[1].request_compliance_rate() - 1e-9
        );
    }

    #[test]
    fn empty_deployment_serves_nothing() {
        let specs = vec![ServiceSpec::new(
            0,
            parva_perf::Model::ResNet50,
            100.0,
            200.0,
        )];
        let d = Deployment::Mig(parva_deploy::MigDeployment::new());
        let report = sim(&d, &specs, &quick_config());
        assert_eq!(report.services[0].completed, 0);
        assert!(report.services[0].offered > 0);
    }

    mod reference_equivalence {
        //! The optimized engine against the frozen pre-optimization
        //! simulator: full-JSON bit identity over arbitrary seeds,
        //! window shapes, arrival processes, deployment kinds (MIG and
        //! MPS), ingress class splits and recovery specs.

        use super::*;
        use crate::recovery::RecoveryOp;
        use crate::reference::simulate_with_recovery_reference;
        use proptest::prelude::*;

        fn mig_deployment() -> (Deployment, Vec<ServiceSpec>) {
            parva_s2()
        }

        fn mps_deployment() -> (Deployment, Vec<ServiceSpec>) {
            let specs = Scenario::S2.services();
            let d = parva_baselines::Gpulet::new().schedule(&specs).unwrap();
            (d, specs)
        }

        fn arrivals_of(pick: usize) -> ArrivalProcess {
            match pick {
                0 => ArrivalProcess::Poisson,
                1 => ArrivalProcess::Deterministic,
                _ => ArrivalProcess::Mmpp {
                    burst_factor: 4.0,
                    mean_phase_s: 0.4,
                },
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            #[test]
            fn optimized_engine_is_bit_identical_to_reference(
                seed in 0u64..1_000_000,
                duration_tenths in 5u32..25,
                mps in 0u32..2,
                arrivals_pick in 0usize..3,
                remote_share in 0u32..=5,       // x10% of traffic remote
                rtt in 1.0f64..180.0,
                recovery_pick in 0u32..3,       // 0: no recovery
                prepared in 0u32..2,
                start_pick in 0u32..3,          // window start / mid / drain tail
            ) {
                let (d, specs) = if mps == 1 {
                    mps_deployment()
                } else {
                    mig_deployment()
                };
                let config = ServingConfig {
                    warmup_s: 0.4,
                    duration_s: f64::from(duration_tenths) / 10.0,
                    drain_s: 0.5,
                    seed,
                    arrivals: arrivals_of(arrivals_pick),
                };
                // Ingress: either default single-class or a two-class
                // local/remote split per service.
                let ingress: Vec<Vec<IngressClass>> = if remote_share == 0 {
                    Vec::new()
                } else {
                    let share = f64::from(remote_share) / 10.0;
                    specs
                        .iter()
                        .map(|s| {
                            vec![
                                IngressClass::local(s.request_rate_rps * (1.0 - share)),
                                IngressClass {
                                    rate_rps: s.request_rate_rps * share,
                                    network_ms: rtt,
                                },
                            ]
                        })
                        .collect()
                };
                // Exercise the whole recovery-start space, including a
                // begin event landing in the drain tail (where the
                // optimized loop's post-window fixup must reproduce the
                // drained loop's report exactly).
                let start_ms = match start_pick {
                    0 => 400.0,
                    1 => 400.0 + f64::from(duration_tenths) * 50.0,
                    _ => 400.0 + f64::from(duration_tenths) * 100.0 + 200.0,
                };
                let recovery = (recovery_pick > 0).then(|| RecoverySpec {
                    start_ms,
                    control_plane_ms: 150.0,
                    reflash_ms: 800.0,
                    link_gib_per_s: 22.0,
                    ops: (0..recovery_pick as usize + 1)
                        .map(|i| RecoveryOp {
                            node: i / 2,
                            logical_gpu: Some(i),
                            reflash: i % 2 == 0,
                            copy_gib: 4.0 * (i + 1) as f64,
                            prepared: prepared == 1,
                        })
                        .collect(),
                });
                // The builder is the real entry point under test; the
                // frozen reference and the deprecated shim must both
                // match it byte for byte.
                let fast = crate::Simulation::new(&d, &specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .config(&config)
                    .run();
                let slow = simulate_with_recovery_reference(
                    &d,
                    &specs,
                    &ingress,
                    recovery.as_ref(),
                    &config,
                );
                #[allow(deprecated)]
                let shim =
                    super::simulate_with_recovery(&d, &specs, &ingress, recovery.as_ref(), &config);
                let fast_json = serde_json::to_string(&fast).expect("serializable");
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&slow).expect("serializable")
                );
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&shim).expect("serializable")
                );
                // Observation is behavior-neutral: the same run under a
                // recording sink (tracing + gauge sampling on) must
                // produce the identical report — pinned through the same
                // frozen-reference harness — and two traced runs must
                // produce byte-identical artifacts.
                let mut rec_a = parva_obs::Recorder::new(50_000);
                let traced = crate::Simulation::new(&d, &specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .config(&config)
                    .run_with(&mut rec_a);
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&traced).expect("serializable")
                );
                let mut rec_b = parva_obs::Recorder::new(50_000);
                let _ = crate::Simulation::new(&d, &specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .config(&config)
                    .run_with(&mut rec_b);
                prop_assert_eq!(rec_a.chrome_trace(), rec_b.chrome_trace());
                prop_assert_eq!(rec_a.metrics_jsonl(), rec_b.metrics_jsonl());
                // Default tenant wrapping is behavior-neutral: bind every
                // service to one unlimited passthrough tenant. The engine
                // now walks every tenant code path (binding resolution,
                // admission gate wiring, rollup assembly), yet the report
                // must carry every pre-tenant byte unchanged — only the
                // `tenants` rollup is added, and stripping it restores
                // bit identity with the frozen reference.
                let tenant_specs: Vec<ServiceSpec> =
                    specs.iter().map(|s| s.with_tenant(1)).collect();
                let passthrough = [Tenant::new(1, "all")];
                let mut wrapped = crate::Simulation::new(&d, &tenant_specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .tenants(&passthrough)
                    .config(&config)
                    .run();
                prop_assert_eq!(wrapped.tenants.len(), 1);
                prop_assert!(wrapped.services.iter().all(|s| s.rejected == 0));
                wrapped.tenants.clear();
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&wrapped).expect("serializable")
                );
                // Resilience neutrality, two flavors. First: `None` spec
                // is exactly the plain path (same entry point the
                // dispatcher uses for specs without a resilience block).
                let none_path = crate::Simulation::new(&d, &specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .resilience_opt(None)
                    .config(&config)
                    .run();
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&none_path).expect("serializable")
                );
                // Second, the sharp one: a *non-inert* spec whose
                // mechanisms can never trigger — a timeout far past the
                // window, no hedging/shedding, health checks off. The
                // engine now runs the whole request-table path (id
                // allocation, epoch bookkeeping, res-aware launch and
                // completion accounting), yet no timeout can fire, no
                // RNG draw happens, and zero counters are omitted from
                // serialization — so the report must carry every
                // pre-resilience byte unchanged.
                let never_fires = ResilienceSpec {
                    timeout_ms: 1e7,
                    max_retries: 3,
                    health_checked: false,
                    ..ResilienceSpec::default()
                };
                prop_assert!(!never_fires.is_inert());
                let rid_path = crate::Simulation::new(&d, &specs)
                    .ingress(&ingress)
                    .recovery_opt(recovery.as_ref())
                    .resilience(&never_fires)
                    .config(&config)
                    .run();
                prop_assert_eq!(
                    &fast_json,
                    &serde_json::to_string(&rid_path).expect("serializable")
                );
            }
        }
    }

    #[test]
    fn quota_rejections_conserve_and_bound_admissions() {
        let (d, specs) = parva_s2();
        // Tenant 1 owns ResNet-50 (829 req/s, service id 8) under a
        // 100 req/s quota; tenant 2 owns the rest, unlimited.
        let specs: Vec<ServiceSpec> = specs
            .iter()
            .map(|s| s.with_tenant(if s.id == 8 { 1 } else { 2 }))
            .collect();
        let tenants = [
            Tenant::new(1, "capped").with_quota_rps(100.0),
            Tenant::new(2, "free"),
        ];
        let report = crate::Simulation::new(&d, &specs)
            .tenants(&tenants)
            .config(&quick_config())
            .run();
        assert_eq!(report.tenants.len(), 2);
        let capped = &report.tenants[0];
        assert!(capped.rejected > 0, "8× over-quota tenant never rejected");
        assert_eq!(capped.admitted + capped.rejected, capped.offered);
        // Admissions bounded by quota × window plus one bucket of burst.
        assert!(
            (capped.admitted as f64) <= 100.0 * 4.0 + 100.0 + 1.0,
            "admitted {} blows the quota bound",
            capped.admitted
        );
        let free = &report.tenants[1];
        assert_eq!(free.rejected, 0);
        assert_eq!(free.admitted, free.offered);
        // Service-level rejection counters sum to the tenant rollups.
        for t in &report.tenants {
            let svc_rejected: u64 = specs
                .iter()
                .zip(&report.services)
                .filter(|(spec, _)| spec.tenant == t.tenant)
                .map(|(_, s)| s.rejected)
                .sum();
            assert_eq!(svc_rejected, t.rejected);
        }
        // And the merged latency histogram counts every completion.
        for t in &report.tenants {
            let svc_completed: u64 = specs
                .iter()
                .zip(&report.services)
                .filter(|(spec, _)| spec.tenant == t.tenant)
                .map(|(_, s)| s.completed)
                .sum();
            assert_eq!(t.completed, svc_completed);
            assert_eq!(t.latency.count(), t.completed);
        }
    }

    #[test]
    fn arrival_override_only_perturbs_the_targeted_service() {
        // MIG isolates: services share no servers and draw from
        // per-service RNG streams, so switching one service to a bursty
        // MMPP must leave every other service's report byte-identical —
        // the structural lemma behind the noisy-neighbor isolation
        // property.
        let (d, specs) = parva_s2();
        let mut overrides: Vec<Option<ArrivalProcess>> = vec![None; specs.len()];
        overrides[0] = Some(ArrivalProcess::Mmpp {
            burst_factor: 6.0,
            mean_phase_s: 0.5,
        });
        let plain = sim(&d, &specs, &quick_config());
        let bursty = crate::Simulation::new(&d, &specs)
            .arrival_overrides(&overrides)
            .config(&quick_config())
            .run();
        assert_ne!(
            serde_json::to_string(&plain.services[0]).unwrap(),
            serde_json::to_string(&bursty.services[0]).unwrap(),
            "override had no effect on its target"
        );
        for i in 1..specs.len() {
            assert_eq!(
                serde_json::to_string(&plain.services[i]).unwrap(),
                serde_json::to_string(&bursty.services[i]).unwrap(),
                "service {i} perturbed by another service's burst"
            );
        }
        // All-None overrides are bit-identical to no overrides at all.
        let none: Vec<Option<ArrivalProcess>> = vec![None; specs.len()];
        let with_none = crate::Simulation::new(&d, &specs)
            .arrival_overrides(&none)
            .config(&quick_config())
            .run();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&with_none).unwrap()
        );
    }

    #[test]
    fn traced_run_emits_lifecycle_spans_and_gauges() {
        let (d, specs) = parva_s2();
        let mut rec = parva_obs::Recorder::new(100_000); // 100 ms cadence
        let report = crate::Simulation::new(&d, &specs)
            .config(&quick_config())
            .run_with(&mut rec);
        assert!(report.services.iter().any(|s| s.completed > 0));
        let names: Vec<&str> = rec.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"arrival"));
        assert!(names.contains(&"batch-form"));
        assert!(names.contains(&"execute"));
        assert!(names.contains(&"request"));
        // quick_config: 1 s warmup + 4 s window at 100 ms cadence → 50
        // boundaries, each one tick row plus one row per service.
        let ticks = rec
            .metrics
            .rows()
            .iter()
            .filter(|r| matches!(r.get("kind"), Some(parva_obs::ArgValue::Str(s)) if s == "tick"))
            .count();
        assert_eq!(ticks, 50);
        assert_eq!(rec.metrics.len(), 50 * (1 + specs.len()));
        // The Chrome export is loadable-shaped: document wrapper present.
        let doc = rec.chrome_trace();
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"process_name\""));
    }

    #[test]
    fn traced_recovery_emits_dark_reflash_copy_live() {
        let (d, specs) = parva_s2();
        let spec = recovery_spec(vec![op(0, Some(0), true, 8.0), op(0, Some(1), true, 8.0)]);
        let mut rec = parva_obs::Recorder::new(0);
        let report = crate::Simulation::new(&d, &specs)
            .recovery(&spec)
            .config(&quick_config())
            .run_with(&mut rec);
        assert!(report.recovery.is_some());
        let names: Vec<&str> = rec.events.iter().map(|e| e.name).collect();
        for expected in ["recovery-begin", "reflash", "copy", "dark", "live"] {
            assert!(names.contains(&expected), "missing {expected} span");
        }
        // No sampling was armed: no gauge rows.
        assert!(rec.metrics.is_empty());
    }
}
