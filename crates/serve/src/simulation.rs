//! The one serving-simulation entry point: a borrowing builder.
//!
//! Four PRs of organic growth left three parallel free functions
//! (`simulate`, `simulate_with_ingress`, `simulate_with_recovery`), each
//! forking the signature for one more axis. [`Simulation`] replaces them:
//! every axis — window shape, seed, arrival process, ingress classes,
//! recovery work — is an independent builder method, and [`Simulation::run`]
//! drives the same optimized engine they all shared. The legacy functions
//! survive as deprecated shims that delegate here and are property-tested
//! byte-identical to the equivalent builder chain.
//!
//! ```
//! use parva_serve::Simulation;
//! # use parva_deploy::{Deployment, MigDeployment, ServiceSpec};
//! # let deployment = Deployment::Mig(MigDeployment::new());
//! # let specs: Vec<ServiceSpec> = Vec::new();
//! let report = Simulation::new(&deployment, &specs)
//!     .window(1.0, 4.0, 2.0)
//!     .seed(7)
//!     .run();
//! ```

use crate::recovery::RecoverySpec;
use crate::report::ServingReport;
use crate::resilience::ResilienceSpec;
use crate::sim::{run_simulation, ArrivalProcess, IngressClass, ServingConfig};
use parva_deploy::{Deployment, ServiceSpec, Tenant};

/// A configured serving simulation, ready to [`run`](Simulation::run).
///
/// Borrowing builder: the deployment, service specs, ingress classes and
/// recovery spec are borrowed (simulations are re-run across seeds and
/// windows far more often than their inputs change), the scalar
/// configuration is owned. Defaults match [`ServingConfig::default`]: one
/// purely local ingress class per service at its spec rate, no recovery
/// work, Poisson arrivals.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    deployment: &'a Deployment,
    specs: &'a [ServiceSpec],
    ingress: &'a [Vec<IngressClass>],
    recovery: Option<&'a RecoverySpec>,
    tenants: &'a [Tenant],
    arrival_overrides: &'a [Option<ArrivalProcess>],
    resilience: Option<&'a ResilienceSpec>,
    config: ServingConfig,
}

impl<'a> Simulation<'a> {
    /// Start building a simulation of `deployment` under `specs`' load.
    #[must_use]
    pub fn new(deployment: &'a Deployment, specs: &'a [ServiceSpec]) -> Self {
        Self {
            deployment,
            specs,
            ingress: &[],
            recovery: None,
            tenants: &[],
            arrival_overrides: &[],
            resilience: None,
            config: ServingConfig::default(),
        }
    }

    /// Set the window shape: warm-up, measurement and drain durations in
    /// seconds.
    #[must_use]
    pub fn window(mut self, warmup_s: f64, duration_s: f64, drain_s: f64) -> Self {
        self.config.warmup_s = warmup_s;
        self.config.duration_s = duration_s;
        self.config.drain_s = drain_s;
        self
    }

    /// Set the master RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the arrival-process shape (Poisson by default).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.config.arrivals = arrivals;
        self
    }

    /// Replace the whole scalar configuration at once (window, seed and
    /// arrivals); later builder calls still override individual fields.
    #[must_use]
    pub fn config(mut self, config: &ServingConfig) -> Self {
        self.config = *config;
        self
    }

    /// Offer explicit per-service ingress classes: `ingress[i]` lists the
    /// arrival classes of `specs[i]`; missing/empty entries fall back to
    /// one local class at the spec rate. Each class's `network_ms` rides
    /// the DES request path and is charged against the SLO.
    #[must_use]
    pub fn ingress(mut self, ingress: &'a [Vec<IngressClass>]) -> Self {
        self.ingress = ingress;
        self
    }

    /// Ride `recovery`'s ops on the event queue: affected servers go dark
    /// at `start_ms`, re-flashes serialize per node, weight copies queue
    /// FIFO on each node's PCIe link, and the measured dip and recovery
    /// latency land in [`ServingReport::recovery`].
    #[must_use]
    pub fn recovery(mut self, recovery: &'a RecoverySpec) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Like [`recovery`](Simulation::recovery), but optional — `None`
    /// clears any previously set spec (bit-identical to never setting one).
    #[must_use]
    pub fn recovery_opt(mut self, recovery: Option<&'a RecoverySpec>) -> Self {
        self.recovery = recovery;
        self
    }

    /// Configure the run's tenants: each [`ServiceSpec::tenant`] binding
    /// resolves against this slice. Limited tenants get a deterministic
    /// admission token bucket at their quota rate; the report gains one
    /// [`TenantReport`](crate::report::TenantReport) rollup per tenant,
    /// and traced runs carry a `tenant` column on request spans and gauge
    /// rows. An empty slice (the default) is bit-identical to the
    /// pre-tenant engine.
    #[must_use]
    pub fn tenants(mut self, tenants: &'a [Tenant]) -> Self {
        self.tenants = tenants;
        self
    }

    /// Override the arrival process per service: `overrides[i]`, when
    /// `Some`, replaces the configured default for `specs[i]` (the
    /// noisy-neighbor axis — e.g. one tenant's services switch to a
    /// bursty MMPP while everyone else stays Poisson). Missing or `None`
    /// entries keep the configured default bit-exactly.
    #[must_use]
    pub fn arrival_overrides(mut self, overrides: &'a [Option<ArrivalProcess>]) -> Self {
        self.arrival_overrides = overrides;
        self
    }

    /// Configure the frontend resilience policy ([`ResilienceSpec`]):
    /// per-attempt timeouts, budgeted retries with backoff, hedging,
    /// queue-depth load shedding and health-checked routing. An absent (or
    /// [inert](ResilienceSpec::is_inert)) spec is bit-identical to the
    /// pre-resilience engine.
    #[must_use]
    pub fn resilience(mut self, resilience: &'a ResilienceSpec) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Like [`resilience`](Simulation::resilience), but optional — `None`
    /// clears any previously set spec (bit-identical to never setting one).
    #[must_use]
    pub fn resilience_opt(mut self, resilience: Option<&'a ResilienceSpec>) -> Self {
        self.resilience = resilience;
        self
    }

    /// The scalar configuration the run will use.
    #[must_use]
    pub fn serving_config(&self) -> &ServingConfig {
        &self.config
    }

    /// Run the simulation. Fully deterministic for a given seed.
    #[must_use]
    pub fn run(&self) -> ServingReport {
        self.run_with(&mut parva_obs::NullSink)
    }

    /// Run the simulation under an observer. With
    /// [`parva_obs::NullSink`] this is exactly [`Simulation::run`]; with
    /// a recording sink (e.g. [`parva_obs::Recorder`]) the engine emits
    /// request/batch/recovery trace spans and per-tick gauge rows.
    /// Observation never changes the report: instrumented runs are
    /// property-tested byte-identical to unobserved ones.
    #[must_use]
    pub fn run_with<S: parva_obs::TraceSink>(&self, sink: &mut S) -> ServingReport {
        run_simulation(
            self.deployment,
            self.specs,
            self.ingress,
            self.recovery,
            self.tenants,
            self.arrival_overrides,
            self.resilience,
            &self.config,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_core::ParvaGpu;
    use parva_deploy::Scheduler;
    use parva_profile::ProfileBook;
    use parva_scenarios::Scenario;

    fn parva_s2() -> (Deployment, Vec<ServiceSpec>) {
        let book = ProfileBook::builtin();
        let specs = Scenario::S2.services();
        let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
        (d, specs)
    }

    #[test]
    fn builder_methods_compose_and_override() {
        let (d, specs) = parva_s2();
        let base = ServingConfig {
            warmup_s: 1.0,
            duration_s: 4.0,
            drain_s: 2.0,
            seed: 7,
            arrivals: ArrivalProcess::Poisson,
        };
        // config() wholesale, then piecemeal override of one field.
        let a = Simulation::new(&d, &specs).config(&base).seed(11).run();
        let b = Simulation::new(&d, &specs)
            .window(1.0, 4.0, 2.0)
            .seed(11)
            .arrivals(ArrivalProcess::Poisson)
            .run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn recovery_opt_none_matches_plain() {
        let (d, specs) = parva_s2();
        let plain = Simulation::new(&d, &specs).seed(3).run();
        let none = Simulation::new(&d, &specs).seed(3).recovery_opt(None).run();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&none).unwrap()
        );
    }
}
