//! The epoch-stepped, checkpointable streaming serving engine.
//!
//! Where [`crate::sim`] runs one bounded measurement window to completion,
//! this engine serves a **never-ending** request stream in bounded epochs:
//! a long-running control plane (`parvad`) calls [`StreamEngine::step_epoch`]
//! once per epoch, reads the trailing observed gauges, and may swap the
//! deployment in and out underneath the live traffic via
//! [`StreamEngine::reconfigure`] — paying the measured recovery cost
//! (re-flash serialization, FIFO PCIe weight copies) before any re-sliced
//! server launches a batch.
//!
//! The whole mutable state — event queue (with its FIFO tie-break
//! sequence), server queues, in-flight batch slab, per-service counters,
//! latency histograms, routers and RNG streams — is `serde`-serializable,
//! so a run can suspend at any epoch boundary, snapshot, and resume
//! **bit-identically**: an interrupted+resumed run produces byte-equal
//! gauge rows, trace lines and final report to an uninterrupted one
//! (property-tested in `tests/stream_resume.rs`).
//!
//! The perf arithmetic is shared with the batch engine
//! ([`crate::sim::perf_batch_times`]), so both price batches identically;
//! scheduling policy (eager full batches, SLO/2-budget partial-batch
//! deadlines, per-class RTT-tightened timeouts, deficit-WRR routing) also
//! mirrors the batch engine. The engines differ only in lifecycle: this one
//! has no warmup/drain window — every request counts, per epoch.

use crate::recovery::RecoverySpec;
use crate::router::Router;
use crate::sim::{
    class_seed, perf_batch_times, recovery_timeline, timeout_from_budget, ArrivalProcess,
    IngressClass,
};
use parva_deploy::{Deployment, ServiceSpec};
use parva_des::{EventQueue, LatencyHistogram, RngStream, SimTime};
use parva_obs::{Row, TraceEvent, TraceSink, PID_SERVE};
use parva_perf::interference::total_interference;
use parva_perf::{ComputeShare, Model};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sentinel marking an empty batch-timing memo slot.
const MEMO_EMPTY: SimTime = SimTime(u64::MAX);

// Packed event encoding: tag (4 bits) | a (24 bits) | b (20 bits) — the
// same layout as the batch engine, but an independent event space (the
// stream engine rides a serializable [`EventQueue`], not a calendar queue).
const TAG_SHIFT: u32 = 44;
const A_SHIFT: u32 = 20;
const A_MASK: u64 = (1 << 24) - 1;
const B_MASK: u64 = (1 << 20) - 1;

const TAG_ARRIVAL: u64 = 0;
const TAG_DONE: u64 = 1;
const TAG_DEADLINE: u64 = 2;
const TAG_RECOVERED: u64 = 3;
const TAG_EPOCH: u64 = 4;

#[inline]
fn ev(tag: u64, a: u64, b: u64) -> u64 {
    debug_assert!(a <= A_MASK, "event field a exceeds 24 bits");
    debug_assert!(b <= B_MASK, "event field b exceeds 20 bits");
    (tag << TAG_SHIFT) | (a << A_SHIFT) | b
}

/// One executable server of the streaming engine: the static executor
/// description plus all mutable queue/occupancy state. Fully serializable
/// (the perf memo rides along — it is a pure function of the static fields,
/// so carrying it costs bytes but can never change behavior).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineServer {
    service: u32,
    gpu: u32,
    model: Model,
    share: ComputeShare,
    batch: u32,
    procs: u32,
    interference: f64,
    batch_timeout: SimTime,
    class_timeouts: Vec<SimTime>,
    perf_memo: Vec<(SimTime, u64)>,
    dark: bool,
    queue: VecDeque<(SimTime, u32)>,
    busy: u32,
    busy_comp_us: u64,
}

/// One arrival sub-stream: a `(service, ingress class)` pair with its own
/// RNG stream and (for MMPP shapes) phase state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassState {
    service: u32,
    class: u32,
    /// The class's configured rate before any demand multiplier.
    base_rate_rps: f64,
    /// The effective rate used for the next interarrival draw.
    rate_rps: f64,
    network_ms: f64,
    rng: RngStream,
    bursting: bool,
    phase_end: SimTime,
}

/// Cumulative and per-epoch request accounting of one service.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct SvcCounters {
    offered: u64,
    completed: u64,
    within_slo: u64,
    epoch_offered: u64,
    epoch_completed: u64,
    epoch_within_slo: u64,
}

/// One in-flight batch in the recycled slab.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct StreamBatch {
    members: Vec<(SimTime, u32)>,
    comp_us: u64,
    service: u32,
    server: u32,
    /// Fabric generation the batch launched under: completions always
    /// count, but capacity is only returned to a server of the same
    /// generation (a reconfigure may have replaced it).
    generation: u64,
}

/// What one service did during the last completed epoch — the *observed*
/// demand signal the closed-loop autoscaler estimates from (never the
/// oracle spec rate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochObservation {
    /// Service id (the spec's `id`, not the engine index).
    pub service: u32,
    /// Requests that arrived during the epoch.
    pub offered: u64,
    /// Requests whose batch completed during the epoch.
    pub completed: u64,
    /// Completed requests that met the client SLO (network term included).
    pub within_slo: u64,
}

impl EpochObservation {
    /// SLO attainment among the epoch's completions (1.0 when idle).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.within_slo as f64 / self.completed as f64
        }
    }
}

/// Final report of a streamed run: cumulative per-service outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Epochs completed.
    pub epochs: u64,
    /// Simulation time reached, ms.
    pub sim_ms: f64,
    /// Per-service cumulative outcomes, in engine service order.
    pub services: Vec<StreamServiceReport>,
}

/// Cumulative outcome of one service across every completed epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamServiceReport {
    /// Service id.
    pub id: u32,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completions that met the client SLO.
    pub within_slo: u64,
    /// `within_slo / completed` (1.0 when nothing completed).
    pub attainment: f64,
    /// Mean measured latency, ms.
    pub mean_ms: f64,
    /// 99th-percentile measured latency, ms.
    pub p99_ms: f64,
}

/// The streaming engine. Construct with [`StreamEngine::new`], advance with
/// [`StreamEngine::step_epoch`], snapshot/restore through the `serde`
/// traits (the whole struct round-trips).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamEngine {
    specs: Vec<ServiceSpec>,
    deployment: Deployment,
    arrivals: ArrivalProcess,
    seed: u64,
    epoch_us: u64,
    epoch: u64,
    /// Bumped on every [`StreamEngine::reconfigure`]; guards pending
    /// deadline/recovery events and in-flight batch capacity returns
    /// against servers that no longer exist.
    generation: u64,
    queue: EventQueue<u64>,
    classes: Vec<ClassState>,
    routers: Vec<Router>,
    /// Per service: global indices of its servers (router-local order).
    service_servers: Vec<Vec<u32>>,
    /// Per service: network term (µs) of each ingress class.
    svc_network: Vec<Vec<u64>>,
    servers: Vec<EngineServer>,
    slab: Vec<StreamBatch>,
    free: Vec<u32>,
    counters: Vec<SvcCounters>,
    latency: Vec<LatencyHistogram>,
    last_epoch: Vec<EpochObservation>,
}

impl StreamEngine {
    /// Build an engine serving `specs` on `deployment`, advancing in epochs
    /// of `epoch_us` simulation microseconds.
    ///
    /// `ingress[i]` lists the arrival classes of `specs[i]`; missing
    /// services fall back to one local class at the spec rate — the same
    /// convention as the batch engine.
    ///
    /// # Panics
    /// Zero `epoch_us` or empty `specs`.
    #[must_use]
    pub fn new(
        deployment: Deployment,
        specs: Vec<ServiceSpec>,
        ingress: &[Vec<IngressClass>],
        arrivals: ArrivalProcess,
        seed: u64,
        epoch_us: u64,
    ) -> Self {
        assert!(epoch_us > 0, "epoch must be positive");
        assert!(!specs.is_empty(), "engine needs at least one service");
        let n = specs.len();
        let mut eng = Self {
            specs,
            deployment,
            arrivals,
            seed,
            epoch_us,
            epoch: 0,
            generation: 0,
            queue: EventQueue::new(),
            classes: Vec::new(),
            routers: Vec::new(),
            service_servers: Vec::new(),
            svc_network: Vec::new(),
            servers: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            counters: vec![SvcCounters::default(); n],
            latency: vec![LatencyHistogram::new(); n],
            last_epoch: Vec::new(),
        };
        for i in 0..n {
            let spec = eng.specs[i];
            let list: Vec<IngressClass> = match ingress.get(i) {
                Some(c) if !c.is_empty() => c.clone(),
                _ => vec![IngressClass::local(spec.request_rate_rps)],
            };
            for (c, cls) in list.iter().enumerate() {
                eng.classes.push(ClassState {
                    service: i as u32,
                    class: c as u32,
                    base_rate_rps: cls.rate_rps,
                    rate_rps: cls.rate_rps,
                    network_ms: cls.network_ms,
                    rng: RngStream::new(class_seed(seed, c), u64::from(spec.id)),
                    bursting: false,
                    phase_end: SimTime::ZERO,
                });
            }
        }
        eng.rebuild_fabric();
        for ci in 0..eng.classes.len() {
            eng.seed_arrival(ci);
        }
        eng.queue.schedule(SimTime(epoch_us), ev(TAG_EPOCH, 0, 0));
        eng
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// One epoch's duration in seconds.
    #[must_use]
    pub fn epoch_seconds(&self) -> f64 {
        self.epoch_us as f64 * 1e-6
    }

    /// The services currently served, in engine order.
    #[must_use]
    pub fn specs(&self) -> &[ServiceSpec] {
        &self.specs
    }

    /// The live deployment.
    #[must_use]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Observed per-service gauges of the last completed epoch (empty
    /// before the first [`StreamEngine::step_epoch`]).
    #[must_use]
    pub fn last_epoch(&self) -> &[EpochObservation] {
        &self.last_epoch
    }

    /// Servers currently dark (recovery outstanding on their GPU).
    #[must_use]
    pub fn dark_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.dark).count()
    }

    /// Scale every service's offered load: class rates become
    /// `base × multiplier[service]`. This is the *true demand* injection
    /// point (diurnal swings, flash crowds) — the autoscaler never sees it
    /// directly, only the resulting observed arrivals.
    ///
    /// # Panics
    /// Non-positive or non-finite multipliers (a dead arrival stream can
    /// never restart itself).
    pub fn set_demand_multiplier(&mut self, per_service: &[f64]) {
        for cs in &mut self.classes {
            let m = per_service.get(cs.service as usize).copied().unwrap_or(1.0);
            assert!(m.is_finite() && m > 0.0, "demand multiplier must be > 0");
            cs.rate_rps = cs.base_rate_rps * m;
        }
    }

    /// Advance exactly one epoch, emitting gauge rows (and, when the sink
    /// is enabled, batch execution spans) along the way. Returns the
    /// epoch's per-service observations.
    pub fn step_epoch<S: TraceSink>(&mut self, sink: &mut S) -> &[EpochObservation] {
        loop {
            let (_, e) = self
                .queue
                .pop()
                .expect("stream queue never dries: the epoch tick is always pending");
            let tag = e >> TAG_SHIFT;
            let a = ((e >> A_SHIFT) & A_MASK) as usize;
            let b = (e & B_MASK) as usize;
            match tag {
                TAG_ARRIVAL => self.on_arrival(a, sink),
                TAG_DONE => self.on_done(a, sink),
                TAG_DEADLINE => {
                    if self.generation & A_MASK == a as u64 {
                        self.try_start(b, sink);
                    }
                }
                TAG_RECOVERED => {
                    if self.generation & A_MASK == a as u64 {
                        self.on_recovered(b, sink);
                    }
                }
                TAG_EPOCH => {
                    self.finish_epoch(sink);
                    return &self.last_epoch;
                }
                other => unreachable!("unknown stream event tag {other}"),
            }
        }
    }

    /// Swap the live deployment (and service set) under the running
    /// traffic — the autoscaler's actuation path.
    ///
    /// Queued requests are parked, the serving fabric is rebuilt from the
    /// new deployment, servers on GPUs named by `recovery` go dark until
    /// their measured re-flash/copy completes, and the parked requests are
    /// re-routed through the new routers in arrival order. In-flight
    /// batches complete and count; their capacity dies with their old
    /// servers.
    ///
    /// `specs` must extend the current service list (same ids, same order,
    /// possibly more — newly admitted pods append; rate changes are
    /// allowed, they only alter the allocator's view, never the offered
    /// load).
    ///
    /// # Panics
    /// A `specs` list that drops or reorders existing services.
    pub fn reconfigure<S: TraceSink>(
        &mut self,
        deployment: Deployment,
        specs: Vec<ServiceSpec>,
        recovery: Option<&RecoverySpec>,
        sink: &mut S,
    ) {
        let old_n = self.specs.len();
        assert!(
            specs.len() >= old_n
                && specs
                    .iter()
                    .zip(&self.specs)
                    .all(|(new, old)| new.id == old.id),
            "reconfigure must preserve existing services (append-only)"
        );
        // Park every queued request (in-flight batches ride the slab).
        let mut parked: Vec<(SimTime, u32, u32)> = Vec::new();
        for s in &mut self.servers {
            let svc = s.service;
            for (t, c) in s.queue.drain(..) {
                parked.push((t, svc, c));
            }
        }
        parked.sort_by_key(|&(t, _, _)| t);

        self.generation += 1;
        self.specs = specs;
        self.deployment = deployment;
        for i in old_n..self.specs.len() {
            let spec = self.specs[i];
            self.counters.push(SvcCounters::default());
            self.latency.push(LatencyHistogram::new());
            self.classes.push(ClassState {
                service: i as u32,
                class: 0,
                base_rate_rps: spec.request_rate_rps,
                rate_rps: spec.request_rate_rps,
                network_ms: 0.0,
                rng: RngStream::new(class_seed(self.seed, 0), u64::from(spec.id)),
                bursting: false,
                phase_end: SimTime::ZERO,
            });
            self.seed_arrival(self.classes.len() - 1);
        }
        self.rebuild_fabric();

        // Measured recovery: darken re-sliced GPUs until their op lands.
        if let Some(rs) = recovery.filter(|r| !r.is_empty()) {
            let ready = recovery_timeline(rs, self.queue.now(), sink);
            for (i, op) in rs.ops.iter().enumerate() {
                let Some(gpu) = op.logical_gpu else { continue };
                for si in 0..self.servers.len() {
                    if self.servers[si].gpu as usize != gpu {
                        continue;
                    }
                    self.servers[si].dark = true;
                    self.set_server_health(si, false);
                    self.queue.schedule(
                        ready[i].max(self.queue.now()),
                        ev(TAG_RECOVERED, self.generation & A_MASK, si as u64),
                    );
                }
            }
        }

        for (t, svc, class) in parked {
            let svc = svc as usize;
            if self.service_servers[svc].is_empty() {
                continue; // no capacity anywhere: the request is lost
            }
            let local = self.routers[svc].route();
            let si = self.service_servers[svc][local] as usize;
            self.servers[si].queue.push_back((t, class));
        }
        for si in 0..self.servers.len() {
            self.try_start(si, sink);
        }
        if S::ENABLED {
            sink.emit(
                TraceEvent::instant("reconfigure", "parvad", self.queue.now().micros())
                    .pid(PID_SERVE)
                    .arg_u64("generation", self.generation)
                    .arg_u64("gpus", self.deployment.gpu_count() as u64)
                    .arg_u64("servers", self.servers.len() as u64),
            );
        }
    }

    /// Cumulative report over every completed epoch.
    #[must_use]
    pub fn report(&self) -> StreamReport {
        StreamReport {
            epochs: self.epoch,
            sim_ms: self.queue.now().micros() as f64 / 1000.0,
            services: self
                .specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let c = &self.counters[i];
                    StreamServiceReport {
                        id: spec.id,
                        offered: c.offered,
                        completed: c.completed,
                        within_slo: c.within_slo,
                        attainment: if c.completed == 0 {
                            1.0
                        } else {
                            c.within_slo as f64 / c.completed as f64
                        },
                        mean_ms: self.latency[i].mean_ms(),
                        p99_ms: self.latency[i].quantile_ms(0.99),
                    }
                })
                .collect(),
        }
    }

    // ---- internals ----

    /// Rebuild servers, routers, per-service index maps and class tables
    /// from the current `(deployment, specs, classes)`.
    fn rebuild_fabric(&mut self) {
        let specs = &self.specs;
        let idx_of = |id: u32| specs.iter().position(|s| s.id == id);
        let mut servers: Vec<EngineServer> = Vec::new();
        let mut weights: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        let mut service_servers: Vec<Vec<u32>> = vec![Vec::new(); specs.len()];
        let mut push = |service: usize,
                        gpu: usize,
                        model: Model,
                        share: ComputeShare,
                        batch: u32,
                        procs: u32,
                        interference: f64,
                        throughput: f64| {
            let (full_cycle, _) = perf_batch_times(model, share, interference, batch, procs);
            let si = servers.len() as u32;
            servers.push(EngineServer {
                service: service as u32,
                gpu: gpu as u32,
                model,
                share,
                batch,
                procs,
                interference,
                batch_timeout: timeout_from_budget(&specs[service], full_cycle),
                class_timeouts: Vec::new(),
                perf_memo: vec![(MEMO_EMPTY, 0); (batch * procs) as usize],
                dark: false,
                queue: VecDeque::new(),
                busy: 0,
                busy_comp_us: 0,
            });
            weights[service].push(throughput);
            service_servers[service].push(si);
        };
        match &self.deployment {
            Deployment::Mig(d) => {
                for ps in d.segments() {
                    let Some(service) = idx_of(ps.segment.service_id) else {
                        continue;
                    };
                    push(
                        service,
                        ps.gpu,
                        ps.segment.model,
                        ComputeShare::Mig(ps.segment.triplet.instance),
                        ps.segment.triplet.batch,
                        ps.segment.triplet.procs,
                        0.0, // MIG isolates
                        ps.segment.throughput_rps,
                    );
                }
            }
            Deployment::Mps(d) => {
                for (gi, gpu) in d.gpus.iter().enumerate() {
                    for (pi, p) in gpu.partitions.iter().enumerate() {
                        let Some(service) = idx_of(p.service_id) else {
                            continue;
                        };
                        let co = d.gpus[gi].co_residents(pi);
                        push(
                            service,
                            gi,
                            p.model,
                            ComputeShare::Fraction(p.fraction),
                            p.batch,
                            p.procs.max(1),
                            total_interference(p.model, &co),
                            p.throughput_rps,
                        );
                    }
                }
            }
        }
        // Per-class deadline tightening: a remote class already spent its
        // RTT, so its queueing budget shrinks by that much.
        let mut svc_network: Vec<Vec<u64>> = vec![Vec::new(); specs.len()];
        for cs in &self.classes {
            let svc = cs.service as usize;
            let class = cs.class as usize;
            if svc_network[svc].len() <= class {
                svc_network[svc].resize(class + 1, 0);
            }
            svc_network[svc][class] = SimTime::from_ms(cs.network_ms).micros();
        }
        for s in &mut servers {
            s.class_timeouts = svc_network[s.service as usize]
                .iter()
                .map(|&net| SimTime(s.batch_timeout.micros().saturating_sub(net)))
                .collect();
        }
        self.routers = weights
            .into_iter()
            .map(|w| {
                if w.is_empty() {
                    Router::new(vec![1.0]) // placeholder; never routed to
                } else {
                    Router::new(w)
                }
            })
            .collect();
        self.servers = servers;
        self.service_servers = service_servers;
        self.svc_network = svc_network;
    }

    /// Draw the next interarrival of class `ci` (advancing MMPP phase state
    /// lazily) and schedule it; no-op for a zero-rate class.
    fn seed_arrival(&mut self, ci: usize) {
        if self.classes[ci].rate_rps > 0.0 {
            let dt = self.draw_interarrival(ci);
            self.queue.schedule_in(dt, ev(TAG_ARRIVAL, ci as u64, 0));
        }
    }

    fn draw_interarrival(&mut self, ci: usize) -> SimTime {
        let now = self.queue.now();
        let arrivals = self.arrivals;
        let cs = &mut self.classes[ci];
        if let ArrivalProcess::Mmpp { mean_phase_s, .. } = arrivals {
            while cs.phase_end <= now {
                let dur = cs.rng.exp_interarrival(1.0 / mean_phase_s.max(1e-9));
                if cs.phase_end == SimTime::ZERO {
                    cs.phase_end = now + dur;
                } else {
                    cs.bursting = !cs.bursting;
                    cs.phase_end += dur;
                }
            }
        }
        let rate = arrivals.phase_rate(cs.rate_rps, cs.bursting);
        match arrivals {
            ArrivalProcess::Deterministic => SimTime::from_secs(1.0 / rate),
            _ => cs.rng.exp_interarrival(rate),
        }
    }

    fn on_arrival<S: TraceSink>(&mut self, ci: usize, sink: &mut S) {
        let svc = self.classes[ci].service as usize;
        let class = self.classes[ci].class;
        self.counters[svc].offered += 1;
        self.counters[svc].epoch_offered += 1;
        if !self.service_servers[svc].is_empty() {
            let local = self.routers[svc].route();
            let si = self.service_servers[svc][local] as usize;
            let now = self.queue.now();
            self.servers[si].queue.push_back((now, class));
            self.try_start(si, sink);
        }
        let dt = self.draw_interarrival(ci);
        self.queue.schedule_in(dt, ev(TAG_ARRIVAL, ci as u64, 0));
    }

    fn on_done<S: TraceSink>(&mut self, id: usize, sink: &mut S) {
        let members = std::mem::take(&mut self.slab[id].members);
        let (svc, server, comp_us, generation) = {
            let b = &self.slab[id];
            (
                b.service as usize,
                b.server as usize,
                b.comp_us,
                b.generation,
            )
        };
        let now = self.queue.now();
        let slo_us = SimTime::from_ms(self.specs[svc].slo.latency_ms).micros();
        for (arr, class) in members {
            let net = self.svc_network[svc]
                .get(class as usize)
                .copied()
                .unwrap_or(0);
            let latency_us = now.micros().saturating_sub(arr.micros()) + net;
            self.latency[svc].record_us(latency_us);
            let c = &mut self.counters[svc];
            c.completed += 1;
            c.epoch_completed += 1;
            if latency_us <= slo_us {
                c.within_slo += 1;
                c.epoch_within_slo += 1;
            }
        }
        self.free.push(id as u32);
        if generation == self.generation {
            let s = &mut self.servers[server];
            s.busy -= 1;
            s.busy_comp_us += comp_us;
            self.try_start(server, sink);
        }
    }

    fn on_recovered<S: TraceSink>(&mut self, si: usize, sink: &mut S) {
        self.servers[si].dark = false;
        self.set_server_health(si, true);
        if S::ENABLED {
            sink.emit(
                TraceEvent::instant("server-recovered", "parvad", self.queue.now().micros())
                    .pid(PID_SERVE)
                    .tid(si as u32)
                    .arg_u64("gpu", u64::from(self.servers[si].gpu)),
            );
        }
        self.try_start(si, sink);
    }

    /// Flip one server's health bit in its service's router.
    fn set_server_health(&mut self, si: usize, healthy: bool) {
        let svc = self.servers[si].service as usize;
        if let Some(local) = self.service_servers[svc]
            .iter()
            .position(|&x| x as usize == si)
        {
            self.routers[svc].set_healthy(local, healthy);
        }
    }

    fn batch_times_memo(&mut self, si: usize, b_eff: u32, n_busy: u32) -> (SimTime, u64) {
        let s = &self.servers[si];
        let idx = ((b_eff - 1) * s.procs + (n_busy - 1)) as usize;
        let cached = s.perf_memo[idx];
        if cached.0 != MEMO_EMPTY {
            return cached;
        }
        let computed = perf_batch_times(s.model, s.share, s.interference, b_eff, n_busy);
        self.servers[si].perf_memo[idx] = computed;
        computed
    }

    fn launch<S: TraceSink>(&mut self, si: usize, size: u32, sink: &mut S) {
        let id = self.free.pop().unwrap_or_else(|| {
            self.slab.push(StreamBatch::default());
            (self.slab.len() - 1) as u32
        }) as usize;
        let members: Vec<(SimTime, u32)> = self.servers[si].queue.drain(..size as usize).collect();
        self.servers[si].busy += 1;
        let n_busy = self.servers[si].busy;
        let (cycle, comp_us) = self.batch_times_memo(si, size, n_busy);
        let b = &mut self.slab[id];
        b.members = members;
        b.comp_us = comp_us;
        b.service = self.servers[si].service;
        b.server = si as u32;
        b.generation = self.generation;
        if S::ENABLED {
            let now = self.queue.now();
            sink.emit(
                TraceEvent::span("execute", "batch", now.micros(), cycle.micros())
                    .pid(PID_SERVE)
                    .tid(si as u32)
                    .arg_u64(
                        "service",
                        u64::from(self.specs[self.servers[si].service as usize].id),
                    )
                    .arg_u64("size", u64::from(size))
                    .arg_u64("n_busy", u64::from(n_busy)),
            );
        }
        self.queue
            .schedule_in(cycle, ev(TAG_DONE, id as u64, si as u64));
    }

    /// Adaptive batching, mirroring the batch engine: launch full batches
    /// eagerly; a partial queue launches once its head's class deadline
    /// expires, else arms a (generation-guarded) deadline event.
    fn try_start<S: TraceSink>(&mut self, si: usize, sink: &mut S) {
        loop {
            let s = &self.servers[si];
            if s.dark || s.busy >= s.procs {
                return;
            }
            let queued = s.queue.len();
            let full = s.batch;
            if queued >= full as usize {
                self.launch(si, full, sink);
                continue;
            }
            if queued == 0 {
                return;
            }
            let (head, class) = *s.queue.front().expect("non-empty");
            let timeout = s
                .class_timeouts
                .get(class as usize)
                .copied()
                .unwrap_or(s.batch_timeout);
            let deadline = head + timeout;
            if self.queue.now() >= deadline {
                let size = (queued as u32).min(full);
                self.launch(si, size, sink);
            } else {
                self.queue.schedule(
                    deadline,
                    ev(TAG_DEADLINE, self.generation & A_MASK, si as u64),
                );
            }
            return;
        }
    }

    fn finish_epoch<S: TraceSink>(&mut self, sink: &mut S) {
        self.epoch += 1;
        self.queue
            .schedule_in(SimTime(self.epoch_us), ev(TAG_EPOCH, 0, 0));
        self.last_epoch = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| EpochObservation {
                service: spec.id,
                offered: self.counters[i].epoch_offered,
                completed: self.counters[i].epoch_completed,
                within_slo: self.counters[i].epoch_within_slo,
            })
            .collect();
        let now = self.queue.now();
        let t_ms = now.micros() as f64 / 1000.0;
        let offered: u64 = self.last_epoch.iter().map(|o| o.offered).sum();
        let completed: u64 = self.last_epoch.iter().map(|o| o.completed).sum();
        let within: u64 = self.last_epoch.iter().map(|o| o.within_slo).sum();
        let queue_depth: u64 = self.servers.iter().map(|s| s.queue.len() as u64).sum();
        let dark = self.dark_servers() as u64;
        sink.sample(
            Row::new()
                .str("kind", "parvad-epoch")
                .u64("epoch", self.epoch)
                .f64("t_ms", t_ms)
                .u64("offered", offered)
                .u64("completed", completed)
                .u64("within_slo", within)
                .f64(
                    "slo_attainment",
                    if completed == 0 {
                        1.0
                    } else {
                        within as f64 / completed as f64
                    },
                )
                .u64("queue_depth", queue_depth)
                .u64("dark_servers", dark)
                .u64("gpus", self.deployment.gpu_count() as u64),
        );
        let epoch_s = self.epoch_seconds();
        for (i, obs) in self.last_epoch.clone().into_iter().enumerate() {
            sink.sample(
                Row::new()
                    .str("kind", "parvad-service")
                    .u64("epoch", self.epoch)
                    .u64("service", u64::from(obs.service))
                    .u64("offered", obs.offered)
                    .u64("completed", obs.completed)
                    .u64("within_slo", obs.within_slo)
                    .f64("slo_attainment", obs.attainment())
                    .f64("rate_obs_rps", obs.offered as f64 / epoch_s)
                    .u64("replicas", self.service_servers[i].len() as u64),
            );
        }
        for c in &mut self.counters {
            c.epoch_offered = 0;
            c.epoch_completed = 0;
            c.epoch_within_slo = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_core::ParvaGpu;
    use parva_deploy::{Scheduler as _, ServiceSpec};
    use parva_obs::NullSink;
    use parva_perf::Model;
    use parva_profile::ProfileBook;

    fn specs() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::new(1, Model::ResNet50, 400.0, 40.0),
            ServiceSpec::new(2, Model::BertLarge, 150.0, 100.0),
        ]
    }

    fn engine(seed: u64) -> StreamEngine {
        let book = ProfileBook::builtin();
        let specs = specs();
        let deployment = ParvaGpu::new(&book).schedule(&specs).expect("schedulable");
        StreamEngine::new(
            deployment,
            specs,
            &[],
            ArrivalProcess::Poisson,
            seed,
            500_000,
        )
    }

    #[test]
    fn epochs_advance_and_serve() {
        let mut eng = engine(7);
        let mut sink = NullSink;
        for _ in 0..6 {
            eng.step_epoch(&mut sink);
        }
        assert_eq!(eng.epoch(), 6);
        let report = eng.report();
        assert!(report.services.iter().all(|s| s.offered > 0));
        assert!(report.services.iter().all(|s| s.completed > 0));
        assert!(report.services.iter().all(|s| s.attainment > 0.5));
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let mut sink = NullSink;
        let mut control = engine(42);
        for _ in 0..8 {
            control.step_epoch(&mut sink);
        }
        let mut interrupted = engine(42);
        for _ in 0..3 {
            interrupted.step_epoch(&mut sink);
        }
        let snap = interrupted.to_value();
        drop(interrupted);
        let mut resumed = StreamEngine::from_value(&snap).expect("round-trip");
        for _ in 0..5 {
            resumed.step_epoch(&mut sink);
        }
        assert_eq!(
            serde_json::to_string(&control.report()).unwrap(),
            serde_json::to_string(&resumed.report()).unwrap()
        );
        // The *full state* must agree, not just the report.
        assert_eq!(control.to_value(), resumed.to_value());
    }

    #[test]
    fn demand_multiplier_scales_observed_arrivals() {
        let mut sink = NullSink;
        let mut eng = engine(11);
        eng.step_epoch(&mut sink);
        let base: u64 = eng.last_epoch().iter().map(|o| o.offered).sum();
        eng.set_demand_multiplier(&[3.0, 3.0]);
        for _ in 0..2 {
            eng.step_epoch(&mut sink);
        }
        let scaled: u64 = eng.last_epoch().iter().map(|o| o.offered).sum();
        assert!(
            scaled as f64 > base as f64 * 2.0,
            "3x demand produced {scaled} vs base {base}"
        );
    }

    #[test]
    fn reconfigure_preserves_service_and_counts() {
        let mut sink = NullSink;
        let mut eng = engine(5);
        for _ in 0..2 {
            eng.step_epoch(&mut sink);
        }
        let before: u64 = eng.report().services.iter().map(|s| s.offered).sum();
        // Re-plan with a doubled first-service rate (more replicas).
        let book = ProfileBook::builtin();
        let mut scaled = specs();
        scaled[0].request_rate_rps *= 2.0;
        let deployment = ParvaGpu::new(&book).schedule(&scaled).expect("schedulable");
        eng.reconfigure(deployment, scaled, None, &mut sink);
        for _ in 0..3 {
            eng.step_epoch(&mut sink);
        }
        let after: u64 = eng.report().services.iter().map(|s| s.offered).sum();
        assert!(after > before, "traffic kept flowing across reconfigure");
        assert!(eng.report().services.iter().all(|s| s.completed > 0));
    }

    #[test]
    fn recovery_darkens_then_relights() {
        use crate::recovery::{RecoveryOp, RecoverySpec};
        let mut sink = NullSink;
        let mut eng = engine(3);
        eng.step_epoch(&mut sink);
        let deployment = eng.deployment().clone();
        let specs = eng.specs().to_vec();
        let gpus = deployment.gpu_count();
        let recovery = RecoverySpec {
            start_ms: 0.0,
            control_plane_ms: 50.0,
            reflash_ms: 400.0,
            link_gib_per_s: 16.0,
            ops: (0..gpus)
                .map(|g| RecoveryOp {
                    node: 0,
                    logical_gpu: Some(g),
                    reflash: true,
                    copy_gib: 1.0,
                    prepared: false,
                })
                .collect(),
        };
        eng.reconfigure(deployment, specs, Some(&recovery), &mut sink);
        assert!(eng.dark_servers() > 0, "all GPUs should start dark");
        for _ in 0..4 {
            eng.step_epoch(&mut sink);
        }
        assert_eq!(eng.dark_servers(), 0, "recovery completed");
        let last: u64 = eng.last_epoch().iter().map(|o| o.completed).sum();
        assert!(last > 0, "serving resumed after recovery");
    }
}
