//! Recovery work lowered into the serving DES.
//!
//! A fleet recovery (node failure, spot preemption, planned evacuation) is
//! not instantaneous: the control plane reacts, target GPUs re-flash their
//! MIG layout (serialized per node by the NVML driver), and migrated
//! segments reload weights over the target node's PCIe link (one copy
//! stream at full bandwidth; concurrent copies queue). While a GPU's
//! recovery is outstanding, its servers are **dark**: requests routed to
//! them queue but no batch launches, so the disruption-window compliance
//! dip is *measured* against live traffic instead of assumed.
//!
//! [`RecoverySpec`] is the lowered form a fleet-level migration plan hands
//! to [`crate::sim::simulate_with_recovery`]: one [`RecoveryOp`] per
//! affected physical GPU, carrying the hosting node (the contention
//! domain), whether the GPU re-flashes, how many GiB of weights it
//! receives, and which logical GPU of the recovered deployment it hosts.
//! Ops that were **prepared** ahead of the capacity loss — §III-F shadow
//! pre-copy on a spot two-minute warning, or cross-region pre-copy on an
//! evacuation notice — skip their re-flash and copy entirely; only the
//! control-plane delay remains.

use serde::{Deserialize, Serialize};

/// Recovery work for one physical GPU of the recovered deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOp {
    /// Physical node hosting the GPU — the re-flash serialization and PCIe
    /// contention domain.
    pub node: usize,
    /// Logical GPU (of the *recovered* deployment) living on this physical
    /// GPU; `None` for vacated GPUs that re-flash to empty (they host no
    /// servers but still occupy the node's re-flash lock).
    pub logical_gpu: Option<usize>,
    /// Whether the GPU's MIG layout changes (destroy + create instances).
    pub reflash: bool,
    /// Model weights copied onto this GPU, GiB.
    pub copy_gib: f64,
    /// Work already done before the capacity loss (predictive pre-copy +
    /// pre-flash): the op costs nothing but the control-plane delay.
    pub prepared: bool,
}

/// A migration plan lowered to DES recovery events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Sim time at which the capacity loss hits and recovery begins,
    /// milliseconds from simulation start (typically the measurement-window
    /// start, so the dip lands inside the window).
    pub start_ms: f64,
    /// Scheduler + control-plane reaction delay before any physical work
    /// starts, ms.
    pub control_plane_ms: f64,
    /// One MIG re-flash (destroy + create instances via NVML), ms.
    /// Re-flashes on the same node serialize.
    pub reflash_ms: f64,
    /// Host-to-device weight-copy bandwidth of one node's PCIe link, GiB/s.
    /// Concurrent copies to the same node queue FIFO.
    pub link_gib_per_s: f64,
    /// Per-GPU recovery work, deterministic order.
    pub ops: Vec<RecoveryOp>,
}

impl RecoverySpec {
    /// Is there any work to simulate?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total weights still to copy (unprepared ops), GiB.
    #[must_use]
    pub fn pending_copy_gib(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| !o.prepared)
            .map(|o| o.copy_gib)
            .sum()
    }

    /// Total weights already staged by predictive pre-copy, GiB.
    #[must_use]
    pub fn prepared_gib(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.prepared)
            .map(|o| o.copy_gib)
            .sum()
    }

    /// Mark every op prepared (weights pre-copied, targets pre-flashed) —
    /// what a honored two-minute warning or evacuation notice buys.
    #[must_use]
    pub fn prepared(mut self) -> Self {
        for op in &mut self.ops {
            op.prepared = true;
        }
        self
    }
}

/// What the DES measured about one recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySimReport {
    /// Recovery start, ms from simulation start.
    pub started_ms: f64,
    /// Simulated end-to-end recovery latency: control plane + contended
    /// re-flash waves + queued weight copies, ms. Zero when the spec had
    /// no ops.
    pub latency_ms: f64,
    /// Servers that were dark at recovery start.
    pub dark_servers: usize,
    /// GPU re-flashes actually performed (prepared ops skip theirs).
    pub reflashes_done: usize,
    /// Weights copied during the window, GiB (prepared ops skip theirs).
    pub copied_gib: f64,
    /// Weights that had been staged ahead of the loss, GiB.
    pub precopied_gib: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RecoverySpec {
        RecoverySpec {
            start_ms: 0.0,
            control_plane_ms: 150.0,
            reflash_ms: 800.0,
            link_gib_per_s: 22.0,
            ops: vec![
                RecoveryOp {
                    node: 0,
                    logical_gpu: Some(1),
                    reflash: true,
                    copy_gib: 2.0,
                    prepared: false,
                },
                RecoveryOp {
                    node: 0,
                    logical_gpu: None,
                    reflash: true,
                    copy_gib: 0.0,
                    prepared: false,
                },
            ],
        }
    }

    #[test]
    fn prepared_zeroes_pending_work() {
        let s = spec();
        assert!((s.pending_copy_gib() - 2.0).abs() < 1e-12);
        assert_eq!(s.prepared_gib(), 0.0);
        let p = s.prepared();
        assert_eq!(p.pending_copy_gib(), 0.0);
        assert!((p.prepared_gib() - 2.0).abs() < 1e-12);
        assert!(!p.is_empty());
    }
}
