//! The frozen pre-optimization serving simulator, kept verbatim as the
//! bit-identical oracle for the optimized hot path in [`crate::sim`].
//!
//! This module is compiled only for tests. It is a faithful copy of the
//! simulator as it stood before the zero-allocation rewrite — per-batch
//! `Vec` allocations, nested `Vec<Vec<u64>>` counters, binary-heap event
//! queue, cloned histograms and all — so the property test in `sim.rs`
//! can assert that the optimized engine produces byte-identical JSON
//! reports for arbitrary seeds, scenarios, ingress classes and recovery
//! specs. Do not "improve" this code: its value is that it does not
//! change.

use crate::recovery::{RecoverySimReport, RecoverySpec};
use crate::report::{ClassReport, ServerActivity, ServiceReport, ServingReport};
use crate::router::Router;
use crate::sim::{ArrivalProcess, IngressClass, ServingConfig};
use parva_deploy::{Deployment, ServiceSpec};
use parva_des::{EventQueue, LatencyHistogram, RngStream, SerialResource, SimTime};
use parva_perf::interference::total_interference;
use parva_perf::{ComputeShare, Model, PerfParams};
use std::collections::{BTreeMap, VecDeque};

/// One executable server: a MIG segment (p processes) or an MPS partition.
#[derive(Debug)]
struct Server {
    service: usize,
    /// Logical GPU hosting this server (MIG: the segment's GPU index; MPS:
    /// the partition's GPU index) — the unit recovery events darken.
    gpu: usize,
    model: Model,
    share: ComputeShare,
    batch: u32,
    procs: u32,
    /// True interference sum from heterogeneous MPS co-residents.
    interference: f64,
    /// Adaptive-batching deadline: a partial batch launches once its oldest
    /// request has waited this long (SLO/2 queue budget minus one full batch
    /// cycle — the standard batching-with-timeout of Clipper/GSLICE, which
    /// every scheduler in the paper's lineup assumes).
    batch_timeout: SimTime,
    /// Per-ingress-class deadlines: the class's network term is already
    /// spent before arrival, so remote classes get the base timeout minus
    /// their RTT (floored at zero) — holding a spilled request for queueing
    /// budget it no longer has would blow its SLO for free.
    class_timeouts: Vec<SimTime>,
    /// True while the server's GPU has recovery work outstanding (re-flash
    /// or weight copy): requests queue but no batch launches.
    dark: bool,
    /// Waiting requests: `(arrival time, ingress class)`.
    queue: VecDeque<(SimTime, u32)>,
    busy: u32,
    /// SM-occupancy microseconds accumulated inside the window.
    busy_comp_us: u64,
}

#[derive(Debug)]
enum Event {
    Arrival {
        service: usize,
        class: usize,
    },
    Done {
        server: usize,
        arrivals: Vec<(SimTime, u32)>,
        comp_us: u64,
    },
    /// Re-check `server`'s queue for an expired batch deadline.
    Deadline {
        server: usize,
    },
    /// The capacity loss hits: darken affected servers, start recovery.
    RecoveryBegin,
    /// Recovery op `op` is fully recovered (re-flash + weight copy done):
    /// its servers light back up.
    GpuRecovered {
        op: usize,
    },
}

/// Batching deadline for a server: the SLO/2 queuing budget minus one full
/// batch cycle, floored at 1 ms and capped at 250 ms (production batchers
/// cap the artificial delay regardless of how loose the SLO is).
fn batch_timeout(spec: &ServiceSpec, server: &Server) -> SimTime {
    let (full_cycle, _) = batch_times(server, server.batch, server.procs);
    let budget_us = SimTime::from_ms(spec.slo.internal_target_ms()).micros();
    SimTime(
        budget_us
            .saturating_sub(full_cycle.micros())
            .clamp(1_000, 250_000),
    )
}

fn build_servers(deployment: &Deployment, specs: &[ServiceSpec]) -> Vec<Server> {
    let idx_of = |id: u32| specs.iter().position(|s| s.id == id);
    let mut servers = Vec::new();
    match deployment {
        Deployment::Mig(d) => {
            for ps in d.segments() {
                let Some(service) = idx_of(ps.segment.service_id) else {
                    continue;
                };
                let mut server = Server {
                    service,
                    gpu: ps.gpu,
                    model: ps.segment.model,
                    share: ComputeShare::Mig(ps.segment.triplet.instance),
                    batch: ps.segment.triplet.batch,
                    procs: ps.segment.triplet.procs,
                    interference: 0.0, // MIG isolates (paper §II-B)
                    batch_timeout: SimTime::ZERO,
                    class_timeouts: Vec::new(),
                    dark: false,
                    queue: VecDeque::new(),
                    busy: 0,
                    busy_comp_us: 0,
                };
                server.batch_timeout = batch_timeout(&specs[service], &server);
                servers.push(server);
            }
        }
        Deployment::Mps(d) => {
            for (gi, gpu) in d.gpus.iter().enumerate() {
                for (pi, p) in gpu.partitions.iter().enumerate() {
                    let Some(service) = idx_of(p.service_id) else {
                        continue;
                    };
                    let co = d.gpus[gi].co_residents(pi);
                    let mut server = Server {
                        service,
                        gpu: gi,
                        model: p.model,
                        share: ComputeShare::Fraction(p.fraction),
                        batch: p.batch,
                        procs: p.procs.max(1),
                        interference: total_interference(p.model, &co),
                        batch_timeout: SimTime::ZERO,
                        class_timeouts: Vec::new(),
                        dark: false,
                        queue: VecDeque::new(),
                        busy: 0,
                        busy_comp_us: 0,
                    };
                    server.batch_timeout = batch_timeout(&specs[service], &server);
                    servers.push(server);
                }
            }
        }
    }
    servers
}

/// Routing weight of each server (its scheduler-predicted throughput).
fn predicted_weights(deployment: &Deployment, specs: &[ServiceSpec]) -> Vec<Vec<(usize, f64)>> {
    // For each service index: list of (server index, weight).
    let mut per_service: Vec<Vec<(usize, f64)>> = vec![Vec::new(); specs.len()];
    let mut si = 0usize;
    match deployment {
        Deployment::Mig(d) => {
            for ps in d.segments() {
                if let Some(s) = specs.iter().position(|x| x.id == ps.segment.service_id) {
                    per_service[s].push((si, ps.segment.throughput_rps));
                    si += 1;
                }
            }
        }
        Deployment::Mps(d) => {
            for (_, p) in d.partitions() {
                if let Some(s) = specs.iter().position(|x| x.id == p.service_id) {
                    per_service[s].push((si, p.throughput_rps));
                    si += 1;
                }
            }
        }
    }
    per_service
}

/// Service time and SM-occupancy of one batch starting now on `server` with
/// `n_busy` concurrently active processes.
fn batch_times(server: &Server, b_eff: u32, n_busy: u32) -> (SimTime, u64) {
    let params = PerfParams::for_model(server.model);
    let gpcs = server.share.effective_gpcs();
    let cycle_ms = parva_perf::math::cycle_ms_with_interference(
        &params,
        gpcs,
        b_eff,
        n_busy,
        server.interference,
    );
    let comp_ms = parva_perf::math::t_comp(&params, gpcs, b_eff) * (1.0 + server.interference);
    (
        SimTime::from_ms(cycle_ms),
        SimTime::from_ms(comp_ms).micros(),
    )
}

/// Book the deterministic recovery timeline: per op, the instant the GPU
/// is fully recovered. The control plane reacts first; re-flashes then
/// serialize on each node's NVML lock in op order; weight copies become
/// eligible when their GPU's re-flash completes (immediately for prepared
/// / no-re-flash ops) and are granted FIFO by eligibility on the node's
/// PCIe link.
fn recovery_timeline(spec: &RecoverySpec, t0: SimTime) -> Vec<SimTime> {
    let t_cp = t0 + SimTime::from_ms(spec.control_plane_ms);
    let mut reflash_locks: BTreeMap<usize, SerialResource> = BTreeMap::new();
    let mut ready: Vec<SimTime> = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        if !op.prepared && op.reflash {
            let (_, done) = reflash_locks
                .entry(op.node)
                .or_default()
                .acquire(t_cp, SimTime::from_ms(spec.reflash_ms));
            ready.push(done);
        } else {
            ready.push(t_cp);
        }
    }
    let mut requests: Vec<(usize, SimTime, usize)> = spec
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| !op.prepared && op.copy_gib > 0.0)
        .map(|(i, op)| (op.node, ready[i], i))
        .collect();
    requests.sort_unstable_by_key(|&(node, eligible, i)| (node, eligible, i));
    let mut links: BTreeMap<usize, SerialResource> = BTreeMap::new();
    for (node, eligible, i) in requests {
        let secs = spec.ops[i].copy_gib / spec.link_gib_per_s.max(1e-9);
        let (_, done) = links
            .entry(node)
            .or_default()
            .acquire(eligible, SimTime::from_secs(secs));
        ready[i] = done;
    }
    ready
}

/// Salt mixed into the arrival stream seed of ingress classes ≥ 1 so every
/// class has an independent sample path. Class 0 uses the raw seed, which
/// keeps single-class runs bit-identical to [`simulate`] from before
/// ingress classes existed.
fn class_seed(seed: u64, class: usize) -> u64 {
    seed ^ (class as u64).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Run the serving simulation with recovery work riding the same event
/// queue as the traffic.
///
/// `recovery` lowers a fleet migration into simulator events: at
/// [`RecoverySpec::start_ms`] the affected servers go **dark** (requests
/// keep arriving and queueing, batches stop launching), the control plane
/// reacts, MIG re-flashes serialize per node, and weight copies queue FIFO
/// on each node's PCIe link. Servers light back up as their GPU's op
/// completes, so the disruption-window compliance dip and the end-to-end
/// recovery latency are *measured* outcomes of the DES
/// ([`ServingReport::recovery`]), not closed-form estimates. `None` (or an
/// empty spec) is bit-identical to [`simulate_with_ingress`].
///
/// Fully deterministic for a given `config.seed`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_with_recovery_reference(
    deployment: &Deployment,
    specs: &[ServiceSpec],
    ingress: &[Vec<IngressClass>],
    recovery: Option<&RecoverySpec>,
    config: &ServingConfig,
) -> ServingReport {
    let classes: Vec<Vec<IngressClass>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| match ingress.get(i) {
            Some(c) if !c.is_empty() => c.clone(),
            _ => vec![IngressClass::local(s.request_rate_rps)],
        })
        .collect();
    let mut servers = build_servers(deployment, specs);
    // A class's network term is queueing budget already spent before the
    // request reached the cluster: its batching deadline shrinks by the
    // RTT, floored at zero (class 0 keeps the base timeout bit-exactly).
    for s in &mut servers {
        s.class_timeouts = classes[s.service]
            .iter()
            .map(|c| {
                SimTime(
                    s.batch_timeout
                        .micros()
                        .saturating_sub(SimTime::from_ms(c.network_ms).micros()),
                )
            })
            .collect();
    }
    let weights = predicted_weights(deployment, specs);
    let mut routers: Vec<Option<Router>> = weights
        .iter()
        .map(|w| {
            if w.is_empty() {
                None
            } else {
                Some(Router::new(w.iter().map(|(_, t)| *t).collect()))
            }
        })
        .collect();

    let win_start = SimTime::from_secs(config.warmup_s);
    let win_end = SimTime::from_secs(config.warmup_s + config.duration_s);
    let sim_end = SimTime::from_secs(config.warmup_s + config.duration_s + config.drain_s);

    let mut q: EventQueue<Event> = EventQueue::new();
    // One arrival stream per (service, class); class 0 reuses the exact
    // pre-ingress stream derivation for backwards-identical sample paths.
    let mut arrival_rng: Vec<Vec<RngStream>> = specs
        .iter()
        .zip(&classes)
        .map(|(s, cls)| {
            (0..cls.len())
                .map(|c| RngStream::new(class_seed(config.seed, c), u64::from(s.id)))
                .collect()
        })
        .collect();

    // MMPP phase state per service (ignored by the other processes). Phase
    // streams are separate RNG streams so flipping the arrival process does
    // not perturb the arrival sample path structure.
    let mut bursting: Vec<bool> = vec![false; specs.len()];
    let mut phase_until: Vec<SimTime> = vec![SimTime::ZERO; specs.len()];
    let mut phase_rng: Vec<RngStream> = specs
        .iter()
        .map(|s| RngStream::new(config.seed ^ 0x9E37_79B9, u64::from(s.id)))
        .collect();

    // Draw the next interarrival gap for class `c` of service `i` as of
    // time `now`. The MMPP phase state is shared across a service's classes
    // (one demand process, several ingress paths).
    let next_gap = |i: usize,
                    c: usize,
                    now: SimTime,
                    rng: &mut Vec<Vec<RngStream>>,
                    bursting: &mut Vec<bool>,
                    phase_until: &mut Vec<SimTime>,
                    phase_rng: &mut Vec<RngStream>|
     -> SimTime {
        let rate = classes[i][c].rate_rps;
        match config.arrivals {
            ArrivalProcess::Poisson => rng[i][c].exp_interarrival(rate),
            ArrivalProcess::Deterministic => SimTime::from_secs(1.0 / rate),
            ArrivalProcess::Mmpp { mean_phase_s, .. } => {
                while now >= phase_until[i] {
                    bursting[i] = !bursting[i];
                    phase_until[i] += phase_rng[i].exp_interarrival(1.0 / mean_phase_s.max(1e-6));
                }
                let phase_rate = config.arrivals.phase_rate(rate, bursting[i]);
                rng[i][c].exp_interarrival(phase_rate)
            }
        }
    };

    // Per-service accounting, plus per-(service, class) accounting.
    let mut offered = vec![0u64; specs.len()];
    let mut completed = vec![0u64; specs.len()];
    let mut batches = vec![0u64; specs.len()];
    let mut violated = vec![0u64; specs.len()];
    let mut within_slo = vec![0u64; specs.len()];
    let mut latency: Vec<LatencyHistogram> =
        (0..specs.len()).map(|_| LatencyHistogram::new()).collect();
    let mut class_offered: Vec<Vec<u64>> = classes.iter().map(|c| vec![0; c.len()]).collect();
    let mut class_completed: Vec<Vec<u64>> = classes.iter().map(|c| vec![0; c.len()]).collect();
    let mut class_within: Vec<Vec<u64>> = classes.iter().map(|c| vec![0; c.len()]).collect();
    let mut class_latency: Vec<Vec<LatencyHistogram>> = classes
        .iter()
        .map(|c| (0..c.len()).map(|_| LatencyHistogram::new()).collect())
        .collect();

    // Seed first arrivals (zero-rate classes never generate traffic).
    // `next_gap` holds a shared borrow of `classes`, which coexists with
    // this shared iteration.
    for (i, cls) in classes.iter().enumerate() {
        for (c, class) in cls.iter().enumerate() {
            if class.rate_rps <= 0.0 {
                continue;
            }
            let t = next_gap(
                i,
                c,
                SimTime::ZERO,
                &mut arrival_rng,
                &mut bursting,
                &mut phase_until,
                &mut phase_rng,
            );
            q.schedule(
                t,
                Event::Arrival {
                    service: i,
                    class: c,
                },
            );
        }
    }

    // Recovery riding the same queue: the capacity loss fires at
    // `start_ms`; the op timeline (per-node serialized re-flashes, FIFO
    // PCIe copies) is booked when it fires. `None`/empty specs schedule
    // nothing, keeping the plain path bit-identical.
    let rec_spec = recovery.filter(|r| !r.is_empty());
    let mut rec_report: Option<RecoverySimReport> = None;
    if let Some(spec) = rec_spec {
        q.schedule(SimTime::from_ms(spec.start_ms), Event::RecoveryBegin);
    }

    // Launch one batch of `size` on `server` (caller checked feasibility).
    fn launch(q: &mut EventQueue<Event>, servers: &mut [Server], server: usize, size: u32) {
        let arrivals: Vec<(SimTime, u32)> = servers[server].queue.drain(..size as usize).collect();
        servers[server].busy += 1;
        let n_busy = servers[server].busy;
        let (cycle, comp_us) = batch_times(&servers[server], size, n_busy);
        q.schedule_in(
            cycle,
            Event::Done {
                server,
                arrivals,
                comp_us,
            },
        );
    }

    // Adaptive batching: launch full batches eagerly; for a partial queue,
    // launch once the head request's deadline expires, else arm a deadline.
    // Dark servers (recovery outstanding on their GPU) launch nothing —
    // their queues drain when the GPU's recovery op completes.
    fn try_start(q: &mut EventQueue<Event>, servers: &mut [Server], server: usize) {
        if servers[server].dark {
            return;
        }
        while servers[server].busy < servers[server].procs
            && servers[server].queue.len() >= servers[server].batch as usize
        {
            let full = servers[server].batch;
            launch(q, servers, server, full);
        }
        if servers[server].busy < servers[server].procs && !servers[server].queue.is_empty() {
            let (head, class) = *servers[server].queue.front().expect("non-empty");
            let timeout = servers[server]
                .class_timeouts
                .get(class as usize)
                .copied()
                .unwrap_or(servers[server].batch_timeout);
            let deadline = head + timeout;
            if q.now() >= deadline {
                let size = servers[server].queue.len() as u32;
                launch(q, servers, server, size.min(servers[server].batch));
            } else {
                q.schedule(deadline, Event::Deadline { server });
            }
        }
    }

    while let Some((t, ev)) = q.pop() {
        if t > sim_end {
            break;
        }
        match ev {
            Event::Arrival { service, class } => {
                // Schedule the next arrival while load generation is on.
                let next = t + next_gap(
                    service,
                    class,
                    t,
                    &mut arrival_rng,
                    &mut bursting,
                    &mut phase_until,
                    &mut phase_rng,
                );
                if next < win_end {
                    q.schedule(next, Event::Arrival { service, class });
                }
                if t >= win_start && t < win_end {
                    offered[service] += 1;
                    class_offered[service][class] += 1;
                }
                if let Some(router) = routers[service].as_mut() {
                    let k = router.route();
                    let (sidx, _) = weights[service][k];
                    servers[sidx].queue.push_back((t, class as u32));
                    try_start(&mut q, &mut servers, sidx);
                }
            }
            Event::Done {
                server,
                arrivals,
                comp_us,
            } => {
                servers[server].busy -= 1;
                let service = servers[server].service;
                let in_window = t >= win_start && t < win_end;
                if in_window {
                    servers[server].busy_comp_us += comp_us;
                    batches[service] += 1;
                    let slo_ms = specs[service].slo.latency_ms;
                    let mut worst = 0.0f64;
                    for &(a, class) in &arrivals {
                        let c = class as usize;
                        // The RTT term: network latency already spent by
                        // this ingress class counts against the SLO.
                        let lat_ms = t.since(a).as_ms() + classes[service][c].network_ms;
                        latency[service].record_ms(lat_ms);
                        class_latency[service][c].record_ms(lat_ms);
                        worst = worst.max(lat_ms);
                        completed[service] += 1;
                        class_completed[service][c] += 1;
                        if lat_ms <= slo_ms {
                            within_slo[service] += 1;
                            class_within[service][c] += 1;
                        }
                    }
                    if worst > slo_ms {
                        violated[service] += 1;
                    }
                }
                try_start(&mut q, &mut servers, server);
            }
            Event::Deadline { server } => {
                // Stale deadlines (batch already launched) fall through
                // harmlessly: try_start re-evaluates the queue state.
                try_start(&mut q, &mut servers, server);
            }
            Event::RecoveryBegin => {
                let spec = rec_spec.expect("recovery event without a spec");
                let mut dark = 0usize;
                for op in &spec.ops {
                    let Some(g) = op.logical_gpu else { continue };
                    for s in servers.iter_mut().filter(|s| s.gpu == g) {
                        if !s.dark {
                            s.dark = true;
                            dark += 1;
                        }
                    }
                }
                let timeline = recovery_timeline(spec, t);
                let mut last = t + SimTime::from_ms(spec.control_plane_ms);
                for (i, ready) in timeline.iter().enumerate() {
                    q.schedule(*ready, Event::GpuRecovered { op: i });
                    last = last.max(*ready);
                }
                rec_report = Some(RecoverySimReport {
                    started_ms: t.as_ms(),
                    latency_ms: last.since(t).as_ms(),
                    dark_servers: dark,
                    reflashes_done: spec.ops.iter().filter(|o| o.reflash && !o.prepared).count(),
                    copied_gib: spec.pending_copy_gib(),
                    precopied_gib: spec.prepared_gib(),
                });
            }
            Event::GpuRecovered { op } => {
                let spec = rec_spec.expect("recovery event without a spec");
                let Some(g) = spec.ops[op].logical_gpu else {
                    continue;
                };
                for si in 0..servers.len() {
                    if servers[si].gpu == g && servers[si].dark {
                        servers[si].dark = false;
                        try_start(&mut q, &mut servers, si);
                    }
                }
            }
        }
    }

    let window_us = win_end.since(win_start).micros() as f64;
    let server_reports = servers
        .iter()
        .map(|s| ServerActivity {
            service_id: specs[s.service].id,
            sms: s.share.sms(),
            activity: (s.busy_comp_us as f64 / window_us).clamp(0.0, 1.0),
        })
        .collect();

    let class_reports = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            classes[i]
                .iter()
                .enumerate()
                .map(|(c, cls)| ClassReport {
                    service_id: spec.id,
                    class: c,
                    network_ms: cls.network_ms,
                    offered: class_offered[i][c],
                    completed: class_completed[i][c],
                    completed_within_slo: class_within[i][c],
                    latency: class_latency[i][c].clone(),
                })
                .collect::<Vec<_>>()
        })
        .collect();

    ServingReport {
        duration_s: config.duration_s,
        services: specs
            .iter()
            .enumerate()
            .map(|(i, spec)| ServiceReport {
                service_id: spec.id,
                offered: offered[i],
                completed: completed[i],
                batches: batches[i],
                violated_batches: violated[i],
                completed_within_slo: within_slo[i],
                latency: latency[i].clone(),
                rejected: 0,
                timeouts: 0,
                retries: 0,
                shed: 0,
                hedges: 0,
                hedge_wins: 0,
            })
            .collect(),
        servers: server_reports,
        classes: class_reports,
        recovery: rec_report,
        tenants: Vec::new(),
    }
}
