//! # parva-serve — the cluster serving simulator
//!
//! Executes a [`parva_deploy::Deployment`] against synthetic client load,
//! replacing the paper's live inference servers on A100 fleets. For each
//! service a Poisson arrival process offers requests at the Table IV rate;
//! requests are routed to the service's segments/partitions by weighted
//! round-robin (capacity-proportional, as a front-end load balancer would),
//! queued, batched greedily (a free process takes up to its configured batch
//! from the queue), and executed with service times from the calibrated
//! performance model — including MPS saturation dynamics within a segment
//! and true inter-workload interference κ for MPS co-residents (the
//! schedulers only ever saw *estimates*, which is exactly how mispredictions
//! become SLO violations here).
//!
//! Measurements mirror the paper's §IV-B/C:
//!
//! * **SLO compliance** — fraction of *batches* whose worst request latency
//!   met the client SLO (Fig. 8's metric),
//! * **SM activity** — per server, accumulated compute-occupancy time over
//!   the measurement window (the DCGM semantics behind Eq. 3's internal
//!   slack),
//! * full latency histograms per service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;
#[cfg(test)]
mod reference;
pub mod report;
pub mod resilience;
pub mod router;
pub mod sim;
pub mod simulation;
pub mod stream;

pub use recovery::{RecoveryOp, RecoverySimReport, RecoverySpec};
pub use report::{
    ClassReport, ResilienceCounters, ServerActivity, ServiceReport, ServingReport, TenantReport,
};
pub use resilience::ResilienceSpec;
pub use router::Router;
#[allow(deprecated)]
pub use sim::{
    simulate, simulate_with_ingress, simulate_with_recovery, ArrivalProcess, IngressClass,
    ServingConfig,
};
pub use simulation::Simulation;
pub use stream::{EpochObservation, StreamEngine, StreamReport, StreamServiceReport};
