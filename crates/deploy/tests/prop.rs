//! Property tests for deployment-map invariants.

use parva_deploy::{MigDeployment, Segment};
use parva_mig::InstanceProfile;
use parva_perf::Model;
use parva_profile::Triplet;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = InstanceProfile> {
    prop::sample::select(InstanceProfile::ALL.to_vec())
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_profile(), 0u32..8, 1u32..4, 10.0f64..2000.0).prop_map(|(p, svc, procs, tput)| Segment {
        service_id: svc,
        model: Model::ALL[(svc as usize) % Model::ALL.len()],
        triplet: Triplet::new(p, 8, procs),
        throughput_rps: tput,
        latency_ms: 10.0,
    })
}

proptest! {
    /// First-fit placement always succeeds, never overlaps, and keeps the
    /// deployment structurally valid.
    #[test]
    fn first_fit_always_valid(segs in prop::collection::vec(arb_segment(), 0..40)) {
        let mut d = MigDeployment::new();
        for s in &segs {
            d.place_first_fit(*s);
        }
        prop_assert_eq!(d.segments().len(), segs.len());
        prop_assert!(d.validate());
        // Total allocated GPCs equals the sum of segment sizes.
        let total: u32 = segs.iter().map(|s| u32::from(s.gpcs())).sum();
        prop_assert_eq!(d.gpcs_allocated(), total);
    }

    /// Removing everything empties the deployment; compaction drops all GPUs.
    #[test]
    fn remove_all_then_compact(segs in prop::collection::vec(arb_segment(), 1..25)) {
        let mut d = MigDeployment::new();
        let mut placed = Vec::new();
        for s in &segs {
            placed.push(d.place_first_fit(*s));
        }
        for p in &placed {
            prop_assert!(d.remove(p.gpu, p.placement).is_some());
        }
        prop_assert_eq!(d.gpcs_allocated(), 0);
        d.compact();
        prop_assert_eq!(d.gpu_count(), 0);
        prop_assert!(d.validate());
    }

    /// Compaction preserves capacity per service and validity.
    #[test]
    fn compact_preserves_capacity(
        segs in prop::collection::vec(arb_segment(), 1..25),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut d = MigDeployment::new();
        let mut placed = Vec::new();
        for s in &segs {
            placed.push(d.place_first_fit(*s));
        }
        for idx in &removals {
            let p = placed[idx.index(placed.len())];
            let _ = d.remove(p.gpu, p.placement);
        }
        let before: Vec<(u32, f64)> =
            (0..8).map(|id| (id, d.capacity_of(id))).collect();
        d.compact();
        prop_assert!(d.validate());
        for (id, cap) in before {
            prop_assert!((d.capacity_of(id) - cap).abs() < 1e-9);
        }
    }

    /// First-fit is no worse than one GPU per segment, and GPU layouts are
    /// always MIG-realizable.
    #[test]
    fn first_fit_packing_bound(segs in prop::collection::vec(arb_segment(), 1..30)) {
        let configs = parva_mig::all_configurations();
        let mut d = MigDeployment::new();
        for s in &segs {
            d.place_first_fit(*s);
        }
        prop_assert!(d.gpu_count() <= segs.len());
        for gpu in d.gpus() {
            prop_assert!(configs.iter().any(|c| c.contains(gpu)));
        }
    }
}
