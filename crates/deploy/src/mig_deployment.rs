//! MIG deployments: segments placed on MIG-partitioned GPUs.

use crate::segment::Segment;
use parva_mig::{GpuState, Placement};
use serde::{Deserialize, Serialize};

/// A segment bound to a physical location: GPU index + slice placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedSegment {
    /// The segment.
    pub segment: Segment,
    /// Index of the GPU hosting it.
    pub gpu: usize,
    /// MIG placement (profile + start slice) inside that GPU.
    pub placement: Placement,
}

/// The deployment map produced by MIG-based schedulers (paper Fig. 2's
/// "Deployment"): a fleet of MIG-partitioned GPUs and the segments on them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigDeployment {
    gpus: Vec<GpuState>,
    segments: Vec<PlacedSegment>,
}

impl MigDeployment {
    /// An empty deployment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of GPUs in use.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Per-GPU MIG occupancy states.
    #[must_use]
    pub fn gpus(&self) -> &[GpuState] {
        &self.gpus
    }

    /// All placed segments.
    #[must_use]
    pub fn segments(&self) -> &[PlacedSegment] {
        &self.segments
    }

    /// Segments of one service.
    pub fn segments_of(&self, service_id: u32) -> impl Iterator<Item = &PlacedSegment> {
        self.segments
            .iter()
            .filter(move |s| s.segment.service_id == service_id)
    }

    /// Segments placed on one GPU.
    pub fn segments_on(&self, gpu: usize) -> impl Iterator<Item = &PlacedSegment> {
        self.segments.iter().filter(move |s| s.gpu == gpu)
    }

    /// Total GPCs allocated across the fleet.
    #[must_use]
    pub fn gpcs_allocated(&self) -> u32 {
        self.gpus.iter().map(|g| u32::from(g.gpcs_used())).sum()
    }

    /// Total GPC capacity of the fleet (7 per GPU).
    #[must_use]
    pub fn gpcs_capacity(&self) -> u32 {
        self.gpus.len() as u32 * u32::from(parva_mig::COMPUTE_SLICES)
    }

    /// Predicted aggregate capacity for a service, requests/s.
    #[must_use]
    pub fn capacity_of(&self, service_id: u32) -> f64 {
        self.segments_of(service_id)
            .map(|s| s.segment.throughput_rps)
            .sum()
    }

    /// Place a segment on GPU `gpu` (growing the fleet as needed) at an
    /// explicit placement.
    ///
    /// # Errors
    /// Propagates MIG placement violations.
    pub fn place_at(
        &mut self,
        segment: Segment,
        gpu: usize,
        placement: Placement,
    ) -> Result<(), parva_mig::PlaceError> {
        while self.gpus.len() <= gpu {
            self.gpus.push(GpuState::new());
        }
        self.gpus[gpu].place_at(placement)?;
        self.segments.push(PlacedSegment {
            segment,
            gpu,
            placement,
        });
        Ok(())
    }

    /// Place a segment on the first GPU (scanning from index 0) that can
    /// host its instance profile, appending a new GPU if none can. Returns
    /// the chosen (gpu, placement). This is the paper's `ALLOCATION`
    /// first-fit inner step.
    pub fn place_first_fit(&mut self, segment: Segment) -> PlacedSegment {
        let profile = segment.triplet.instance;
        for gpu in 0..self.gpus.len() {
            if let Some(start) = self.gpus[gpu].find_start(profile) {
                let placement = Placement::new(profile, start);
                self.gpus[gpu]
                    .place_at(placement)
                    .expect("find_start verified");
                let placed = PlacedSegment {
                    segment,
                    gpu,
                    placement,
                };
                self.segments.push(placed);
                return placed;
            }
        }
        let gpu = self.gpus.len();
        self.gpus.push(GpuState::new());
        let start = self.gpus[gpu]
            .find_start(profile)
            .expect("empty GPU hosts any profile");
        let placement = Placement::new(profile, start);
        self.gpus[gpu].place_at(placement).expect("empty GPU");
        let placed = PlacedSegment {
            segment,
            gpu,
            placement,
        };
        self.segments.push(placed);
        placed
    }

    /// Remove a placed segment (matched by GPU + placement). Returns the
    /// segment if found.
    pub fn remove(&mut self, gpu: usize, placement: Placement) -> Option<Segment> {
        let idx = self
            .segments
            .iter()
            .position(|s| s.gpu == gpu && s.placement == placement)?;
        let placed = self.segments.swap_remove(idx);
        let removed = self.gpus[gpu].remove(placement);
        debug_assert!(removed, "GPU state out of sync with segment list");
        Some(placed.segment)
    }

    /// Drop trailing/interior empty GPUs and renumber segments accordingly.
    pub fn compact(&mut self) {
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.gpus.len());
        let mut next = 0usize;
        for g in &self.gpus {
            if g.is_empty() {
                remap.push(None);
            } else {
                remap.push(Some(next));
                next += 1;
            }
        }
        self.gpus.retain(|g| !g.is_empty());
        for s in &mut self.segments {
            s.gpu = remap[s.gpu].expect("segment on empty GPU");
        }
    }

    /// Structural audit: every segment's placement exists in its GPU state,
    /// every GPU placement has exactly one segment, all GPU states validate.
    #[must_use]
    pub fn validate(&self) -> bool {
        if !self.gpus.iter().all(GpuState::validate) {
            return false;
        }
        let mut counted = 0usize;
        for (i, g) in self.gpus.iter().enumerate() {
            for p in g.placements() {
                let n = self
                    .segments
                    .iter()
                    .filter(|s| s.gpu == i && s.placement == *p)
                    .count();
                if n != 1 {
                    return false;
                }
                counted += 1;
            }
        }
        counted == self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(id: u32, g: InstanceProfile) -> Segment {
        Segment {
            service_id: id,
            model: Model::ResNet50,
            triplet: Triplet::new(g, 8, 2),
            throughput_rps: 100.0 * f64::from(g.gpcs()),
            latency_ms: 10.0,
        }
    }

    #[test]
    fn first_fit_packs_one_gpu() {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G4));
        d.place_first_fit(seg(1, InstanceProfile::G3));
        assert_eq!(d.gpu_count(), 1);
        assert_eq!(d.gpcs_allocated(), 7);
        assert!(d.validate());
    }

    #[test]
    fn first_fit_overflows_to_new_gpu() {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G7));
        let p = d.place_first_fit(seg(1, InstanceProfile::G1));
        assert_eq!(p.gpu, 1);
        assert_eq!(d.gpu_count(), 2);
    }

    #[test]
    fn capacity_sums_per_service() {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(5, InstanceProfile::G2));
        d.place_first_fit(seg(5, InstanceProfile::G2));
        d.place_first_fit(seg(6, InstanceProfile::G1));
        assert_eq!(d.capacity_of(5), 400.0);
        assert_eq!(d.capacity_of(6), 100.0);
        assert_eq!(d.capacity_of(99), 0.0);
    }

    #[test]
    fn remove_and_compact() {
        let mut d = MigDeployment::new();
        let a = d.place_first_fit(seg(0, InstanceProfile::G7));
        let b = d.place_first_fit(seg(1, InstanceProfile::G7));
        d.place_first_fit(seg(2, InstanceProfile::G7));
        assert_eq!(d.gpu_count(), 3);
        assert!(d.remove(b.gpu, b.placement).is_some());
        d.compact();
        assert_eq!(d.gpu_count(), 2);
        assert!(d.validate());
        // Segment on old GPU 2 must have been renumbered to 1.
        assert!(d
            .segments()
            .iter()
            .any(|s| s.gpu == 1 && s.segment.service_id == 2));
        // Removing again fails.
        assert!(d
            .remove(a.gpu, parva_mig::Placement::new(InstanceProfile::G1, 0))
            .is_none());
    }

    #[test]
    fn validate_catches_orphan_segment() {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G2));
        // Corrupt: push a segment without a backing placement.
        d.segments.push(PlacedSegment {
            segment: seg(9, InstanceProfile::G1),
            gpu: 0,
            placement: Placement::new(InstanceProfile::G1, 6),
        });
        assert!(!d.validate());
    }

    #[test]
    fn gpcs_capacity() {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G1));
        assert_eq!(d.gpcs_capacity(), 7);
        assert_eq!(d.gpcs_allocated(), 1);
    }
}
