//! Scheduling errors.

use serde::{Deserialize, Serialize};

/// Why a scheduler could not produce a deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// No profiled operating point satisfies the service's SLO (even the
    /// largest instance is too slow, or everything is OOM).
    InfeasibleSlo {
        /// Offending service id.
        service_id: u32,
        /// The internal latency target that could not be met, ms.
        internal_target_ms: f64,
    },
    /// The service's model was never profiled.
    NotProfiled {
        /// Offending service id.
        service_id: u32,
    },
    /// The scheduler cannot handle the service's request rate (e.g. iGniter
    /// cannot split one workload across GPUs, paper §II-A/IV-B).
    RateTooHigh {
        /// Offending service id.
        service_id: u32,
        /// The offered rate, requests/s.
        rate_rps: f64,
        /// The maximum rate this scheduler can serve for that workload.
        max_rps: f64,
    },
    /// Input validation failed (non-positive rate or SLO).
    InvalidService {
        /// Offending service id.
        service_id: u32,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InfeasibleSlo { service_id, internal_target_ms } => write!(
                f,
                "service #{service_id}: no operating point meets the {internal_target_ms:.1} ms internal latency target"
            ),
            Self::NotProfiled { service_id } => {
                write!(f, "service #{service_id}: model not present in the profile book")
            }
            Self::RateTooHigh { service_id, rate_rps, max_rps } => write!(
                f,
                "service #{service_id}: offered rate {rate_rps:.0} req/s exceeds the scheduler's per-workload maximum {max_rps:.0} req/s"
            ),
            Self::InvalidService { service_id } => {
                write!(f, "service #{service_id}: invalid specification")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ScheduleError::RateTooHigh {
            service_id: 3,
            rate_rps: 5009.0,
            max_rps: 900.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("#3") && msg.contains("5009"));
        let e = ScheduleError::InfeasibleSlo {
            service_id: 1,
            internal_target_ms: 29.5,
        };
        assert!(e.to_string().contains("29.5"));
    }
}
