//! # parva-deploy — deployment vocabulary shared by all schedulers
//!
//! Defines the types every scheduler in this workspace produces and consumes:
//!
//! * [`ServiceSpec`] / [`Slo`] — a registered inference service: model,
//!   request rate and SLO latency (the client input of paper Fig. 2).
//! * [`Tenant`] / [`SloClass`] — the multi-tenant identity a service binds
//!   to: admission quota, fair-share weight and billing rate.
//! * [`Segment`] — "an MPS-activated MIG instance" (paper §I): a service's
//!   operating triplet plus its predicted throughput and latency.
//! * [`MigDeployment`] — segments placed on MIG-partitioned GPUs (ParvaGPU,
//!   MIG-serving).
//! * [`MpsDeployment`] — fractional MPS partitions on whole GPUs (gpulet,
//!   iGniter).
//! * [`Scheduler`] — the common trait: services in, deployment out, plus the
//!   capability matrix of the paper's Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
pub mod error;
pub mod mig_deployment;
pub mod mps_deployment;
pub mod scheduler;
pub mod segment;
pub mod service;
pub mod tenant;

pub use capability::{Capabilities, OverheadClass, SpatialScheduling};
pub use error::ScheduleError;
pub use mig_deployment::{MigDeployment, PlacedSegment};
pub use mps_deployment::{MpsDeployment, MpsGpu, MpsPartition};
pub use scheduler::{Deployment, Scheduler};
pub use segment::Segment;
pub use service::{ServiceSpec, Slo};
pub use tenant::{tenant_of, SloClass, Tenant};
