//! Tenant identity: the unit of multi-tenant accounting across all layers.
//!
//! ParvaGPU plans spatial GPU sharing per *service*; a cloud operator runs
//! that planner for many *tenants* on one fleet. A [`Tenant`] carries the
//! operator-facing contract — SLO class, admission quota, fair-share weight
//! and billing rate — and services bind to it via
//! [`ServiceSpec::tenant`](crate::ServiceSpec). Tenant id `0` is reserved
//! for "untenanted": every legacy single-tenant code path treats it as the
//! absence of a binding, which keeps all pre-tenant reports byte-identical.

use serde::{Deserialize, Serialize};

/// Coarse service tier a tenant purchases. Only used for reporting and
/// operator-facing grouping; the per-service [`Slo`](crate::Slo) remains the
/// enforcement boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloClass {
    /// Latency-sensitive, user-facing traffic.
    Interactive,
    /// Default tier.
    #[default]
    Standard,
    /// Throughput-oriented, deadline-tolerant work.
    Batch,
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Interactive => write!(f, "interactive"),
            Self::Standard => write!(f, "standard"),
            Self::Batch => write!(f, "batch"),
        }
    }
}

/// A tenant: the billing / isolation identity that owns one or more
/// services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Tenant identification number. `0` is reserved for "untenanted".
    pub id: u32,
    /// Human-readable name used in reports and gauge rows.
    #[serde(default)]
    pub name: String,
    /// Purchased service tier.
    #[serde(default)]
    pub slo_class: SloClass,
    /// Admission quota in requests per second across all of the tenant's
    /// services. `0` (or negative) means unlimited: no quota is enforced.
    #[serde(default)]
    pub quota_rps: f64,
    /// Fair-share weight used by the region router's weighted-fair spill.
    /// Non-positive values are treated as weight `1.0`.
    #[serde(default)]
    pub weight: f64,
    /// Billing rate: USD earned per 1000 requests completed within SLO.
    #[serde(default)]
    pub usd_per_1k_requests: f64,
}

impl Tenant {
    /// Create a tenant with the default contract (unlimited quota,
    /// weight 1, zero billing rate).
    #[must_use]
    pub fn new(id: u32, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            slo_class: SloClass::default(),
            quota_rps: 0.0,
            weight: 1.0,
            usd_per_1k_requests: 0.0,
        }
    }

    /// Builder: set the admission quota (requests per second).
    #[must_use]
    pub fn with_quota_rps(mut self, quota_rps: f64) -> Self {
        self.quota_rps = quota_rps;
        self
    }

    /// Builder: set the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builder: set the billing rate (USD per 1000 in-SLO requests).
    #[must_use]
    pub fn with_rate_usd_per_1k(mut self, usd: f64) -> Self {
        self.usd_per_1k_requests = usd;
        self
    }

    /// Builder: set the SLO class.
    #[must_use]
    pub fn with_slo_class(mut self, slo_class: SloClass) -> Self {
        self.slo_class = slo_class;
        self
    }

    /// Is an admission quota configured?
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.quota_rps > 0.0 && self.quota_rps.is_finite()
    }

    /// The fair-share weight with non-positive values mapped to `1.0`.
    #[must_use]
    pub fn effective_weight(&self) -> f64 {
        if self.weight > 0.0 && self.weight.is_finite() {
            self.weight
        } else {
            1.0
        }
    }

    /// Validity: non-zero id, finite non-negative economics.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.id != 0
            && self.quota_rps.is_finite()
            && self.quota_rps >= 0.0
            && self.weight.is_finite()
            && self.usd_per_1k_requests.is_finite()
            && self.usd_per_1k_requests >= 0.0
    }
}

/// Look up a tenant by id in a slice.
#[must_use]
pub fn tenant_of(tenants: &[Tenant], id: u32) -> Option<&Tenant> {
    tenants.iter().find(|t| t.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_defaults() {
        let t = Tenant::new(1, "acme")
            .with_quota_rps(500.0)
            .with_weight(2.0)
            .with_rate_usd_per_1k(0.8)
            .with_slo_class(SloClass::Interactive);
        assert!(t.is_valid());
        assert!(t.is_limited());
        assert_eq!(t.effective_weight(), 2.0);
        assert_eq!(t.slo_class.to_string(), "interactive");
    }

    #[test]
    fn zero_quota_means_unlimited() {
        let t = Tenant::new(7, "free");
        assert!(!t.is_limited());
        assert!(t.is_valid());
    }

    #[test]
    fn nonpositive_weight_maps_to_one() {
        assert_eq!(Tenant::new(1, "a").with_weight(0.0).effective_weight(), 1.0);
        assert_eq!(
            Tenant::new(1, "a").with_weight(-3.0).effective_weight(),
            1.0
        );
    }

    #[test]
    fn id_zero_is_invalid() {
        assert!(!Tenant::new(0, "reserved").is_valid());
    }

    #[test]
    fn serde_round_trip() {
        let t = Tenant::new(3, "bursty")
            .with_quota_rps(120.0)
            .with_weight(0.5)
            .with_rate_usd_per_1k(1.2)
            .with_slo_class(SloClass::Batch);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tenant = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sparse_json_uses_defaults() {
        let t: Tenant = serde_json::from_str(r#"{"id": 4}"#).unwrap();
        assert_eq!(t.id, 4);
        assert_eq!(t.name, "");
        assert_eq!(t.slo_class, SloClass::Standard);
        assert!(!t.is_limited());
        assert_eq!(t.effective_weight(), 1.0);
    }

    #[test]
    fn lookup() {
        let ts = vec![Tenant::new(1, "a"), Tenant::new(2, "b")];
        assert_eq!(tenant_of(&ts, 2).unwrap().name, "b");
        assert!(tenant_of(&ts, 9).is_none());
    }
}
