//! MPS deployments: fractional SM partitions on whole (non-MIG) GPUs.
//!
//! The gpulet and iGniter baselines do not use MIG; they assign each
//! workload a percentage of a GPU's SMs via MPS active-thread quotas. Unlike
//! MIG instances, such partitions share the L2 cache and memory controllers,
//! so heterogeneous co-residents interfere (paper §II-A).

use parva_perf::{ComputeShare, Model};
use serde::{Deserialize, Serialize};

/// One MPS partition: a fraction of a GPU's SMs serving one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpsPartition {
    /// Owning service id.
    pub service_id: u32,
    /// Model served.
    pub model: Model,
    /// Fraction of the GPU's SMs, in (0, 1].
    pub fraction: f64,
    /// Batch size the server uses.
    pub batch: u32,
    /// Concurrent worker processes/streams inside the partition (gpulet
    /// serves with one worker per partition; iGniter's server double-buffers
    /// transfers against compute, behaving like two).
    pub procs: u32,
    /// Predicted throughput (after the scheduler's interference margin).
    pub throughput_rps: f64,
    /// Predicted per-request latency, ms.
    pub latency_ms: f64,
}

impl MpsPartition {
    /// The compute share abstraction for the performance model.
    #[must_use]
    pub fn share(&self) -> ComputeShare {
        ComputeShare::Fraction(self.fraction)
    }

    /// SM share expressed in GPC-equivalents (7 per GPU).
    #[must_use]
    pub fn gpc_equiv(&self) -> f64 {
        self.fraction * 7.0
    }
}

/// A whole GPU carrying MPS partitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpsGpu {
    /// Partitions resident on this GPU.
    pub partitions: Vec<MpsPartition>,
}

impl MpsGpu {
    /// Sum of partition fractions (≤ 1 for a valid deployment).
    #[must_use]
    pub fn fraction_used(&self) -> f64 {
        self.partitions.iter().map(|p| p.fraction).sum()
    }

    /// Remaining SM fraction.
    #[must_use]
    pub fn fraction_free(&self) -> f64 {
        (1.0 - self.fraction_used()).max(0.0)
    }

    /// Models co-resident with partition `idx` (for interference).
    #[must_use]
    pub fn co_residents(&self, idx: usize) -> Vec<Model> {
        self.partitions
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, p)| p.model)
            .collect()
    }

    /// Aggregate GPU memory demand of all partitions, GiB.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| parva_perf::math::memory_gib(p.model, p.batch, p.procs))
            .sum()
    }
}

/// The deployment map of an MPS-only scheduler.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpsDeployment {
    /// GPUs in use.
    pub gpus: Vec<MpsGpu>,
}

impl MpsDeployment {
    /// An empty deployment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of GPUs in use.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Iterate over all partitions with their GPU index.
    pub fn partitions(&self) -> impl Iterator<Item = (usize, &MpsPartition)> {
        self.gpus
            .iter()
            .enumerate()
            .flat_map(|(i, g)| g.partitions.iter().map(move |p| (i, p)))
    }

    /// Predicted aggregate capacity for a service, requests/s.
    #[must_use]
    pub fn capacity_of(&self, service_id: u32) -> f64 {
        self.partitions()
            .filter(|(_, p)| p.service_id == service_id)
            .map(|(_, p)| p.throughput_rps)
            .sum()
    }

    /// Structural audit: fractions positive and per-GPU sums ≤ 1 (+ε), GPU
    /// memory not oversubscribed (80 GiB card).
    #[must_use]
    pub fn validate(&self) -> bool {
        self.gpus.iter().all(|g| {
            g.partitions
                .iter()
                .all(|p| p.fraction > 0.0 && p.fraction <= 1.0 + 1e-9)
                && g.fraction_used() <= 1.0 + 1e-9
                && g.memory_gib() <= parva_mig::GpuModel::A100_80GB.total_memory_gib() + 1e-9
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(id: u32, frac: f64) -> MpsPartition {
        MpsPartition {
            service_id: id,
            model: Model::ResNet50,
            fraction: frac,
            batch: 8,
            procs: 1,
            throughput_rps: 500.0 * frac,
            latency_ms: 20.0,
        }
    }

    #[test]
    fn fraction_accounting() {
        let mut g = MpsGpu::default();
        g.partitions.push(part(0, 0.4));
        g.partitions.push(part(1, 0.6));
        assert!((g.fraction_used() - 1.0).abs() < 1e-12);
        assert_eq!(g.fraction_free(), 0.0);
    }

    #[test]
    fn co_residents_excludes_self() {
        let mut g = MpsGpu::default();
        g.partitions.push(part(0, 0.3));
        g.partitions.push(part(1, 0.3));
        g.partitions.push(part(2, 0.3));
        assert_eq!(g.co_residents(1).len(), 2);
    }

    #[test]
    fn deployment_capacity() {
        let mut d = MpsDeployment::new();
        let mut g = MpsGpu::default();
        g.partitions.push(part(4, 0.5));
        g.partitions.push(part(4, 0.5));
        d.gpus.push(g);
        assert_eq!(d.capacity_of(4), 500.0);
        assert!(d.validate());
    }

    #[test]
    fn oversubscription_invalid() {
        let mut d = MpsDeployment::new();
        let mut g = MpsGpu::default();
        g.partitions.push(part(0, 0.7));
        g.partitions.push(part(1, 0.7));
        d.gpus.push(g);
        assert!(!d.validate());
    }

    #[test]
    fn gpc_equiv() {
        assert!((part(0, 0.5).gpc_equiv() - 3.5).abs() < 1e-12);
    }
}
