//! Scheduler capability matrix — paper Table I.

use serde::{Deserialize, Serialize};

/// Spatial-scheduling support level (paper Table I "Spatial scheduling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialScheduling {
    /// Full spatial scheduling across GPUs.
    Full,
    /// Limited to a fixed number of co-resident workloads per GPU
    /// (gpulet: 2).
    UpTo(u8),
    /// Not applicable (temporal scheduler).
    NotApplicable,
}

/// Scheduling overhead class (paper Table I "Scheduling overhead").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OverheadClass {
    /// Low overhead.
    Low,
    /// Medium overhead.
    Medium,
    /// High overhead.
    High,
    /// Very high overhead.
    VeryHigh,
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Uses NVIDIA MPS.
    pub mps_support: bool,
    /// Uses NVIDIA MIG.
    pub mig_support: bool,
    /// Prevents GPU internal slack.
    pub internal_slack_prevention: bool,
    /// Prevents GPU external fragmentation (`None` ⇒ N/A in the table).
    pub external_fragmentation_prevention: Option<bool>,
    /// Spatial scheduling support.
    pub spatial_scheduling: SpatialScheduling,
    /// Handles request rates beyond a single partition/GPU.
    pub high_request_rate: bool,
    /// Scheduling overhead class (`None` ⇒ N/A in the table; the paper marks
    /// PARIS and ELSA's overhead N/A because they never ran the spatial
    /// scheduling path being measured).
    pub overhead: Option<OverheadClass>,
}

impl Capabilities {
    /// The ParvaGPU row of Table I.
    #[must_use]
    pub const fn parvagpu() -> Self {
        Self {
            mps_support: true,
            mig_support: true,
            internal_slack_prevention: true,
            external_fragmentation_prevention: Some(true),
            spatial_scheduling: SpatialScheduling::Full,
            high_request_rate: true,
            overhead: Some(OverheadClass::Low),
        }
    }

    /// The gpulet row of Table I.
    #[must_use]
    pub const fn gpulet() -> Self {
        Self {
            mps_support: true,
            mig_support: false,
            internal_slack_prevention: false,
            external_fragmentation_prevention: None, // N/A
            spatial_scheduling: SpatialScheduling::UpTo(2),
            high_request_rate: true,
            overhead: Some(OverheadClass::Medium),
        }
    }

    /// The iGniter row of Table I.
    #[must_use]
    pub const fn igniter() -> Self {
        Self {
            mps_support: true,
            mig_support: false,
            internal_slack_prevention: false,
            external_fragmentation_prevention: Some(false),
            spatial_scheduling: SpatialScheduling::Full,
            high_request_rate: false,
            overhead: Some(OverheadClass::Low),
        }
    }

    /// The MIG-serving row of Table I.
    #[must_use]
    pub const fn mig_serving() -> Self {
        Self {
            mps_support: false,
            mig_support: true,
            internal_slack_prevention: false,
            external_fragmentation_prevention: Some(true),
            spatial_scheduling: SpatialScheduling::Full,
            high_request_rate: true,
            overhead: Some(OverheadClass::VeryHigh),
        }
    }

    /// The GSLICE row of Table I (Dhakal et al., SoCC 2020): MPS self-tuning
    /// with adaptive batching prevents internal slack, but there is no
    /// multi-GPU story, so high request rates and external fragmentation are
    /// out of scope.
    #[must_use]
    pub const fn gslice() -> Self {
        Self {
            mps_support: true,
            mig_support: false,
            internal_slack_prevention: true,
            external_fragmentation_prevention: Some(false),
            spatial_scheduling: SpatialScheduling::Full,
            high_request_rate: false,
            overhead: Some(OverheadClass::Low),
        }
    }

    /// The PARIS and ELSA row of Table I (Kim et al., DAC 2022): MIG-only
    /// instance sizing (PARIS) plus *temporal* scheduling (ELSA) — spatial
    /// scheduling and overhead are N/A in the paper's matrix.
    #[must_use]
    pub const fn paris_elsa() -> Self {
        Self {
            mps_support: false,
            mig_support: true,
            internal_slack_prevention: false,
            external_fragmentation_prevention: Some(false),
            spatial_scheduling: SpatialScheduling::NotApplicable,
            high_request_rate: false,
            overhead: None,
        }
    }

    /// Render one row of the Table I feature matrix as display strings.
    #[must_use]
    pub fn row(&self) -> [String; 7] {
        let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
        [
            tick(self.mps_support),
            tick(self.mig_support),
            tick(self.internal_slack_prevention),
            self.external_fragmentation_prevention
                .map_or("N/A".into(), tick),
            match self.spatial_scheduling {
                SpatialScheduling::Full => "yes".into(),
                SpatialScheduling::UpTo(n) => n.to_string(),
                SpatialScheduling::NotApplicable => "N/A".into(),
            },
            tick(self.high_request_rate),
            self.overhead.map_or("N/A".into(), |o| format!("{o:?}")),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parvagpu_is_the_only_all_yes_row() {
        // Table I's point: only ParvaGPU supports everything at low overhead.
        let p = Capabilities::parvagpu();
        assert!(p.mps_support && p.mig_support);
        assert!(p.internal_slack_prevention);
        assert_eq!(p.external_fragmentation_prevention, Some(true));
        assert_eq!(p.overhead, Some(OverheadClass::Low));

        for other in [
            Capabilities::gslice(),
            Capabilities::gpulet(),
            Capabilities::igniter(),
            Capabilities::paris_elsa(),
            Capabilities::mig_serving(),
        ] {
            let full = other.mps_support
                && other.mig_support
                && other.internal_slack_prevention
                && other.external_fragmentation_prevention == Some(true)
                && other.high_request_rate;
            assert!(!full);
        }
    }

    #[test]
    fn gpulet_limited_to_two() {
        assert_eq!(
            Capabilities::gpulet().spatial_scheduling,
            SpatialScheduling::UpTo(2)
        );
    }

    #[test]
    fn overhead_ordering() {
        assert!(OverheadClass::Low < OverheadClass::Medium);
        assert!(OverheadClass::Medium < OverheadClass::High);
        assert!(OverheadClass::High < OverheadClass::VeryHigh);
    }

    #[test]
    fn row_rendering() {
        let row = Capabilities::gpulet().row();
        assert_eq!(row[0], "yes");
        assert_eq!(row[1], "no");
        assert_eq!(row[3], "N/A");
        assert_eq!(row[4], "2");
    }

    #[test]
    fn paper_table1_gslice_row() {
        // Table I: ✓ ✗ ✓ ✗ ✓ ✗ Low.
        let c = Capabilities::gslice();
        assert!(c.mps_support && !c.mig_support);
        assert!(c.internal_slack_prevention);
        assert_eq!(c.external_fragmentation_prevention, Some(false));
        assert_eq!(c.spatial_scheduling, SpatialScheduling::Full);
        assert!(!c.high_request_rate);
        assert_eq!(c.overhead, Some(OverheadClass::Low));
    }

    #[test]
    fn paper_table1_paris_elsa_row() {
        // Table I: ✗ ✓ ✗ ✗ N/A ✗ N/A.
        let c = Capabilities::paris_elsa();
        assert!(!c.mps_support && c.mig_support);
        assert!(!c.internal_slack_prevention);
        assert_eq!(c.spatial_scheduling, SpatialScheduling::NotApplicable);
        assert_eq!(c.overhead, None);
        let row = c.row();
        assert_eq!(row[4], "N/A");
        assert_eq!(row[6], "N/A");
    }
}
