//! The `Scheduler` trait and the deployment sum type.

use crate::capability::Capabilities;
use crate::error::ScheduleError;
use crate::mig_deployment::MigDeployment;
use crate::mps_deployment::MpsDeployment;
use crate::service::ServiceSpec;
use serde::{Deserialize, Serialize};

/// A deployment produced by any scheduler: MIG-segment based (ParvaGPU,
/// MIG-serving) or MPS-fraction based (gpulet, iGniter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Deployment {
    /// Segments on MIG-partitioned GPUs.
    Mig(MigDeployment),
    /// Fractional partitions on whole GPUs.
    Mps(MpsDeployment),
}

impl Deployment {
    /// Number of GPUs in use.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        match self {
            Deployment::Mig(d) => d.gpu_count(),
            Deployment::Mps(d) => d.gpu_count(),
        }
    }

    /// Predicted aggregate capacity for a service, requests/s.
    #[must_use]
    pub fn capacity_of(&self, service_id: u32) -> f64 {
        match self {
            Deployment::Mig(d) => d.capacity_of(service_id),
            Deployment::Mps(d) => d.capacity_of(service_id),
        }
    }

    /// Structural audit.
    #[must_use]
    pub fn validate(&self) -> bool {
        match self {
            Deployment::Mig(d) => d.validate(),
            Deployment::Mps(d) => d.validate(),
        }
    }

    /// The MIG deployment, if this is one.
    #[must_use]
    pub fn as_mig(&self) -> Option<&MigDeployment> {
        match self {
            Deployment::Mig(d) => Some(d),
            Deployment::Mps(_) => None,
        }
    }

    /// The MPS deployment, if this is one.
    #[must_use]
    pub fn as_mps(&self) -> Option<&MpsDeployment> {
        match self {
            Deployment::Mps(d) => Some(d),
            Deployment::Mig(_) => None,
        }
    }
}

/// A spatial GPU-sharing scheduler: a set of services in, a deployment map
/// out (paper Fig. 2). Implemented by ParvaGPU, its ablation variants, and
/// the three baselines.
pub trait Scheduler {
    /// Human-readable name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Produce a deployment serving every service within its SLO.
    ///
    /// # Errors
    /// Returns a [`ScheduleError`] when some service is infeasible for this
    /// scheduler (strict SLO, unprofiled model, or — for iGniter — a rate
    /// beyond one GPU).
    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError>;

    /// This scheduler's row in the paper's Table I.
    fn capabilities(&self) -> Capabilities;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_dispatch() {
        let mig = Deployment::Mig(MigDeployment::new());
        assert_eq!(mig.gpu_count(), 0);
        assert!(mig.as_mig().is_some());
        assert!(mig.as_mps().is_none());
        assert!(mig.validate());

        let mps = Deployment::Mps(MpsDeployment::new());
        assert_eq!(mps.gpu_count(), 0);
        assert!(mps.as_mps().is_some());
        assert_eq!(mps.capacity_of(0), 0.0);
    }
}
