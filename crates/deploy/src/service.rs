//! Service specifications: what a client registers with the system.

use parva_perf::Model;
use serde::{Deserialize, Serialize, Value};

/// A service-level objective on inference latency.
///
/// Following the paper (§IV-A, citing Nexus): the *scheduler-internal* latency
/// budget is half of the client-facing SLO, leaving the other half for
/// request queuing on the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Client-facing end-to-end latency bound, milliseconds.
    pub latency_ms: f64,
}

impl Slo {
    /// Create an SLO from the client-facing latency bound.
    #[must_use]
    pub const fn from_latency_ms(latency_ms: f64) -> Self {
        Self { latency_ms }
    }

    /// The internal execution-latency target used by all scheduling
    /// algorithms: half the SLO (paper §IV-A, "the internal latency within
    /// the algorithm is set to half of the target latency").
    #[must_use]
    pub fn internal_target_ms(&self) -> f64 {
        self.latency_ms / 2.0
    }
}

/// A registered DNN inference service (paper Table II: `id`, `lat`,
/// `req_rate`; the algorithm-output fields live in `parva-core::Service`).
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
pub struct ServiceSpec {
    /// Service identification number.
    pub id: u32,
    /// The DNN model served.
    pub model: Model,
    /// Offered request rate, requests per second.
    pub request_rate_rps: f64,
    /// The client-facing SLO.
    pub slo: Slo,
    /// Owning tenant id; `0` (the default) means untenanted. See
    /// [`crate::Tenant`].
    #[serde(default)]
    pub tenant: u32,
}

// Hand-written so untenanted specs serialize exactly as they did before the
// tenant field existed: `tenant` is emitted only when non-zero.
impl Serialize for ServiceSpec {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("id"), self.id.to_value()),
            (String::from("model"), self.model.to_value()),
            (
                String::from("request_rate_rps"),
                self.request_rate_rps.to_value(),
            ),
            (String::from("slo"), self.slo.to_value()),
        ];
        if self.tenant != 0 {
            map.push((String::from("tenant"), self.tenant.to_value()));
        }
        Value::Map(map)
    }
}

impl ServiceSpec {
    /// Create a service spec from model, rate and SLO latency (ms).
    #[must_use]
    pub fn new(id: u32, model: Model, request_rate_rps: f64, slo_latency_ms: f64) -> Self {
        Self {
            id,
            model,
            request_rate_rps,
            slo: Slo::from_latency_ms(slo_latency_ms),
            tenant: 0,
        }
    }

    /// Builder: bind this service to a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// A throughput-only service: no meaningful latency bound, just a rate
    /// to sustain. This is the paper's proposed adaptation for HPC and DNN
    /// *training* workloads (§VI: "by modifying the SLO conditions in the
    /// developed algorithms, it can also be adapted for high-performance
    /// computing (HPC) applications and DNN training workloads") — the
    /// Configurator then simply picks the most GPC-efficient triplets.
    #[must_use]
    pub fn throughput_only(id: u32, model: Model, request_rate_rps: f64) -> Self {
        // A week of latency budget: effectively unbounded, but still finite
        // so every validity check and histogram stays well-behaved.
        Self::new(id, model, request_rate_rps, 7.0 * 24.0 * 3_600.0 * 1_000.0)
    }

    /// Validity check: positive rate and latency.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.request_rate_rps > 0.0
            && self.slo.latency_ms > 0.0
            && self.request_rate_rps.is_finite()
            && self.slo.latency_ms.is_finite()
    }
}

impl std::fmt::Display for ServiceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "svc#{} {} @{:.0} req/s, SLO {:.0} ms",
            self.id, self.model, self.request_rate_rps, self.slo.latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_target_is_half_slo() {
        let slo = Slo::from_latency_ms(200.0);
        assert_eq!(slo.internal_target_ms(), 100.0);
    }

    #[test]
    fn spec_construction() {
        let s = ServiceSpec::new(3, Model::ResNet50, 829.0, 205.0);
        assert_eq!(s.id, 3);
        assert_eq!(s.slo.internal_target_ms(), 102.5);
        assert!(s.is_valid());
    }

    #[test]
    fn invalid_specs_detected() {
        assert!(!ServiceSpec::new(0, Model::Vgg16, 0.0, 100.0).is_valid());
        assert!(!ServiceSpec::new(0, Model::Vgg16, 10.0, 0.0).is_valid());
        assert!(!ServiceSpec::new(0, Model::Vgg16, f64::NAN, 100.0).is_valid());
        assert!(!ServiceSpec::new(0, Model::Vgg16, 10.0, f64::INFINITY).is_valid());
    }

    #[test]
    fn untenanted_spec_serializes_without_tenant_field() {
        let s = ServiceSpec::new(3, Model::ResNet50, 829.0, 205.0);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("tenant"), "{json}");
        let back: ServiceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.tenant, 0);
    }

    #[test]
    fn tenant_binding_round_trips() {
        let s = ServiceSpec::new(3, Model::ResNet50, 829.0, 205.0).with_tenant(7);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"tenant\":7"), "{json}");
        let back: ServiceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn display_format() {
        let s = ServiceSpec::new(1, Model::MobileNetV2, 677.0, 167.0);
        let d = s.to_string();
        assert!(d.contains("svc#1") && d.contains("MobileNetV2"));
    }
}
