//! GPU segments: MPS-activated MIG instances bound to one service.

use parva_perf::{ComputeShare, Model};
use parva_profile::Triplet;
use serde::{Deserialize, Serialize};

/// A GPU segment: one MIG instance running `procs` MPS processes of a single
/// service's model at a fixed batch size (paper §I: "we refer to an
/// MPS-activated MIG instance as GPU segment").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Owning service id.
    pub service_id: u32,
    /// The model served (denormalized for convenience).
    pub model: Model,
    /// Operating point: instance size, batch size, process count.
    pub triplet: Triplet,
    /// Profiled aggregate throughput at the triplet, requests/s.
    pub throughput_rps: f64,
    /// Profiled per-request latency at the triplet, ms.
    pub latency_ms: f64,
}

impl Segment {
    /// GPC footprint of the segment.
    #[must_use]
    pub const fn gpcs(&self) -> u8 {
        self.triplet.gpcs()
    }

    /// The compute share this segment occupies.
    #[must_use]
    pub const fn share(&self) -> ComputeShare {
        ComputeShare::Mig(self.triplet.instance)
    }

    /// Throughput per GPC — the quantity Demand Matching maximizes (Eq. 2).
    #[must_use]
    pub fn throughput_per_gpc(&self) -> f64 {
        self.throughput_rps / f64::from(self.gpcs())
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "svc#{} {} {} → {:.0} req/s @ {:.1} ms",
            self.service_id, self.model, self.triplet, self.throughput_rps, self.latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::InstanceProfile;

    fn seg() -> Segment {
        Segment {
            service_id: 7,
            model: Model::InceptionV3,
            triplet: Triplet::new(InstanceProfile::G3, 8, 3),
            throughput_rps: 1200.0,
            latency_ms: 20.0,
        }
    }

    #[test]
    fn accessors() {
        let s = seg();
        assert_eq!(s.gpcs(), 3);
        assert_eq!(s.throughput_per_gpc(), 400.0);
        assert!(s.share().is_isolated());
    }

    #[test]
    fn display_contains_triplet() {
        assert!(seg().to_string().contains("(3g, b8, p3)"));
    }
}
