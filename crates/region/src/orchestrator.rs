//! The federation control loop: one fleet orchestrator per region, a
//! geo-aware router between them, and region-scale chaos on top.
//!
//! Every interval the federation:
//!
//! 1. computes each region's offered demand (global service rates ×
//!    demand share × the region's sun-phased diurnal multiplier),
//! 2. injects one [`RegionEvent`] — a region-local fleet disturbance, a
//!    region evacuation (every node drains), or a failback,
//! 3. routes demand with [`crate::router`]: live regions serve locally,
//!    evacuated regions' demand spills cross-region with the RTT charged
//!    against the SLO,
//! 4. retargets every live region's fleet to its routed demand through
//!    the §III-F incremental path ([`FleetOrchestrator::retarget`]) —
//!    this is where evacuated services are re-placed in surviving
//!    regions; a region that cannot host its plan is rebalanced (its
//!    excess re-spills) or, after a capacity event, forced into failover,
//! 5. serves each region's routed load in the DES simulator with
//!    per-flow RTT ingress classes ([`parva_serve::simulate_with_ingress`]),
//! 6. prices each region's surviving fleet at regional prices.

use crate::event::{next_region_event_with, RegionEvent};
use crate::report::{FederationReport, IntervalOutcome, RegionOutcome};
use crate::router::{
    inbound, route_demand_fair, route_from_fair, Demand, Flow, SPILL_MAX_SLO_FRACTION,
};
use crate::spec::FederationSpec;
use parva_cluster::{BillingReport, BillingRow, FollowTheSunRow};
use parva_deploy::{tenant_of, ServiceSpec, Tenant};
use parva_des::RngStream;
use parva_fleet::{ChaosProfile, FleetError, FleetOrchestrator, FleetPacking, RecoveryOutcome};
use parva_obs::{Recorder, Row, SelfProfiler, TraceEvent, TraceSink, PID_REGION};
use parva_profile::ProfileBook;
use parva_scenarios::diurnal_multiplier;
use parva_serve::{
    IngressClass, RecoveryOp, RecoverySpec, ResilienceSpec, ServingConfig, ServingReport,
    Simulation,
};
use serde::{Deserialize, Serialize};

/// A scripted evacuation + failback exercise overlaid on the seeded
/// chaos stream — the deterministic scenario behind `parvactl region`.
/// Serde-visible so declarative scenario specs can script drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvacuationDrill {
    /// Region to drain.
    pub region: usize,
    /// Interval at which the evacuation fires.
    pub evacuate_at: usize,
    /// Interval at which the region fails back (must be later).
    pub failback_at: usize,
}

/// The follow-the-sun cost optimizer: instead of every region serving
/// its local trough, a region whose diurnal multiplier has dropped to
/// its overnight floor ships most of its demand to the **cheapest
/// SLO-feasible** daytime region (per service — a tight SLO that cannot
/// cross the ocean stays home). The parked region's fleet then shrinks
/// through the normal §III-F retarget, releasing whole nodes, while the
/// destination absorbs the trickle into capacity it is already renting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowTheSun {
    /// Diurnal multiplier at or below which a region counts as overnight
    /// and becomes a shift source (compare against the configured
    /// `diurnal_low`/`diurnal_high` band).
    pub night_threshold: f64,
    /// Fraction of an overnight region's demand shifted away, in (0, 1).
    /// A residual share must stay local: the §III-F incremental path
    /// updates services in place and cannot drop one to a zero rate, so
    /// full parking would leave the old allocation standing.
    pub shift_fraction: f64,
}

impl Default for FollowTheSun {
    fn default() -> Self {
        Self {
            night_threshold: 0.8,
            shift_fraction: 0.9,
        }
    }
}

impl FollowTheSun {
    /// Validate the optimizer parameters.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.night_threshold > 0.0 && self.night_threshold.is_finite()) {
            return Err(format!(
                "follow-the-sun night_threshold must be positive finite (got {})",
                self.night_threshold
            ));
        }
        if !(self.shift_fraction > 0.0 && self.shift_fraction < 1.0) {
            return Err(format!(
                "follow-the-sun shift_fraction must be in (0, 1) — a residual \
                 share must stay local to anchor the incremental retarget \
                 (got {})",
                self.shift_fraction
            ));
        }
        Ok(())
    }
}

/// Federation-run parameters.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Master seed: the event stream and every serving window derive from
    /// it.
    pub seed: u64,
    /// Number of disturbed intervals after the baseline.
    pub intervals: usize,
    /// Serving-window shape of each interval.
    pub serving: ServingConfig,
    /// Per-recovery replacement-node budget of each region's fleet.
    pub max_replacements_per_event: usize,
    /// Wall-clock hours the federation clock advances per interval (the
    /// diurnal curve is 24 h long).
    pub hours_per_interval: f64,
    /// Diurnal demand trough multiplier.
    pub diurnal_low: f64,
    /// Diurnal demand peak multiplier.
    pub diurnal_high: f64,
    /// Optional scripted evacuation exercise; `None` leaves evacuations
    /// to the seeded stream.
    pub drill: Option<EvacuationDrill>,
    /// Tenants sharing the federation. Empty = single-tenant legacy mode:
    /// routing, serving and the report are bit-identical to the pre-tenant
    /// code paths. Non-empty activates per-tenant admission quotas in
    /// every region's serving DES, tenant-weighted-fair spill routing,
    /// headroom-aware spill destination weights and the per-interval
    /// billing rollup.
    pub tenants: Vec<Tenant>,
    /// Per-region chaos shaping profiles for region-local fleet events
    /// (index = region; e.g. a region's spot-market preemption intensity).
    /// Empty — or any region beyond the slice — uses
    /// [`ChaosProfile::default`], the legacy stream.
    pub region_chaos: Vec<ChaosProfile>,
    /// Per-region spot-market discount overrides applied when pricing each
    /// region's surviving fleet (index = region; `None` keeps the builtin
    /// spot multiplier). Empty = no overrides anywhere.
    pub spot_discounts: Vec<Option<f64>>,
    /// Request-lifecycle resilience policy applied inside every region's
    /// serving DES (timeouts, budgeted retries, hedging, shedding,
    /// health-checked routing). `None` keeps the serving path and report
    /// bit-identical to the pre-resilience code.
    pub resilience: Option<ResilienceSpec>,
    /// The follow-the-sun cost optimizer. `None` keeps routing, serving
    /// and the report bit-identical to the pre-optimizer behavior.
    pub follow_the_sun: Option<FollowTheSun>,
}

impl FederationConfig {
    /// Validate the run parameters: positive finite diurnal bounds with
    /// `low <= high`, a positive finite interval clock, and a drill whose
    /// failback strictly follows its evacuation.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.diurnal_low > 0.0
            && self.diurnal_high >= self.diurnal_low
            && self.diurnal_high.is_finite())
        {
            return Err(format!(
                "diurnal bounds need 0 < low <= high (got {} .. {})",
                self.diurnal_low, self.diurnal_high
            ));
        }
        if !(self.hours_per_interval > 0.0 && self.hours_per_interval.is_finite()) {
            return Err(format!(
                "hours_per_interval must be positive finite (got {})",
                self.hours_per_interval
            ));
        }
        if let Some(drill) = &self.drill {
            if drill.failback_at <= drill.evacuate_at {
                return Err(format!(
                    "drill failback (interval {}) must come after the evacuation (interval {})",
                    drill.failback_at, drill.evacuate_at
                ));
            }
        }
        for t in &self.tenants {
            if !t.is_valid() {
                return Err(format!(
                    "tenant {} ({:?}) is invalid: ids must be non-zero and economics finite",
                    t.id, t.name
                ));
            }
        }
        let mut ids: Vec<u32> = self.tenants.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.tenants.len() {
            return Err("duplicate tenant ids".into());
        }
        if let Some(res) = &self.resilience {
            res.validate()?;
        }
        if let Some(fts) = &self.follow_the_sun {
            fts.validate()?;
        }
        Ok(())
    }
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            intervals: 8,
            serving: ServingConfig {
                warmup_s: 0.5,
                duration_s: 3.0,
                drain_s: 1.0,
                ..ServingConfig::default()
            },
            max_replacements_per_event: parva_fleet::DEFAULT_MAX_REPLACEMENTS,
            hours_per_interval: 3.0,
            diurnal_low: 0.7,
            diurnal_high: 1.2,
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: 3,
                failback_at: 6,
            }),
            tenants: Vec::new(),
            region_chaos: Vec::new(),
            spot_discounts: Vec::new(),
            resilience: None,
            follow_the_sun: None,
        }
    }
}

/// Why a federation run aborted.
#[derive(Debug)]
pub enum FederationError {
    /// The topology failed validation.
    Spec(String),
    /// A region could not host its share of the baseline demand.
    Bootstrap {
        /// The failing region.
        region: usize,
        /// The underlying fleet failure.
        source: FleetError,
    },
    /// A failing-back region could not re-host its local demand.
    Failback {
        /// The failing region.
        region: usize,
        /// The underlying fleet failure.
        source: FleetError,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spec(msg) => write!(f, "invalid federation spec: {msg}"),
            Self::Bootstrap { region, source } => {
                write!(f, "region {region} failed bootstrap: {source}")
            }
            Self::Failback { region, source } => {
                write!(f, "region {region} failed failback: {source}")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// One region's live state.
struct RegionState {
    /// `Some` while the region's fleet serves; `None` while evacuated.
    orchestrator: Option<FleetOrchestrator>,
    /// The region's local demand multiplier from the last
    /// [`parva_fleet::FleetEvent::LoadShift`] (1.0 = nominal).
    demand_factor: f64,
}

/// The living federation: per-region fleet orchestrators plus the glue.
pub struct Federation {
    spec: FederationSpec,
    book: ProfileBook,
    base_services: Vec<ServiceSpec>,
    regions: Vec<RegionState>,
    config: FederationConfig,
    /// Self-profiling spans around the interval phases (event-apply,
    /// route, retarget, measure). Disabled by default; host-clock
    /// readings, so excluded from the determinism guarantees.
    profiler: SelfProfiler,
}

/// Sum flow rates, collapsing the `-0.0` that `f64`'s empty-iterator
/// `Sum` identity produces (it renders as `-0` in reports).
fn sum_rates<'a>(flows: impl Iterator<Item = &'a Flow>) -> f64 {
    flows.map(|f| f.rate_rps).sum::<f64>() + 0.0
}

/// What one region did during an interval's recovery phase.
#[derive(Default, Clone)]
struct RecoveryRow {
    displaced: usize,
    reconfigured: usize,
    migrated: usize,
    replacements: usize,
    /// Recovery ops accumulated across the interval's retargets, lowered
    /// for the serving DES. Ops from an earlier retarget reference the
    /// deployment as it stood then; the darkening is by logical GPU, so a
    /// later `compact()` can shift which servers a stale op hits — an
    /// accepted approximation (the *amount* of dark capacity is right).
    ops: Vec<RecoveryOp>,
}

impl RecoveryRow {
    /// Fold one recovery outcome in. `prepared` marks its ops pre-staged:
    /// *planned* reconfiguration (diurnal retargets, announced
    /// evacuations) is bridged by §III-F shadow processes / cross-region
    /// pre-copy and pays only the control-plane delay live; unannounced
    /// capacity loss pays its full re-flash + weight-copy window.
    fn absorb(&mut self, o: &RecoveryOutcome, prepared: bool) {
        self.displaced += o.displaced_segments;
        self.reconfigured += o.reconfigured_gpus;
        self.migrated += o.migration.migrated_segments;
        self.replacements += o.replacement_nodes;
        self.ops
            .extend(o.migration.ops.iter().cloned().map(|mut op| {
                op.prepared = prepared;
                op
            }));
    }

    /// Lower the row into a DES recovery spec starting at the window
    /// start; `None` when the interval required no physical work.
    fn to_spec(&self, serving: &ServingConfig) -> Option<RecoverySpec> {
        if self.ops.is_empty() {
            return None;
        }
        Some(parva_fleet::migration::recovery_spec_from_ops(
            self.ops.clone(),
            serving.warmup_s * 1_000.0,
        ))
    }
}

impl Federation {
    /// Plan every region's share of the baseline demand and anchor it on
    /// its fleet.
    ///
    /// # Errors
    /// [`FederationError::Spec`] for invalid topologies or run
    /// parameters, [`FederationError::Bootstrap`] when a region cannot
    /// host its share.
    pub fn bootstrap(
        book: &ProfileBook,
        services: &[ServiceSpec],
        spec: &FederationSpec,
        config: &FederationConfig,
    ) -> Result<Self, FederationError> {
        spec.validate().map_err(FederationError::Spec)?;
        config
            .validate()
            .map_err(|msg| FederationError::Spec(format!("config: {msg}")))?;
        let mut regions = Vec::with_capacity(spec.regions.len());
        let mut fed = Self {
            spec: spec.clone(),
            book: book.clone(),
            base_services: services.to_vec(),
            regions: Vec::new(),
            config: config.clone(),
            profiler: SelfProfiler::disabled(),
        };
        for (r, rs) in spec.regions.iter().enumerate() {
            let local = fed.local_demand(r, 0, 1.0);
            let orchestrator = FleetOrchestrator::bootstrap(book, &local, &rs.fleet)
                .map_err(|source| FederationError::Bootstrap { region: r, source })?
                .with_max_replacements(config.max_replacements_per_event);
            regions.push(RegionState {
                orchestrator: Some(orchestrator),
                demand_factor: 1.0,
            });
        }
        fed.regions = regions;
        Ok(fed)
    }

    /// Record self-profiling spans (wall/CPU clocks plus scope-safe DES
    /// counter deltas) around each [`Federation::step`] phase. Off by
    /// default: profiling reads host clocks.
    pub fn enable_profiling(&mut self) {
        self.profiler = SelfProfiler::enabled();
    }

    /// The phase profile collected so far (empty unless
    /// [`Federation::enable_profiling`] was called).
    #[must_use]
    pub fn profiler(&self) -> &SelfProfiler {
        &self.profiler
    }

    /// Region `r`'s sun-phased diurnal multiplier at `interval`.
    fn diurnal_of(&self, r: usize, interval: usize) -> f64 {
        let hour = interval as f64 * self.config.hours_per_interval;
        diurnal_multiplier(
            hour,
            self.config.diurnal_low,
            self.config.diurnal_high,
            self.spec.regions[r].diurnal_phase_hours,
        )
    }

    /// Region `r`'s local per-service demand at `interval`, scaled by
    /// `factor` (the region's load-shift state).
    fn local_demand(&self, r: usize, interval: usize, factor: f64) -> Vec<ServiceSpec> {
        let m = self.diurnal_of(r, interval);
        self.base_services
            .iter()
            .map(|s| {
                ServiceSpec::new(
                    s.id,
                    s.model,
                    s.request_rate_rps * self.spec.regions[r].demand_share * m * factor,
                    s.slo.latency_ms,
                )
                .with_tenant(s.tenant)
            })
            .collect()
    }

    /// Is region `r` currently serving?
    #[must_use]
    pub fn is_active(&self, r: usize) -> bool {
        self.regions[r].orchestrator.is_some()
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Per-region offered demand at `interval`.
    fn offered_at(&self, interval: usize) -> Vec<Vec<Demand>> {
        (0..self.regions.len())
            .map(|r| {
                self.local_demand(r, interval, self.regions[r].demand_factor)
                    .iter()
                    .map(|s| Demand {
                        service: s.id,
                        rate_rps: s.request_rate_rps,
                        slo_ms: s.slo.latency_ms,
                        tenant: s.tenant,
                    })
                    .collect()
            })
            .collect()
    }

    /// Capacity weight of each region for spill routing. Legacy mode (no
    /// tenants) weighs by alive GPUs; tenanted runs use capacity-aware
    /// spill admission — each destination is weighed by the headroom a
    /// spill burst could actually claim ([`FleetOrchestrator::spill_headroom`]:
    /// free alive slots plus the replacement budget), falling back to the
    /// alive-GPU weights when every region is fully packed so spill
    /// remains possible (honest overload beats dropped traffic).
    fn capacity_weights(&self) -> Vec<f64> {
        if !self.config.tenants.is_empty() {
            let headroom: Vec<f64> = self
                .regions
                .iter()
                .map(|r| {
                    r.orchestrator
                        .as_ref()
                        .map_or(0.0, FleetOrchestrator::spill_headroom)
                })
                .collect();
            if headroom.iter().any(|&w| w > 0.0) {
                return headroom;
            }
        }
        self.regions
            .iter()
            .map(|r| {
                r.orchestrator
                    .as_ref()
                    .map_or(0.0, |o| o.fleet().alive_slots().len() as f64)
            })
            .collect()
    }

    fn active_mask(&self) -> Vec<bool> {
        self.regions
            .iter()
            .map(|r| r.orchestrator.is_some())
            .collect()
    }

    /// Apply the follow-the-sun shift to a routed flow set: every local
    /// flow of an overnight region moves `shift_fraction` of its rate to
    /// the cheapest SLO-feasible daytime region (chosen per service — a
    /// tight SLO that cannot cross the ocean stays home). Returns the
    /// total shifted rate, req/s. No-op without the optimizer configured.
    fn apply_follow_the_sun(&self, interval: usize, flows: &mut Vec<Flow>) -> f64 {
        let Some(fts) = self.config.follow_the_sun else {
            return 0.0;
        };
        let night: Vec<bool> = (0..self.regions.len())
            .map(|r| self.is_active(r) && self.diurnal_of(r, interval) <= fts.night_threshold)
            .collect();
        let mut shifted = 0.0;
        let mut moved: Vec<Flow> = Vec::new();
        for f in flows.iter_mut() {
            if f.src != f.dst || !night[f.src] || f.rate_rps <= 0.0 {
                continue;
            }
            let slo = self.slo_of(f.service);
            let dst = (0..self.regions.len())
                .filter(|&d| d != f.src && self.is_active(d) && !night[d])
                .filter(|&d| self.spec.rtt.rtt_ms(f.src, d) <= slo * SPILL_MAX_SLO_FRACTION)
                .min_by(|&a, &b| {
                    self.spec.regions[a]
                        .pricing_multiplier
                        .partial_cmp(&self.spec.regions[b].pricing_multiplier)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some(d) = dst else { continue };
            let rate = f.rate_rps * fts.shift_fraction;
            f.rate_rps -= rate;
            shifted += rate;
            moved.push(Flow {
                src: f.src,
                dst: d,
                service: f.service,
                rate_rps: rate,
                rtt_ms: self.spec.rtt.rtt_ms(f.src, d),
                tenant: f.tenant,
            });
        }
        flows.extend(moved);
        shifted
    }

    /// Price the federation as it would stand had this interval's
    /// follow-the-sun shift not happened: each live region's orchestrator
    /// is cloned, retargeted to its *unshifted* routed demand through the
    /// same §III-F path, and the resulting node packings are priced at
    /// regional prices. Serving is not re-simulated — the counterfactual
    /// is a pricing question, not a latency one. A scratch copy whose
    /// retarget fails keeps its actual deployment, under-counting the
    /// saving rather than inventing one.
    fn unshifted_usd_per_hour(&self, interval: usize, flows: &[Flow]) -> f64 {
        let mut total = 0.0;
        for (d, state) in self.regions.iter().enumerate() {
            let Some(orchestrator) = state.orchestrator.as_ref() else {
                continue;
            };
            let mut scratch = orchestrator.clone();
            let targets = self.targets_for(d, flows);
            if !targets.is_empty() {
                let _ = scratch.retarget(interval, &targets);
            }
            total += FleetPacking::derive_priced(
                scratch.deployment(),
                scratch.placement(),
                scratch.fleet(),
                self.spec.regions[d].pricing_multiplier,
                self.config.spot_discounts.get(d).copied().flatten(),
            )
            .usd_per_hour;
        }
        total
    }

    /// Drive one interval end-to-end. Interval numbers start at 1; the
    /// undisturbed interval 0 is produced by `Federation::baseline`.
    ///
    /// # Errors
    /// [`FederationError::Failback`] when a returning region cannot host
    /// its local demand even with the replacement budget.
    pub fn step(
        &mut self,
        interval: usize,
        event: RegionEvent,
    ) -> Result<IntervalOutcome, FederationError> {
        self.step_billed(interval, event)
            .map(|(outcome, _, _)| outcome)
    }

    /// [`Federation::step`] plus the interval's per-tenant billing rows
    /// (empty when the run has no tenants configured) and its
    /// follow-the-sun ledger entry (`None` when nothing shifted).
    ///
    /// # Errors
    /// [`FederationError::Failback`] when a returning region cannot host
    /// its local demand even with the replacement budget.
    fn step_billed(
        &mut self,
        interval: usize,
        event: RegionEvent,
    ) -> Result<(IntervalOutcome, Vec<BillingRow>, Option<FollowTheSunRow>), FederationError> {
        let mut recovery: Vec<RecoveryRow> = vec![RecoveryRow::default(); self.regions.len()];
        let mut forced_failovers: Vec<usize> = Vec::new();

        // 1. The event.
        let tok = self.profiler.begin("event-apply", "region");
        match &event {
            RegionEvent::Evacuation { region } => {
                if let Some(orchestrator) = self.regions[*region].orchestrator.as_mut() {
                    // An evacuation is announced, not sprung: the notice
                    // triggers cross-region weight pre-copy into the
                    // regions the geo router will spill to, so the
                    // survivors' retargets below absorb as *prepared* ops
                    // and pay only the control-plane delay live.
                    recovery[*region].displaced = orchestrator.evacuate();
                    self.regions[*region].orchestrator = None;
                }
            }
            RegionEvent::Failback { region } => {
                if self.regions[*region].orchestrator.is_none() {
                    let local =
                        self.local_demand(*region, interval, self.regions[*region].demand_factor);
                    let orchestrator = FleetOrchestrator::bootstrap(
                        &self.book,
                        &local,
                        &self.spec.regions[*region].fleet,
                    )
                    .map_err(|source| FederationError::Failback {
                        region: *region,
                        source,
                    })?
                    .with_max_replacements(self.config.max_replacements_per_event);
                    self.regions[*region].orchestrator = Some(orchestrator);
                }
            }
            RegionEvent::Local { region, event } => {
                if let Some(orchestrator) = self.regions[*region].orchestrator.as_mut() {
                    if let parva_fleet::FleetEvent::LoadShift { multiplier } = event {
                        // Demand, not capacity: the shift flows into this
                        // interval's offered load and the retarget below.
                        self.regions[*region].demand_factor = *multiplier;
                    } else {
                        // A two-minute warning pre-stages this region's
                        // recovery (weights + layouts) before the node
                        // dies; unannounced losses pay the full window.
                        let warned =
                            matches!(event, parva_fleet::FleetEvent::PreemptionWarning { .. });
                        match orchestrator.apply_capacity_event(interval, event) {
                            Ok(outcome) => recovery[*region].absorb(&outcome, warned),
                            Err(_) => {
                                // The fleet can no longer host its plan:
                                // cross-region failover.
                                recovery[*region].displaced += self.regions[*region]
                                    .orchestrator
                                    .as_mut()
                                    .map_or(0, |o| o.evacuate());
                                self.regions[*region].orchestrator = None;
                                forced_failovers.push(*region);
                            }
                        }
                    }
                }
            }
            RegionEvent::Quiet => {}
        }

        self.profiler.end(tok);
        let tok = self.profiler.begin("route", "region");

        // 2. Route demand across the surviving topology (tenant-weighted-
        //    fair when tenants are configured, the legacy geo split
        //    otherwise).
        let offered = self.offered_at(interval);
        let mut flows = route_demand_fair(
            &offered,
            &self.active_mask(),
            &self.capacity_weights(),
            &self.spec.rtt,
            &self.config.tenants,
        );

        // 2b. Follow the sun: overnight regions ship most of their local
        //     demand to the cheapest SLO-feasible daytime region before
        //     anyone retargets, so the parked fleets shrink through the
        //     normal incremental path below.
        let unshifted_flows = self.config.follow_the_sun.map(|_| flows.clone());
        let shifted_rps = self.apply_follow_the_sun(interval, &mut flows);

        self.profiler.end(tok);
        let tok = self.profiler.begin("retarget", "region");

        // 3. Retarget every live region to its routed demand through the
        //    §III-F incremental path; overloaded regions rebalance. A
        //    region retargeted during a peer's rebalance round is not
        //    retargeted again with identical targets.
        //    Retarget migrations are *planned* work — diurnal drift, or an
        //    announced evacuation whose notice pre-copied weights along
        //    the router's spill weights — so their ops absorb as prepared
        //    (§III-F shadows). The exception is an interval with a forced
        //    failover: that collapse was unannounced, and the survivors'
        //    re-placement pays its full re-flash + copy window.
        let retarget_prepared = forced_failovers.is_empty();
        let mut retargeted = vec![false; self.regions.len()];
        for d in 0..self.regions.len() {
            if self.regions[d].orchestrator.is_none() || retargeted[d] {
                continue;
            }
            let targets = self.targets_for(d, &flows);
            if targets.is_empty() {
                continue;
            }
            let result = {
                let orchestrator = self.regions[d].orchestrator.as_mut().expect("active");
                orchestrator.retarget(interval, &targets)
            };
            retargeted[d] = true;
            match result {
                Ok(outcome) => recovery[d].absorb(&outcome, retarget_prepared),
                Err(_) => {
                    // The region keeps serving its previous plan; the
                    // excess re-spills to its peers (one rebalance round).
                    let orchestrator = self.regions[d].orchestrator.as_ref().expect("active");
                    let excess: Vec<Demand> = targets
                        .iter()
                        .map(|t| Demand {
                            service: t.id,
                            rate_rps: (t.request_rate_rps
                                - orchestrator.deployment().capacity_of(t.id))
                            .max(0.0),
                            slo_ms: t.slo.latency_ms,
                            tenant: t.tenant,
                        })
                        .filter(|e| e.rate_rps > 0.0)
                        .collect();
                    if excess.is_empty() {
                        continue;
                    }
                    // Shrink the inbound flows of `d` proportionally so
                    // flow accounting matches what `d` will actually hold,
                    // remembering how much of each *true source*'s traffic
                    // was turned away.
                    let mut removed: std::collections::BTreeMap<(usize, u32), f64> =
                        std::collections::BTreeMap::new();
                    for e in &excess {
                        let total: f64 = flows
                            .iter()
                            .filter(|f| f.dst == d && f.service == e.service)
                            .map(|f| f.rate_rps)
                            .sum();
                        if total <= 0.0 {
                            continue;
                        }
                        let keep = 1.0 - (e.rate_rps / total).min(1.0);
                        for f in flows
                            .iter_mut()
                            .filter(|f| f.dst == d && f.service == e.service)
                        {
                            *removed.entry((f.src, f.service)).or_insert(0.0) +=
                                f.rate_rps * (1.0 - keep);
                            f.rate_rps *= keep;
                        }
                    }
                    // Re-spill each turned-away share from its true
                    // origin, so the SLO feasibility filter and the RTT
                    // charge follow the users (not the overloaded
                    // middlebox). `d` is excluded as a destination.
                    let mut mask = self.active_mask();
                    mask[d] = false;
                    let weights = self.capacity_weights();
                    let mut respill = Vec::new();
                    let sources: std::collections::BTreeSet<usize> =
                        removed.keys().map(|&(src, _)| src).collect();
                    for src in sources {
                        let demand: Vec<Demand> = removed
                            .iter()
                            .filter(|(&(s, _), &rate)| s == src && rate > 0.0)
                            .map(|(&(_, service), &rate_rps)| Demand {
                                service,
                                rate_rps,
                                slo_ms: self.slo_of(service),
                                tenant: self.tenant_of_service(service),
                            })
                            .collect();
                        respill.extend(route_from_fair(
                            src,
                            &demand,
                            &mask,
                            &weights,
                            &self.spec.rtt,
                            &self.config.tenants,
                        ));
                    }
                    flows.extend(respill);
                    // One follow-up retarget round for the peers that took
                    // the excess (a second failure leaves the overload to
                    // show up as SLO violations — honest degradation).
                    let peers: Vec<usize> = (0..self.regions.len())
                        .filter(|&p| p != d && self.regions[p].orchestrator.is_some())
                        .collect();
                    for p in peers {
                        let targets = self.targets_for(p, &flows);
                        let orchestrator = self.regions[p].orchestrator.as_mut().expect("active");
                        if let Ok(outcome) = orchestrator.retarget(interval, &targets) {
                            recovery[p].absorb(&outcome, retarget_prepared);
                        }
                        retargeted[p] = true;
                    }
                }
            }
        }

        self.profiler.end(tok);
        let tok = self.profiler.begin("measure", "region");

        // 4. Serve each region's routed load with RTT ingress classes.
        let (outcome, billing) = self.measure(
            interval,
            event,
            &flows,
            &offered,
            &recovery,
            forced_failovers,
        );
        self.profiler.end(tok);

        // 5. The follow-the-sun ledger: price the unshifted counterfactual
        //    and book the delta (nothing to book when nothing moved).
        let ledger = if shifted_rps > 0.0 {
            let tok = self.profiler.begin("follow-the-sun", "region");
            let unshifted = unshifted_flows.as_deref().expect("shift implies optimizer");
            let local_usd_per_hour = self.unshifted_usd_per_hour(interval, unshifted);
            self.profiler.end(tok);
            Some(FollowTheSunRow {
                interval,
                shifted_rps,
                usd_per_hour: outcome.usd_per_hour,
                local_usd_per_hour,
                saved_usd: (local_usd_per_hour - outcome.usd_per_hour)
                    * self.config.hours_per_interval,
            })
        } else {
            None
        };
        Ok((outcome, billing, ledger))
    }

    /// A service's latency SLO, ms (0 for unknown ids, which the router
    /// treats as nowhere-feasible best-effort).
    fn slo_of(&self, service: u32) -> f64 {
        self.base_services
            .iter()
            .find(|s| s.id == service)
            .map_or(0.0, |s| s.slo.latency_ms)
    }

    /// A service's owning tenant id (0 for unknown / untenanted ids).
    fn tenant_of_service(&self, service: u32) -> u32 {
        self.base_services
            .iter()
            .find(|s| s.id == service)
            .map_or(0, |s| s.tenant)
    }

    /// The per-service target specs of region `d` given the flow set.
    fn targets_for(&self, d: usize, flows: &[Flow]) -> Vec<ServiceSpec> {
        let rates = inbound(flows, d);
        self.base_services
            .iter()
            .filter_map(|s| {
                let rate = rates
                    .iter()
                    .find(|(id, _)| *id == s.id)
                    .map_or(0.0, |(_, r)| *r);
                (rate > 0.0).then(|| {
                    ServiceSpec::new(s.id, s.model, rate, s.slo.latency_ms).with_tenant(s.tenant)
                })
            })
            .collect()
    }

    /// Run every live region's serving DES for one interval — one
    /// independent simulation per region, fanned out across scoped
    /// threads and joined by region index. Each region's simulation is a
    /// pure function of its own `(deployment, flows, recovery, seed)`
    /// state, and the merge order is fixed, so the outcome is
    /// bit-identical to running the regions serially (property-tested
    /// below).
    fn region_reports(
        &self,
        flows: &[Flow],
        recovery: &[RecoveryRow],
        parallel: bool,
    ) -> Vec<Option<ServingReport>> {
        let specs: Vec<Option<RecoverySpec>> = recovery
            .iter()
            .map(|r| r.to_spec(&self.config.serving))
            .collect();
        let run_one = |d: usize| -> Option<ServingReport> {
            self.regions[d]
                .orchestrator
                .as_ref()
                .map(|o| self.serve_region(d, o, flows, specs[d].as_ref()))
        };
        // On a single-CPU host the fan-out only adds scheduling noise
        // (time-sliced sims evict each other's working sets); results are
        // identical either way, so fall back to the serial path there.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if parallel && self.regions.len() > 1 && cores > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.regions.len())
                    .map(|d| scope.spawn(move || run_one(d)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region simulation panicked"))
                    .collect()
            })
        } else {
            (0..self.regions.len()).map(run_one).collect()
        }
    }

    /// Serve + price every region for one interval and assemble the row
    /// plus its per-tenant billing (empty without tenants).
    #[allow(clippy::too_many_lines)]
    fn measure(
        &self,
        interval: usize,
        event: RegionEvent,
        flows: &[Flow],
        offered: &[Vec<Demand>],
        recovery: &[RecoveryRow],
        forced_failovers: Vec<usize>,
    ) -> (IntervalOutcome, Vec<BillingRow>) {
        self.measure_with(
            interval,
            event,
            flows,
            offered,
            recovery,
            forced_failovers,
            true,
        )
    }

    /// [`Federation::measure`] with an explicit serial/parallel switch —
    /// the serial path exists so the equivalence test can pin the two
    /// against each other.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn measure_with(
        &self,
        interval: usize,
        event: RegionEvent,
        flows: &[Flow],
        offered: &[Vec<Demand>],
        recovery: &[RecoveryRow],
        forced_failovers: Vec<usize>,
        parallel: bool,
    ) -> (IntervalOutcome, Vec<BillingRow>) {
        let mut regions = Vec::with_capacity(self.regions.len());
        let mut within: f64 = 0.0;
        let mut total_offered: f64 = 0.0;
        let mut total_cost = 0.0;
        // Per-tenant rollup across regions: offered, rejected, in-SLO,
        // revenue, cost (tenant-id order via the BTreeMap).
        let mut bill: std::collections::BTreeMap<u32, (u64, u64, u64, f64, f64)> =
            std::collections::BTreeMap::new();

        let offered_rps: Vec<f64> = offered
            .iter()
            .map(|o| o.iter().map(|d| d.rate_rps).sum())
            .collect();
        let routed_rps: f64 = flows.iter().map(|f| f.rate_rps).sum();
        let unrouted_rps = (offered_rps.iter().sum::<f64>() - routed_rps).max(0.0);
        let spilled_rps = sum_rates(flows.iter().filter(|f| f.src != f.dst));

        let mut reports = self.region_reports(flows, recovery, parallel);

        for (d, state) in self.regions.iter().enumerate() {
            let spill_out = sum_rates(flows.iter().filter(|f| f.src == d && f.dst != d));
            let Some(orchestrator) = state.orchestrator.as_ref() else {
                regions.push(RegionOutcome {
                    region: d,
                    name: self.spec.regions[d].name.clone(),
                    active: false,
                    offered_rps: offered_rps[d],
                    routed_in_rps: 0.0,
                    spill_in_rps: 0.0,
                    spill_out_rps: spill_out,
                    compliance: 1.0,
                    local_p99_ms: 0.0,
                    spilled_p99_ms: 0.0,
                    displaced_segments: recovery[d].displaced,
                    reconfigured_gpus: recovery[d].reconfigured,
                    migrated_segments: recovery[d].migrated,
                    replacement_nodes: recovery[d].replacements,
                    recovery_latency_ms: 0.0,
                    precopied_gib: 0.0,
                    nodes_in_service: 0,
                    usd_per_hour: 0.0,
                    resilience: None,
                });
                continue;
            };

            let report = reports[d].take().expect("active region was simulated");
            let (recovery_latency_ms, precopied_gib) = report
                .recovery
                .as_ref()
                .map_or((0.0, 0.0), |r| (r.latency_ms, r.precopied_gib));
            let spill_in = sum_rates(flows.iter().filter(|f| f.dst == d && f.src != d));
            let routed_in = sum_rates(flows.iter().filter(|f| f.dst == d));
            let local_p99 = report
                .classes
                .iter()
                .filter(|c| c.network_ms == 0.0 && c.completed > 0)
                .map(|c| c.latency.quantile_ms(0.99))
                .fold(0.0, f64::max);
            let spilled_p99 = report
                .classes
                .iter()
                .filter(|c| c.network_ms > 0.0 && c.completed > 0)
                .map(|c| c.latency.quantile_ms(0.99))
                .fold(0.0, f64::max);
            let region_offered: u64 = report.services.iter().map(|s| s.offered).sum();
            let region_within: u64 = report.services.iter().map(|s| s.completed_within_slo).sum();
            within += region_within as f64;
            total_offered += region_offered as f64;

            let packing = FleetPacking::derive_priced(
                orchestrator.deployment(),
                orchestrator.placement(),
                orchestrator.fleet(),
                self.spec.regions[d].pricing_multiplier,
                self.config.spot_discounts.get(d).copied().flatten(),
            );
            total_cost += packing.usd_per_hour;
            if !self.config.tenants.is_empty() {
                let window_usd = packing.usd_per_hour * (self.config.serving.duration_s / 3600.0);
                let region_tenant_offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
                for t in &report.tenants {
                    let rate = tenant_of(&self.config.tenants, t.tenant)
                        .map_or(0.0, |ten| ten.usd_per_1k_requests);
                    let share = if region_tenant_offered == 0 {
                        0.0
                    } else {
                        t.offered as f64 / region_tenant_offered as f64
                    };
                    let e = bill.entry(t.tenant).or_insert((0, 0, 0, 0.0, 0.0));
                    e.0 += t.offered;
                    e.1 += t.rejected;
                    e.2 += t.completed_within_slo;
                    e.3 += t.completed_within_slo as f64 * rate / 1_000.0;
                    e.4 += window_usd * share;
                }
            }
            regions.push(RegionOutcome {
                region: d,
                name: self.spec.regions[d].name.clone(),
                active: true,
                offered_rps: offered_rps[d],
                routed_in_rps: routed_in,
                spill_in_rps: spill_in,
                spill_out_rps: spill_out,
                compliance: report.overall_request_compliance_rate(),
                local_p99_ms: local_p99,
                spilled_p99_ms: spilled_p99,
                displaced_segments: recovery[d].displaced,
                reconfigured_gpus: recovery[d].reconfigured,
                migrated_segments: recovery[d].migrated,
                replacement_nodes: recovery[d].replacements,
                recovery_latency_ms,
                precopied_gib,
                nodes_in_service: packing.nodes.len(),
                usd_per_hour: packing.usd_per_hour,
                resilience: report.resilience_totals(),
            });
        }

        // Unrouted demand counts as violated at the window's scale.
        let unrouted_requests = unrouted_rps * self.config.serving.duration_s;
        let denominator = total_offered + unrouted_requests;
        let global_compliance = if denominator <= 0.0 {
            1.0
        } else {
            (within / denominator).min(1.0)
        };

        let billing: Vec<BillingRow> = bill
            .into_iter()
            .map(
                |(tenant, (offered, rejected, completed_within_slo, revenue_usd, cost_usd))| {
                    BillingRow {
                        interval,
                        tenant,
                        tenant_name: tenant_of(&self.config.tenants, tenant)
                            .map_or_else(String::new, |t| t.name.clone()),
                        offered,
                        rejected,
                        completed_within_slo,
                        revenue_usd,
                        cost_usd,
                    }
                },
            )
            .collect();

        (
            IntervalOutcome {
                interval,
                event,
                forced_failovers,
                regions,
                global_compliance,
                spilled_rps,
                unrouted_rps,
                usd_per_hour: total_cost,
            },
            billing,
        )
    }

    /// Run the DES for one region: its deployment against the flows
    /// routed into it, each flow an ingress class carrying its RTT, and
    /// the interval's recovery work (if any) riding the same event queue.
    fn serve_region(
        &self,
        d: usize,
        orchestrator: &FleetOrchestrator,
        flows: &[Flow],
        recovery: Option<&RecoverySpec>,
    ) -> ServingReport {
        let specs = orchestrator.specs().to_vec();
        let ingress: Vec<Vec<IngressClass>> = specs
            .iter()
            .map(|s| {
                // Local class first, then inbound spill by source order.
                let mut classes = vec![IngressClass::local(
                    flows
                        .iter()
                        .filter(|f| f.dst == d && f.src == d && f.service == s.id)
                        .map(|f| f.rate_rps)
                        .sum(),
                )];
                for src in 0..self.regions.len() {
                    if src == d {
                        continue;
                    }
                    let rate: f64 = flows
                        .iter()
                        .filter(|f| f.dst == d && f.src == src && f.service == s.id)
                        .map(|f| f.rate_rps)
                        .sum();
                    if rate > 0.0 {
                        classes.push(IngressClass {
                            rate_rps: rate,
                            network_ms: self.spec.rtt.rtt_ms(src, d),
                        });
                    }
                }
                classes
            })
            .collect();
        let serving = ServingConfig {
            seed: self
                .config
                .seed
                .wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.config.serving
        };
        Simulation::new(
            &parva_deploy::Deployment::Mig(orchestrator.deployment().clone()),
            &specs,
        )
        .tenants(&self.config.tenants)
        .ingress(&ingress)
        .recovery_opt(recovery)
        .resilience_opt(self.config.resilience.as_ref())
        .config(&serving)
        .run()
    }

    /// Measure the undisturbed interval 0 (all regions serving locally).
    #[must_use]
    pub fn baseline(&self) -> IntervalOutcome {
        self.baseline_billed().0
    }

    /// [`Federation::baseline`] plus interval 0's per-tenant billing rows
    /// (empty when the run has no tenants configured) and its
    /// follow-the-sun ledger entry (`None` when nothing shifted).
    ///
    /// The baseline only *routes* the shift — the fleets keep their
    /// bootstrap provisioning (no retarget runs at interval 0), so the
    /// ledger prices what routing alone is worth there.
    fn baseline_billed(&self) -> (IntervalOutcome, Vec<BillingRow>, Option<FollowTheSunRow>) {
        let offered = self.offered_at(0);
        let mut flows = route_demand_fair(
            &offered,
            &self.active_mask(),
            &self.capacity_weights(),
            &self.spec.rtt,
            &self.config.tenants,
        );
        let shifted_rps = self.apply_follow_the_sun(0, &mut flows);
        let (outcome, billing) = self.measure(
            0,
            RegionEvent::Quiet,
            &flows,
            &offered,
            &vec![RecoveryRow::default(); self.regions.len()],
            Vec::new(),
        );
        let ledger = (shifted_rps > 0.0).then_some(FollowTheSunRow {
            interval: 0,
            shifted_rps,
            usd_per_hour: outcome.usd_per_hour,
            local_usd_per_hour: outcome.usd_per_hour,
            saved_usd: 0.0,
        });
        (outcome, billing, ledger)
    }
}

/// Run a full federation trace: bootstrap, baseline, then
/// `config.intervals` events (the seeded stream plus the optional
/// scripted drill) with geo-aware recovery after each.
///
/// Deterministic: the same `(book, services, spec, config)` always
/// produces the identical [`FederationReport`].
///
/// # Errors
/// Propagates bootstrap and failback failures ([`FederationError`]).
pub fn run_federation(
    book: &ProfileBook,
    services: &[ServiceSpec],
    spec: &FederationSpec,
    config: &FederationConfig,
) -> Result<FederationReport, FederationError> {
    run_federation_with(
        book,
        services,
        spec,
        config,
        &mut parva_obs::NullSink,
        false,
    )
    .map(|(report, _)| report)
}

/// [`run_federation`] under an observer: the identical federation trace
/// (the report is property-tested equal to the unobserved run), plus,
/// per interval, federation *decision* trace events — the injected
/// region event, an `evacuate` instant per forced cross-region
/// failover, and per-region `retarget` / `spill` instants — and one
/// aggregate gauge row plus one row per region with its routed demand,
/// spill volumes, compliance and cost. Interval `n` is mapped onto the
/// trace timeline at `n × serving-window`. The recorder also absorbs
/// the federation's phase self-profile (event-apply / route / retarget
/// / measure).
///
/// # Errors
/// Propagates bootstrap and failback failures ([`FederationError`]).
pub fn run_federation_observed(
    book: &ProfileBook,
    services: &[ServiceSpec],
    spec: &FederationSpec,
    config: &FederationConfig,
    rec: &mut Recorder,
) -> Result<FederationReport, FederationError> {
    let (report, profile) = run_federation_with(book, services, spec, config, rec, true)?;
    rec.profile.absorb(&profile);
    Ok(report)
}

/// Static label for a region event kind (trace names must be
/// `'static`).
fn event_label(event: &RegionEvent) -> &'static str {
    match event {
        RegionEvent::Evacuation { .. } => "evacuate",
        RegionEvent::Failback { .. } => "failback",
        RegionEvent::Local { .. } => "local-event",
        RegionEvent::Quiet => "quiet",
    }
}

/// The region a decision event anchors to (federation-wide for Quiet).
fn event_region(event: &RegionEvent) -> u32 {
    match event {
        RegionEvent::Evacuation { region }
        | RegionEvent::Failback { region }
        | RegionEvent::Local { region, .. } => *region as u32,
        RegionEvent::Quiet => u32::MAX,
    }
}

/// One serving interval's span on the pseudo-timeline, microseconds.
fn interval_us(serving: &ServingConfig) -> u64 {
    ((serving.warmup_s + serving.duration_s + serving.drain_s) * 1e6) as u64
}

/// Emit one interval's per-tenant billing gauge rows (no-ops for
/// tenant-free runs, whose row set is empty).
fn sample_billing<S: TraceSink>(sink: &mut S, rows: &[BillingRow]) {
    for b in rows {
        sink.sample(
            Row::new()
                .str("kind", "billing")
                .u64("interval", b.interval as u64)
                .u64("tenant", u64::from(b.tenant))
                .str("tenant_name", b.tenant_name.clone())
                .u64("offered", b.offered)
                .u64("rejected", b.rejected)
                .u64("completed_within_slo", b.completed_within_slo)
                .f64("revenue_usd", b.revenue_usd)
                .f64("cost_usd", b.cost_usd)
                .f64("margin_usd", b.margin_usd()),
        );
    }
}

/// Emit follow-the-sun ledger gauge rows (a no-op when the optimizer
/// never fired — the row set is empty).
fn sample_follow_the_sun<S: TraceSink>(sink: &mut S, rows: &[FollowTheSunRow]) {
    for r in rows {
        sink.sample(
            Row::new()
                .str("kind", "follow_the_sun")
                .u64("interval", r.interval as u64)
                .f64("shifted_rps", r.shifted_rps)
                .f64("usd_per_hour", r.usd_per_hour)
                .f64("local_usd_per_hour", r.local_usd_per_hour)
                .f64("saved_usd", r.saved_usd),
        );
    }
}

/// Emit one interval's gauge rows: the federation aggregate, then one
/// row per region in region order.
fn sample_interval<S: TraceSink>(sink: &mut S, names: &[String], outcome: &IntervalOutcome) {
    sink.sample(
        Row::new()
            .str("kind", "federation")
            .u64("interval", outcome.interval as u64)
            .str("event", outcome.event.to_string())
            .f64("global_compliance", outcome.global_compliance)
            .f64("spilled_rps", outcome.spilled_rps)
            .f64("unrouted_rps", outcome.unrouted_rps)
            .f64("usd_per_hour", outcome.usd_per_hour)
            .u64("forced_failovers", outcome.forced_failovers.len() as u64),
    );
    for r in &outcome.regions {
        let mut row = Row::new()
            .str("kind", "region")
            .u64("interval", outcome.interval as u64)
            .str("region", names[r.region].clone())
            .bool("active", r.active)
            .f64("offered_rps", r.offered_rps)
            .f64("routed_in_rps", r.routed_in_rps)
            .f64("spill_in_rps", r.spill_in_rps)
            .f64("spill_out_rps", r.spill_out_rps)
            .f64("compliance", r.compliance)
            .f64("local_p99_ms", r.local_p99_ms)
            .u64("migrated_segments", r.migrated_segments as u64)
            .f64("recovery_latency_ms", r.recovery_latency_ms)
            .u64("nodes_in_service", r.nodes_in_service as u64)
            .f64("usd_per_hour", r.usd_per_hour);
        if let Some(res) = &r.resilience {
            row = row
                .u64("timeouts", res.timeouts)
                .u64("retries", res.retries)
                .u64("shed", res.shed)
                .u64("hedges", res.hedges)
                .u64("hedge_wins", res.hedge_wins);
        }
        sink.sample(row);
    }
}

/// [`run_federation`] under an arbitrary [`TraceSink`] — the generic
/// engine behind both the plain and recorded runs. Streaming callers
/// (the scenario layer's `--stream` path) hand a sink that retires
/// events to disk as they land; `profile` enables the federation phase
/// self-profile, returned alongside the report.
///
/// # Errors
/// Propagates bootstrap and failback failures ([`FederationError`]).
pub fn run_federation_sink<S: TraceSink>(
    book: &ProfileBook,
    services: &[ServiceSpec],
    spec: &FederationSpec,
    config: &FederationConfig,
    sink: &mut S,
    profile: bool,
) -> Result<(FederationReport, SelfProfiler), FederationError> {
    run_federation_with(book, services, spec, config, sink, profile)
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn run_federation_with<S: TraceSink>(
    book: &ProfileBook,
    services: &[ServiceSpec],
    spec: &FederationSpec,
    config: &FederationConfig,
    sink: &mut S,
    profile: bool,
) -> Result<(FederationReport, SelfProfiler), FederationError> {
    let mut federation = Federation::bootstrap(book, services, spec, config)?;
    if profile {
        federation.enable_profiling();
    }
    let mut rng = RngStream::new(config.seed, 0xFED);
    let names: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let window = interval_us(&config.serving);
    let (baseline, mut billing_rows, baseline_ledger) = federation.baseline_billed();
    let mut sun_rows: Vec<FollowTheSunRow> = baseline_ledger.into_iter().collect();
    if S::ENABLED {
        sample_interval(sink, &names, &baseline);
        sample_billing(sink, &billing_rows);
        sample_follow_the_sun(sink, &sun_rows);
    }

    let mut intervals = Vec::with_capacity(config.intervals);
    for interval in 1..=config.intervals {
        let drill = config
            .drill
            .filter(|d| d.region < federation.region_count());
        let event = match drill {
            Some(d) if interval == d.evacuate_at && federation.is_active(d.region) => {
                RegionEvent::Evacuation { region: d.region }
            }
            Some(d) if interval == d.failback_at && !federation.is_active(d.region) => {
                RegionEvent::Failback { region: d.region }
            }
            _ => {
                let states: Vec<Option<&parva_fleet::Fleet>> = (0..federation.region_count())
                    .map(|r| {
                        federation.regions[r]
                            .orchestrator
                            .as_ref()
                            .map(FleetOrchestrator::fleet)
                    })
                    .collect();
                // While the drill holds a region down, it must not fail
                // back spontaneously.
                let held = drill
                    .filter(|d| !federation.is_active(d.region) && interval < d.failback_at)
                    .map(|d| d.region);
                next_region_event_with(&mut rng, &states, held, &config.region_chaos)
            }
        };
        let (outcome, interval_bill, interval_ledger) = federation.step_billed(interval, event)?;
        if S::ENABLED {
            let ts0 = interval as u64 * window;
            if let Some(sun) = &interval_ledger {
                sink.emit(
                    TraceEvent::instant("follow-the-sun", "decision", ts0)
                        .pid(PID_REGION)
                        .tid(u32::MAX)
                        .arg_f64("shifted_rps", sun.shifted_rps)
                        .arg_f64("saved_usd", sun.saved_usd),
                );
            }
            sink.emit(
                TraceEvent::instant(event_label(&outcome.event), "region-event", ts0)
                    .pid(PID_REGION)
                    .tid(event_region(&outcome.event))
                    .arg_str("event", outcome.event.to_string()),
            );
            for &r in &outcome.forced_failovers {
                sink.emit(
                    TraceEvent::instant("evacuate", "decision", ts0)
                        .pid(PID_REGION)
                        .tid(r as u32)
                        .arg_str("region", names[r].clone())
                        .arg_bool("forced", true),
                );
            }
            for r in &outcome.regions {
                if r.migrated_segments > 0 || r.reconfigured_gpus > 0 {
                    sink.emit(
                        TraceEvent::instant("retarget", "decision", ts0)
                            .pid(PID_REGION)
                            .tid(r.region as u32)
                            .arg_str("region", names[r.region].clone())
                            .arg_u64("migrated_segments", r.migrated_segments as u64)
                            .arg_u64("reconfigured_gpus", r.reconfigured_gpus as u64)
                            .arg_u64("replacement_nodes", r.replacement_nodes as u64)
                            .arg_f64("recovery_latency_ms", r.recovery_latency_ms),
                    );
                }
                if r.spill_out_rps > 0.0 {
                    sink.emit(
                        TraceEvent::instant("spill", "decision", ts0)
                            .pid(PID_REGION)
                            .tid(r.region as u32)
                            .arg_str("region", names[r.region].clone())
                            .arg_f64("rate_rps", r.spill_out_rps),
                    );
                }
            }
            sample_interval(sink, &names, &outcome);
            sample_billing(sink, &interval_bill);
            sample_follow_the_sun(sink, interval_ledger.as_slice());
        }
        intervals.push(outcome);
        billing_rows.extend(interval_bill);
        sun_rows.extend(interval_ledger);
    }

    let profile = std::mem::take(&mut federation.profiler);
    Ok((
        FederationReport {
            seed: config.seed,
            region_names: names,
            baseline,
            intervals,
            billing: (!billing_rows.is_empty() || !sun_rows.is_empty()).then_some(BillingReport {
                rows: billing_rows,
                follow_the_sun: sun_rows,
            }),
        },
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::next_region_event;
    use crate::router::route_demand;
    use crate::spec::FederationSpec;

    fn quick_config(seed: u64, intervals: usize) -> FederationConfig {
        FederationConfig {
            seed,
            intervals,
            serving: ServingConfig {
                warmup_s: 0.3,
                duration_s: 1.5,
                drain_s: 0.7,
                ..ServingConfig::default()
            },
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: intervals.div_ceil(3).max(1),
                failback_at: (2 * intervals).div_ceil(3).max(2),
            }),
            ..FederationConfig::default()
        }
    }

    #[test]
    fn resilience_policy_threads_into_every_region() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let cfg = quick_config(7, 2);
        let plain = run_federation(&book, &services, &spec, &cfg).unwrap();
        assert!(
            plain
                .intervals
                .iter()
                .chain(std::iter::once(&plain.baseline))
                .flat_map(|i| i.regions.iter())
                .all(|r| r.resilience.is_none()),
            "resilience-free federation must not report counters"
        );
        assert!(!serde_json::to_string(&plain)
            .unwrap()
            .contains("resilience"));

        let mut rcfg = cfg.clone();
        rcfg.resilience = Some(ResilienceSpec {
            shed_queue_depth: 1,
            health_checked: false,
            ..ResilienceSpec::default()
        });
        let shed = run_federation(&book, &services, &spec, &rcfg).unwrap();
        assert!(
            shed.baseline
                .regions
                .iter()
                .any(|r| r.resilience.as_ref().is_some_and(|c| c.shed > 0)),
            "shed_queue_depth=1 must shed in the busy baseline interval"
        );
    }

    #[test]
    fn federation_run_is_deterministic() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let a = run_federation(&book, &services, &spec, &quick_config(7, 6)).unwrap();
        let b = run_federation(&book, &services, &spec, &quick_config(7, 6)).unwrap();
        assert_eq!(a, b, "identical seeds must give identical reports");
        let c = run_federation(&book, &services, &spec, &quick_config(8, 6)).unwrap();
        assert_ne!(a.intervals, c.intervals, "different seeds should diverge");
    }

    #[test]
    fn observed_federation_is_behavior_neutral_and_deterministic() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let cfg = quick_config(7, 4);
        let plain = run_federation(&book, &services, &spec, &cfg).unwrap();

        let mut rec_a = Recorder::new(0);
        let a = run_federation_observed(&book, &services, &spec, &cfg, &mut rec_a).unwrap();
        assert_eq!(plain, a, "observation must not change the report");

        // Gauge rows: (1 aggregate + one per region) × (baseline + intervals).
        let rows_per_interval = 1 + spec.regions.len();
        assert_eq!(rec_a.metrics.len(), rows_per_interval * (cfg.intervals + 1));
        // The drill evacuation spills demand cross-region: the trace
        // carries the event and spill decisions.
        let names: Vec<&str> = rec_a.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"evacuate"), "{names:?}");
        assert!(names.contains(&"spill"), "{names:?}");
        assert!(names.contains(&"retarget"), "{names:?}");
        assert!(rec_a.events.iter().all(|e| e.pid == PID_REGION));
        // The phase self-profile covered every step phase.
        let phases: Vec<&str> = rec_a.profile.stats().iter().map(|s| s.name).collect();
        for phase in ["event-apply", "route", "retarget", "measure"] {
            assert!(phases.contains(&phase), "missing phase {phase}");
        }
        let measure = rec_a
            .profile
            .stats()
            .iter()
            .find(|s| s.name == "measure")
            .unwrap();
        assert!(measure.des_sims > 0, "measure ran no simulations");

        // Deterministic artifacts: byte-identical across runs.
        let mut rec_b = Recorder::new(0);
        let b = run_federation_observed(&book, &services, &spec, &cfg, &mut rec_b).unwrap();
        assert_eq!(a, b);
        assert_eq!(rec_a.chrome_trace(), rec_b.chrome_trace());
        assert_eq!(rec_a.metrics_jsonl(), rec_b.metrics_jsonl());
    }

    #[test]
    fn evacuation_spills_with_rtt_and_fails_back() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let config = quick_config(11, 6);
        let drill = config.drill.unwrap();
        let report = run_federation(&book, &services, &spec, &config).unwrap();

        let evac = &report.intervals[drill.evacuate_at - 1];
        assert!(matches!(evac.event, RegionEvent::Evacuation { region } if region == drill.region));
        // (a) the drained capacity was re-placed in surviving regions:
        // the evacuated region drained segments, the survivors
        // reconfigured, and global attainment held.
        assert!(evac.regions[drill.region].displaced_segments > 0);
        assert!(!evac.regions[drill.region].active);
        let survivor_churn: usize = evac
            .regions
            .iter()
            .filter(|r| r.region != drill.region)
            .map(|r| r.reconfigured_gpus + r.migrated_segments + r.replacement_nodes)
            .sum();
        assert!(survivor_churn > 0, "survivors did not re-place anything");
        assert!(evac.spilled_rps > 0.0, "no traffic spilled");
        // (b) spilled p99 reflects the RTT matrix: at least the nearest
        // RTT out of the evacuated region, and above the local p99.
        let nearest = spec.rtt.nearest_rtt_ms(drill.region);
        for r in evac.regions.iter().filter(|r| r.active) {
            if r.spill_in_rps > 0.0 {
                assert!(
                    r.spilled_p99_ms >= nearest,
                    "region {}: spilled p99 {:.0} below nearest RTT {nearest:.0}",
                    r.name,
                    r.spilled_p99_ms
                );
                assert!(r.spilled_p99_ms > r.local_p99_ms);
            }
        }
        // While evacuated, the dark region bills nothing.
        assert_eq!(evac.regions[drill.region].usd_per_hour, 0.0);

        // The failback interval brings the region home.
        let back = &report.intervals[drill.failback_at - 1];
        assert!(matches!(back.event, RegionEvent::Failback { region } if region == drill.region));
        assert!(back.regions[drill.region].active);
        // And the final interval's attainment recovers to baseline level.
        assert!(
            report.recovered(),
            "final compliance {:.4} vs baseline {:.4}\n{}",
            report.final_compliance(),
            report.baseline_compliance(),
            report.render()
        );
    }

    #[test]
    fn evacuation_notice_precopies_into_spill_targets() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let config = quick_config(11, 6);
        let drill = config.drill.unwrap();
        let report = run_federation(&book, &services, &spec, &config).unwrap();
        let evac = &report.intervals[drill.evacuate_at - 1];
        assert!(matches!(evac.event, RegionEvent::Evacuation { .. }));
        // The notice pre-copied weights into at least one spill target,
        // and every prepared survivor pays only the control-plane delay.
        let movers: Vec<_> = evac
            .regions
            .iter()
            .filter(|r| r.active && r.precopied_gib > 0.0)
            .collect();
        assert!(!movers.is_empty(), "no survivor absorbed prepared weights");
        for r in movers {
            assert!(
                (r.recovery_latency_ms - parva_fleet::migration::CONTROL_PLANE_MS).abs() < 0.5,
                "{}: prepared recovery took {:.0} ms",
                r.name,
                r.recovery_latency_ms
            );
        }
    }

    #[test]
    fn regional_prices_honor_multipliers() {
        let book = ProfileBook::builtin();
        let mut spec = FederationSpec::three_region_demo();
        // Make regions 1 and 2 identical except for the price index.
        spec.regions[2].fleet = spec.regions[1].fleet.clone().in_region("ap-south");
        spec.regions[2].demand_share = spec.regions[1].demand_share;
        spec.regions[2].diurnal_phase_hours = spec.regions[1].diurnal_phase_hours;
        let federation =
            Federation::bootstrap(&book, &crate::demo_services(), &spec, &quick_config(3, 2))
                .unwrap();
        let baseline = federation.baseline();
        let (r1, r2) = (&baseline.regions[1], &baseline.regions[2]);
        assert_eq!(r1.nodes_in_service, r2.nodes_in_service);
        let want = spec.regions[2].pricing_multiplier / spec.regions[1].pricing_multiplier;
        assert!(
            (r2.usd_per_hour / r1.usd_per_hour - want).abs() < 1e-9,
            "{} vs {}",
            r2.usd_per_hour,
            r1.usd_per_hour
        );
    }

    #[test]
    fn demand_follows_the_sun_across_regions() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let federation =
            Federation::bootstrap(&book, &crate::demo_services(), &spec, &quick_config(3, 2))
                .unwrap();
        // Sweep a day: each region's offered demand must peak at a
        // different federation hour (phases 0 / 5 / 10.5 h).
        let mut peak_hour = [0usize; 3];
        let mut peak = [0.0f64; 3];
        for interval in 0..8 {
            let offered = federation.offered_at(interval);
            for r in 0..3 {
                let total: f64 = offered[r].iter().map(|d| d.rate_rps).sum();
                if total > peak[r] {
                    peak[r] = total;
                    peak_hour[r] = interval;
                }
            }
        }
        assert!(peak_hour[1] != peak_hour[0] || peak_hour[2] != peak_hour[0]);
    }

    #[test]
    fn invalid_config_is_rejected_not_panicked() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let bad_diurnal = FederationConfig {
            diurnal_low: 0.0,
            ..quick_config(1, 2)
        };
        let Err(err) = Federation::bootstrap(&book, &services, &spec, &bad_diurnal) else {
            panic!("zero diurnal low must be rejected");
        };
        assert!(
            matches!(&err, FederationError::Spec(m) if m.contains("diurnal")),
            "{err}"
        );
        let bad_drill = FederationConfig {
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: 4,
                failback_at: 4,
            }),
            ..quick_config(1, 6)
        };
        let Err(err) = Federation::bootstrap(&book, &services, &spec, &bad_drill) else {
            panic!("inverted drill must be rejected");
        };
        assert!(
            matches!(&err, FederationError::Spec(m) if m.contains("failback")),
            "{err}"
        );
        let bad_clock = FederationConfig {
            hours_per_interval: f64::NAN,
            ..quick_config(1, 2)
        };
        assert!(Federation::bootstrap(&book, &services, &spec, &bad_clock).is_err());
    }

    #[test]
    fn parallel_measure_equals_serial() {
        // The scoped-thread region fan-out must be bit-identical to the
        // serial path: per-region sims are pure and the merge order is
        // fixed by region index. Compare full serialized interval rows
        // over several seeds, including intervals with evacuations,
        // failovers and recovery work.
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        for seed in [3u64, 11, 29] {
            let config = quick_config(seed, 6);
            let mut federation = Federation::bootstrap(&book, &services, &spec, &config).unwrap();
            let mut rng = RngStream::new(config.seed, 0xFED);
            for interval in 1..=config.intervals {
                let states: Vec<Option<&parva_fleet::Fleet>> = (0..federation.region_count())
                    .map(|r| {
                        federation.regions[r]
                            .orchestrator
                            .as_ref()
                            .map(FleetOrchestrator::fleet)
                    })
                    .collect();
                let event = next_region_event(&mut rng, &states, None);
                // Drive the interval's mutations once, then measure the
                // same post-event state both ways.
                let recovery: Vec<RecoveryRow> =
                    vec![RecoveryRow::default(); federation.region_count()];
                let _ = federation.step(interval, event);
                let offered = federation.offered_at(interval);
                let flows = route_demand(
                    &offered,
                    &federation.active_mask(),
                    &federation.capacity_weights(),
                    &federation.spec.rtt,
                );
                let par = federation.measure_with(
                    interval,
                    RegionEvent::Quiet,
                    &flows,
                    &offered,
                    &recovery,
                    Vec::new(),
                    true,
                );
                let ser = federation.measure_with(
                    interval,
                    RegionEvent::Quiet,
                    &flows,
                    &offered,
                    &recovery,
                    Vec::new(),
                    false,
                );
                assert_eq!(
                    serde_json::to_string(&par.0).unwrap(),
                    serde_json::to_string(&ser.0).unwrap(),
                    "seed {seed} interval {interval}"
                );
                assert_eq!(par.1, ser.1, "billing rows diverged at seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_measure_equals_serial_with_recovery_rows() {
        // Same equivalence with non-empty recovery specs riding the
        // region sims (the path federation evacuations exercise).
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let config = quick_config(11, 6);
        let federation = Federation::bootstrap(&book, &services, &spec, &config).unwrap();
        let offered = federation.offered_at(1);
        let flows = route_demand(
            &offered,
            &federation.active_mask(),
            &federation.capacity_weights(),
            &federation.spec.rtt,
        );
        let mut recovery: Vec<RecoveryRow> =
            vec![RecoveryRow::default(); federation.region_count()];
        recovery[1].ops.push(parva_serve::RecoveryOp {
            node: 0,
            logical_gpu: Some(0),
            reflash: true,
            copy_gib: 6.0,
            prepared: false,
        });
        recovery[2].ops.push(parva_serve::RecoveryOp {
            node: 1,
            logical_gpu: Some(1),
            reflash: false,
            copy_gib: 3.0,
            prepared: true,
        });
        let par = federation.measure_with(
            1,
            RegionEvent::Quiet,
            &flows,
            &offered,
            &recovery,
            Vec::new(),
            true,
        );
        let ser = federation.measure_with(
            1,
            RegionEvent::Quiet,
            &flows,
            &offered,
            &recovery,
            Vec::new(),
            false,
        );
        assert_eq!(
            serde_json::to_string(&par.0).unwrap(),
            serde_json::to_string(&ser.0).unwrap()
        );
        // The recovery rows actually rode the sims.
        assert!(par.0.regions[1].recovery_latency_ms > 0.0);
        assert!(par.0.regions[2].precopied_gib > 0.0);
    }

    fn tenanted_services() -> Vec<ServiceSpec> {
        // Tenant 1 (acme) owns the even service ids, tenant 2 (globex)
        // the odd ones — both present in every region's demand share.
        crate::demo_services()
            .into_iter()
            .map(|s| {
                let tenant = if s.id % 2 == 0 { 1 } else { 2 };
                s.with_tenant(tenant)
            })
            .collect()
    }

    fn two_tenants() -> Vec<Tenant> {
        vec![
            Tenant::new(1, "acme")
                .with_weight(3.0)
                .with_rate_usd_per_1k(1.2),
            Tenant::new(2, "globex").with_rate_usd_per_1k(0.8),
        ]
    }

    #[test]
    fn tenanted_federation_bills_deterministically() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = tenanted_services();
        let mut config = quick_config(7, 4);
        config.tenants = two_tenants();
        let a = run_federation(&book, &services, &spec, &config).unwrap();
        let b = run_federation(&book, &services, &spec, &config).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "tenanted runs must serialize byte-identically per seed"
        );

        let billing = a.billing.as_ref().expect("tenanted run must carry a P&L");
        // Baseline + every interval, one row per tenant, tenant-id order.
        assert_eq!(billing.rows.len(), 2 * (config.intervals + 1));
        for (i, rows) in billing.rows.chunks(2).enumerate() {
            assert_eq!(rows[0].interval, i);
            assert_eq!(rows[1].interval, i);
            assert_eq!(rows[0].tenant, 1);
            assert_eq!(rows[1].tenant, 2);
            assert_eq!(rows[0].tenant_name, "acme");
        }
        // Economics are live: revenue accrued, costs attributed, and the
        // interval cost attribution matches the interval's fleet bill.
        assert!(billing.rows.iter().any(|r| r.revenue_usd > 0.0));
        assert!(billing.rows.iter().all(|r| r.cost_usd >= 0.0));
        let baseline_cost: f64 = billing.rows[..2].iter().map(|r| r.cost_usd).sum();
        let serving_h = config.serving.duration_s / 3600.0;
        let expected = a.baseline.usd_per_hour * serving_h;
        assert!(
            (baseline_cost - expected).abs() < 1e-9,
            "baseline cost attribution {baseline_cost} != fleet bill {expected}"
        );
    }

    #[test]
    fn default_tenant_knobs_are_byte_neutral() {
        // Explicitly-spelled defaults (no tenants, default chaos profile
        // per region, no spot discounts) must reproduce the legacy report
        // byte for byte — the whole tenant layer is opt-in.
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let plain = run_federation(&book, &services, &spec, &quick_config(7, 4)).unwrap();
        assert!(plain.billing.is_none(), "untenanted run must not bill");
        let mut config = quick_config(7, 4);
        config.region_chaos = vec![ChaosProfile::default(); 3];
        config.spot_discounts = vec![None; 3];
        let knobs = run_federation(&book, &services, &spec, &config).unwrap();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&knobs).unwrap()
        );
    }

    #[test]
    fn spot_discounts_cheapen_regions_without_changing_behavior() {
        let book = ProfileBook::builtin();
        // mixed_demo packs onto the reserved/on-demand tiers first, so
        // make one region all-spot: every in-service hour there is
        // discountable.
        let mut spec = FederationSpec::three_region_demo();
        spec.regions[2].fleet = parva_fleet::FleetSpec {
            pools: vec![parva_fleet::NodePool {
                name: "ap-spot".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::Spot,
                preemptible: true,
                count: 2,
                region: Some("ap-south".into()),
            }],
        };
        let services = crate::demo_services();
        let full = run_federation(&book, &services, &spec, &quick_config(3, 3)).unwrap();
        let mut config = quick_config(3, 3);
        config.spot_discounts = vec![Some(0.1); 3];
        let spot = run_federation(&book, &services, &spec, &config).unwrap();
        // Same chaos, same serving, same attainment — only the bill moves.
        assert_eq!(
            full.intervals
                .iter()
                .map(|i| i.event.clone())
                .collect::<Vec<_>>(),
            spot.intervals
                .iter()
                .map(|i| i.event.clone())
                .collect::<Vec<_>>()
        );
        assert!((full.baseline.global_compliance - spot.baseline.global_compliance).abs() < 1e-12);
        assert!(
            spot.baseline.usd_per_hour < full.baseline.usd_per_hour,
            "0.1x spot discount never showed up: {} vs {}",
            spot.baseline.usd_per_hour,
            full.baseline.usd_per_hour
        );
    }

    #[test]
    fn invalid_tenants_are_rejected() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = tenanted_services();
        let mut config = quick_config(1, 1);
        config.tenants = vec![Tenant::new(0, "reserved-id")];
        assert!(matches!(
            Federation::bootstrap(&book, &services, &spec, &config),
            Err(FederationError::Spec(_))
        ));
        config.tenants = vec![Tenant::new(3, "a"), Tenant::new(3, "b")];
        assert!(matches!(
            Federation::bootstrap(&book, &services, &spec, &config),
            Err(FederationError::Spec(_))
        ));
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let book = ProfileBook::builtin();
        let mut spec = FederationSpec::three_region_demo();
        spec.regions[0].demand_share = -1.0;
        assert!(matches!(
            Federation::bootstrap(&book, &crate::demo_services(), &spec, &quick_config(1, 1)),
            Err(FederationError::Spec(_))
        ));
    }

    fn sun_config(seed: u64, intervals: usize) -> FederationConfig {
        FederationConfig {
            // No drill: every region stays active, so the ledger isolates
            // cost moves from evacuation churn.
            drill: None,
            // A wide swing so troughs dip well under the night threshold.
            diurnal_low: 0.4,
            diurnal_high: 1.6,
            follow_the_sun: Some(FollowTheSun::default()),
            ..quick_config(seed, intervals)
        }
    }

    #[test]
    fn follow_the_sun_ships_overnight_demand_and_keeps_a_ledger() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let config = sun_config(5, 6);
        let report = run_federation(&book, &services, &spec, &config).unwrap();
        let billing = report
            .billing
            .as_ref()
            .expect("an active optimizer must open the billing ledger");
        assert!(
            billing.rows.is_empty(),
            "untenanted run must not grow tenant P&L rows"
        );
        assert!(
            !billing.follow_the_sun.is_empty(),
            "a 0.4x trough under a 0.8 threshold must trigger shifts"
        );
        for r in &billing.follow_the_sun {
            assert!(r.shifted_rps > 0.0, "ledger row without a shift");
            assert!(r.usd_per_hour > 0.0 && r.local_usd_per_hour > 0.0);
            if r.interval == 0 {
                // The baseline fleet is provisioned before any retarget, so
                // the counterfactual is the same fleet: no savings yet.
                assert_eq!(r.saved_usd, 0.0);
            } else {
                assert!(
                    (r.saved_usd
                        - (r.local_usd_per_hour - r.usd_per_hour) * config.hours_per_interval)
                        .abs()
                        < 1e-9,
                    "saved_usd must be the priced delta over the interval span"
                );
            }
        }
        // The point of the optimizer: across the run, parking overnight
        // fleets must beat provisioning every region for local demand.
        assert!(
            billing.follow_the_sun_savings_usd() > 0.0,
            "follow-the-sun lost money:\n{}",
            billing.render()
        );
        // SLO feasibility filter: nothing crosses an ocean its SLO cannot
        // absorb (every shifted flow's RTT fits under the spill ceiling).
        assert!(report.final_compliance() > 0.9, "{}", report.render());
    }

    #[test]
    fn follow_the_sun_is_deterministic_and_serializable() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let a = run_federation(&book, &services, &spec, &sun_config(5, 4)).unwrap();
        let b = run_federation(&book, &services, &spec, &sun_config(5, 4)).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, serde_json::to_string(&b).unwrap());
        assert!(json.contains("follow_the_sun"));
        let back: crate::FederationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a, "ledger must survive a serde round trip");
    }

    #[test]
    fn follow_the_sun_off_is_byte_neutral() {
        // `follow_the_sun: None` must reproduce the legacy report byte for
        // byte — no ledger key, no billing object, identical outcomes.
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        let plain = run_federation(&book, &services, &spec, &quick_config(7, 4)).unwrap();
        let json = serde_json::to_string(&plain).unwrap();
        assert!(!json.contains("follow_the_sun"));
        assert!(plain.billing.is_none());
    }

    #[test]
    fn invalid_follow_the_sun_is_rejected() {
        let book = ProfileBook::builtin();
        let spec = FederationSpec::three_region_demo();
        let services = crate::demo_services();
        for fts in [
            FollowTheSun {
                shift_fraction: 1.0,
                ..FollowTheSun::default()
            },
            FollowTheSun {
                shift_fraction: 0.0,
                ..FollowTheSun::default()
            },
            FollowTheSun {
                night_threshold: f64::NAN,
                ..FollowTheSun::default()
            },
        ] {
            let config = FederationConfig {
                follow_the_sun: Some(fts),
                ..quick_config(1, 2)
            };
            assert!(
                matches!(
                    Federation::bootstrap(&book, &services, &spec, &config),
                    Err(FederationError::Spec(_))
                ),
                "{fts:?} must be rejected"
            );
        }
    }
}
