//! The seeded federation-level chaos stream.
//!
//! Region-local disturbances reuse the single-fleet event vocabulary
//! ([`FleetEvent`]); on top of it the federation adds the two events only
//! a multi-region deployment can see: **region evacuation** (every node in
//! a region drains — a large-scale outage, a forced maintenance window, a
//! regulatory pull-out) and **failback** (the region re-provisions and
//! takes its traffic home).

use parva_des::RngStream;
use parva_fleet::{next_event_with, ChaosProfile, Fleet, FleetEvent};
use serde::{Deserialize, Serialize};

/// A federation-level event at an interval boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegionEvent {
    /// A single-fleet disturbance inside one region.
    Local {
        /// The region hit.
        region: usize,
        /// The fleet-level event.
        event: FleetEvent,
    },
    /// Every node in the region drains; its demand fails over
    /// cross-region until failback.
    Evacuation {
        /// The evacuated region.
        region: usize,
    },
    /// An evacuated region re-provisions and resumes serving.
    Failback {
        /// The returning region.
        region: usize,
    },
    /// Nothing happens this interval.
    Quiet,
}

impl std::fmt::Display for RegionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Local { region, event } => write!(f, "r{region}: {event}"),
            Self::Evacuation { region } => write!(f, "EVACUATE region {region}"),
            Self::Failback { region } => write!(f, "failback region {region}"),
            Self::Quiet => write!(f, "quiet"),
        }
    }
}

/// Draw the next federation event. `fleets[r]` is `Some` for regions with
/// a live fleet; `held` optionally names a region whose evacuation is
/// being driven by an external drill and must not fail back spontaneously.
///
/// Deterministic given the stream state; falls back to
/// [`RegionEvent::Quiet`] when a drawn event has no candidate (e.g. an
/// evacuation that would kill the last active region).
pub fn next_region_event(
    rng: &mut RngStream,
    fleets: &[Option<&Fleet>],
    held: Option<usize>,
) -> RegionEvent {
    next_region_event_with(rng, fleets, held, &[])
}

/// [`next_region_event`] with per-region chaos shaping: a region's local
/// fleet events are drawn through `profiles[region]` (its spot-market
/// preemption intensity etc.). Regions beyond the slice — and an empty
/// slice — use [`ChaosProfile::default`], which reproduces the legacy
/// stream bit for bit.
pub fn next_region_event_with(
    rng: &mut RngStream,
    fleets: &[Option<&Fleet>],
    held: Option<usize>,
    profiles: &[ChaosProfile],
) -> RegionEvent {
    let active: Vec<usize> = (0..fleets.len()).filter(|&r| fleets[r].is_some()).collect();
    let evacuated: Vec<usize> = (0..fleets.len())
        .filter(|&r| fleets[r].is_none() && Some(r) != held)
        .collect();
    let roll = rng.uniform();
    if roll < 0.60 {
        // A local fleet event in a uniformly chosen active region.
        if active.is_empty() {
            return RegionEvent::Quiet;
        }
        let region = active[rng.index(active.len())];
        let default = ChaosProfile::default();
        let profile = profiles.get(region).unwrap_or(&default);
        let event = next_event_with(
            rng,
            fleets[region].expect("active region has a fleet"),
            profile,
        );
        RegionEvent::Local { region, event }
    } else if roll < 0.70 {
        // Spontaneous evacuation: never the last active region.
        if active.len() <= 1 {
            return RegionEvent::Quiet;
        }
        RegionEvent::Evacuation {
            region: active[rng.index(active.len())],
        }
    } else if roll < 0.88 {
        if evacuated.is_empty() {
            return RegionEvent::Quiet;
        }
        RegionEvent::Failback {
            region: evacuated[rng.index(evacuated.len())],
        }
    } else {
        RegionEvent::Quiet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_fleet::FleetSpec;

    #[test]
    fn stream_is_deterministic() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let fleets = vec![Some(&fleet), Some(&fleet), None];
        let draw = |seed: u64| -> Vec<RegionEvent> {
            let mut rng = RngStream::new(seed, 9);
            (0..64)
                .map(|_| next_region_event(&mut rng, &fleets, None))
                .collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn events_respect_region_state() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let fleets = vec![Some(&fleet), None, Some(&fleet)];
        let mut rng = RngStream::new(7, 0);
        let mut saw_failback = false;
        for _ in 0..300 {
            match next_region_event(&mut rng, &fleets, None) {
                RegionEvent::Local { region, .. } => assert!(region != 1),
                RegionEvent::Evacuation { region } => assert!(region != 1),
                RegionEvent::Failback { region } => {
                    assert_eq!(region, 1);
                    saw_failback = true;
                }
                RegionEvent::Quiet => {}
            }
        }
        assert!(saw_failback);
    }

    #[test]
    fn default_profiles_match_the_legacy_stream() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let fleets = vec![Some(&fleet), Some(&fleet), None];
        let legacy: Vec<RegionEvent> = {
            let mut rng = RngStream::new(5, 9);
            (0..128)
                .map(|_| next_region_event(&mut rng, &fleets, None))
                .collect()
        };
        let profiled: Vec<RegionEvent> = {
            let mut rng = RngStream::new(5, 9);
            let profiles = vec![ChaosProfile::default(); 3];
            (0..128)
                .map(|_| next_region_event_with(&mut rng, &fleets, None, &profiles))
                .collect()
        };
        assert_eq!(
            legacy, profiled,
            "default profiles must be the legacy stream"
        );
    }

    #[test]
    fn per_region_preemption_intensity_shapes_local_events() {
        // Region 0 runs a calm spot market (intensity 0), region 1 a hot
        // one (intensity 2.8): across many draws, region 1 must see
        // preemptions and region 0 none.
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let fleets = vec![Some(&fleet), Some(&fleet)];
        let profiles = vec![
            ChaosProfile::with_preemption_intensity(0.0),
            ChaosProfile::with_preemption_intensity(2.8),
        ];
        let mut rng = RngStream::new(17, 3);
        let mut preemptions = [0usize; 2];
        for _ in 0..600 {
            if let RegionEvent::Local { region, event } =
                next_region_event_with(&mut rng, &fleets, None, &profiles)
            {
                if matches!(
                    event,
                    FleetEvent::SpotPreemption { .. } | FleetEvent::PreemptionWarning { .. }
                ) {
                    preemptions[region] += 1;
                }
            }
        }
        assert_eq!(preemptions[0], 0, "calm market still preempted");
        assert!(preemptions[1] > 0, "hot market never preempted");
    }

    #[test]
    fn last_active_region_is_never_evacuated_and_held_never_fails_back() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let fleets = vec![Some(&fleet), None, None];
        let mut rng = RngStream::new(11, 2);
        for _ in 0..300 {
            match next_region_event(&mut rng, &fleets, Some(1)) {
                RegionEvent::Evacuation { .. } => panic!("evacuated the last region"),
                RegionEvent::Failback { region } => assert_eq!(region, 2, "held region returned"),
                _ => {}
            }
        }
    }
}
