//! The federation run report: per-interval, per-region recovery and
//! serving accounting. Deterministic per seed, like
//! [`parva_fleet::FleetReport`].

use crate::event::RegionEvent;
use parva_cluster::BillingReport;
use parva_serve::ResilienceCounters;
use serde::{Deserialize, Serialize, Value};

/// Tolerance for [`IntervalOutcome::attains`]: with DES-measured recovery,
/// an interval's compliance carries the *measured* dip of its own event
/// (an unannounced failure in the final interval shows up there, by
/// design) plus ~1% of window-edge sampling noise. A federation that
/// genuinely failed to re-place capacity sits several percent lower.
pub const ATTAINMENT_TOLERANCE: f64 = 0.01;

/// One region's row in one interval.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct RegionOutcome {
    /// Region index.
    pub region: usize,
    /// Region name.
    pub name: String,
    /// Whether the region's fleet was serving this interval.
    pub active: bool,
    /// Demand originating in this region, req/s.
    pub offered_rps: f64,
    /// Traffic routed into this region's fleet (local + inbound spill),
    /// req/s.
    pub routed_in_rps: f64,
    /// Inbound cross-region traffic, req/s.
    pub spill_in_rps: f64,
    /// This region's demand served elsewhere, req/s.
    pub spill_out_rps: f64,
    /// Request-level SLO compliance of the traffic served here (1.0 when
    /// the region served nothing).
    pub compliance: f64,
    /// p99 latency of locally-originated traffic served here, ms.
    pub local_p99_ms: f64,
    /// Worst p99 latency across inbound spilled classes, ms (0 when no
    /// spill arrived) — includes the RTT term.
    pub spilled_p99_ms: f64,
    /// Segments drained or displaced here this interval.
    pub displaced_segments: usize,
    /// Logical GPUs reconfigured through the §III-F path.
    pub reconfigured_gpus: usize,
    /// Segments that physically moved during recovery/retarget.
    pub migrated_segments: usize,
    /// Replacement nodes provisioned this interval.
    pub replacement_nodes: usize,
    /// DES-measured end-to-end recovery latency of this interval's
    /// migration work (control plane + per-node serialized re-flashes +
    /// PCIe-queued weight copies riding the serving traffic), ms; 0 when
    /// nothing physically moved.
    pub recovery_latency_ms: f64,
    /// Weights staged ahead of the capacity loss by cross-region pre-copy
    /// (evacuation notice / spot warning), GiB.
    pub precopied_gib: f64,
    /// Nodes in service after the interval's recovery.
    pub nodes_in_service: usize,
    /// Hourly cost of the in-service fleet at regional prices, USD.
    pub usd_per_hour: f64,
    /// Resilience-policy activity (timeouts, retries, sheds, hedges) in the
    /// traffic served here; `None` (and omitted from the serialized form)
    /// when the run had no resilience policy or nothing fired.
    #[serde(default)]
    pub resilience: Option<ResilienceCounters>,
}

// Hand-written so resilience-free runs serialize exactly as before the
// resilience layer existed: the trailing `resilience` map is emitted only
// when present.
impl Serialize for RegionOutcome {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("region"), self.region.to_value()),
            (String::from("name"), self.name.to_value()),
            (String::from("active"), self.active.to_value()),
            (String::from("offered_rps"), self.offered_rps.to_value()),
            (String::from("routed_in_rps"), self.routed_in_rps.to_value()),
            (String::from("spill_in_rps"), self.spill_in_rps.to_value()),
            (String::from("spill_out_rps"), self.spill_out_rps.to_value()),
            (String::from("compliance"), self.compliance.to_value()),
            (String::from("local_p99_ms"), self.local_p99_ms.to_value()),
            (
                String::from("spilled_p99_ms"),
                self.spilled_p99_ms.to_value(),
            ),
            (
                String::from("displaced_segments"),
                self.displaced_segments.to_value(),
            ),
            (
                String::from("reconfigured_gpus"),
                self.reconfigured_gpus.to_value(),
            ),
            (
                String::from("migrated_segments"),
                self.migrated_segments.to_value(),
            ),
            (
                String::from("replacement_nodes"),
                self.replacement_nodes.to_value(),
            ),
            (
                String::from("recovery_latency_ms"),
                self.recovery_latency_ms.to_value(),
            ),
            (String::from("precopied_gib"), self.precopied_gib.to_value()),
            (
                String::from("nodes_in_service"),
                self.nodes_in_service.to_value(),
            ),
            (String::from("usd_per_hour"), self.usd_per_hour.to_value()),
        ];
        if let Some(resilience) = &self.resilience {
            map.push((String::from("resilience"), resilience.to_value()));
        }
        Value::Map(map)
    }
}

/// One federation interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// Interval index (0 = undisturbed baseline).
    pub interval: usize,
    /// The injected event.
    pub event: RegionEvent,
    /// Regions that were forced into failover this interval because their
    /// fleet could no longer host its plan.
    pub forced_failovers: Vec<usize>,
    /// Per-region rows, region order.
    pub regions: Vec<RegionOutcome>,
    /// Offered-weighted request compliance across the whole federation;
    /// demand that found no active region counts as violated.
    pub global_compliance: f64,
    /// Total cross-region traffic this interval, req/s.
    pub spilled_rps: f64,
    /// Demand that found no active region, req/s.
    pub unrouted_rps: f64,
    /// Total hourly cost across regions at regional prices, USD.
    pub usd_per_hour: f64,
}

impl IntervalOutcome {
    /// Did this interval's federation-wide SLO attainment stay at or above
    /// `baseline` (within [`ATTAINMENT_TOLERANCE`])?
    #[must_use]
    pub fn attains(&self, baseline: f64) -> bool {
        self.global_compliance + ATTAINMENT_TOLERANCE >= baseline
    }
}

/// Full outcome of a federation run.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct FederationReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Region names, index order.
    pub region_names: Vec<String>,
    /// The undisturbed interval 0.
    pub baseline: IntervalOutcome,
    /// Disturbed intervals, 1-based.
    pub intervals: Vec<IntervalOutcome>,
    /// The operator's per-tenant P&L, one row per (interval, tenant)
    /// including the interval-0 baseline, aggregated across regions.
    /// `None` (and omitted from the serialized form) when the run had no
    /// tenants configured.
    #[serde(default)]
    pub billing: Option<BillingReport>,
}

// Hand-written so tenant-free runs serialize exactly as before the tenant
// layer existed: `billing` is emitted only when present.
impl Serialize for FederationReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("seed"), self.seed.to_value()),
            (String::from("region_names"), self.region_names.to_value()),
            (String::from("baseline"), self.baseline.to_value()),
            (String::from("intervals"), self.intervals.to_value()),
        ];
        if let Some(billing) = &self.billing {
            map.push((String::from("billing"), billing.to_value()));
        }
        Value::Map(map)
    }
}

impl FederationReport {
    /// Baseline federation-wide compliance.
    #[must_use]
    pub fn baseline_compliance(&self) -> f64 {
        self.baseline.global_compliance
    }

    /// The last interval's federation-wide compliance.
    #[must_use]
    pub fn final_compliance(&self) -> f64 {
        self.intervals
            .last()
            .map_or(self.baseline.global_compliance, |i| i.global_compliance)
    }

    /// The worst per-interval compliance dip below baseline.
    #[must_use]
    pub fn worst_dip(&self) -> f64 {
        self.intervals
            .iter()
            .map(|i| (self.baseline.global_compliance - i.global_compliance).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Total cross-region traffic integrated over intervals, req/s·ivl.
    #[must_use]
    pub fn total_spilled_rps(&self) -> f64 {
        self.intervals.iter().map(|i| i.spilled_rps).sum()
    }

    /// Worst p99 of spilled traffic anywhere in the run, ms.
    #[must_use]
    pub fn worst_spilled_p99_ms(&self) -> f64 {
        self.intervals
            .iter()
            .flat_map(|i| i.regions.iter())
            .map(|r| r.spilled_p99_ms)
            .fold(0.0, f64::max)
    }

    /// Slowest DES-measured recovery across regions and intervals, ms.
    #[must_use]
    pub fn worst_recovery_latency_ms(&self) -> f64 {
        self.intervals
            .iter()
            .flat_map(|i| i.regions.iter())
            .map(|r| r.recovery_latency_ms)
            .fold(0.0, f64::max)
    }

    /// Total weights staged by cross-region pre-copy over the run, GiB.
    #[must_use]
    pub fn total_precopied_gib(&self) -> f64 {
        self.intervals
            .iter()
            .flat_map(|i| i.regions.iter())
            .map(|r| r.precopied_gib)
            .sum()
    }

    /// Did the final interval recover to the baseline attainment level?
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.intervals
            .last()
            .is_none_or(|i| i.attains(self.baseline.global_compliance))
    }

    /// Render as a human-readable table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "federation run (seed {}): {} regions ({}), baseline compliance {:.2}% at ${:.2}/h\n\
             {:<4} {:<40} {:>4} {:>9} {:>9} {:>9} {:>9}\n",
            self.seed,
            self.region_names.len(),
            self.region_names.join(", "),
            self.baseline.global_compliance * 100.0,
            self.baseline.usd_per_hour,
            "ivl",
            "event",
            "act",
            "spill rps",
            "unrouted",
            "global %",
            "$/h"
        );
        for i in &self.intervals {
            let active = i.regions.iter().filter(|r| r.active).count();
            let failover = if i.forced_failovers.is_empty() {
                String::new()
            } else {
                format!(" [forced failover: {:?}]", i.forced_failovers)
            };
            out.push_str(&format!(
                "{:<4} {:<40} {:>4} {:>9.0} {:>9.0} {:>9.2} {:>9.2}{}\n",
                i.interval,
                i.event.to_string(),
                active,
                i.spilled_rps,
                i.unrouted_rps,
                i.global_compliance * 100.0,
                i.usd_per_hour,
                failover
            ));
        }
        out.push_str(&format!(
            "total spill {:.0} req/s·ivl, worst spilled p99 {:.0} ms, worst dip {:.2}%, \
             worst measured recovery {:.0} ms, {:.1} GiB pre-copied, {}\n",
            self.total_spilled_rps(),
            self.worst_spilled_p99_ms(),
            self.worst_dip() * 100.0,
            self.worst_recovery_latency_ms(),
            self.total_precopied_gib(),
            if self.recovered() {
                "final interval back at baseline attainment"
            } else {
                "FINAL INTERVAL BELOW BASELINE"
            }
        ));
        for (r, name) in self.region_names.iter().enumerate() {
            let rows: Vec<&RegionOutcome> = self
                .intervals
                .iter()
                .filter_map(|i| i.regions.get(r))
                .collect();
            let downtime = rows.iter().filter(|x| !x.active).count();
            let migrations: usize = rows.iter().map(|x| x.migrated_segments).sum();
            let spill_in: f64 = rows.iter().map(|x| x.spill_in_rps).sum();
            out.push_str(&format!(
                "  {name}: {} interval(s) dark, {} segment migration(s), {:.0} req/s·ivl absorbed from peers\n",
                downtime, migrations, spill_in
            ));
        }
        if let Some(billing) = &self.billing {
            out.push_str(&billing.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(interval: usize, compliance: f64) -> IntervalOutcome {
        IntervalOutcome {
            interval,
            event: RegionEvent::Quiet,
            forced_failovers: vec![],
            regions: vec![],
            global_compliance: compliance,
            spilled_rps: 100.0,
            unrouted_rps: 0.0,
            usd_per_hour: 50.0,
        }
    }

    #[test]
    fn summary_math_and_render() {
        let report = FederationReport {
            seed: 9,
            region_names: vec!["a".into(), "b".into()],
            baseline: outcome(0, 1.0),
            intervals: vec![outcome(1, 0.92), outcome(2, 1.0)],
            billing: None,
        };
        assert!((report.worst_dip() - 0.08).abs() < 1e-12);
        assert!(report.recovered());
        assert_eq!(report.final_compliance(), 1.0);
        assert!((report.total_spilled_rps() - 200.0).abs() < 1e-12);
        let rendered = report.render();
        assert!(rendered.contains("federation run"));
        assert!(rendered.contains("back at baseline"));
    }

    #[test]
    fn unrecovered_run_is_loud() {
        let report = FederationReport {
            seed: 9,
            region_names: vec![],
            baseline: outcome(0, 1.0),
            intervals: vec![outcome(1, 0.5)],
            billing: None,
        };
        assert!(!report.recovered());
        assert!(report.render().contains("BELOW BASELINE"));
    }
}
