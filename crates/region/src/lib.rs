//! # parva-region — multi-region fleet federation
//!
//! The paper validates ParvaGPU inside one 8×A100 cluster (§IV-A); a
//! production deployment serving a global user base runs several cloud
//! regions with different prices, different spot markets and real
//! distance between them. This crate federates multiple
//! [`parva_fleet::FleetSpec`]s into a region topology and makes the
//! ParvaGPU machinery survive region-scale events:
//!
//! * [`spec`] — the topology: [`RegionSpec`]s (fleet, price index, demand
//!   share, sun phase) plus the symmetric [`RttMatrix`].
//! * [`router`] — geo-aware demand routing: live regions serve locally;
//!   evacuated regions' demand spills to surviving regions weighted by
//!   capacity over distance, each flow carrying its RTT.
//! * [`event`] — the federation chaos stream: region-local fleet events
//!   plus region evacuation and failback.
//! * [`orchestrator`] — the [`Federation`] control loop: one
//!   [`parva_fleet::FleetOrchestrator`] per region, retargeted every
//!   interval through the §III-F incremental path, with cross-region
//!   failover when a region can no longer host its plan, and DES serving
//!   with the RTT charged against the SLO
//!   ([`parva_serve::simulate_with_ingress`]).
//! * [`report`] — the deterministic per-interval [`FederationReport`].
//!
//! Entry point: [`run_federation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod orchestrator;
pub mod report;
pub mod router;
pub mod spec;

pub use event::{next_region_event, next_region_event_with, RegionEvent};
pub use orchestrator::{
    run_federation, run_federation_observed, run_federation_sink, EvacuationDrill, Federation,
    FederationConfig, FederationError, FollowTheSun,
};
pub use report::{FederationReport, IntervalOutcome, RegionOutcome};
pub use router::{
    inbound, route_demand, route_demand_fair, route_from_fair, spill_excess, Demand, Flow,
    RTT_HALF_MS,
};
pub use spec::{FederationSpec, RegionSpec, RttMatrix};

/// The demo *global* service mix for federation surfaces. Rates are
/// full-planet totals (split across regions by demand share), sized so a
/// region's share spans several segments — losing a region then forces
/// real re-placement in the survivors, not just headroom absorption. The
/// SLO spread matters too: the sub-210 ms services cannot cross the
/// us-east ↔ ap-south ocean (210 ms RTT), while VGG-16's 400 ms SLO can
/// spill anywhere — exercising the router's per-service feasibility
/// filter.
#[must_use]
pub fn demo_services() -> Vec<parva_deploy::ServiceSpec> {
    use parva_perf::Model;
    vec![
        parva_deploy::ServiceSpec::new(0, Model::ResNet50, 4200.0, 205.0),
        parva_deploy::ServiceSpec::new(1, Model::MobileNetV2, 3400.0, 167.0),
        parva_deploy::ServiceSpec::new(2, Model::DenseNet121, 1500.0, 183.0),
        parva_deploy::ServiceSpec::new(3, Model::Vgg16, 900.0, 400.0),
    ]
}
