//! The region topology: per-region fleets, price indices, demand shares,
//! diurnal phases, and the symmetric inter-region RTT matrix.

use parva_fleet::FleetSpec;
use serde::{Deserialize, Serialize};

/// One cloud region of the federation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region label, e.g. `"us-east"`.
    pub name: String,
    /// The fleet provisioned in this region (pools are tagged with the
    /// region name on provisioning, see [`FleetSpec::in_region`]).
    pub fleet: FleetSpec,
    /// Regional price index applied on top of each node's pricing plan
    /// (1.0 = reference region; see
    /// [`parva_cluster::PricingPlan::node_usd_per_hour_in_region`]).
    pub pricing_multiplier: f64,
    /// Fraction of global demand originating in this region.
    pub demand_share: f64,
    /// Offset of the region's local day against the federation clock,
    /// hours — demand follows the sun (see
    /// [`parva_scenarios::diurnal_multiplier`]).
    pub diurnal_phase_hours: f64,
}

/// Symmetric inter-region round-trip times, milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RttMatrix {
    regions: usize,
    /// Row-major full matrix (diagonal zero, symmetric).
    ms: Vec<f64>,
}

impl RttMatrix {
    /// Build from the strict upper triangle in `(0,1), (0,2), …, (1,2), …`
    /// order — `n·(n−1)/2` entries for `n` regions.
    ///
    /// # Panics
    /// Panics when the entry count does not match `n·(n−1)/2` or any RTT
    /// is negative / non-finite.
    #[must_use]
    pub fn from_upper(regions: usize, upper: &[f64]) -> Self {
        assert_eq!(
            upper.len(),
            regions * regions.saturating_sub(1) / 2,
            "need n(n-1)/2 upper-triangle entries"
        );
        assert!(
            upper.iter().all(|r| r.is_finite() && *r >= 0.0),
            "RTTs must be non-negative finite"
        );
        let mut ms = vec![0.0; regions * regions];
        let mut k = 0;
        for i in 0..regions {
            for j in (i + 1)..regions {
                ms[i * regions + j] = upper[k];
                ms[j * regions + i] = upper[k];
                k += 1;
            }
        }
        Self { regions, ms }
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Round-trip time between regions `a` and `b`, ms (0 for `a == b`).
    #[must_use]
    pub fn rtt_ms(&self, a: usize, b: usize) -> f64 {
        self.ms[a * self.regions + b]
    }

    /// The smallest non-zero RTT out of region `a` (∞ for a 1-region
    /// matrix).
    #[must_use]
    pub fn nearest_rtt_ms(&self, a: usize) -> f64 {
        (0..self.regions)
            .filter(|&b| b != a)
            .map(|b| self.rtt_ms(a, b))
            .fold(f64::INFINITY, f64::min)
    }
}

/// The full federation topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationSpec {
    /// Regions in index order.
    pub regions: Vec<RegionSpec>,
    /// Inter-region RTTs; must cover `regions.len()` regions.
    pub rtt: RttMatrix,
}

impl FederationSpec {
    /// The demo federation: three regions following the sun with
    /// representative price indices and RTTs (us-east ↔ eu-west ≈ 80 ms,
    /// us-east ↔ ap-south ≈ 210 ms, eu-west ↔ ap-south ≈ 140 ms). Each
    /// region runs the mixed heterogeneous fleet of
    /// [`FleetSpec::mixed_demo`] sized by its demand share.
    #[must_use]
    pub fn three_region_demo() -> Self {
        Self {
            regions: vec![
                RegionSpec {
                    name: "us-east".into(),
                    fleet: FleetSpec::mixed_demo(2).in_region("us-east"),
                    pricing_multiplier: 1.0,
                    demand_share: 0.5,
                    diurnal_phase_hours: 0.0,
                },
                RegionSpec {
                    name: "eu-west".into(),
                    fleet: FleetSpec::mixed_demo(1).in_region("eu-west"),
                    pricing_multiplier: 1.08,
                    demand_share: 0.3,
                    diurnal_phase_hours: 5.0,
                },
                RegionSpec {
                    name: "ap-south".into(),
                    fleet: FleetSpec::mixed_demo(1).in_region("ap-south"),
                    pricing_multiplier: 1.15,
                    demand_share: 0.2,
                    diurnal_phase_hours: 10.5,
                },
            ],
            rtt: RttMatrix::from_upper(3, &[80.0, 210.0, 140.0]),
        }
    }

    /// Validate shape invariants: ≥ 1 region, RTT matrix of matching size,
    /// positive demand shares and price indices.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.regions.is_empty() {
            return Err("federation needs at least one region".into());
        }
        if self.rtt.regions() != self.regions.len() {
            return Err(format!(
                "RTT matrix covers {} regions, federation has {}",
                self.rtt.regions(),
                self.regions.len()
            ));
        }
        for (i, r) in self.regions.iter().enumerate() {
            if !(r.demand_share > 0.0 && r.demand_share.is_finite()) {
                return Err(format!(
                    "region {i} ({}) needs a positive demand share",
                    r.name
                ));
            }
            if !(r.pricing_multiplier > 0.0 && r.pricing_multiplier.is_finite()) {
                return Err(format!(
                    "region {i} ({}) needs a positive price index",
                    r.name
                ));
            }
            if r.fleet.pools.is_empty() {
                return Err(format!("region {i} ({}) has an empty fleet", r.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_matrix_is_symmetric_with_zero_diagonal() {
        let m = RttMatrix::from_upper(3, &[80.0, 210.0, 140.0]);
        for a in 0..3 {
            assert_eq!(m.rtt_ms(a, a), 0.0);
            for b in 0..3 {
                assert_eq!(m.rtt_ms(a, b), m.rtt_ms(b, a));
            }
        }
        assert_eq!(m.rtt_ms(0, 1), 80.0);
        assert_eq!(m.rtt_ms(1, 2), 140.0);
        assert_eq!(m.nearest_rtt_ms(2), 140.0);
    }

    #[test]
    #[should_panic(expected = "upper-triangle")]
    fn wrong_entry_count_rejected() {
        let _ = RttMatrix::from_upper(3, &[80.0]);
    }

    #[test]
    fn demo_spec_validates() {
        let spec = FederationSpec::three_region_demo();
        spec.validate().unwrap();
        let shares: f64 = spec.regions.iter().map(|r| r.demand_share).sum();
        assert!((shares - 1.0).abs() < 1e-9);
        // Every pool is tagged with its region.
        for r in &spec.regions {
            for p in &r.fleet.pools {
                assert_eq!(p.region.as_deref(), Some(r.name.as_str()));
            }
        }
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut spec = FederationSpec::three_region_demo();
        spec.regions[1].demand_share = 0.0;
        assert!(spec.validate().unwrap_err().contains("demand share"));
        let mut spec = FederationSpec::three_region_demo();
        spec.regions.pop();
        assert!(spec.validate().unwrap_err().contains("RTT matrix"));
    }
}
