//! Geo-aware demand routing at the rate level.
//!
//! The per-request deficit router of `parva-serve` balances traffic
//! *within* a region; this module decides how much of each region's
//! offered demand is served *where*. The policy mirrors production
//! geo-DNS / anycast steering:
//!
//! * a region with a live fleet serves its own demand locally (RTT 0);
//! * demand from an evacuated or failed region spills to surviving
//!   regions, weighted by their capacity and discounted by distance —
//!   a destination twice as far (in RTT) receives proportionally less,
//!   so most spilled traffic lands in the nearest healthy region;
//! * spill is **SLO-feasibility-filtered** per service: a destination
//!   whose RTT would eat more than [`SPILL_MAX_SLO_FRACTION`] of the
//!   service's latency SLO gets no share (no point shipping 205 ms-SLO
//!   traffic over a 210 ms ocean round-trip). When *no* destination is
//!   feasible the filter relaxes to best-effort — degraded service beats
//!   dropped service;
//! * overload excess (a region that can no longer host its routed plan)
//!   re-spills the same way, excluding the overloaded region.
//!
//! Every cross-region flow carries its RTT so the serving simulator can
//! charge it against the SLO (see [`parva_serve::IngressClass`]).

use crate::spec::RttMatrix;
use parva_deploy::Tenant;
use serde::{Deserialize, Serialize};

/// Distance soft-decay constant: a destination `RTT_HALF_MS` away gets
/// half the weight of an equally-sized co-located one.
pub const RTT_HALF_MS: f64 = 100.0;

/// Largest fraction of a service's SLO the spill RTT may consume before
/// the destination is excluded (the rest is queueing + service budget).
pub const SPILL_MAX_SLO_FRACTION: f64 = 0.75;

/// One source region's demand for one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Service id.
    pub service: u32,
    /// Offered rate, req/s.
    pub rate_rps: f64,
    /// The service's latency SLO, ms (bounds how far it may spill).
    pub slo_ms: f64,
    /// Owning tenant id (`0` = untenanted).
    #[serde(default)]
    pub tenant: u32,
}

/// One routed traffic stream: demand of `service` originating in `src`,
/// served by `dst`'s fleet, with the RTT it pays on the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Region the demand originates in.
    pub src: usize,
    /// Region whose fleet serves it.
    pub dst: usize,
    /// Service id.
    pub service: u32,
    /// Routed rate, req/s.
    pub rate_rps: f64,
    /// Round-trip time charged to every request of this flow, ms.
    pub rtt_ms: f64,
    /// Owning tenant id (`0` = untenanted), copied from the demand.
    #[serde(default)]
    pub tenant: u32,
}

/// Geo weight of a destination: capacity over softened distance.
fn geo_weight(capacity_weight: f64, rtt_ms: f64) -> f64 {
    capacity_weight / (1.0 + rtt_ms / RTT_HALF_MS)
}

/// Split one source region's demand across destinations.
fn route_source(
    src: usize,
    offered: &[Demand],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
    out: &mut Vec<Flow>,
) {
    if active[src] {
        for d in offered {
            if d.rate_rps > 0.0 {
                out.push(Flow {
                    src,
                    dst: src,
                    service: d.service,
                    rate_rps: d.rate_rps,
                    rtt_ms: 0.0,
                    tenant: d.tenant,
                });
            }
        }
        return;
    }
    let candidates: Vec<usize> = (0..active.len())
        .filter(|&d| active[d] && capacity_weight[d] > 0.0)
        .collect();
    if candidates.is_empty() {
        return; // nowhere to go: the caller accounts this as unrouted
    }
    for demand in offered {
        if demand.rate_rps <= 0.0 {
            continue;
        }
        // SLO-feasible destinations first; best-effort when none is.
        let feasible: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| rtt.rtt_ms(src, d) <= demand.slo_ms * SPILL_MAX_SLO_FRACTION)
            .collect();
        let pool: &[usize] = if feasible.is_empty() {
            &candidates
        } else {
            &feasible
        };
        let weights: Vec<(usize, f64)> = pool
            .iter()
            .map(|&d| (d, geo_weight(capacity_weight[d], rtt.rtt_ms(src, d))))
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            continue;
        }
        for &(d, w) in &weights {
            out.push(Flow {
                src,
                dst: d,
                service: demand.service,
                rate_rps: demand.rate_rps * w / total,
                rtt_ms: rtt.rtt_ms(src, d),
                tenant: demand.tenant,
            });
        }
    }
}

/// Allocation floor below which a share is considered exhausted (req/s).
const FAIR_EPS: f64 = 1e-9;

/// The effective fair-share weight of tenant `id` under `tenants`
/// (unknown or untenanted ids weigh `1.0`, like an unconfigured tenant).
fn tenant_weight(tenants: &[Tenant], id: u32) -> f64 {
    parva_deploy::tenant_of(tenants, id).map_or(1.0, Tenant::effective_weight)
}

/// Split one spilling source's demand across destinations **weighted-fair
/// across tenants**: each destination's aggregate absorption stays
/// proportional to its geo weight (capacity over softened distance — the
/// legacy invariant), but destinations fill nearest-first and, inside each
/// destination, tenants share the absorption budget by weighted max-min
/// water-filling on their [`Tenant::effective_weight`]. A heavy tenant
/// therefore lands more of its spill in the nearest (lowest-RTT) healthy
/// region, while a light tenant is pushed toward farther destinations —
/// its share of each destination is *bounded by its weight*, not by how
/// much traffic it happens to offer. Per-service SLO feasibility still
/// gates every allocation; demand feasible nowhere degrades to the legacy
/// best-effort split.
#[allow(clippy::cast_precision_loss)]
fn route_source_fair(
    src: usize,
    offered: &[Demand],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
    tenants: &[Tenant],
    out: &mut Vec<Flow>,
) {
    if active[src] {
        // Local serving is not contended: identical to the legacy path.
        route_source(src, offered, active, capacity_weight, rtt, out);
        return;
    }
    let candidates: Vec<usize> = (0..active.len())
        .filter(|&d| active[d] && capacity_weight[d] > 0.0)
        .collect();
    if candidates.is_empty() {
        return; // nowhere to go: the caller accounts this as unrouted
    }
    let demands: Vec<&Demand> = offered.iter().filter(|d| d.rate_rps > 0.0).collect();
    let total: f64 = demands.iter().map(|d| d.rate_rps).sum();
    if total <= 0.0 {
        return;
    }

    // Destination budgets: the aggregate each destination would absorb
    // under the legacy geo-weighted split, filled nearest-first.
    let mut dests: Vec<(usize, f64, f64)> = candidates
        .iter()
        .map(|&d| {
            let r = rtt.rtt_ms(src, d);
            (d, r, geo_weight(capacity_weight[d], r))
        })
        .collect();
    let weight_sum: f64 = dests.iter().map(|(_, _, w)| w).sum();
    if weight_sum <= 0.0 {
        return;
    }
    dests.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut remaining: Vec<f64> = demands.iter().map(|d| d.rate_rps).collect();
    // alloc[i][j] = rate of demand i routed to dests[j].
    let mut alloc = vec![vec![0.0f64; dests.len()]; demands.len()];
    let mut carry = 0.0; // budget a destination could not place rolls onward
    for (j, &(_, rtt_ms, w)) in dests.iter().enumerate() {
        let mut budget = total * w / weight_sum + carry;
        loop {
            // Tenants with SLO-feasible unplaced demand at this destination.
            let mut per_tenant: std::collections::BTreeMap<u32, f64> =
                std::collections::BTreeMap::new();
            for (i, demand) in demands.iter().enumerate() {
                if remaining[i] > FAIR_EPS && rtt_ms <= demand.slo_ms * SPILL_MAX_SLO_FRACTION {
                    *per_tenant.entry(demand.tenant).or_insert(0.0) += remaining[i];
                }
            }
            if per_tenant.is_empty() || budget <= FAIR_EPS {
                break;
            }
            let weight_total: f64 = per_tenant.keys().map(|&t| tenant_weight(tenants, t)).sum();
            let mut placed = 0.0;
            for (&t, &feasible) in &per_tenant {
                let fair = budget * tenant_weight(tenants, t) / weight_total;
                let take = fair.min(feasible);
                if take <= FAIR_EPS {
                    continue;
                }
                // Spread the tenant's grant across its feasible services
                // proportional to their unplaced rates.
                for (i, demand) in demands.iter().enumerate() {
                    if demand.tenant == t
                        && remaining[i] > FAIR_EPS
                        && rtt_ms <= demand.slo_ms * SPILL_MAX_SLO_FRACTION
                    {
                        let part = take * remaining[i] / feasible;
                        alloc[i][j] += part;
                        remaining[i] -= part;
                    }
                }
                placed += take;
            }
            budget -= placed;
            if placed <= FAIR_EPS {
                break; // every feasible tenant is capped: water level reached
            }
        }
        carry = budget.max(0.0);
    }

    // Whatever is still unplaced either outran its feasible destinations'
    // budgets or fits nowhere. Place it geo-weighted over its *feasible*
    // destinations first (budgets are advisory; the SLO filter is not),
    // degrading to the legacy all-candidates best-effort split only when
    // no destination is feasible — degraded service beats dropped service.
    for (i, demand) in demands.iter().enumerate() {
        if remaining[i] <= FAIR_EPS {
            continue;
        }
        let feasible_sum: f64 = dests
            .iter()
            .filter(|&&(_, rtt_ms, _)| rtt_ms <= demand.slo_ms * SPILL_MAX_SLO_FRACTION)
            .map(|&(_, _, w)| w)
            .sum();
        for (j, &(_, rtt_ms, w)) in dests.iter().enumerate() {
            if feasible_sum > 0.0 {
                if rtt_ms <= demand.slo_ms * SPILL_MAX_SLO_FRACTION {
                    alloc[i][j] += remaining[i] * w / feasible_sum;
                }
            } else {
                alloc[i][j] += remaining[i] * w / weight_sum;
            }
        }
        remaining[i] = 0.0;
    }

    for (i, demand) in demands.iter().enumerate() {
        for (j, &(d, rtt_ms, _)) in dests.iter().enumerate() {
            if alloc[i][j] > FAIR_EPS {
                out.push(Flow {
                    src,
                    dst: d,
                    service: demand.service,
                    rate_rps: alloc[i][j],
                    rtt_ms,
                    tenant: demand.tenant,
                });
            }
        }
    }
}

/// Route every region's offered demand (`offered[r]` = region `r`'s
/// per-service [`Demand`] rows) across the federation.
///
/// `active[r]` marks regions with a live fleet; `capacity_weight[r]` is a
/// relative size proxy (e.g. alive GPU count). Demand of an inactive
/// region that finds no active destination is silently dropped — the
/// caller compares routed vs. offered totals to account it.
#[must_use]
pub fn route_demand(
    offered: &[Vec<Demand>],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    let mut out = Vec::new();
    for (src, o) in offered.iter().enumerate() {
        route_source(src, o, active, capacity_weight, rtt, &mut out);
    }
    out
}

/// [`route_demand`] with tenant-weighted-fair spill: when `tenants` is
/// non-empty, each evacuated source's spill is apportioned by
/// [`route_source_fair`] (nearest-destination budgets shared across
/// tenants by fair-share weight); when `tenants` is empty this is exactly
/// [`route_demand`].
#[must_use]
pub fn route_demand_fair(
    offered: &[Vec<Demand>],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
    tenants: &[Tenant],
) -> Vec<Flow> {
    if tenants.is_empty() {
        return route_demand(offered, active, capacity_weight, rtt);
    }
    let mut out = Vec::new();
    for (src, o) in offered.iter().enumerate() {
        route_source_fair(src, o, active, capacity_weight, rtt, tenants, &mut out);
    }
    out
}

/// Route `demand` away from its true origin `src` across the regions
/// marked active in `mask` (with `src` treated as unavailable even if
/// the mask says otherwise). The per-service SLO filter and the RTT
/// carried by each flow are evaluated from `src`'s own RTT row, so
/// rerouted traffic is never undercharged for the distance its users
/// actually pay.
#[must_use]
pub fn route_from(
    src: usize,
    demand: &[Demand],
    mask: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    let mut mask = mask.to_vec();
    mask[src] = false;
    let mut out = Vec::new();
    route_source(src, demand, &mask, capacity_weight, rtt, &mut out);
    out
}

/// [`route_from`] with tenant-weighted-fair spill (see
/// [`route_demand_fair`]); empty `tenants` is exactly [`route_from`].
#[must_use]
pub fn route_from_fair(
    src: usize,
    demand: &[Demand],
    mask: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
    tenants: &[Tenant],
) -> Vec<Flow> {
    if tenants.is_empty() {
        return route_from(src, demand, mask, capacity_weight, rtt);
    }
    let mut mask = mask.to_vec();
    mask[src] = false;
    let mut out = Vec::new();
    route_source_fair(src, demand, &mask, capacity_weight, rtt, tenants, &mut out);
    out
}

/// Re-spill overload excess out of region `over`: the per-service excess
/// demand is split across the *other* active regions by the same rules,
/// sourced at `over` (its RTT row prices the detour). For excess whose
/// true origin is a third region, use [`route_from`] with that origin
/// instead, so the RTT charge follows the users rather than the
/// overloaded middlebox.
#[must_use]
pub fn spill_excess(
    over: usize,
    excess: &[Demand],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    route_from(over, excess, active, capacity_weight, rtt)
}

/// Sum the flows routed into `dst`, per service id (ascending).
#[must_use]
pub fn inbound(flows: &[Flow], dst: usize) -> Vec<(u32, f64)> {
    let mut per: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for f in flows.iter().filter(|f| f.dst == dst) {
        *per.entry(f.service).or_insert(0.0) += f.rate_rps;
    }
    per.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt3() -> RttMatrix {
        RttMatrix::from_upper(3, &[80.0, 210.0, 140.0])
    }

    fn demand(service: u32, rate_rps: f64, slo_ms: f64) -> Demand {
        Demand {
            service,
            rate_rps,
            slo_ms,
            tenant: 0,
        }
    }

    fn tenant_demand(service: u32, rate_rps: f64, slo_ms: f64, tenant: u32) -> Demand {
        Demand {
            service,
            rate_rps,
            slo_ms,
            tenant,
        }
    }

    fn offered3() -> Vec<Vec<Demand>> {
        vec![
            vec![demand(0, 500.0, 400.0), demand(1, 300.0, 400.0)],
            vec![demand(0, 300.0, 400.0), demand(1, 180.0, 400.0)],
            vec![demand(0, 200.0, 400.0), demand(1, 120.0, 400.0)],
        ]
    }

    #[test]
    fn active_regions_serve_locally() {
        let flows = route_demand(&offered3(), &[true; 3], &[32.0, 24.0, 24.0], &rtt3());
        assert!(flows.iter().all(|f| f.src == f.dst && f.rtt_ms == 0.0));
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn evacuated_demand_spills_nearest_heavy() {
        // Region 0 down; its demand splits over 1 (80 ms) and 2 (210 ms).
        let flows = route_demand(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        let spilled: Vec<&Flow> = flows.iter().filter(|f| f.src == 0).collect();
        assert!(spilled.iter().all(|f| f.dst != 0));
        assert!(spilled.iter().all(|f| f.rtt_ms > 0.0));
        // Conservation per service.
        let s0: f64 = spilled
            .iter()
            .filter(|f| f.service == 0)
            .map(|f| f.rate_rps)
            .sum();
        assert!((s0 - 500.0).abs() < 1e-9);
        // Geo-awareness: equal capacity ⇒ the nearer region takes more.
        let to_1: f64 = spilled
            .iter()
            .filter(|f| f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        let to_2: f64 = spilled
            .iter()
            .filter(|f| f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!(
            to_1 > to_2,
            "nearer region got {to_1:.0} vs farther {to_2:.0}"
        );
        // And the RTT carried matches the matrix.
        for f in &spilled {
            assert_eq!(f.rtt_ms, rtt3().rtt_ms(0, f.dst));
        }
    }

    #[test]
    fn slo_infeasible_destinations_get_nothing() {
        // A 205 ms SLO cannot absorb a 210 ms RTT (nor 0.75·205 = 154):
        // everything must go to the 80 ms region. The 400 ms SLO service
        // may use both.
        let offered = vec![
            vec![demand(0, 400.0, 205.0), demand(1, 200.0, 400.0)],
            vec![],
            vec![],
        ];
        let flows = route_demand(&offered, &[false, true, true], &[10.0, 10.0, 10.0], &rtt3());
        let tight_to_far: f64 = flows
            .iter()
            .filter(|f| f.service == 0 && f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert_eq!(tight_to_far, 0.0, "205 ms SLO crossed a 210 ms RTT");
        let tight_near: f64 = flows
            .iter()
            .filter(|f| f.service == 0 && f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        assert!((tight_near - 400.0).abs() < 1e-9);
        let loose_to_far: f64 = flows
            .iter()
            .filter(|f| f.service == 1 && f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!(loose_to_far > 0.0, "400 ms SLO may use the far region");
    }

    #[test]
    fn no_feasible_destination_degrades_to_best_effort() {
        // A 50 ms SLO fits nowhere; the demand must still be served (and
        // will violate) rather than dropped.
        let offered = vec![vec![demand(0, 100.0, 50.0)], vec![], vec![]];
        let flows = route_demand(&offered, &[false, true, true], &[10.0, 10.0, 10.0], &rtt3());
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn spill_weights_follow_capacity() {
        // Same distance, 3× capacity ⇒ 3× share.
        let rtt = RttMatrix::from_upper(3, &[100.0, 100.0, 50.0]);
        let offered = vec![vec![demand(0, 400.0, 1000.0)], vec![], vec![]];
        let flows = route_demand(&offered, &[false, true, true], &[0.0, 30.0, 10.0], &rtt);
        let to_1: f64 = flows
            .iter()
            .filter(|f| f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        let to_2: f64 = flows
            .iter()
            .filter(|f| f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!((to_1 / to_2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_active_region_drops_demand() {
        let flows = route_demand(&offered3(), &[false; 3], &[1.0; 3], &rtt3());
        assert!(flows.is_empty());
    }

    #[test]
    fn route_from_prices_rtt_from_the_true_origin() {
        // Traffic originating at region 0 is rerouted away from an
        // overloaded region 1: the flows must carry region 0's RTTs (not
        // region 1's) and respect region 0's SLO feasibility — a 205 ms
        // SLO cannot land in region 2 (210 ms from its users) even though
        // region 2 is only 140 ms from the overloaded middlebox.
        let flows = route_from(
            0,
            &[demand(0, 100.0, 205.0), demand(1, 100.0, 400.0)],
            &[true, false, true],
            &[10.0, 10.0, 10.0],
            &rtt3(),
        );
        for f in &flows {
            assert_eq!(f.src, 0);
            assert_ne!(f.dst, 0, "route_from must route away from src");
            assert_eq!(f.rtt_ms, rtt3().rtt_ms(0, f.dst));
        }
        // The tight-SLO service found no feasible destination (region 1
        // masked out, region 2 infeasible) and degraded to best-effort on
        // region 2 — but still priced at its true 210 ms.
        let tight: Vec<&Flow> = flows.iter().filter(|f| f.service == 0).collect();
        assert!(tight.iter().all(|f| f.dst == 2 && f.rtt_ms == 210.0));
    }

    #[test]
    fn excess_respill_excludes_the_overloaded_region() {
        let flows = spill_excess(
            1,
            &[demand(0, 90.0, 1000.0)],
            &[true, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.dst != 1 && f.src == 1));
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 90.0).abs() < 1e-9);
    }

    #[test]
    fn inbound_aggregates_per_service() {
        let flows = route_demand(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        let into_1 = inbound(&flows, 1);
        assert_eq!(into_1.len(), 2);
        // Local 300 + a share of the 500 spilled.
        assert!(into_1[0].1 > 300.0);
        let all: f64 = (0..3)
            .flat_map(|d| inbound(&flows, d))
            .map(|(_, r)| r)
            .sum();
        assert!((all - 1600.0).abs() < 1e-9);
    }

    fn two_tenants(heavy: f64, light: f64) -> Vec<Tenant> {
        vec![
            Tenant::new(1, "heavy").with_weight(heavy),
            Tenant::new(2, "light").with_weight(light),
        ]
    }

    #[test]
    fn fair_routing_without_tenants_matches_legacy() {
        let flows = route_demand(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        let fair = route_demand_fair(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
            &[],
        );
        assert_eq!(flows, fair, "empty tenant set must not change routing");
    }

    #[test]
    fn fair_split_conserves_per_tenant_and_per_destination() {
        // Two tenants spill from region 0. Aggregate absorption per
        // destination must match the legacy geo-weight proportions, and
        // every tenant's demand must be fully routed.
        let offered = vec![
            vec![
                tenant_demand(0, 300.0, 1000.0, 1),
                tenant_demand(1, 300.0, 1000.0, 2),
            ],
            vec![],
            vec![],
        ];
        let weights = [0.0, 24.0, 24.0];
        let flows = route_demand_fair(
            &offered,
            &[false, true, true],
            &weights,
            &rtt3(),
            &two_tenants(3.0, 1.0),
        );
        for t in [1u32, 2u32] {
            let routed: f64 = flows
                .iter()
                .filter(|f| f.tenant == t)
                .map(|f| f.rate_rps)
                .sum();
            assert!((routed - 300.0).abs() < 1e-6, "tenant {t} lost traffic");
        }
        // Aggregate per destination follows geo weight (80 ms vs 210 ms).
        let w1 = geo_weight(24.0, 80.0);
        let w2 = geo_weight(24.0, 210.0);
        let to_1: f64 = flows
            .iter()
            .filter(|f| f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        let to_2: f64 = flows
            .iter()
            .filter(|f| f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!((to_1 / to_2 - w1 / w2).abs() < 1e-6, "{to_1} vs {to_2}");
    }

    #[test]
    fn heavier_tenant_takes_the_nearer_destination() {
        // Equal offered rates, weight 3 vs 1: the heavy tenant's share of
        // the nearest destination's budget is 3× the light tenant's.
        let offered = vec![
            vec![
                tenant_demand(0, 300.0, 1000.0, 1),
                tenant_demand(1, 300.0, 1000.0, 2),
            ],
            vec![],
            vec![],
        ];
        let flows = route_demand_fair(
            &offered,
            &[false, true, true],
            &[0.0, 24.0, 24.0],
            &rtt3(),
            &two_tenants(3.0, 1.0),
        );
        let near = |t: u32| -> f64 {
            flows
                .iter()
                .filter(|f| f.dst == 1 && f.tenant == t)
                .map(|f| f.rate_rps)
                .sum()
        };
        // The nearest destination's budget is under the heavy tenant's
        // full demand, so the 3:1 fair shares bind exactly.
        assert!(
            (near(1) / near(2) - 3.0).abs() < 1e-6,
            "heavy {:.1} vs light {:.1}",
            near(1),
            near(2)
        );
        // And the light tenant's displaced traffic lands farther out, not
        // nowhere: conservation still holds.
        let light_total: f64 = flows
            .iter()
            .filter(|f| f.tenant == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!((light_total - 300.0).abs() < 1e-6);
    }

    #[test]
    fn fair_split_respects_slo_feasibility() {
        // The heavy tenant's 205 ms SLO cannot cross the 210 ms ocean: its
        // whole demand must land in the 80 ms region regardless of budget,
        // pushing the light (loose-SLO) tenant's spill outward.
        let offered = vec![
            vec![
                tenant_demand(0, 200.0, 205.0, 1),
                tenant_demand(1, 200.0, 400.0, 2),
            ],
            vec![],
            vec![],
        ];
        let flows = route_demand_fair(
            &offered,
            &[false, true, true],
            &[0.0, 10.0, 10.0],
            &rtt3(),
            &two_tenants(1.0, 1.0),
        );
        let tight_far: f64 = flows
            .iter()
            .filter(|f| f.tenant == 1 && f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert_eq!(tight_far, 0.0, "205 ms SLO crossed a 210 ms RTT");
        let tight_near: f64 = flows
            .iter()
            .filter(|f| f.tenant == 1 && f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        assert!((tight_near - 200.0).abs() < 1e-6);
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!(
            (total - 400.0).abs() < 1e-6,
            "conservation under the filter"
        );
    }

    #[test]
    fn fair_split_degrades_to_best_effort_when_nothing_fits() {
        // A 50 ms SLO fits nowhere; the fair router must still place it
        // (legacy best-effort) rather than drop it.
        let offered = vec![vec![tenant_demand(0, 100.0, 50.0, 1)], vec![], vec![]];
        let flows = route_demand_fair(
            &offered,
            &[false, true, true],
            &[10.0, 10.0, 10.0],
            &rtt3(),
            &two_tenants(2.0, 1.0),
        );
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn route_from_fair_masks_the_source() {
        let flows = route_from_fair(
            1,
            &[tenant_demand(0, 90.0, 1000.0, 1)],
            &[true, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
            &two_tenants(1.0, 1.0),
        );
        assert!(!flows.is_empty());
        assert!(flows
            .iter()
            .all(|f| f.dst != 1 && f.src == 1 && f.tenant == 1));
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 90.0).abs() < 1e-9);
    }
}
