//! Geo-aware demand routing at the rate level.
//!
//! The per-request deficit router of `parva-serve` balances traffic
//! *within* a region; this module decides how much of each region's
//! offered demand is served *where*. The policy mirrors production
//! geo-DNS / anycast steering:
//!
//! * a region with a live fleet serves its own demand locally (RTT 0);
//! * demand from an evacuated or failed region spills to surviving
//!   regions, weighted by their capacity and discounted by distance —
//!   a destination twice as far (in RTT) receives proportionally less,
//!   so most spilled traffic lands in the nearest healthy region;
//! * spill is **SLO-feasibility-filtered** per service: a destination
//!   whose RTT would eat more than [`SPILL_MAX_SLO_FRACTION`] of the
//!   service's latency SLO gets no share (no point shipping 205 ms-SLO
//!   traffic over a 210 ms ocean round-trip). When *no* destination is
//!   feasible the filter relaxes to best-effort — degraded service beats
//!   dropped service;
//! * overload excess (a region that can no longer host its routed plan)
//!   re-spills the same way, excluding the overloaded region.
//!
//! Every cross-region flow carries its RTT so the serving simulator can
//! charge it against the SLO (see [`parva_serve::IngressClass`]).

use crate::spec::RttMatrix;
use serde::{Deserialize, Serialize};

/// Distance soft-decay constant: a destination `RTT_HALF_MS` away gets
/// half the weight of an equally-sized co-located one.
pub const RTT_HALF_MS: f64 = 100.0;

/// Largest fraction of a service's SLO the spill RTT may consume before
/// the destination is excluded (the rest is queueing + service budget).
pub const SPILL_MAX_SLO_FRACTION: f64 = 0.75;

/// One source region's demand for one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Service id.
    pub service: u32,
    /// Offered rate, req/s.
    pub rate_rps: f64,
    /// The service's latency SLO, ms (bounds how far it may spill).
    pub slo_ms: f64,
}

/// One routed traffic stream: demand of `service` originating in `src`,
/// served by `dst`'s fleet, with the RTT it pays on the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Region the demand originates in.
    pub src: usize,
    /// Region whose fleet serves it.
    pub dst: usize,
    /// Service id.
    pub service: u32,
    /// Routed rate, req/s.
    pub rate_rps: f64,
    /// Round-trip time charged to every request of this flow, ms.
    pub rtt_ms: f64,
}

/// Geo weight of a destination: capacity over softened distance.
fn geo_weight(capacity_weight: f64, rtt_ms: f64) -> f64 {
    capacity_weight / (1.0 + rtt_ms / RTT_HALF_MS)
}

/// Split one source region's demand across destinations.
fn route_source(
    src: usize,
    offered: &[Demand],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
    out: &mut Vec<Flow>,
) {
    if active[src] {
        for d in offered {
            if d.rate_rps > 0.0 {
                out.push(Flow {
                    src,
                    dst: src,
                    service: d.service,
                    rate_rps: d.rate_rps,
                    rtt_ms: 0.0,
                });
            }
        }
        return;
    }
    let candidates: Vec<usize> = (0..active.len())
        .filter(|&d| active[d] && capacity_weight[d] > 0.0)
        .collect();
    if candidates.is_empty() {
        return; // nowhere to go: the caller accounts this as unrouted
    }
    for demand in offered {
        if demand.rate_rps <= 0.0 {
            continue;
        }
        // SLO-feasible destinations first; best-effort when none is.
        let feasible: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| rtt.rtt_ms(src, d) <= demand.slo_ms * SPILL_MAX_SLO_FRACTION)
            .collect();
        let pool: &[usize] = if feasible.is_empty() {
            &candidates
        } else {
            &feasible
        };
        let weights: Vec<(usize, f64)> = pool
            .iter()
            .map(|&d| (d, geo_weight(capacity_weight[d], rtt.rtt_ms(src, d))))
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            continue;
        }
        for &(d, w) in &weights {
            out.push(Flow {
                src,
                dst: d,
                service: demand.service,
                rate_rps: demand.rate_rps * w / total,
                rtt_ms: rtt.rtt_ms(src, d),
            });
        }
    }
}

/// Route every region's offered demand (`offered[r]` = region `r`'s
/// per-service [`Demand`] rows) across the federation.
///
/// `active[r]` marks regions with a live fleet; `capacity_weight[r]` is a
/// relative size proxy (e.g. alive GPU count). Demand of an inactive
/// region that finds no active destination is silently dropped — the
/// caller compares routed vs. offered totals to account it.
#[must_use]
pub fn route_demand(
    offered: &[Vec<Demand>],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    let mut out = Vec::new();
    for (src, o) in offered.iter().enumerate() {
        route_source(src, o, active, capacity_weight, rtt, &mut out);
    }
    out
}

/// Route `demand` away from its true origin `src` across the regions
/// marked active in `mask` (with `src` treated as unavailable even if
/// the mask says otherwise). The per-service SLO filter and the RTT
/// carried by each flow are evaluated from `src`'s own RTT row, so
/// rerouted traffic is never undercharged for the distance its users
/// actually pay.
#[must_use]
pub fn route_from(
    src: usize,
    demand: &[Demand],
    mask: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    let mut mask = mask.to_vec();
    mask[src] = false;
    let mut out = Vec::new();
    route_source(src, demand, &mask, capacity_weight, rtt, &mut out);
    out
}

/// Re-spill overload excess out of region `over`: the per-service excess
/// demand is split across the *other* active regions by the same rules,
/// sourced at `over` (its RTT row prices the detour). For excess whose
/// true origin is a third region, use [`route_from`] with that origin
/// instead, so the RTT charge follows the users rather than the
/// overloaded middlebox.
#[must_use]
pub fn spill_excess(
    over: usize,
    excess: &[Demand],
    active: &[bool],
    capacity_weight: &[f64],
    rtt: &RttMatrix,
) -> Vec<Flow> {
    route_from(over, excess, active, capacity_weight, rtt)
}

/// Sum the flows routed into `dst`, per service id (ascending).
#[must_use]
pub fn inbound(flows: &[Flow], dst: usize) -> Vec<(u32, f64)> {
    let mut per: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for f in flows.iter().filter(|f| f.dst == dst) {
        *per.entry(f.service).or_insert(0.0) += f.rate_rps;
    }
    per.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt3() -> RttMatrix {
        RttMatrix::from_upper(3, &[80.0, 210.0, 140.0])
    }

    fn demand(service: u32, rate_rps: f64, slo_ms: f64) -> Demand {
        Demand {
            service,
            rate_rps,
            slo_ms,
        }
    }

    fn offered3() -> Vec<Vec<Demand>> {
        vec![
            vec![demand(0, 500.0, 400.0), demand(1, 300.0, 400.0)],
            vec![demand(0, 300.0, 400.0), demand(1, 180.0, 400.0)],
            vec![demand(0, 200.0, 400.0), demand(1, 120.0, 400.0)],
        ]
    }

    #[test]
    fn active_regions_serve_locally() {
        let flows = route_demand(&offered3(), &[true; 3], &[32.0, 24.0, 24.0], &rtt3());
        assert!(flows.iter().all(|f| f.src == f.dst && f.rtt_ms == 0.0));
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn evacuated_demand_spills_nearest_heavy() {
        // Region 0 down; its demand splits over 1 (80 ms) and 2 (210 ms).
        let flows = route_demand(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        let spilled: Vec<&Flow> = flows.iter().filter(|f| f.src == 0).collect();
        assert!(spilled.iter().all(|f| f.dst != 0));
        assert!(spilled.iter().all(|f| f.rtt_ms > 0.0));
        // Conservation per service.
        let s0: f64 = spilled
            .iter()
            .filter(|f| f.service == 0)
            .map(|f| f.rate_rps)
            .sum();
        assert!((s0 - 500.0).abs() < 1e-9);
        // Geo-awareness: equal capacity ⇒ the nearer region takes more.
        let to_1: f64 = spilled
            .iter()
            .filter(|f| f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        let to_2: f64 = spilled
            .iter()
            .filter(|f| f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!(
            to_1 > to_2,
            "nearer region got {to_1:.0} vs farther {to_2:.0}"
        );
        // And the RTT carried matches the matrix.
        for f in &spilled {
            assert_eq!(f.rtt_ms, rtt3().rtt_ms(0, f.dst));
        }
    }

    #[test]
    fn slo_infeasible_destinations_get_nothing() {
        // A 205 ms SLO cannot absorb a 210 ms RTT (nor 0.75·205 = 154):
        // everything must go to the 80 ms region. The 400 ms SLO service
        // may use both.
        let offered = vec![
            vec![demand(0, 400.0, 205.0), demand(1, 200.0, 400.0)],
            vec![],
            vec![],
        ];
        let flows = route_demand(&offered, &[false, true, true], &[10.0, 10.0, 10.0], &rtt3());
        let tight_to_far: f64 = flows
            .iter()
            .filter(|f| f.service == 0 && f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert_eq!(tight_to_far, 0.0, "205 ms SLO crossed a 210 ms RTT");
        let tight_near: f64 = flows
            .iter()
            .filter(|f| f.service == 0 && f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        assert!((tight_near - 400.0).abs() < 1e-9);
        let loose_to_far: f64 = flows
            .iter()
            .filter(|f| f.service == 1 && f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!(loose_to_far > 0.0, "400 ms SLO may use the far region");
    }

    #[test]
    fn no_feasible_destination_degrades_to_best_effort() {
        // A 50 ms SLO fits nowhere; the demand must still be served (and
        // will violate) rather than dropped.
        let offered = vec![vec![demand(0, 100.0, 50.0)], vec![], vec![]];
        let flows = route_demand(&offered, &[false, true, true], &[10.0, 10.0, 10.0], &rtt3());
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn spill_weights_follow_capacity() {
        // Same distance, 3× capacity ⇒ 3× share.
        let rtt = RttMatrix::from_upper(3, &[100.0, 100.0, 50.0]);
        let offered = vec![vec![demand(0, 400.0, 1000.0)], vec![], vec![]];
        let flows = route_demand(&offered, &[false, true, true], &[0.0, 30.0, 10.0], &rtt);
        let to_1: f64 = flows
            .iter()
            .filter(|f| f.dst == 1)
            .map(|f| f.rate_rps)
            .sum();
        let to_2: f64 = flows
            .iter()
            .filter(|f| f.dst == 2)
            .map(|f| f.rate_rps)
            .sum();
        assert!((to_1 / to_2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_active_region_drops_demand() {
        let flows = route_demand(&offered3(), &[false; 3], &[1.0; 3], &rtt3());
        assert!(flows.is_empty());
    }

    #[test]
    fn route_from_prices_rtt_from_the_true_origin() {
        // Traffic originating at region 0 is rerouted away from an
        // overloaded region 1: the flows must carry region 0's RTTs (not
        // region 1's) and respect region 0's SLO feasibility — a 205 ms
        // SLO cannot land in region 2 (210 ms from its users) even though
        // region 2 is only 140 ms from the overloaded middlebox.
        let flows = route_from(
            0,
            &[demand(0, 100.0, 205.0), demand(1, 100.0, 400.0)],
            &[true, false, true],
            &[10.0, 10.0, 10.0],
            &rtt3(),
        );
        for f in &flows {
            assert_eq!(f.src, 0);
            assert_ne!(f.dst, 0, "route_from must route away from src");
            assert_eq!(f.rtt_ms, rtt3().rtt_ms(0, f.dst));
        }
        // The tight-SLO service found no feasible destination (region 1
        // masked out, region 2 infeasible) and degraded to best-effort on
        // region 2 — but still priced at its true 210 ms.
        let tight: Vec<&Flow> = flows.iter().filter(|f| f.service == 0).collect();
        assert!(tight.iter().all(|f| f.dst == 2 && f.rtt_ms == 210.0));
    }

    #[test]
    fn excess_respill_excludes_the_overloaded_region() {
        let flows = spill_excess(
            1,
            &[demand(0, 90.0, 1000.0)],
            &[true, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.dst != 1 && f.src == 1));
        let total: f64 = flows.iter().map(|f| f.rate_rps).sum();
        assert!((total - 90.0).abs() < 1e-9);
    }

    #[test]
    fn inbound_aggregates_per_service() {
        let flows = route_demand(
            &offered3(),
            &[false, true, true],
            &[32.0, 24.0, 24.0],
            &rtt3(),
        );
        let into_1 = inbound(&flows, 1);
        assert_eq!(into_1.len(), 2);
        // Local 300 + a share of the 500 spilled.
        assert!(into_1[0].1 > 300.0);
        let all: f64 = (0..3)
            .flat_map(|d| inbound(&flows, d))
            .map(|(_, r)| r)
            .sum();
        assert!((all - 1600.0).abs() < 1e-9);
    }
}
