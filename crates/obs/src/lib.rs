//! Observability substrate for the `ParvaGPU` reproduction.
//!
//! Three concerns, one crate, zero cost when unused:
//!
//! * **Structured tracing** ([`TraceSink`], [`TraceEvent`]) — sim-time
//!   spans and instants recorded by the serving event loop, the fleet
//!   orchestrator, and the region federation. The trait carries a
//!   `const ENABLED` flag so the no-op sink ([`NullSink`]) monomorphizes
//!   every instrumentation branch out of the DES hot loop; the recording
//!   sink ([`Recorder`]) collects events exportable as Chrome/Perfetto
//!   `trace_event` JSON ([`chrome_trace_json`]) or JSONL.
//! * **Time-series gauges** ([`MetricsLog`], [`Row`]) — deterministic
//!   per-tick samples (queue depth, in-flight batches, per-service SLO
//!   attainment, GPU busy fraction, `SimCache` hit rate) written as JSONL
//!   or CSV. Rows carry only simulation-derived values, so two runs of
//!   the same seed produce byte-identical files.
//! * **Self-profiling** ([`SelfProfiler`]) — wall/CPU spans around
//!   orchestrator phases (probe fan-out, schedule, plan, merge) built on
//!   [`parva_des::counters`]: each span also records the DES events and
//!   sims attributed to it via scope-safe
//!   [`parva_des::counters::Snapshot::delta`]. Host-clock readings are
//!   inherently non-deterministic, so the profile is a *separate*
//!   artifact, never mixed into the byte-identical trace/metrics files.
//!
//! Everything here observes; nothing steers. Instrumented and
//! uninstrumented runs of any layer produce identical reports — the
//! serving proptests pin that against the frozen reference simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs, clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::module_name_repetitions,
    clippy::missing_panics_doc
)]

pub mod analyze;
mod chrome;
mod metrics;
mod profile;
mod recorder;
mod stream;
mod trace;

pub use chrome::{chrome_trace_json, event_json, trace_jsonl};
pub use metrics::{MetricsLog, Row};
pub use profile::{PhaseStat, ProfToken, SelfProfiler};
pub use recorder::Recorder;
pub use stream::{read_concat_shards, StreamConfig, StreamSink, StreamStats, TailFollower};
pub use trace::{ArgValue, Phase, TraceEvent, TraceSink};

/// Track-group ("pid") of serving-layer events in exported traces.
pub const PID_SERVE: u32 = 1;
/// Track-group ("pid") of fleet-orchestrator events in exported traces.
pub const PID_FLEET: u32 = 2;
/// Track-group ("pid") of region-federation events in exported traces.
pub const PID_REGION: u32 = 3;

/// Display names for the track groups, used as Chrome `process_name`
/// metadata so Perfetto labels the three layers.
#[must_use]
pub fn pid_name(pid: u32) -> &'static str {
    match pid {
        PID_SERVE => "serve",
        PID_FLEET => "fleet",
        PID_REGION => "region",
        _ => "parva",
    }
}

/// Display names for the tracks ("tid") within a layer, used as Chrome
/// `thread_name` metadata: serve tids are server indices, fleet tids are
/// chaos intervals (0 = baseline), region tids are region indices with
/// `u32::MAX` standing for the federation aggregate.
#[must_use]
pub fn tid_name(pid: u32, tid: u32) -> String {
    match pid {
        PID_SERVE => format!("server {tid}"),
        PID_FLEET => {
            if tid == 0 {
                "baseline".to_string()
            } else {
                format!("interval {tid}")
            }
        }
        PID_REGION => {
            if tid == u32::MAX {
                "federation".to_string()
            } else {
                format!("region {tid}")
            }
        }
        _ => format!("track {tid}"),
    }
}

/// The no-op sink: `ENABLED = false` lets the optimizer delete every
/// `if S::ENABLED { … }` block, so the untraced hot path is the same
/// machine code as before instrumentation existed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn sample(&mut self, _row: Row) {}
}

/// Canonical float rendering shared by every exporter: Rust's shortest
/// round-trip `Display` (deterministic for a given value), with
/// non-finite values clamped to `0` so the output is always valid JSON.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a fractional part
        // ("3"); keep them unmistakably numeric-but-real in JSON ("3.0")
        // so readers that sniff types stay stable.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// Escape a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_is_canonical_json() {
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(-2.25), "-2.25");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
        // Round-trips through a strict parser (shortest-round-trip
        // Display guarantees exact bit equality, so strict compare is
        // the point of the test).
        #[allow(clippy::float_cmp)]
        {
            assert!(fmt_f64(0.1).parse::<f64>().unwrap() == 0.1);
        }
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!<NullSink as TraceSink>::ENABLED) };
        let mut s = NullSink;
        assert_eq!(s.next_sample_us(), u64::MAX);
        s.emit(TraceEvent::instant("x", "cat", 0));
        s.sample(Row::new());
    }

    #[test]
    fn pid_names_cover_all_layers() {
        assert_eq!(pid_name(PID_SERVE), "serve");
        assert_eq!(pid_name(PID_FLEET), "fleet");
        assert_eq!(pid_name(PID_REGION), "region");
        assert_eq!(pid_name(99), "parva");
    }

    #[test]
    fn tid_names_label_tracks_per_layer() {
        assert_eq!(tid_name(PID_SERVE, 3), "server 3");
        assert_eq!(tid_name(PID_FLEET, 0), "baseline");
        assert_eq!(tid_name(PID_FLEET, 2), "interval 2");
        assert_eq!(tid_name(PID_REGION, 1), "region 1");
        assert_eq!(tid_name(PID_REGION, u32::MAX), "federation");
        assert_eq!(tid_name(99, 7), "track 7");
    }
}
