//! Offline trace analytics: parse exported traces back in and recompute
//! the numbers the simulation reported.
//!
//! This is the read side of the observability loop. The write side
//! ([`crate::Recorder`], [`crate::StreamSink`]) renders spans and gauge
//! rows with byte-stable, shortest-round-trip formatting; this module
//! parses those bytes back into typed events ([`ParsedEvent`],
//! [`GaugeRow`]) and independently re-derives per-service /
//! per-class SLO attainment and latency distributions from the request
//! spans alone ([`recompute_serving`]). Because every float was written
//! shortest-round-trip and parsed back correctly-rounded, the recomputed
//! numbers can be compared against the run's JSON report with **exact**
//! equality — divergence means the trace and the report genuinely
//! disagree, i.e. the instrumentation lies. `parvactl trace audit` gates
//! CI on that comparison.
//!
//! Also here: roll-ups for humans — [`summarize`] (per-phase span
//! breakdowns, top-k slowest requests) and [`diff`] (two runs compared
//! span-count / duration / attainment-wise).

use parva_des::LatencyHistogram;
use serde::Value;

/// One trace event parsed back from an exported trace (Chrome document
/// or JSONL). Metadata rows (`ph: "M"`) are dropped at parse time.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Phase code (`'X'` span, `'i'` instant).
    pub ph: char,
    /// Start, simulation µs.
    pub ts_us: u64,
    /// Duration, simulation µs (0 for instants).
    pub dur_us: u64,
    /// Track group (layer).
    pub pid: u32,
    /// Track within the layer.
    pub tid: u32,
    /// The `args` payload, insertion order.
    pub args: Vec<(String, Value)>,
}

impl ParsedEvent {
    /// Span end, simulation µs (`ts + dur`; equals `ts` for instants).
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.ts_us.saturating_add(self.dur_us)
    }

    /// Look an argument up by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An argument as `u64`, if present and integral.
    #[must_use]
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg(key).and_then(value_u64)
    }

    /// An argument as `f64`, if present and numeric.
    #[must_use]
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        self.arg(key).and_then(value_f64)
    }

    /// An argument as `bool`, if present and boolean.
    #[must_use]
    pub fn arg_bool(&self, key: &str) -> Option<bool> {
        self.arg(key).and_then(|v| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        })
    }

    /// An argument as `&str`, if present and a string.
    #[must_use]
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.arg(key).and_then(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }
}

/// A [`Value`] as `u64` (integers only — floats are never silently
/// truncated).
#[must_use]
pub fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// A [`Value`] as `f64` (any numeric shape).
#[must_use]
pub fn value_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn parse_one_event(v: &Value) -> Result<Option<ParsedEvent>, String> {
    let map = v
        .as_map()
        .ok_or_else(|| format!("trace event is not an object: {v:?}"))?;
    let field = |key: &str| serde::find_field(map, key);
    let ph = match field("ph") {
        Some(Value::Str(s)) => s.chars().next().unwrap_or('?'),
        _ => return Err("trace event without a \"ph\" phase".into()),
    };
    if ph == 'M' {
        return Ok(None); // metadata (process_name / thread_name)
    }
    let name = match field("name") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("trace event without a \"name\"".into()),
    };
    let cat = match field("cat") {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let ts_us = field("ts")
        .and_then(value_u64)
        .ok_or_else(|| format!("event \"{name}\" without an integer \"ts\""))?;
    let dur_us = field("dur").and_then(value_u64).unwrap_or(0);
    let pid = field("pid").and_then(value_u64).unwrap_or(0) as u32;
    let tid = field("tid").and_then(value_u64).unwrap_or(0) as u32;
    let args = match field("args") {
        Some(Value::Map(m)) => m.clone(),
        _ => Vec::new(),
    };
    Ok(Some(ParsedEvent {
        name,
        cat,
        ph,
        ts_us,
        dur_us,
        pid,
        tid,
        args,
    }))
}

/// Parse an exported trace — either the Chrome document
/// (`{"displayTimeUnit":…,"traceEvents":[…]}`) or line-delimited JSON —
/// into typed events, dropping metadata rows.
///
/// # Errors
/// Malformed JSON or events missing required fields.
pub fn parse_trace(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let trimmed = text.trim_start();
    let mut out = Vec::new();
    if trimmed.starts_with("{\"displayTimeUnit\"") || trimmed.starts_with("{\"traceEvents\"") {
        let doc: Value = serde_json::from_str(trimmed).map_err(|e| format!("trace JSON: {e}"))?;
        let map = doc.as_map().ok_or("trace document is not an object")?;
        let events = serde::find_field(map, "traceEvents")
            .and_then(Value::as_seq)
            .ok_or("trace document without a \"traceEvents\" array")?;
        for ev in events {
            if let Some(parsed) = parse_one_event(ev)? {
                out.push(parsed);
            }
        }
    } else {
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
            if let Some(parsed) = parse_one_event(&v)? {
                out.push(parsed);
            }
        }
    }
    Ok(out)
}

/// One gauge row parsed back from a metrics JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRow {
    /// The row's fields, insertion order.
    pub fields: Vec<(String, Value)>,
}

impl GaugeRow {
    /// Look a field up by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A field as `&str`.
    #[must_use]
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// A field as `u64`.
    #[must_use]
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(value_u64)
    }

    /// A field as `f64`.
    #[must_use]
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(value_f64)
    }

    /// A field as `bool`.
    #[must_use]
    pub fn bool_of(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(|v| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        })
    }

    /// The row kind (`"tick"`, `"service"`, `"tenant"`, `"fleet"`,
    /// `"federation"`, `"region"`, `"billing"`), empty when absent.
    #[must_use]
    pub fn kind(&self) -> &str {
        self.str_of("kind").unwrap_or("")
    }
}

/// Parse a metrics JSONL export into gauge rows.
///
/// # Errors
/// Malformed JSON or non-object lines.
pub fn parse_metrics(text: &str) -> Result<Vec<GaugeRow>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("metrics line {}: {e}", i + 1))?;
        let map = v
            .as_map()
            .ok_or_else(|| format!("metrics line {} is not an object", i + 1))?;
        out.push(GaugeRow {
            fields: map.to_vec(),
        });
    }
    Ok(out)
}

/// Per-service serving counters recomputed from request spans alone.
#[derive(Debug, Clone)]
pub struct ServiceRecount {
    /// Service id (the spans' `service` argument).
    pub service_id: u64,
    /// Arrivals inside the measurement window, rejected included.
    pub offered: u64,
    /// In-window arrivals rejected at the tenant admission gate (the
    /// `rejected: true` instants; always 0 without tenant quotas).
    pub rejected: u64,
    /// Requests whose completion landed inside the window.
    pub completed: u64,
    /// In-window completions within the SLO.
    pub completed_within_slo: u64,
    /// In-window latency distribution, rebuilt sample by sample.
    pub latency: LatencyHistogram,
    /// In-window `timeout` instants (resilience policy; 0 without one).
    pub timeouts: u64,
    /// In-window `retry` instants.
    pub retries: u64,
    /// In-window `shed` instants.
    pub shed: u64,
    /// In-window `hedge` instants.
    pub hedges: u64,
    /// In-window `hedge-win` instants.
    pub hedge_wins: u64,
}

impl ServiceRecount {
    /// Request-level SLO attainment — the same formula as the report's
    /// `request_compliance_rate` (in-SLO completions over offered, 1.0
    /// when nothing was offered), so the comparison is apples to apples.
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }
}

/// Per-(service, class) counters recomputed from request spans.
#[derive(Debug, Clone)]
pub struct ClassRecount {
    /// Owning service id.
    pub service_id: u64,
    /// Class index within the service.
    pub class: u64,
    /// Arrivals inside the measurement window.
    pub offered: u64,
    /// In-window completions.
    pub completed: u64,
    /// In-window completions within the SLO.
    pub completed_within_slo: u64,
    /// In-window latency distribution (network term included).
    pub latency: LatencyHistogram,
}

impl ClassRecount {
    /// Request-level SLO attainment of the class (see
    /// [`ServiceRecount::attainment`]).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }
}

/// Per-tenant counters recomputed from tenant-tagged arrivals and request
/// spans. Tenant-free traces (no `tenant` span argument anywhere) produce
/// no rows, mirroring the report's omitted `tenants` rollup.
#[derive(Debug, Clone)]
pub struct TenantRecount {
    /// Tenant id (the events' `tenant` argument; 0 = unbound services).
    pub tenant: u64,
    /// In-window arrivals across the tenant's services, rejected included.
    pub offered: u64,
    /// Arrivals admitted past the quota gate (`offered - rejected`).
    pub admitted: u64,
    /// Arrivals rejected at ingress (the `rejected: true` instants).
    pub rejected: u64,
    /// In-window completions.
    pub completed: u64,
    /// In-window completions within the SLO.
    pub completed_within_slo: u64,
    /// In-window latency distribution merged across the tenant's services.
    pub latency: LatencyHistogram,
}

impl TenantRecount {
    /// Attainment against *offered* load — the report's
    /// `TenantReport::attainment` formula, where rejected requests count
    /// as misses (1.0 when nothing was offered).
    #[must_use]
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            (self.completed_within_slo as f64 / self.offered as f64).min(1.0)
        }
    }
}

/// Serving accounting recomputed from a trace, independent of the
/// simulator: the audit's half of the comparison.
#[derive(Debug, Clone)]
pub struct ServingRecount {
    /// Measurement window start, µs (from the `window` meta instant).
    pub window_start_us: u64,
    /// Measurement window end, µs (exclusive).
    pub window_end_us: u64,
    /// Per-service counters, ordered by service id.
    pub services: Vec<ServiceRecount>,
    /// Per-(service, class) counters, service-major order.
    pub classes: Vec<ClassRecount>,
    /// Per-tenant counters, ordered by tenant id; empty for tenant-free
    /// traces.
    pub tenants: Vec<TenantRecount>,
}

impl ServingRecount {
    /// The recount for one service, if any of its spans were seen.
    #[must_use]
    pub fn service(&self, id: u64) -> Option<&ServiceRecount> {
        self.services.iter().find(|s| s.service_id == id)
    }

    /// The recount for one (service, class) pair.
    #[must_use]
    pub fn class(&self, id: u64, class: u64) -> Option<&ClassRecount> {
        self.classes
            .iter()
            .find(|c| c.service_id == id && c.class == class)
    }

    /// The recount for one tenant, if any tenant-tagged events were seen.
    #[must_use]
    pub fn tenant(&self, id: u64) -> Option<&TenantRecount> {
        self.tenants.iter().find(|t| t.tenant == id)
    }

    /// Offered-weighted overall attainment (the report's
    /// `overall_request_compliance_rate` formula).
    #[must_use]
    pub fn overall_attainment(&self) -> f64 {
        let offered: u64 = self.services.iter().map(|s| s.offered).sum();
        if offered == 0 {
            return 1.0;
        }
        let within: u64 = self
            .services
            .iter()
            .map(|s| s.completed_within_slo)
            .sum::<u64>();
        (within as f64 / offered as f64).min(1.0)
    }
}

/// Find-or-create the recount row for `id`, returning its index.
fn tenant_at(id: u64, tenants: &mut Vec<TenantRecount>) -> usize {
    if let Some(i) = tenants.iter().position(|t| t.tenant == id) {
        return i;
    }
    tenants.push(TenantRecount {
        tenant: id,
        offered: 0,
        admitted: 0,
        rejected: 0,
        completed: 0,
        completed_within_slo: 0,
        latency: LatencyHistogram::new(),
    });
    tenants.len() - 1
}

/// Find-or-create the recount row for `id`, returning its index.
fn service_at(id: u64, services: &mut Vec<ServiceRecount>) -> usize {
    if let Some(i) = services.iter().position(|s| s.service_id == id) {
        return i;
    }
    services.push(ServiceRecount {
        service_id: id,
        offered: 0,
        rejected: 0,
        completed: 0,
        completed_within_slo: 0,
        latency: LatencyHistogram::new(),
        timeouts: 0,
        retries: 0,
        shed: 0,
        hedges: 0,
        hedge_wins: 0,
    });
    services.len() - 1
}

/// Find-or-create the recount row for `(id, class)`, returning its index.
fn class_at(id: u64, class: u64, classes: &mut Vec<ClassRecount>) -> usize {
    if let Some(i) = classes
        .iter()
        .position(|c| c.service_id == id && c.class == class)
    {
        return i;
    }
    classes.push(ClassRecount {
        service_id: id,
        class,
        offered: 0,
        completed: 0,
        completed_within_slo: 0,
        latency: LatencyHistogram::new(),
    });
    classes.len() - 1
}

/// Recompute the serving report's accounting from request spans.
///
/// Replays the exact window discipline of the event loop: `offered`
/// counts `arrival` instants with `ts ∈ [start, end)` (quota-rejected
/// arrivals included — they carry `rejected: true` and count as offered
/// but never complete); `completed` / `completed_within_slo` / latency
/// count `request` spans whose *end* (`ts + dur` — the completion time)
/// lands in the window, regardless of when the request arrived. Events
/// carrying a `tenant` argument additionally aggregate into per-tenant
/// rows, mirroring the report's `tenants` rollup. Latencies are
/// re-recorded through the same [`LatencyHistogram`] the simulator uses,
/// so quantiles compare exactly, not approximately.
///
/// # Errors
/// A trace without the `window` meta instant (not a serve-layer trace).
pub fn recompute_serving(events: &[ParsedEvent]) -> Result<ServingRecount, String> {
    let window = events
        .iter()
        .find(|e| e.name == "window" && e.cat == "meta")
        .ok_or("trace has no \"window\" meta event — not a serve-layer trace")?;
    let start_us = window
        .arg_u64("start_us")
        .ok_or("window event without start_us")?;
    let end_us = window
        .arg_u64("end_us")
        .ok_or("window event without end_us")?;

    let mut services: Vec<ServiceRecount> = Vec::new();
    let mut classes: Vec<ClassRecount> = Vec::new();
    let mut tenants: Vec<TenantRecount> = Vec::new();

    for ev in events {
        // Resilience instants (timeouts, retries, sheds, hedges) recount
        // against the report's per-service counters with the engine's
        // window gate: the counters only increment at `ts ∈ [start, end)`.
        if ev.cat == "resilience" && ev.ph == 'i' {
            if ev.ts_us < start_us || ev.ts_us >= end_us {
                continue;
            }
            let id = ev
                .arg_u64("service")
                .ok_or_else(|| format!("{} at ts={} missing service", ev.name, ev.ts_us))?;
            let si = service_at(id, &mut services);
            match ev.name.as_str() {
                "timeout" => services[si].timeouts += 1,
                "retry" => services[si].retries += 1,
                "shed" => services[si].shed += 1,
                "hedge" => services[si].hedges += 1,
                "hedge-win" => services[si].hedge_wins += 1,
                _ => {}
            }
            continue;
        }
        if ev.cat != "request" {
            continue;
        }
        if ev.name == "arrival" && ev.ph == 'i' {
            if ev.ts_us < start_us || ev.ts_us >= end_us {
                continue;
            }
            let (Some(id), Some(class)) = (ev.arg_u64("service"), ev.arg_u64("class")) else {
                return Err(format!("arrival at ts={} missing service/class", ev.ts_us));
            };
            let si = service_at(id, &mut services);
            services[si].offered += 1;
            let ci = class_at(id, class, &mut classes);
            classes[ci].offered += 1;
            if ev.arg_bool("rejected") == Some(true) {
                services[si].rejected += 1;
            }
            if let Some(tid) = ev.arg_u64("tenant") {
                let ti = tenant_at(tid, &mut tenants);
                tenants[ti].offered += 1;
                if ev.arg_bool("rejected") == Some(true) {
                    tenants[ti].rejected += 1;
                } else {
                    tenants[ti].admitted += 1;
                }
            }
        } else if ev.name == "request" && ev.ph == 'X' {
            // The completion time is the span's end; the report counts a
            // request in the window its completion lands in.
            let done_us = ev.end_us();
            if done_us < start_us || done_us >= end_us {
                continue;
            }
            let (Some(id), Some(class)) = (ev.arg_u64("service"), ev.arg_u64("class")) else {
                return Err(format!("request at ts={} missing service/class", ev.ts_us));
            };
            let lat_ms = ev
                .arg_f64("latency_ms")
                .ok_or_else(|| format!("request at ts={} missing latency_ms", ev.ts_us))?;
            let ok = ev
                .arg_bool("ok")
                .ok_or_else(|| format!("request at ts={} missing ok", ev.ts_us))?;
            let si = service_at(id, &mut services);
            services[si].completed += 1;
            services[si].completed_within_slo += u64::from(ok);
            services[si].latency.record_ms(lat_ms);
            let ci = class_at(id, class, &mut classes);
            classes[ci].completed += 1;
            classes[ci].completed_within_slo += u64::from(ok);
            classes[ci].latency.record_ms(lat_ms);
            if let Some(tid) = ev.arg_u64("tenant") {
                let ti = tenant_at(tid, &mut tenants);
                tenants[ti].completed += 1;
                tenants[ti].completed_within_slo += u64::from(ok);
                tenants[ti].latency.record_ms(lat_ms);
            }
        }
    }
    services.sort_by_key(|s| s.service_id);
    classes.sort_by_key(|c| (c.service_id, c.class));
    tenants.sort_by_key(|t| t.tenant);
    Ok(ServingRecount {
        window_start_us: start_us,
        window_end_us: end_us,
        services,
        classes,
        tenants,
    })
}

/// Aggregate over all spans sharing one `(cat, name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Summed duration, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// Count of instants sharing one `(cat, name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantStat {
    /// Category.
    pub cat: String,
    /// Instant name.
    pub name: String,
    /// Number of instants.
    pub count: u64,
}

/// One of the slowest request spans in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequest {
    /// Service id.
    pub service: u64,
    /// Ingress class.
    pub class: u64,
    /// Serving track (server index).
    pub server: u32,
    /// Arrival time, µs.
    pub ts_us: u64,
    /// End-to-end latency, ms (network term included).
    pub latency_ms: f64,
    /// Whether it met the SLO.
    pub ok: bool,
}

/// The roll-up `parvactl trace summary` renders.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Total parsed events (metadata excluded).
    pub events: u64,
    /// Span aggregates, `(cat, name)` order — the per-phase breakdown
    /// (`batch/batch-form`, `batch/execute`, `request/request`,
    /// `recovery/…`).
    pub spans: Vec<SpanStat>,
    /// Instant counts, `(cat, name)` order.
    pub instants: Vec<InstantStat>,
    /// Top-k slowest request spans, slowest first.
    pub slowest: Vec<SlowRequest>,
}

/// Roll a parsed trace up into per-phase aggregates and the top-`k`
/// slowest requests.
#[must_use]
pub fn summarize(events: &[ParsedEvent], top_k: usize) -> TraceSummary {
    let mut spans: Vec<SpanStat> = Vec::new();
    let mut instants: Vec<InstantStat> = Vec::new();
    let mut requests: Vec<SlowRequest> = Vec::new();
    for ev in events {
        if ev.ph == 'X' {
            match spans
                .iter_mut()
                .find(|s| s.cat == ev.cat && s.name == ev.name)
            {
                Some(s) => {
                    s.count += 1;
                    s.total_us += ev.dur_us;
                    s.max_us = s.max_us.max(ev.dur_us);
                }
                None => spans.push(SpanStat {
                    cat: ev.cat.clone(),
                    name: ev.name.clone(),
                    count: 1,
                    total_us: ev.dur_us,
                    max_us: ev.dur_us,
                }),
            }
            if ev.name == "request" && ev.cat == "request" {
                if let Some(latency_ms) = ev.arg_f64("latency_ms") {
                    requests.push(SlowRequest {
                        service: ev.arg_u64("service").unwrap_or(0),
                        class: ev.arg_u64("class").unwrap_or(0),
                        server: ev.tid,
                        ts_us: ev.ts_us,
                        latency_ms,
                        ok: ev.arg_bool("ok").unwrap_or(false),
                    });
                }
            }
        } else {
            match instants
                .iter_mut()
                .find(|s| s.cat == ev.cat && s.name == ev.name)
            {
                Some(s) => s.count += 1,
                None => instants.push(InstantStat {
                    cat: ev.cat.clone(),
                    name: ev.name.clone(),
                    count: 1,
                }),
            }
        }
    }
    spans.sort_by(|a, b| (&a.cat, &a.name).cmp(&(&b.cat, &b.name)));
    instants.sort_by(|a, b| (&a.cat, &a.name).cmp(&(&b.cat, &b.name)));
    // Slowest first; arrival time breaks ties deterministically.
    requests.sort_by(|a, b| {
        b.latency_ms
            .partial_cmp(&a.latency_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.ts_us.cmp(&b.ts_us))
    });
    requests.truncate(top_k);
    TraceSummary {
        events: events.len() as u64,
        spans,
        instants,
        slowest: requests,
    }
}

impl TraceSummary {
    /// Render the summary as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{} event(s)\n", self.events);
        if !self.spans.is_empty() {
            out.push_str("\nspans (cat/name, count, total ms, mean ms, max ms):\n");
            for s in &self.spans {
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total_us as f64 / s.count as f64 / 1000.0
                };
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8}  {:>12.1}  {:>9.3}  {:>9.1}",
                    format!("{}/{}", s.cat, s.name),
                    s.count,
                    s.total_us as f64 / 1000.0,
                    mean,
                    s.max_us as f64 / 1000.0,
                );
            }
        }
        if !self.instants.is_empty() {
            out.push_str("\ninstants (cat/name, count):\n");
            for s in &self.instants {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8}",
                    format!("{}/{}", s.cat, s.name),
                    s.count
                );
            }
        }
        if !self.slowest.is_empty() {
            out.push_str("\nslowest requests (latency ms, service, class, server, arrival ms):\n");
            for r in &self.slowest {
                let _ = writeln!(
                    out,
                    "  {:>9.2}  svc {:<3} cls {:<2} srv {:<3} @{:>10.1}  {}",
                    r.latency_ms,
                    r.service,
                    r.class,
                    r.server,
                    r.ts_us as f64 / 1000.0,
                    if r.ok { "ok" } else { "SLO MISS" },
                );
            }
        }
        out
    }
}

/// One `(cat, name)` compared across two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Category.
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Count in trace A (spans + instants).
    pub count_a: u64,
    /// Count in trace B.
    pub count_b: u64,
    /// Summed span duration in A, µs.
    pub total_us_a: u64,
    /// Summed span duration in B, µs.
    pub total_us_b: u64,
}

/// The comparison `parvactl trace diff` renders.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Events in trace A.
    pub events_a: u64,
    /// Events in trace B.
    pub events_b: u64,
    /// Per-`(cat, name)` rows, every name seen in either trace.
    pub rows: Vec<DiffRow>,
    /// Overall request attainment of A (serve traces only).
    pub attainment_a: Option<f64>,
    /// Overall request attainment of B (serve traces only).
    pub attainment_b: Option<f64>,
}

/// Compare two parsed traces: span/instant counts and summed durations
/// per `(cat, name)`, plus overall SLO attainment when both are
/// serve-layer traces.
#[must_use]
pub fn diff(a: &[ParsedEvent], b: &[ParsedEvent]) -> TraceDiff {
    let mut rows: Vec<DiffRow> = Vec::new();
    let tally = |events: &[ParsedEvent], rows: &mut Vec<DiffRow>, second: bool| {
        for ev in events {
            let at = rows
                .iter()
                .position(|r| r.cat == ev.cat && r.name == ev.name)
                .unwrap_or_else(|| {
                    rows.push(DiffRow {
                        cat: ev.cat.clone(),
                        name: ev.name.clone(),
                        count_a: 0,
                        count_b: 0,
                        total_us_a: 0,
                        total_us_b: 0,
                    });
                    rows.len() - 1
                });
            let row = &mut rows[at];
            if second {
                row.count_b += 1;
                row.total_us_b += ev.dur_us;
            } else {
                row.count_a += 1;
                row.total_us_a += ev.dur_us;
            }
        }
    };
    tally(a, &mut rows, false);
    tally(b, &mut rows, true);
    rows.sort_by(|x, y| (&x.cat, &x.name).cmp(&(&y.cat, &y.name)));
    TraceDiff {
        events_a: a.len() as u64,
        events_b: b.len() as u64,
        rows,
        attainment_a: recompute_serving(a).ok().map(|r| r.overall_attainment()),
        attainment_b: recompute_serving(b).ok().map(|r| r.overall_attainment()),
    }
}

impl TraceDiff {
    /// Render the diff as an aligned text table (rows that differ are
    /// marked with `*`).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("events: {} vs {}\n", self.events_a, self.events_b);
        if let (Some(a), Some(b)) = (self.attainment_a, self.attainment_b) {
            let _ = writeln!(
                out,
                "overall attainment: {:.4} vs {:.4} (delta {:+.4})",
                a,
                b,
                b - a
            );
        }
        out.push_str("\ncat/name                     count A  count B   total A ms   total B ms\n");
        for r in &self.rows {
            let marker = if r.count_a != r.count_b || r.total_us_a != r.total_us_b {
                '*'
            } else {
                ' '
            };
            let _ = writeln!(
                out,
                "{marker} {:<26} {:>8} {:>8} {:>12.1} {:>12.1}",
                format!("{}/{}", r.cat, r.name),
                r.count_a,
                r.count_b,
                r.total_us_a as f64 / 1000.0,
                r.total_us_b as f64 / 1000.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_jsonl, TraceEvent, PID_SERVE};

    /// A tiny synthetic serve trace: window [1000, 5000), two services.
    fn synthetic_trace() -> Vec<TraceEvent> {
        let req = |svc: u64, cls: u64, ts: u64, dur: u64, lat: f64, ok: bool| {
            TraceEvent::span("request", "request", ts, dur)
                .pid(PID_SERVE)
                .tid(0)
                .arg_u64("service", svc)
                .arg_u64("class", cls)
                .arg_f64("latency_ms", lat)
                .arg_bool("ok", ok)
        };
        let arr = |svc: u64, cls: u64, ts: u64| {
            TraceEvent::instant("arrival", "request", ts)
                .pid(PID_SERVE)
                .arg_u64("service", svc)
                .arg_u64("class", cls)
        };
        vec![
            TraceEvent::instant("window", "meta", 0)
                .pid(PID_SERVE)
                .arg_u64("start_us", 1000)
                .arg_u64("end_us", 5000),
            arr(0, 0, 500),  // before the window: not offered
            arr(0, 0, 1200), // offered
            arr(0, 0, 2000), // offered
            arr(1, 0, 3000), // offered
            arr(1, 0, 5000), // at end: not offered
            // Arrived pre-window, completed in-window: counted.
            req(0, 0, 500, 800, 1.3, true),
            req(0, 0, 1200, 500, 0.5, true),
            // Completed at exactly end: excluded.
            req(0, 0, 2000, 3000, 3.0, false),
            req(1, 0, 3000, 1500, 9.5, false),
        ]
    }

    fn parsed() -> Vec<ParsedEvent> {
        parse_trace(&trace_jsonl(&synthetic_trace())).unwrap()
    }

    #[test]
    fn parse_trace_reads_both_formats() {
        let evs = synthetic_trace();
        let from_jsonl = parse_trace(&trace_jsonl(&evs)).unwrap();
        let from_doc = parse_trace(&crate::chrome_trace_json(&evs)).unwrap();
        // The document adds metadata rows; the parser drops them, so both
        // roads parse to the same events.
        assert_eq!(from_jsonl, from_doc);
        assert_eq!(from_jsonl.len(), evs.len());
        assert_eq!(from_jsonl[0].name, "window");
        assert_eq!(from_jsonl[0].arg_u64("end_us"), Some(5000));
        let req = from_jsonl.iter().find(|e| e.name == "request").unwrap();
        assert_eq!(req.ph, 'X');
        assert_eq!(req.arg_f64("latency_ms"), Some(1.3));
        assert_eq!(req.arg_bool("ok"), Some(true));
        assert_eq!(req.end_us(), 1300);
    }

    #[test]
    fn recompute_replays_the_window_discipline() {
        let r = recompute_serving(&parsed()).unwrap();
        assert_eq!(r.window_start_us, 1000);
        assert_eq!(r.window_end_us, 5000);
        let s0 = r.service(0).unwrap();
        // Arrivals at 1200 and 2000 count; 500 is pre-window.
        assert_eq!(s0.offered, 2);
        // Completions at 1300 and 1700 count; the span ending exactly at
        // 5000 is out of the half-open window.
        assert_eq!(s0.completed, 2);
        assert_eq!(s0.completed_within_slo, 2);
        assert_eq!(s0.latency.count(), 2);
        let s1 = r.service(1).unwrap();
        assert_eq!(s1.offered, 1);
        assert_eq!(s1.completed, 1);
        assert_eq!(s1.completed_within_slo, 0);
        assert!((s1.attainment() - 0.0).abs() < 1e-12);
        // Class rows mirror the service rows here (single class).
        assert_eq!(r.class(0, 0).unwrap().completed, 2);
        // Overall: 2 within / 3 offered.
        assert!((r.overall_attainment() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recompute_aggregates_tenants() {
        // Tenant-free traces stay tenant-free: no phantom rows.
        assert!(recompute_serving(&parsed()).unwrap().tenants.is_empty());

        // A tenanted window: tenant 1 offers three (one over quota),
        // tenant 2 offers one that misses its SLO.
        let arr = |svc: u64, tenant: u64, ts: u64| {
            TraceEvent::instant("arrival", "request", ts)
                .pid(PID_SERVE)
                .arg_u64("service", svc)
                .arg_u64("class", 0)
                .arg_u64("tenant", tenant)
        };
        let req = |svc: u64, tenant: u64, ts: u64, dur: u64, lat: f64, ok: bool| {
            TraceEvent::span("request", "request", ts, dur)
                .pid(PID_SERVE)
                .tid(0)
                .arg_u64("service", svc)
                .arg_u64("class", 0)
                .arg_f64("latency_ms", lat)
                .arg_bool("ok", ok)
                .arg_u64("tenant", tenant)
        };
        let events = vec![
            TraceEvent::instant("window", "meta", 0)
                .pid(PID_SERVE)
                .arg_u64("start_us", 1000)
                .arg_u64("end_us", 5000),
            arr(0, 1, 1200),
            arr(0, 1, 1500),
            arr(0, 1, 1600).arg_bool("rejected", true),
            arr(1, 2, 2000),
            req(0, 1, 1200, 300, 2.0, true),
            req(1, 2, 2000, 500, 8.0, false),
        ];
        let r = recompute_serving(&parse_trace(&trace_jsonl(&events)).unwrap()).unwrap();
        assert_eq!(r.tenants.len(), 2);
        let t1 = r.tenant(1).unwrap();
        assert_eq!(
            (
                t1.offered,
                t1.admitted,
                t1.rejected,
                t1.completed,
                t1.completed_within_slo
            ),
            (3, 2, 1, 1, 1)
        );
        assert!((t1.attainment() - 1.0 / 3.0).abs() < 1e-12);
        let t2 = r.tenant(2).unwrap();
        assert_eq!(
            (t2.offered, t2.rejected, t2.completed_within_slo),
            (1, 0, 0)
        );
        assert_eq!(t2.latency.count(), 1);
        // The rejected arrival still counts in the service's offered load,
        // and is attributed to the service's own rejection counter too.
        assert_eq!(r.service(0).unwrap().offered, 3);
        assert_eq!(r.service(0).unwrap().rejected, 1);
        assert_eq!(r.service(1).unwrap().rejected, 0);
        assert!(r.tenant(3).is_none());
    }

    #[test]
    fn recompute_requires_the_window_event() {
        let evs: Vec<ParsedEvent> = parsed()
            .into_iter()
            .filter(|e| e.name != "window")
            .collect();
        assert!(recompute_serving(&evs).is_err());
    }

    #[test]
    fn summary_aggregates_and_ranks() {
        let s = summarize(&parsed(), 2);
        assert_eq!(s.events, 10);
        let req = s
            .spans
            .iter()
            .find(|x| x.name == "request")
            .expect("request span aggregate");
        assert_eq!(req.count, 4);
        assert_eq!(req.max_us, 3000);
        let arr = s
            .instants
            .iter()
            .find(|x| x.name == "arrival")
            .expect("arrival instant count");
        assert_eq!(arr.count, 5);
        // Top-2 slowest by latency: 9.5 then 3.0.
        assert_eq!(s.slowest.len(), 2);
        assert!((s.slowest[0].latency_ms - 9.5).abs() < 1e-12);
        assert!(!s.slowest[0].ok);
        let text = s.render();
        assert!(text.contains("request/request"));
        assert!(text.contains("SLO MISS"));
    }

    #[test]
    fn diff_reports_count_and_attainment_deltas() {
        let a = parsed();
        // Drop service 1's in-window traffic (its arrival and its SLO-miss
        // completion) from B.
        let b: Vec<ParsedEvent> = a
            .iter()
            .filter(|e| !(e.cat == "request" && e.ts_us == 3000))
            .cloned()
            .collect();
        let d = diff(&a, &b);
        assert_eq!(d.events_a, 10);
        assert_eq!(d.events_b, 8);
        let row = d.rows.iter().find(|r| r.name == "request").unwrap();
        assert_eq!(row.count_a, 4);
        assert_eq!(row.count_b, 3);
        // B lost its only SLO miss, so attainment rises.
        assert!(d.attainment_b.unwrap() > d.attainment_a.unwrap());
        assert!(d.render().contains("overall attainment"));
    }

    #[test]
    fn parse_metrics_reads_rows() {
        let rows = parse_metrics(
            "{\"run\":\"demo@7\",\"kind\":\"tick\",\"offered\":12,\"slo_attainment\":0.75}\n\
             {\"kind\":\"service\",\"service\":3}\n",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind(), "tick");
        assert_eq!(rows[0].str_of("run"), Some("demo@7"));
        assert_eq!(rows[0].u64_of("offered"), Some(12));
        assert!((rows[0].f64_of("slo_attainment").unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(rows[1].u64_of("service"), Some(3));
        assert!(parse_metrics("not json\n").is_err());
    }
}
