//! Exporters: Chrome/Perfetto `trace_event` JSON and line-delimited
//! JSON.
//!
//! Both renderings are hand-built strings with fixed field order, so a
//! given event list always produces byte-identical output. Timestamps
//! and durations are integer simulation microseconds — exactly the unit
//! the Chrome trace format expects for `ts`/`dur`.

use crate::trace::TraceEvent;

fn write_args(out: &mut String, ev: &TraceEvent) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&crate::json_escape(k));
        out.push_str("\":");
        out.push_str(&v.to_json());
    }
    out.push('}');
}

/// Render one event as its canonical JSON object — exactly the fragment
/// [`chrome_trace_json`] and [`trace_jsonl`] embed, so a streaming sink
/// writing these lines is byte-equivalent to the batch exporters.
#[must_use]
pub fn event_json(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    write_event(&mut out, ev);
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":\"");
    out.push_str(&crate::json_escape(ev.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(&crate::json_escape(ev.cat));
    out.push_str("\",\"ph\":\"");
    out.push(ev.ph.code());
    out.push_str("\",\"ts\":");
    out.push_str(&ev.ts_us.to_string());
    if ev.ph == crate::Phase::Complete {
        out.push_str(",\"dur\":");
        out.push_str(&ev.dur_us.to_string());
    } else {
        // Instant events need a scope; "t" (thread) keeps them on their
        // track instead of full-height global markers.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&ev.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&ev.tid.to_string());
    out.push(',');
    write_args(out, ev);
    out.push('}');
}

/// Render a full Chrome `trace_event` JSON document:
/// `{"displayTimeUnit":"ms","traceEvents":[…]}` with `process_name`
/// metadata rows labeling each layer's track group and `thread_name`
/// rows labeling every track within it (server index, fleet interval,
/// region), so Perfetto shows named tracks instead of bare pids/tids.
/// Loadable directly in Perfetto / `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut pids: Vec<u32> = Vec::new();
    let mut tracks: Vec<(u32, u32)> = Vec::new();
    for ev in events {
        if !pids.contains(&ev.pid) {
            pids.push(ev.pid);
        }
        if !tracks.contains(&(ev.pid, ev.tid)) {
            tracks.push((ev.pid, ev.tid));
        }
    }
    pids.sort_unstable();
    tracks.sort_unstable();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for pid in pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            crate::json_escape(crate::pid_name(pid))
        );
    }
    for (pid, tid) in tracks {
        out.push(',');
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            crate::json_escape(&crate::tid_name(pid, tid))
        );
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// Render events as line-delimited JSON, one event object per line
/// (trailing newline when non-empty). Same field order as the Chrome
/// export, minus the document wrapper and metadata.
#[must_use]
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        write_event(&mut out, ev);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceEvent, PID_FLEET, PID_SERVE};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::span("execute", "batch", 100, 50)
                .pid(PID_SERVE)
                .tid(2)
                .arg_u64("size", 4),
            TraceEvent::instant("probe", "decision", 0)
                .pid(PID_FLEET)
                .arg_str("kind", "miss"),
        ]
    }

    #[test]
    fn chrome_document_shape() {
        let doc = chrome_trace_json(&sample_events());
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        // Metadata first, one per pid, in pid order.
        assert!(doc.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"serve\"}}"
        ));
        assert!(doc.contains("\"args\":{\"name\":\"fleet\"}"));
        // The complete event carries ts+dur; the instant carries a scope.
        assert!(doc.contains(
            "{\"name\":\"execute\",\"cat\":\"batch\",\"ph\":\"X\",\"ts\":100,\
             \"dur\":50,\"pid\":1,\"tid\":2,\"args\":{\"size\":4}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"probe\",\"cat\":\"decision\",\"ph\":\"i\",\"ts\":0,\
             \"s\":\"t\",\"pid\":2,\"tid\":0,\"args\":{\"kind\":\"miss\"}}"
        ));
    }

    #[test]
    fn chrome_metadata_names_tracks() {
        let doc = chrome_trace_json(&sample_events());
        // One thread_name row per distinct (pid, tid), in sorted order,
        // labeled via `tid_name`.
        assert!(doc.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\
             \"args\":{\"name\":\"server 2\"}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"baseline\"}}"
        ));
        // Metadata precedes the first real event.
        let meta = doc.find("\"thread_name\"").unwrap();
        let first_ev = doc.find("\"execute\"").unwrap();
        assert!(meta < first_ev);
    }

    #[test]
    fn event_json_matches_jsonl_lines() {
        let evs = sample_events();
        let jsonl = trace_jsonl(&evs);
        for (line, ev) in jsonl.lines().zip(&evs) {
            assert_eq!(line, event_json(ev));
        }
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let evs = sample_events();
        assert_eq!(chrome_trace_json(&evs), chrome_trace_json(&evs));
    }

    #[test]
    fn jsonl_is_one_event_per_line() {
        let txt = trace_jsonl(&sample_events());
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"execute\""));
        assert!(lines[1].starts_with("{\"name\":\"probe\""));
        assert!(txt.ends_with('\n'));
        assert_eq!(trace_jsonl(&[]), "");
    }

    #[test]
    fn empty_trace_still_renders_a_document() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
