//! Deterministic time-series gauges: ordered key/value rows rendered as
//! JSONL or CSV.
//!
//! A [`Row`] preserves insertion order, so exports are byte-stable: the
//! same run always produces the same file. Rows may be heterogeneous
//! (serve ticks next to fleet intervals); the CSV exporter uses the
//! union of keys in first-appearance order and leaves absent cells
//! empty.

use crate::trace::ArgValue;

/// One gauge sample: an ordered list of `(key, value)` fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Row {
    fields: Vec<(&'static str, ArgValue)>,
}

impl Row {
    /// An empty row.
    #[must_use]
    pub fn new() -> Self {
        Row { fields: Vec::new() }
    }

    /// Append an unsigned-integer field.
    #[must_use]
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, ArgValue::U64(v)));
        self
    }

    /// Append a float field.
    #[must_use]
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, ArgValue::F64(v)));
        self
    }

    /// Append a string field.
    #[must_use]
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, ArgValue::Str(v.into())));
        self
    }

    /// Append a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, ArgValue::Bool(v)));
        self
    }

    /// Prefix the row with a stable run identifier (`"run"` column) so
    /// rows from concatenated multi-run streams (sweeps, shard
    /// directories) stay attributable. Sinks stamp this at sample time,
    /// which keeps the batch and streaming exports byte-equivalent.
    #[must_use]
    pub fn with_run(mut self, run_id: &str) -> Self {
        self.fields
            .insert(0, ("run", ArgValue::Str(run_id.to_string())));
        self
    }

    /// The ordered fields.
    #[must_use]
    pub fn fields(&self) -> &[(&'static str, ArgValue)] {
        &self.fields
    }

    /// Look up a field by key (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&ArgValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Render as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json_escape(k));
            out.push_str("\":");
            out.push_str(&v.to_json());
        }
        out.push('}');
        out
    }
}

/// An append-only log of gauge rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsLog {
    rows: Vec<Row>,
}

impl MetricsLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        MetricsLog::default()
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// One JSON object per line, trailing newline when non-empty.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }

    /// CSV with a header of all keys in first-appearance order; cells
    /// absent from a row render empty.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut keys: Vec<&'static str> = Vec::new();
        for row in &self.rows {
            for (k, _) in row.fields() {
                if !keys.contains(k) {
                    keys.push(k);
                }
            }
        }
        let mut out = keys.join(",");
        out.push('\n');
        for row in &self.rows {
            for (i, key) in keys.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(v) = row.get(key) {
                    out.push_str(&v.to_csv());
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_preserves_field_order() {
        let mut log = MetricsLog::new();
        log.push(Row::new().f64("t_ms", 100.0).u64("queue_depth", 3));
        log.push(Row::new().f64("t_ms", 200.0).u64("queue_depth", 0));
        assert_eq!(
            log.to_jsonl(),
            "{\"t_ms\":100.0,\"queue_depth\":3}\n{\"t_ms\":200.0,\"queue_depth\":0}\n"
        );
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn csv_unions_heterogeneous_rows() {
        let mut log = MetricsLog::new();
        log.push(Row::new().u64("a", 1).u64("b", 2));
        log.push(Row::new().u64("a", 3).str("c", "x"));
        assert_eq!(log.to_csv(), "a,b,c\n1,2,\n3,,x\n");
    }

    #[test]
    fn empty_log_renders_empty_jsonl_and_bare_csv_header() {
        let log = MetricsLog::new();
        assert_eq!(log.to_jsonl(), "");
        assert_eq!(log.to_csv(), "\n");
        assert!(log.is_empty());
    }

    #[test]
    fn with_run_prefixes_the_row() {
        let row = Row::new()
            .str("kind", "tick")
            .u64("n", 1)
            .with_run("demo@7");
        assert_eq!(
            row.to_json(),
            "{\"run\":\"demo@7\",\"kind\":\"tick\",\"n\":1}"
        );
        let mut log = MetricsLog::new();
        log.push(row);
        assert!(log.to_csv().starts_with("run,kind,n\n"));
    }

    #[test]
    fn rows_render_every_value_kind() {
        let row = Row::new()
            .f64("t_ms", 0.5)
            .u64("n", 7)
            .str("svc", "bert-qa")
            .bool("ok", true);
        assert_eq!(
            row.to_json(),
            "{\"t_ms\":0.5,\"n\":7,\"svc\":\"bert-qa\",\"ok\":true}"
        );
        assert!(matches!(row.get("n"), Some(ArgValue::U64(7))));
        assert!(row.get("missing").is_none());
    }
}
