//! The trace event model and the sink trait the simulation layers
//! instrument against.

use crate::Row;

/// Chrome `trace_event` phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`): `[ts_us, ts_us + dur_us)`.
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

impl Phase {
    /// The single-character phase code used by the Chrome trace format.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            Phase::Complete => 'X',
            Phase::Instant => 'i',
        }
    }
}

/// One typed argument value attached to a trace event or a metrics row.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float — rendered via [`crate::fmt_f64`] for byte-stable output.
    F64(f64),
    /// String — JSON-escaped on export.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl ArgValue {
    /// Render as a JSON value fragment.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) => crate::fmt_f64(*v),
            ArgValue::Str(s) => format!("\"{}\"", crate::json_escape(s)),
            ArgValue::Bool(b) => b.to_string(),
        }
    }

    /// Render as a bare CSV cell (no quoting needed for our field set;
    /// strings containing commas/quotes are quoted per RFC 4180).
    #[must_use]
    pub fn to_csv(&self) -> String {
        match self {
            ArgValue::Str(s) if s.contains(',') || s.contains('"') || s.contains('\n') => {
                format!("\"{}\"", s.replace('"', "\"\""))
            }
            ArgValue::Str(s) => s.clone(),
            other => other.to_json(),
        }
    }
}

/// One structured trace event in simulation time.
///
/// `ts_us`/`dur_us` are integer *simulation* microseconds — never host
/// clocks — which is what makes exported traces byte-identical across
/// runs. `pid` groups events by layer (see [`crate::pid_name`]); `tid`
/// is the track within the layer (server index, node id, region index…).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span label in Perfetto).
    pub name: &'static str,
    /// Category, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Span or instant.
    pub ph: Phase,
    /// Start time, simulation microseconds.
    pub ts_us: u64,
    /// Duration, simulation microseconds (0 for instants).
    pub dur_us: u64,
    /// Track group — one per simulation layer.
    pub pid: u32,
    /// Track within the group.
    pub tid: u32,
    /// Typed key/value payload (`args` in the Chrome format).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete span covering `[ts_us, ts_us + dur_us)`.
    #[must_use]
    pub fn span(name: &'static str, cat: &'static str, ts_us: u64, dur_us: u64) -> Self {
        TraceEvent {
            name,
            cat,
            ph: Phase::Complete,
            ts_us,
            dur_us,
            pid: crate::PID_SERVE,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A point-in-time marker.
    #[must_use]
    pub fn instant(name: &'static str, cat: &'static str, ts_us: u64) -> Self {
        TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_us,
            dur_us: 0,
            pid: crate::PID_SERVE,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// Set the layer track group.
    #[must_use]
    pub fn pid(mut self, pid: u32) -> Self {
        self.pid = pid;
        self
    }

    /// Set the track within the layer.
    #[must_use]
    pub fn tid(mut self, tid: u32) -> Self {
        self.tid = tid;
        self
    }

    /// Attach an unsigned-integer argument.
    #[must_use]
    pub fn arg_u64(mut self, key: &'static str, v: u64) -> Self {
        self.args.push((key, ArgValue::U64(v)));
        self
    }

    /// Attach a float argument.
    #[must_use]
    pub fn arg_f64(mut self, key: &'static str, v: f64) -> Self {
        self.args.push((key, ArgValue::F64(v)));
        self
    }

    /// Attach a string argument.
    #[must_use]
    pub fn arg_str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.args.push((key, ArgValue::Str(v.into())));
        self
    }

    /// Attach a boolean argument.
    #[must_use]
    pub fn arg_bool(mut self, key: &'static str, v: bool) -> Self {
        self.args.push((key, ArgValue::Bool(v)));
        self
    }
}

/// The observer the simulation layers are generic over.
///
/// The hot loop guards every emission with `if S::ENABLED { … }`; with
/// [`crate::NullSink`] (`ENABLED = false`) those blocks — including the
/// construction of the [`TraceEvent`] itself — are dead code the
/// optimizer removes, so tracing support costs nothing when off.
///
/// The sampler contract: `next_sample_us` names the next simulation time
/// (µs) at which the layer should call [`TraceSink::sample`] with a
/// gauge row; each `sample` call advances the boundary. `u64::MAX`
/// disables sampling.
pub trait TraceSink {
    /// Whether this sink records anything. Monomorphization constant —
    /// branch on it, never on runtime state, in hot code.
    const ENABLED: bool;

    /// Record one trace event.
    fn emit(&mut self, ev: TraceEvent);

    /// Next simulation time (µs) at which gauge rows are due;
    /// `u64::MAX` = never.
    fn next_sample_us(&self) -> u64 {
        u64::MAX
    }

    /// Record one gauge row sampled at the boundary previously returned
    /// by [`TraceSink::next_sample_us`]. A boundary may carry several
    /// rows (an aggregate tick plus per-service rows); the layer calls
    /// [`TraceSink::advance_sampler`] once all of them are delivered.
    fn sample(&mut self, row: Row);

    /// Move the sampling boundary to the next tick.
    fn advance_sampler(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_fields() {
        let ev = TraceEvent::span("execute", "batch", 100, 50)
            .pid(crate::PID_FLEET)
            .tid(7)
            .arg_u64("size", 4)
            .arg_f64("ratio", 0.5)
            .arg_str("svc", "bert")
            .arg_bool("ok", true);
        assert_eq!(ev.ph.code(), 'X');
        assert_eq!(ev.pid, crate::PID_FLEET);
        assert_eq!(ev.tid, 7);
        assert_eq!(ev.args.len(), 4);
        let inst = TraceEvent::instant("arrival", "request", 9);
        assert_eq!(inst.ph.code(), 'i');
        assert_eq!(inst.dur_us, 0);
    }

    #[test]
    fn arg_values_render_as_json() {
        assert_eq!(ArgValue::U64(3).to_json(), "3");
        assert_eq!(ArgValue::I64(-2).to_json(), "-2");
        assert_eq!(ArgValue::F64(1.25).to_json(), "1.25");
        assert_eq!(ArgValue::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
        assert_eq!(ArgValue::Bool(false).to_json(), "false");
    }

    #[test]
    fn csv_cells_quote_only_when_needed() {
        assert_eq!(ArgValue::Str("plain".into()).to_csv(), "plain");
        assert_eq!(ArgValue::Str("a,b".into()).to_csv(), "\"a,b\"");
        assert_eq!(ArgValue::Str("q\"q".into()).to_csv(), "\"q\"\"q\"");
        assert_eq!(ArgValue::F64(2.5).to_csv(), "2.5");
    }
}
