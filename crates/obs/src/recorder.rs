//! The recording [`TraceSink`]: collects trace events, sampled gauge
//! rows, and self-profiling spans for one observed run.

use crate::metrics::{MetricsLog, Row};
use crate::profile::SelfProfiler;
use crate::trace::{TraceEvent, TraceSink};

/// A sink that records everything.
///
/// The sampler is armed with a cadence at construction: the observed
/// layer polls [`TraceSink::next_sample_us`] and delivers one [`Row`]
/// per boundary, which advances the boundary by the cadence. A cadence
/// of 0 disables sampling (the boundary parks at `u64::MAX`).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// Recorded trace events, emission order.
    pub events: Vec<TraceEvent>,
    /// Sampled gauge rows.
    pub metrics: MetricsLog,
    /// Self-profiling spans (separate artifact; non-deterministic
    /// values).
    pub profile: SelfProfiler,
    sample_every_us: u64,
    next_sample_us: u64,
    run_id: Option<String>,
}

impl Recorder {
    /// A recorder sampling gauges every `sample_every_us` simulation
    /// microseconds (0 = no sampling), with self-profiling enabled.
    #[must_use]
    pub fn new(sample_every_us: u64) -> Self {
        Recorder {
            events: Vec::new(),
            metrics: MetricsLog::new(),
            profile: SelfProfiler::enabled(),
            sample_every_us,
            next_sample_us: if sample_every_us == 0 {
                u64::MAX
            } else {
                sample_every_us
            },
            run_id: None,
        }
    }

    /// Stamp every sampled gauge row with a leading `run` column (see
    /// [`Row::with_run`]). The streaming sink stamps identically, so the
    /// batch and streaming metrics exports of one run stay
    /// byte-equivalent.
    #[must_use]
    pub fn with_run_id(mut self, run_id: impl Into<String>) -> Self {
        self.run_id = Some(run_id.into());
        self
    }

    /// The run identifier stamped onto gauge rows, if any.
    #[must_use]
    pub fn run_id(&self) -> Option<&str> {
        self.run_id.as_deref()
    }

    /// The sampling cadence, simulation microseconds (0 = disabled).
    #[must_use]
    pub fn sample_every_us(&self) -> u64 {
        self.sample_every_us
    }

    /// Re-arm the sampler at the first boundary (for a sink reused
    /// across multiple serving windows).
    pub fn rearm_sampler(&mut self) {
        self.next_sample_us = if self.sample_every_us == 0 {
            u64::MAX
        } else {
            self.sample_every_us
        };
    }

    /// The Chrome/Perfetto `trace_event` JSON document.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        crate::chrome::chrome_trace_json(&self.events)
    }

    /// The trace as line-delimited JSON.
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        crate::chrome::trace_jsonl(&self.events)
    }

    /// The gauge rows as line-delimited JSON.
    #[must_use]
    pub fn metrics_jsonl(&self) -> String {
        self.metrics.to_jsonl()
    }

    /// The gauge rows as CSV.
    #[must_use]
    pub fn metrics_csv(&self) -> String {
        self.metrics.to_csv()
    }

    /// The self-profile as JSON (non-deterministic values; separate
    /// artifact).
    #[must_use]
    pub fn profile_json(&self) -> String {
        self.profile.to_json()
    }
}

impl TraceSink for Recorder {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    #[inline]
    fn next_sample_us(&self) -> u64 {
        self.next_sample_us
    }

    #[inline]
    fn sample(&mut self, row: Row) {
        match &self.run_id {
            Some(id) => self.metrics.push(row.with_run(id)),
            None => self.metrics.push(row),
        }
    }

    fn advance_sampler(&mut self) {
        if self.sample_every_us > 0 {
            self.next_sample_us = self.next_sample_us.saturating_add(self.sample_every_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_advances_by_cadence() {
        let mut r = Recorder::new(1000);
        assert_eq!(r.next_sample_us(), 1000);
        // Two rows on one boundary, then advance.
        r.sample(Row::new().u64("q", 1));
        r.sample(Row::new().u64("q", 2));
        assert_eq!(r.next_sample_us(), 1000);
        r.advance_sampler();
        assert_eq!(r.next_sample_us(), 2000);
        r.advance_sampler();
        assert_eq!(r.next_sample_us(), 3000);
        assert_eq!(r.metrics.len(), 2);
        r.rearm_sampler();
        assert_eq!(r.next_sample_us(), 1000);
    }

    #[test]
    fn zero_cadence_disables_sampling() {
        let r = Recorder::new(0);
        assert_eq!(r.next_sample_us(), u64::MAX);
        assert_eq!(r.sample_every_us(), 0);
    }

    #[test]
    fn run_id_stamps_sampled_rows() {
        let mut r = Recorder::new(1000).with_run_id("spec@42");
        assert_eq!(r.run_id(), Some("spec@42"));
        r.sample(Row::new().u64("q", 1));
        assert!(r.metrics_jsonl().starts_with("{\"run\":\"spec@42\","));
        let plain = Recorder::new(1000);
        assert_eq!(plain.run_id(), None);
    }

    #[test]
    fn emitted_events_are_recorded_in_order() {
        let mut r = Recorder::new(0);
        r.emit(TraceEvent::instant("a", "c", 5));
        r.emit(TraceEvent::span("b", "c", 1, 2));
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].name, "a");
        assert!(r.chrome_trace().contains("\"traceEvents\""));
        assert_eq!(r.trace_jsonl().lines().count(), 2);
    }
}
