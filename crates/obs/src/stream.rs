//! The streaming [`TraceSink`]: bounded-ring buffering flushed to
//! rotating newline-delimited shard files.
//!
//! Where the [`crate::Recorder`] buffers an entire run in memory (a dead
//! end for a long-running control plane), [`StreamSink`] renders every
//! span and gauge row to its canonical JSON line immediately and retires
//! it to disk in bounded batches. Two lanes share one shard directory:
//!
//! ```text
//! <dir>/trace-00000.jsonl     trace_event spans/instants, shard 0
//! <dir>/trace-00001.jsonl     … rotated by event count or sim-age
//! <dir>/metrics-00000.jsonl   gauge rows, rotated by row count
//! <dir>/stream.done           finalize marker + run stats JSON
//! ```
//!
//! Lines are rendered with the exact same renderers the batch exporters
//! use ([`crate::event_json`], [`crate::Row::to_json`]), so for a run
//! with retention off, concatenating a lane's shards in index order is
//! **byte-equivalent** to the `Recorder`'s batch export of the same run
//! (`trace_jsonl` / `metrics_jsonl`) — pinned across the whole spec
//! registry by `tests/obs_stream.rs`. Each shard is Perfetto
//! streamed-JSON compatible: every line is one complete `trace_event`
//! object, so `{"traceEvents":[` + comma-joined lines + `]}` loads
//! directly.
//!
//! Rotation and retention come from [`StreamConfig`]: a shard closes
//! after `shard_max_events` lines (checked *before* appending, so a run
//! of exactly `k` events fills one shard and never opens an empty
//! successor) or — trace lane only, where lines carry simulation
//! timestamps — once the shard spans `rotate_us` of simulation time.
//! `retain_shards` keeps only the newest N shards per lane, deleting
//! oldest-first as new shards open (0 retains everything).
//!
//! No span loss on normal exit: [`StreamSink::finish`] flushes both
//! lanes and writes the `stream.done` marker; if the sink is dropped
//! without `finish` (a panic unwinding, an early return), `Drop` still
//! flushes buffered lines best-effort — only the marker is skipped.

use crate::metrics::Row;
use crate::trace::{TraceEvent, TraceSink};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Buffered lines per lane before a flush retires them to the current
/// shard file — the "bounded ring" that keeps memory O(1) in run length.
const FLUSH_EVERY_LINES: usize = 256;

/// Shard rotation and retention policy of a [`StreamSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Lines per shard before rotation (0 = never rotate by count).
    pub shard_max_events: usize,
    /// Trace-lane sim-age per shard, µs (0 = never rotate by age). The
    /// metrics lane rotates by count only — gauge rows are not required
    /// to carry a timestamp.
    pub rotate_us: u64,
    /// Newest shards kept per lane; older shards are deleted as new ones
    /// open (0 = retain everything). Retention trades the byte-equivalence
    /// guarantee for bounded disk in never-ending runs.
    pub retain_shards: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            shard_max_events: 4096,
            rotate_us: 0,
            retain_shards: 0,
        }
    }
}

/// What one finished stream wrote — deterministic counts only (no host
/// clocks), so tests can assert on it byte-for-byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Trace events written (spans + instants).
    pub trace_events: u64,
    /// Gauge rows written.
    pub gauge_rows: u64,
    /// Trace-lane shards on disk after retention.
    pub trace_shards: usize,
    /// Metrics-lane shards on disk after retention.
    pub metrics_shards: usize,
    /// Shards deleted by the retention policy (both lanes).
    pub dropped_shards: usize,
}

impl StreamStats {
    /// Render as a small deterministic JSON object (the `stream.done`
    /// marker body).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"parva-obs/stream/v1\",\"trace_events\":{},\"gauge_rows\":{},\
             \"trace_shards\":{},\"metrics_shards\":{},\"dropped_shards\":{}}}",
            self.trace_events,
            self.gauge_rows,
            self.trace_shards,
            self.metrics_shards,
            self.dropped_shards
        )
    }
}

/// One output lane (trace or metrics): a line buffer plus the current
/// shard's state.
#[derive(Debug)]
struct Lane {
    prefix: &'static str,
    buf: String,
    buf_lines: usize,
    shard_index: usize,
    shard_created: bool,
    lines_in_shard: usize,
    first_ts_us: Option<u64>,
    total_lines: u64,
    /// Shard indices currently on disk, oldest first.
    on_disk: Vec<usize>,
    dropped: usize,
}

impl Lane {
    fn new(prefix: &'static str) -> Self {
        Lane {
            prefix,
            buf: String::new(),
            buf_lines: 0,
            shard_index: 0,
            shard_created: false,
            lines_in_shard: 0,
            first_ts_us: None,
            total_lines: 0,
            on_disk: Vec::new(),
            dropped: 0,
        }
    }

    fn shard_path(&self, dir: &Path, index: usize) -> PathBuf {
        dir.join(format!("{}-{:05}.jsonl", self.prefix, index))
    }

    /// Would appending a line stamped `ts_us` overflow the current shard?
    fn should_rotate(&self, cfg: &StreamConfig, ts_us: u64) -> bool {
        if self.lines_in_shard == 0 {
            return false;
        }
        if cfg.shard_max_events > 0 && self.lines_in_shard >= cfg.shard_max_events {
            return true;
        }
        if cfg.rotate_us > 0 {
            if let Some(first) = self.first_ts_us {
                if ts_us.saturating_sub(first) >= cfg.rotate_us {
                    return true;
                }
            }
        }
        false
    }

    /// Retire buffered lines to the current shard file, creating it (and
    /// applying retention) on first write.
    fn flush(&mut self, dir: &Path, cfg: &StreamConfig) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let path = self.shard_path(dir, self.shard_index);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.write_all(self.buf.as_bytes())?;
        self.buf.clear();
        self.buf_lines = 0;
        if !self.shard_created {
            self.shard_created = true;
            self.on_disk.push(self.shard_index);
            if cfg.retain_shards > 0 {
                while self.on_disk.len() > cfg.retain_shards {
                    let oldest = self.on_disk.remove(0);
                    std::fs::remove_file(self.shard_path(dir, oldest))?;
                    self.dropped += 1;
                }
            }
        }
        Ok(())
    }

    /// Append one rendered line, rotating/flushing per policy first.
    fn push_line(
        &mut self,
        dir: &Path,
        cfg: &StreamConfig,
        line: &str,
        ts_us: u64,
    ) -> std::io::Result<()> {
        if self.should_rotate(cfg, ts_us) {
            self.flush(dir, cfg)?;
            self.shard_index += 1;
            self.shard_created = false;
            self.lines_in_shard = 0;
            self.first_ts_us = None;
        }
        if self.first_ts_us.is_none() {
            self.first_ts_us = Some(ts_us);
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        self.buf_lines += 1;
        self.lines_in_shard += 1;
        self.total_lines += 1;
        if self.buf_lines >= FLUSH_EVERY_LINES {
            self.flush(dir, cfg)?;
        }
        Ok(())
    }
}

/// A [`TraceSink`] that streams to rotating shard files (see the module
/// docs for the layout and guarantees).
///
/// The sampler contract matches [`crate::Recorder`]: a cadence armed at
/// construction, one boundary at a time, `advance_sampler` moving it —
/// so swapping a `Recorder` for a `StreamSink` observes the exact same
/// simulation decisions.
#[derive(Debug)]
pub struct StreamSink {
    dir: PathBuf,
    config: StreamConfig,
    trace: Lane,
    metrics: Lane,
    sample_every_us: u64,
    next_sample_us: u64,
    run_id: Option<String>,
    finished: bool,
    /// First I/O error hit on the emit path (the [`TraceSink`] trait is
    /// infallible); surfaced by [`StreamSink::finish`].
    deferred_error: Option<String>,
}

impl StreamSink {
    /// Open a streaming sink writing into `dir` (created if missing),
    /// sampling gauges every `sample_every_us` simulation microseconds
    /// (0 = no sampling).
    ///
    /// Shard files are created lazily on first flush, so an empty run
    /// finalizes without leaving lane files behind.
    ///
    /// # Errors
    /// Directory creation failures.
    pub fn create(
        dir: impl Into<PathBuf>,
        sample_every_us: u64,
        config: StreamConfig,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(StreamSink {
            dir,
            config,
            trace: Lane::new("trace"),
            metrics: Lane::new("metrics"),
            sample_every_us,
            next_sample_us: if sample_every_us == 0 {
                u64::MAX
            } else {
                sample_every_us
            },
            run_id: None,
            finished: false,
            deferred_error: None,
        })
    }

    /// Stamp every gauge row with a leading `run` column, exactly like
    /// [`crate::Recorder::with_run_id`] — the byte-equivalence guarantee
    /// requires both sinks of a comparison to carry the same stamp.
    #[must_use]
    pub fn with_run_id(mut self, run_id: impl Into<String>) -> Self {
        self.run_id = Some(run_id.into());
        self
    }

    /// The shard directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_io(&mut self, result: std::io::Result<()>) {
        if let Err(e) = result {
            if self.deferred_error.is_none() {
                self.deferred_error = Some(e.to_string());
            }
        }
    }

    fn flush_all(&mut self) -> std::io::Result<()> {
        self.trace.flush(&self.dir, &self.config)?;
        self.metrics.flush(&self.dir, &self.config)?;
        Ok(())
    }

    /// Flush both lanes, write the `stream.done` marker, and return the
    /// run's stats. Idempotent; after `finish` the sink drops silently.
    ///
    /// # Errors
    /// The first I/O failure of the whole stream — including errors hit
    /// (and deferred) on the infallible emit path.
    pub fn finish(&mut self) -> Result<StreamStats, String> {
        let flush = self.flush_all();
        self.record_io(flush);
        self.finished = true;
        if let Some(e) = &self.deferred_error {
            return Err(format!("stream sink I/O failure: {e}"));
        }
        let stats = StreamStats {
            trace_events: self.trace.total_lines,
            gauge_rows: self.metrics.total_lines,
            trace_shards: self.trace.on_disk.len(),
            metrics_shards: self.metrics.on_disk.len(),
            dropped_shards: self.trace.dropped + self.metrics.dropped,
        };
        std::fs::write(self.dir.join("stream.done"), stats.to_json())
            .map_err(|e| format!("cannot write stream.done: {e}"))?;
        Ok(stats)
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort: buffered lines must not vanish on unwind.
            let _ = self.flush_all();
        }
    }
}

impl TraceSink for StreamSink {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: TraceEvent) {
        let line = crate::chrome::event_json(&ev);
        let ts = ev.ts_us;
        let res = self.trace.push_line(&self.dir, &self.config, &line, ts);
        self.record_io(res);
    }

    #[inline]
    fn next_sample_us(&self) -> u64 {
        self.next_sample_us
    }

    fn sample(&mut self, row: Row) {
        let row = match &self.run_id {
            Some(id) => row.with_run(id),
            None => row,
        };
        let line = row.to_json();
        let res = self.metrics.push_line(&self.dir, &self.config, &line, 0);
        self.record_io(res);
    }

    fn advance_sampler(&mut self) {
        if self.sample_every_us > 0 {
            self.next_sample_us = self.next_sample_us.saturating_add(self.sample_every_us);
        }
    }
}

/// Sorted shard file names of one lane (`"trace"` or `"metrics"`) in a
/// shard directory. Zero-padded indices make the lexicographic order the
/// numeric one.
///
/// # Errors
/// Directory read failures.
pub fn shard_files(dir: &Path, lane: &str) -> std::io::Result<Vec<PathBuf>> {
    let prefix = format!("{lane}-");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".jsonl"))
                .is_some_and(|stem| stem.starts_with(&prefix))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Concatenate a lane's shards in index order — for a retention-free run
/// this reproduces the batch export byte-for-byte.
///
/// # Errors
/// Directory or shard read failures.
pub fn read_concat_shards(dir: &Path, lane: &str) -> std::io::Result<String> {
    let mut out = String::new();
    for path in shard_files(dir, lane)? {
        out.push_str(&std::fs::read_to_string(path)?);
    }
    Ok(out)
}

/// Follows a live shard directory, yielding complete new lines of one
/// lane as they land — the engine behind `parvactl trace tail`.
///
/// The follower tracks (current shard, byte offset); [`TailFollower::poll`]
/// drains everything new since the last poll, advancing across shard
/// rotations. Shards deleted by retention before they were read are
/// skipped (a live tail of a bounded stream cannot be lossless).
#[derive(Debug)]
pub struct TailFollower {
    dir: PathBuf,
    lane: String,
    current: Option<PathBuf>,
    offset: u64,
}

impl TailFollower {
    /// Follow `lane` (`"trace"` or `"metrics"`) in `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, lane: impl Into<String>) -> Self {
        TailFollower {
            dir: dir.into(),
            lane: lane.into(),
            current: None,
            offset: 0,
        }
    }

    /// Has the producer finalized the stream (written `stream.done`)?
    /// Combine with one final [`TailFollower::poll`] to drain the tail.
    #[must_use]
    pub fn done(&self) -> bool {
        self.dir.join("stream.done").is_file()
    }

    /// Complete lines of one file from `offset`; returns the consumed
    /// byte count (partial trailing lines stay unconsumed).
    fn read_new(path: &Path, offset: u64) -> std::io::Result<(Vec<String>, u64)> {
        let bytes = std::fs::read(path)?;
        let start = usize::try_from(offset)
            .unwrap_or(usize::MAX)
            .min(bytes.len());
        let tail = &bytes[start..];
        // Only consume up to the last full line.
        let Some(last_nl) = tail.iter().rposition(|&b| b == b'\n') else {
            return Ok((Vec::new(), 0));
        };
        let complete = &tail[..=last_nl];
        let text = String::from_utf8_lossy(complete);
        let lines = text.lines().map(str::to_string).collect();
        Ok((lines, complete.len() as u64))
    }

    /// Drain every complete new line since the last poll, in order,
    /// advancing across shard rotations.
    ///
    /// # Errors
    /// Directory or shard read failures (a shard deleted mid-poll is
    /// skipped, not an error).
    pub fn poll(&mut self) -> std::io::Result<Vec<String>> {
        let files = shard_files(&self.dir, &self.lane)?;
        let mut out = Vec::new();
        for path in files {
            match &self.current {
                // Retention may have deleted shards we already read;
                // never re-read older names.
                Some(cur) if path < *cur => continue,
                Some(cur) if path == *cur => {}
                _ => {
                    self.current = Some(path.clone());
                    self.offset = 0;
                }
            }
            match Self::read_new(&path, self.offset) {
                Ok((lines, consumed)) => {
                    self.offset += consumed;
                    out.extend(lines);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, TraceEvent};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parva-obs-stream-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant("tick", "test", i * 10).arg_u64("i", i)
    }

    #[test]
    fn rotation_exactly_at_shard_boundary() {
        let dir = tmp_dir("boundary");
        let cfg = StreamConfig {
            shard_max_events: 4,
            ..StreamConfig::default()
        };
        let mut sink = StreamSink::create(&dir, 0, cfg).unwrap();
        for i in 0..8 {
            sink.emit(ev(i));
        }
        let stats = sink.finish().unwrap();
        // Exactly two full shards — no empty third shard after the 8th
        // event lands on the boundary.
        assert_eq!(stats.trace_shards, 2);
        let files = shard_files(&dir, "trace").unwrap();
        assert_eq!(files.len(), 2);
        for f in &files {
            assert_eq!(std::fs::read_to_string(f).unwrap().lines().count(), 4);
        }
        // One more event opens shard 2.
        let dir2 = tmp_dir("boundary2");
        let mut sink = StreamSink::create(&dir2, 0, cfg).unwrap();
        for i in 0..9 {
            sink.emit(ev(i));
        }
        assert_eq!(sink.finish().unwrap().trace_shards, 3);
    }

    #[test]
    fn age_rotation_splits_by_sim_time() {
        let dir = tmp_dir("age");
        let cfg = StreamConfig {
            shard_max_events: 0,
            rotate_us: 100,
            retain_shards: 0,
        };
        let mut sink = StreamSink::create(&dir, 0, cfg).unwrap();
        // ts 0, 10, …, 90 in shard 0; ts 100 rotates; ts 200 rotates again.
        for i in 0..=20 {
            sink.emit(ev(i));
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.trace_shards, 3);
        assert_eq!(stats.trace_events, 21);
    }

    #[test]
    fn retention_deletes_oldest_first() {
        let dir = tmp_dir("retention");
        let cfg = StreamConfig {
            shard_max_events: 2,
            rotate_us: 0,
            retain_shards: 2,
        };
        let mut sink = StreamSink::create(&dir, 0, cfg).unwrap();
        for i in 0..8 {
            sink.emit(ev(i));
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.trace_events, 8);
        assert_eq!(stats.trace_shards, 2);
        assert_eq!(stats.dropped_shards, 2);
        let files = shard_files(&dir, "trace").unwrap();
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        // The two *newest* shards survive.
        assert_eq!(names, vec!["trace-00002.jsonl", "trace-00003.jsonl"]);
    }

    #[test]
    fn empty_run_finalizes_without_lane_files() {
        let dir = tmp_dir("empty");
        let mut sink = StreamSink::create(&dir, 1000, StreamConfig::default()).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats, StreamStats::default());
        assert!(shard_files(&dir, "trace").unwrap().is_empty());
        assert!(shard_files(&dir, "metrics").unwrap().is_empty());
        assert!(dir.join("stream.done").is_file());
    }

    #[test]
    fn drop_without_finish_loses_no_lines() {
        let dir = tmp_dir("drop");
        {
            let mut sink = StreamSink::create(&dir, 0, StreamConfig::default()).unwrap();
            for i in 0..5 {
                sink.emit(ev(i));
            }
            // No finish(): Drop must flush the buffered lines.
        }
        let text = read_concat_shards(&dir, "trace").unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(!dir.join("stream.done").is_file(), "Drop writes no marker");
    }

    #[test]
    fn concat_matches_recorder_batch_export() {
        let dir = tmp_dir("equiv");
        let cfg = StreamConfig {
            shard_max_events: 3,
            ..StreamConfig::default()
        };
        let mut stream = StreamSink::create(&dir, 1000, cfg)
            .unwrap()
            .with_run_id("unit@1");
        let mut rec = Recorder::new(1000).with_run_id("unit@1");
        for i in 0..10 {
            let e = ev(i).arg_str("svc", "bert").arg_f64("x", 0.25);
            stream.emit(e.clone());
            rec.emit(e);
            let row = Row::new().str("kind", "tick").u64("i", i);
            stream.sample(row.clone());
            rec.sample(row);
            stream.advance_sampler();
            rec.advance_sampler();
        }
        stream.finish().unwrap();
        assert_eq!(
            read_concat_shards(&dir, "trace").unwrap(),
            rec.trace_jsonl()
        );
        assert_eq!(
            read_concat_shards(&dir, "metrics").unwrap(),
            rec.metrics_jsonl()
        );
    }

    #[test]
    fn tail_follows_across_rotations() {
        let dir = tmp_dir("tail");
        let cfg = StreamConfig {
            shard_max_events: 2,
            ..StreamConfig::default()
        };
        let mut sink = StreamSink::create(&dir, 1000, cfg).unwrap();
        let mut tail = TailFollower::new(&dir, "metrics");
        assert!(tail.poll().unwrap().is_empty());
        assert!(!tail.done());
        for i in 0..5 {
            sink.sample(Row::new().u64("i", i));
            sink.advance_sampler();
        }
        sink.finish().unwrap();
        let lines = tail.poll().unwrap();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "{\"i\":0}");
        assert_eq!(lines[4], "{\"i\":4}");
        assert!(tail.done());
        // Nothing new on a second poll.
        assert!(tail.poll().unwrap().is_empty());
    }

    #[test]
    fn sampler_contract_matches_recorder() {
        let sink = StreamSink::create(tmp_dir("sampler"), 500, StreamConfig::default()).unwrap();
        assert_eq!(sink.next_sample_us(), 500);
        let mut sink = sink;
        sink.advance_sampler();
        assert_eq!(sink.next_sample_us(), 1000);
        let parked = StreamSink::create(tmp_dir("parked"), 0, StreamConfig::default()).unwrap();
        assert_eq!(parked.next_sample_us(), u64::MAX);
    }
}
