//! Self-profiling spans around orchestrator phases.
//!
//! Built on [`parva_des::counters`]: each span records its wall-clock
//! nanoseconds, the calling thread's CPU nanoseconds
//! (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`), and — via scope-safe
//! [`Snapshot::delta`](parva_des::counters::Snapshot::delta) — the DES
//! events and inner simulation runs the phase triggered, including
//! everything scoped-thread fan-outs accumulated into the global
//! counters while the span was open.
//!
//! Host-clock readings vary run to run, so the profile is exported as
//! its own artifact and is deliberately excluded from the byte-identity
//! guarantees the trace and metrics files carry.

use parva_des::counters::{self, Snapshot};
use std::time::Instant;

/// An open span handle; close it with [`SelfProfiler::end`]. When the
/// profiler is disabled the token is inert and `begin` touches no
/// clocks.
#[derive(Debug)]
pub struct ProfToken {
    name: &'static str,
    layer: &'static str,
    started: Option<(Instant, u64, Snapshot)>,
}

/// Aggregated statistics for one `(layer, phase)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Simulation layer ("serve", "fleet", "region").
    pub layer: &'static str,
    /// Phase name ("probe-fanout", "plan", "merge", …).
    pub name: &'static str,
    /// Number of spans recorded.
    pub count: u64,
    /// Total wall-clock nanoseconds across spans.
    pub wall_nanos: u64,
    /// Total thread-CPU nanoseconds across spans (0 where the platform
    /// has no per-thread CPU clock).
    pub cpu_nanos: u64,
    /// DES events processed by simulations the phase ran (scope-safe
    /// counter delta; includes scoped-thread fan-out).
    pub des_events: u64,
    /// Inner simulation runs the phase triggered.
    pub des_sims: u64,
}

/// Collects phase spans; aggregates by `(layer, name)` in
/// first-appearance order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SelfProfiler {
    enabled: bool,
    stats: Vec<PhaseStat>,
}

impl SelfProfiler {
    /// A profiler that records nothing and reads no clocks.
    #[must_use]
    pub fn disabled() -> Self {
        SelfProfiler::default()
    }

    /// A recording profiler.
    #[must_use]
    pub fn enabled() -> Self {
        SelfProfiler {
            enabled: true,
            stats: Vec::new(),
        }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span. Reads the wall clock, the thread CPU clock, and the
    /// global DES counters — or nothing at all when disabled.
    #[must_use]
    pub fn begin(&self, name: &'static str, layer: &'static str) -> ProfToken {
        ProfToken {
            name,
            layer,
            started: self.enabled.then(|| {
                (
                    Instant::now(),
                    counters::thread_cpu_nanos(),
                    counters::snapshot(),
                )
            }),
        }
    }

    /// Close a span, folding it into the `(layer, name)` aggregate.
    /// Takes the token by value on purpose: a span cannot be ended twice.
    #[allow(clippy::needless_pass_by_value, clippy::single_match_else)]
    pub fn end(&mut self, token: ProfToken) {
        let Some((wall0, cpu0, snap0)) = token.started else {
            return;
        };
        let wall = wall0.elapsed().as_nanos() as u64;
        let cpu = counters::thread_cpu_nanos().saturating_sub(cpu0);
        let des = counters::snapshot().delta(&snap0);
        let stat = match self
            .stats
            .iter_mut()
            .find(|s| s.layer == token.layer && s.name == token.name)
        {
            Some(s) => s,
            None => {
                self.stats.push(PhaseStat {
                    layer: token.layer,
                    name: token.name,
                    count: 0,
                    wall_nanos: 0,
                    cpu_nanos: 0,
                    des_events: 0,
                    des_sims: 0,
                });
                self.stats.last_mut().expect("just pushed")
            }
        };
        stat.count += 1;
        stat.wall_nanos += wall;
        stat.cpu_nanos += cpu;
        stat.des_events += des.events;
        stat.des_sims += des.sims;
    }

    /// The aggregated phase rows, first-appearance order.
    #[must_use]
    pub fn stats(&self) -> &[PhaseStat] {
        &self.stats
    }

    /// Fold another profiler's aggregates into this one (e.g. merging a
    /// fleet orchestrator's profile into the run-level recorder).
    pub fn absorb(&mut self, other: &SelfProfiler) {
        for s in &other.stats {
            match self
                .stats
                .iter_mut()
                .find(|t| t.layer == s.layer && t.name == s.name)
            {
                Some(t) => {
                    t.count += s.count;
                    t.wall_nanos += s.wall_nanos;
                    t.cpu_nanos += s.cpu_nanos;
                    t.des_events += s.des_events;
                    t.des_sims += s.des_sims;
                }
                None => self.stats.push(s.clone()),
            }
        }
        self.enabled |= other.enabled;
    }

    /// Render the profile as a JSON document. Field order is fixed, but
    /// the wall/CPU *values* are host measurements and differ run to
    /// run — this artifact is documented as non-deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "{\"schema\":\"parva-obs/profile/v1\",\"deterministic\":false,\"phases\":[",
        );
        for (i, s) in self.stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"layer\":\"{}\",\"phase\":\"{}\",\"count\":{},\"wall_ms\":{},\
                 \"cpu_ms\":{},\"des_events\":{},\"des_sims\":{}}}",
                crate::json_escape(s.layer),
                crate::json_escape(s.name),
                s.count,
                crate::fmt_f64(s.wall_nanos as f64 / 1e6),
                crate::fmt_f64(s.cpu_nanos as f64 / 1e6),
                s.des_events,
                s.des_sims,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = SelfProfiler::disabled();
        let t = p.begin("plan", "fleet");
        assert!(t.started.is_none());
        p.end(t);
        assert!(p.stats().is_empty());
        assert!(!p.is_enabled());
        assert_eq!(
            p.to_json(),
            "{\"schema\":\"parva-obs/profile/v1\",\"deterministic\":false,\"phases\":[]}"
        );
    }

    #[test]
    fn spans_aggregate_by_layer_and_name() {
        let mut p = SelfProfiler::enabled();
        for _ in 0..3 {
            let t = p.begin("probe-fanout", "fleet");
            p.end(t);
        }
        let t = p.begin("merge", "fleet");
        p.end(t);
        assert_eq!(p.stats().len(), 2);
        assert_eq!(p.stats()[0].name, "probe-fanout");
        assert_eq!(p.stats()[0].count, 3);
        assert_eq!(p.stats()[1].count, 1);
        assert!(p
            .to_json()
            .contains("\"phase\":\"probe-fanout\",\"count\":3"));
    }

    #[test]
    fn absorb_merges_and_appends() {
        let mut a = SelfProfiler::enabled();
        let t = a.begin("plan", "fleet");
        a.end(t);
        let mut b = SelfProfiler::enabled();
        let t = b.begin("plan", "fleet");
        b.end(t);
        let t = b.begin("route", "region");
        b.end(t);
        a.absorb(&b);
        assert_eq!(a.stats().len(), 2);
        assert_eq!(a.stats()[0].count, 2);
        assert_eq!(a.stats()[1].layer, "region");
    }

    #[test]
    fn spans_capture_des_counter_deltas() {
        let mut p = SelfProfiler::enabled();
        let t = p.begin("sim", "serve");
        parva_des::counters::record_sim(1234, 5, 1_000, 900);
        p.end(t);
        let s = &p.stats()[0];
        // The global counters are process-wide: other tests may record
        // concurrently, so assert at-least rather than exactly.
        assert!(s.des_events >= 1234);
        assert!(s.des_sims >= 1);
        assert_eq!(s.count, 1);
    }
}
