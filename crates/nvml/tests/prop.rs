//! Property tests: apply/diff correctness over arbitrary deployment maps.

use parva_deploy::{MigDeployment, Segment};
use parva_mig::{GpuModel, InstanceProfile};
use parva_nvml::{apply_deployment, apply_diff, diff_deployments, fleet_matches, SimNvml};
use parva_perf::Model;
use parva_profile::Triplet;
use proptest::prelude::*;

/// Strategy: a sequence of (service id, profile, batch, procs) placed
/// first-fit — every generated map is valid by construction.
fn arb_deployment(max_segments: usize) -> impl Strategy<Value = MigDeployment> {
    prop::collection::vec(
        (
            0u32..6,
            0usize..5,
            prop::sample::select(vec![1u32, 4, 16, 64]),
            1u32..=3,
        ),
        0..max_segments,
    )
    .prop_map(|items| {
        let mut d = MigDeployment::new();
        for (svc, prof_idx, batch, procs) in items {
            let profile = InstanceProfile::ALL[prof_idx];
            d.place_first_fit(Segment {
                service_id: svc,
                model: Model::ALL[(svc as usize) % Model::ALL.len()],
                triplet: Triplet::new(profile, batch, procs),
                throughput_rps: 50.0 * f64::from(profile.gpcs()),
                latency_ms: 12.0,
            });
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_always_realizes_the_map(d in arb_deployment(24)) {
        let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
        apply_deployment(&mut nvml, &d).expect("valid map applies");
        prop_assert!(nvml.validate());
        prop_assert!(fleet_matches(&nvml, &d));
        prop_assert_eq!(nvml.instances().len(), d.segments().len());
    }

    #[test]
    fn diff_transforms_any_fleet_to_any_map(
        old in arb_deployment(16),
        new in arb_deployment(16),
    ) {
        let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
        apply_deployment(&mut nvml, &old).expect("old applies");
        let diff = diff_deployments(&old, &new);
        apply_diff(&mut nvml, &diff).expect("diff applies");
        prop_assert!(nvml.validate());
        prop_assert!(fleet_matches(&nvml, &new));
    }

    #[test]
    fn self_diff_is_empty(d in arb_deployment(24)) {
        let diff = diff_deployments(&d, &d);
        prop_assert!(diff.ops.is_empty());
        prop_assert_eq!(diff.kept.len(), d.segments().len());
    }

    #[test]
    fn diff_op_count_bounded_by_slot_changes(
        old in arb_deployment(16),
        new in arb_deployment(16),
    ) {
        // Minimality (upper bound): never more ops than tearing everything
        // down and rebuilding, and kept slots are never double-counted.
        let diff = diff_deployments(&old, &new);
        prop_assert!(diff.ops.len() <= old.segments().len() + new.segments().len());
        prop_assert!(
            diff.kept.len() <= old.segments().len().min(new.segments().len())
        );
        // Conservation: every old slot is kept, retuned or destroyed.
        let destroys = diff.ops.iter().filter(|o| matches!(o, parva_nvml::ReconfigOp::Destroy { .. })).count();
        let retunes = diff.ops.iter().filter(|o| matches!(o, parva_nvml::ReconfigOp::RetuneMps { .. })).count();
        prop_assert_eq!(diff.kept.len() + retunes + destroys, old.segments().len());
    }
}
