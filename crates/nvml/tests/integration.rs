//! Integration: the full ParvaGPU pipeline executed against the simulated
//! NVML fleet — schedule → apply → reconfigure → minimal diff (§III-F).

use parva_core::{reconfigure, ParvaGpu};
use parva_deploy::ServiceSpec;
use parva_mig::GpuModel;
use parva_nvml::{apply_deployment, apply_diff, diff_deployments, fleet_matches, SimNvml};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

#[test]
fn s2_deployment_applies_to_fleet() {
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let (_, deployment) = scheduler
        .plan(&Scenario::S2.services())
        .expect("S2 feasible");
    let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
    let applied = apply_deployment(&mut nvml, &deployment).expect("apply clean fleet");
    assert_eq!(applied.len(), deployment.segments().len());
    assert!(nvml.validate());
    assert!(fleet_matches(&nvml, &deployment));
    // Every applied instance carries the planned MPS process count.
    for a in &applied {
        assert_eq!(nvml.instance(a.instance).unwrap().mps_processes, a.procs);
    }
}

#[test]
fn slo_change_reconfigures_minimally() {
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let specs = Scenario::S2.services();
    let (services, before) = scheduler.plan(&specs).expect("S2 feasible");

    // Service 8 (ResNet-50) gets a stricter SLO: 205 ms → 150 ms.
    let updated = ServiceSpec::new(8, specs[8].model, specs[8].request_rate_rps, 150.0);
    assert_eq!(specs[8].id, 8);
    let outcome =
        reconfigure::update_service(&scheduler, &before, &services, updated).expect("reconfig");

    let diff = diff_deployments(&before, &outcome.deployment);

    // §III-F: MIG-level reconfiguration must be confined to the GPUs the
    // reconfigurator reports as changed. (MPS retunes — same instance, new
    // batch/procs — may land elsewhere; they are server relaunches, not MIG
    // layout changes.)
    for dev in diff.mig_touched_devices() {
        assert!(
            outcome.reconfigured_gpus.contains(&dev),
            "diff rebuilds instances on GPU {dev} that the reconfigurator did not report"
        );
    }

    // Slots on untouched GPUs are all kept as-is or at most MPS-retuned —
    // never rebuilt.
    let untouched_before = before
        .segments()
        .iter()
        .filter(|ps| !outcome.reconfigured_gpus.contains(&ps.gpu))
        .count();
    let kept_on_untouched = diff
        .kept
        .iter()
        .filter(|(dev, _, _)| !outcome.reconfigured_gpus.contains(dev))
        .count();
    let retuned_on_untouched = diff
        .ops
        .iter()
        .filter(|op| match op {
            parva_nvml::ReconfigOp::RetuneMps { device, .. } => {
                !outcome.reconfigured_gpus.contains(device)
            }
            _ => false,
        })
        .count();
    assert_eq!(untouched_before, kept_on_untouched + retuned_on_untouched);

    // The fleet converges by executing only the diff.
    let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
    apply_deployment(&mut nvml, &before).unwrap();
    apply_diff(&mut nvml, &diff).unwrap();
    assert!(nvml.validate());
    assert!(fleet_matches(&nvml, &outcome.deployment));
}

#[test]
fn unchanged_slo_means_zero_ops() {
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let specs = Scenario::S1.services();
    let (services, before) = scheduler.plan(&specs).expect("S1 feasible");
    // "Update" a service to its identical spec.
    let outcome = reconfigure::update_service(&scheduler, &before, &services, specs[0])
        .expect("no-op reconfig");
    let diff = diff_deployments(&before, &outcome.deployment);
    assert!(
        diff.ops.is_empty(),
        "no-op update must not touch the fleet: {:?}",
        diff.ops
    );
    assert_eq!(diff.kept.len(), before.segments().len());
}

#[test]
fn fresh_schedule_vs_diff_converge_to_same_fleet() {
    // Reconfiguring via diff and redeploying from scratch must land on
    // physically identical fleets.
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let specs = Scenario::S1.services();
    let (services, before) = scheduler.plan(&specs).expect("S1 feasible");
    let updated = ServiceSpec::new(
        specs[2].id,
        specs[2].model,
        specs[2].request_rate_rps * 1.5,
        specs[2].slo.latency_ms,
    );
    let outcome =
        reconfigure::update_service(&scheduler, &before, &services, updated).expect("reconfig");

    let mut via_diff = SimNvml::new(0, GpuModel::A100_80GB);
    apply_deployment(&mut via_diff, &before).unwrap();
    apply_diff(
        &mut via_diff,
        &diff_deployments(&before, &outcome.deployment),
    )
    .unwrap();

    let mut fresh = SimNvml::new(0, GpuModel::A100_80GB);
    apply_deployment(&mut fresh, &outcome.deployment).unwrap();

    assert!(fleet_matches(&via_diff, &outcome.deployment));
    assert!(fleet_matches(&fresh, &outcome.deployment));
}

#[test]
fn telemetry_tracks_applied_instances() {
    use parva_nvml::{FieldId, FieldSample, TelemetryStore};
    let book = ProfileBook::builtin();
    let scheduler = ParvaGpu::new(&book);
    let (_, deployment) = scheduler
        .plan(&Scenario::S1.services())
        .expect("S1 feasible");
    let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
    let applied = apply_deployment(&mut nvml, &deployment).unwrap();

    // Report a plausible activity for every instance and aggregate Eq. 3.
    let mut telemetry = TelemetryStore::new();
    for (k, a) in applied.iter().enumerate() {
        telemetry.record(
            a.instance,
            FieldId::SmActivity,
            FieldSample {
                timestamp_us: 1_000,
                value: 0.90 + 0.01 * (k % 5) as f64,
            },
        );
    }
    let weights: Vec<_> = applied
        .iter()
        .map(|a| (a.instance, a.placement.profile.sms()))
        .collect();
    let activity = telemetry
        .weighted_activity(&weights)
        .expect("all instances sampled");
    assert!(activity > 0.89 && activity < 0.95, "{activity}");
}
