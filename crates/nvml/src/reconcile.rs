//! Level-based reconciliation: observed fleet state vs the deployment map.
//!
//! [`crate::apply`] and [`crate::diff`] are edge-triggered — they assume the
//! fleet is exactly where the last operation left it. Real fleets drift:
//! an operator deletes an instance by hand, a driver reset wipes a device,
//! a stray experiment leaves an instance behind. The reconciler closes the
//! loop the way production controllers do: *observe* the live fleet,
//! *compare* against the target deployment map, and emit exactly the
//! operations that converge the fleet — repeatedly safe, idempotent.

use crate::device::SimNvml;
use crate::diff::{apply_diff, DeploymentDiff, ReconfigOp};
use crate::error::NvmlError;
use parva_deploy::MigDeployment;
use serde::{Deserialize, Serialize};

/// What the reconciler found and did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Instances present in the fleet but absent from the map (destroyed).
    pub strays_removed: usize,
    /// Map slots missing from the fleet (created).
    pub missing_created: usize,
    /// Instances whose MPS process count diverged (retuned).
    pub retuned: usize,
}

impl ReconcileReport {
    /// True when the fleet already matched the map.
    #[must_use]
    pub fn converged_already(&self) -> bool {
        self.strays_removed == 0 && self.missing_created == 0 && self.retuned == 0
    }
}

/// Compute the operations converging the live fleet to `target`.
///
/// Unlike [`crate::diff::diff_deployments`], the "old" side here is the
/// *observed* fleet — so drift of any origin is repaired, not just drift
/// the caller knows about.
#[must_use]
pub fn reconcile_plan(nvml: &SimNvml, target: &MigDeployment) -> DeploymentDiff {
    let mut diff = DeploymentDiff::default();
    let mut destroys = Vec::new();
    let mut creates = Vec::new();
    let mut retunes = Vec::new();

    // Observed instances not in the target (or with wrong profile) → stray.
    for inst in nvml.instances() {
        let planned = target
            .segments_on(inst.device)
            .find(|ps| ps.placement == inst.placement);
        match planned {
            Some(ps) if ps.segment.triplet.procs == inst.mps_processes => {
                diff.kept
                    .push((inst.device, inst.placement, ps.segment.service_id));
            }
            Some(ps) => retunes.push(ReconfigOp::RetuneMps {
                device: inst.device,
                placement: inst.placement,
                procs: ps.segment.triplet.procs,
            }),
            None => destroys.push(ReconfigOp::Destroy {
                device: inst.device,
                placement: inst.placement,
                // Observed state carries no service binding; 0 marks "stray".
                service_id: 0,
            }),
        }
    }
    // Target slots with no live instance → missing.
    for ps in target.segments() {
        let live = nvml
            .instances()
            .iter()
            .any(|i| i.device == ps.gpu && i.placement == ps.placement);
        if !live {
            creates.push(ReconfigOp::Create {
                device: ps.gpu,
                placement: ps.placement,
                segment: ps.segment,
            });
        }
    }
    diff.ops = destroys;
    diff.ops.extend(creates);
    diff.ops.extend(retunes);
    diff
}

/// Observe, plan, converge. Idempotent: a second call is a no-op.
///
/// # Errors
/// Propagates NVML errors from executing the plan.
pub fn reconcile(nvml: &mut SimNvml, target: &MigDeployment) -> Result<ReconcileReport, NvmlError> {
    let plan = reconcile_plan(nvml, target);
    let report = ReconcileReport {
        strays_removed: plan
            .ops
            .iter()
            .filter(|o| matches!(o, ReconfigOp::Destroy { .. }))
            .count(),
        missing_created: plan
            .ops
            .iter()
            .filter(|o| matches!(o, ReconfigOp::Create { .. }))
            .count(),
        retuned: plan
            .ops
            .iter()
            .filter(|o| matches!(o, ReconfigOp::RetuneMps { .. }))
            .count(),
    };
    apply_diff(nvml, &plan)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_deployment, fleet_matches};
    use parva_deploy::Segment;
    use parva_mig::{GpuModel, InstanceProfile, Placement};
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(id: u32, g: InstanceProfile, procs: u32) -> Segment {
        Segment {
            service_id: id,
            model: Model::ResNet50,
            triplet: Triplet::new(g, 8, procs),
            throughput_rps: 100.0,
            latency_ms: 10.0,
        }
    }

    fn target() -> MigDeployment {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G4, 2));
        d.place_first_fit(seg(1, InstanceProfile::G3, 3));
        d.place_first_fit(seg(2, InstanceProfile::G2, 1));
        d
    }

    fn converged_fleet() -> SimNvml {
        let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
        apply_deployment(&mut nvml, &target()).unwrap();
        nvml
    }

    #[test]
    fn converged_fleet_is_a_noop() {
        let mut nvml = converged_fleet();
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert!(report.converged_already());
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn repairs_manual_deletion() {
        let mut nvml = converged_fleet();
        let victim = nvml.instances()[1].id;
        nvml.destroy_gpu_instance(victim).unwrap();
        assert!(!fleet_matches(&nvml, &target()));
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert_eq!(report.missing_created, 1);
        assert_eq!(report.strays_removed, 0);
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn removes_stray_instances() {
        let mut nvml = converged_fleet();
        nvml.grow(1); // device 2, beyond the 2-GPU target map
        nvml.set_mig_mode(2, true).unwrap();
        nvml.create_gpu_instance(2, InstanceProfile::G7).unwrap();
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert_eq!(report.strays_removed, 1);
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn repairs_mps_drift_without_rebuild() {
        let mut nvml = converged_fleet();
        let id = nvml.instances()[0].id;
        nvml.set_mps_processes(id, 1).unwrap();
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert_eq!(report.retuned, 1);
        assert_eq!(report.strays_removed + report.missing_created, 0);
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn repairs_wiped_device() {
        let mut nvml = converged_fleet();
        // Driver reset: every instance on device 0 vanishes.
        let doomed: Vec<_> = nvml
            .instances()
            .iter()
            .filter(|i| i.device == 0)
            .map(|i| i.id)
            .collect();
        assert!(!doomed.is_empty());
        for id in doomed {
            nvml.destroy_gpu_instance(id).unwrap();
        }
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert!(report.missing_created >= 2);
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn repairs_profile_swap() {
        // Same start slice, wrong profile: must destroy + recreate.
        let mut nvml = converged_fleet();
        // The G2 at device 1? Find the G3 (start 4 on device 0) and replace
        // it with a 1g at the same start.
        let g3 = nvml
            .instances()
            .iter()
            .find(|i| i.placement.profile == InstanceProfile::G3)
            .unwrap()
            .id;
        let device = nvml.instance(g3).unwrap().device;
        let start = nvml.instance(g3).unwrap().placement.start;
        nvml.destroy_gpu_instance(g3).unwrap();
        nvml.create_gpu_instance_at(device, Placement::new(InstanceProfile::G1, start))
            .unwrap();
        let report = reconcile(&mut nvml, &target()).unwrap();
        assert_eq!(report.strays_removed, 1);
        assert_eq!(report.missing_created, 1);
        assert!(fleet_matches(&nvml, &target()));
    }

    #[test]
    fn idempotent_under_repeated_calls() {
        let mut nvml = converged_fleet();
        let victim = nvml.instances()[0].id;
        nvml.destroy_gpu_instance(victim).unwrap();
        reconcile(&mut nvml, &target()).unwrap();
        let second = reconcile(&mut nvml, &target()).unwrap();
        assert!(second.converged_already());
    }

    #[test]
    fn plan_is_pure_observation() {
        let nvml = converged_fleet();
        let plan = reconcile_plan(&nvml, &target());
        assert!(plan.ops.is_empty());
        assert_eq!(plan.kept.len(), 3);
    }
}
