//! Simulated devices and GPU-instance handles.

use crate::error::NvmlError;
use parva_mig::{GpuModel, GpuState, InstanceProfile, Placement};
use serde::{Deserialize, Serialize};

/// An opaque GPU-instance handle, unique across the fleet's lifetime (NVML
/// hands out instance ids scoped to the device; a fleet-unique id simplifies
/// bookkeeping without changing the call shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

/// A live MIG GPU instance (we model one compute instance spanning each GPU
/// instance, which is how ParvaGPU uses MIG — MPS then multiplexes processes
/// *inside* the instance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuInstance {
    /// Fleet-unique handle.
    pub id: InstanceId,
    /// Index of the parent device.
    pub device: usize,
    /// Profile + start slice.
    pub placement: Placement,
    /// MIG device UUID, e.g. `MIG-GPU-1f1a0a0c-0-3`.
    pub uuid: String,
    /// Instance memory, GiB (from the parent's GPU model).
    pub memory_gib: f64,
    /// MPS processes currently launched in the instance (0 = idle).
    pub mps_processes: u32,
}

impl GpuInstance {
    /// NVIDIA-style profile name on the parent GPU, e.g. `3g.40gb`.
    #[must_use]
    pub fn profile_name(&self) -> String {
        format!(
            "{}g.{}gb",
            self.placement.profile.gpcs(),
            self.memory_gib.round() as u64
        )
    }
}

/// One simulated GPU device. (`Serialize` only: [`parva_mig::GpuModel`]
/// borrows its name for `'static`, so fleet state serializes for dumps but
/// is reconstructed through the API, never deserialized.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Device {
    /// Device index in the fleet.
    pub index: usize,
    /// GPU model (memory ladder).
    pub model: GpuModel,
    /// Device UUID, e.g. `GPU-00000000-0000-4000-8000-000000000003`.
    pub uuid: String,
    /// Whether MIG mode is enabled.
    mig_enabled: bool,
    /// MIG occupancy (placement validity authority).
    state: GpuState,
}

impl Device {
    fn new(index: usize, model: GpuModel) -> Self {
        Self {
            index,
            model,
            uuid: format!("GPU-00000000-0000-4000-8000-{index:012x}"),
            mig_enabled: false,
            state: GpuState::new(),
        }
    }

    /// Whether MIG mode is on.
    #[must_use]
    pub fn mig_enabled(&self) -> bool {
        self.mig_enabled
    }

    /// The MIG occupancy state (read-only view).
    #[must_use]
    pub fn state(&self) -> &GpuState {
        &self.state
    }

    /// GPCs not covered by instances.
    #[must_use]
    pub fn gpcs_free(&self) -> u8 {
        self.state.gpcs_free()
    }
}

/// The simulated NVML session: a homogeneous fleet of MIG-capable devices.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimNvml {
    devices: Vec<Device>,
    instances: Vec<GpuInstance>,
    next_id: u64,
}

impl SimNvml {
    /// Initialize a fleet of `count` devices of the given model (MIG off —
    /// NVML devices boot in non-MIG mode).
    #[must_use]
    pub fn new(count: usize, model: GpuModel) -> Self {
        Self {
            devices: (0..count).map(|i| Device::new(i, model)).collect(),
            instances: Vec::new(),
            next_id: 1,
        }
    }

    /// Number of devices (`nvmlDeviceGetCount`).
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Device by index (`nvmlDeviceGetHandleByIndex`).
    ///
    /// # Errors
    /// [`NvmlError::InvalidDevice`] when out of range.
    pub fn device(&self, index: usize) -> Result<&Device, NvmlError> {
        self.devices.get(index).ok_or(NvmlError::InvalidDevice {
            index,
            count: self.devices.len(),
        })
    }

    /// Grow the fleet (cloud-side: attach more GPUs). New devices boot with
    /// MIG off.
    pub fn grow(&mut self, additional: usize) {
        let model = self
            .devices
            .first()
            .map_or(GpuModel::A100_80GB, |d| d.model);
        for _ in 0..additional {
            let idx = self.devices.len();
            self.devices.push(Device::new(idx, model));
        }
    }

    /// Enable or disable MIG mode (`nvmlDeviceSetMigMode`). Disabling (or
    /// re-enabling) requires the device to carry no instances.
    ///
    /// # Errors
    /// [`NvmlError::DeviceBusy`] when instances are live;
    /// [`NvmlError::InvalidDevice`] when out of range.
    pub fn set_mig_mode(&mut self, device: usize, enabled: bool) -> Result<(), NvmlError> {
        let count = self.devices.len();
        let dev = self
            .devices
            .get_mut(device)
            .ok_or(NvmlError::InvalidDevice {
                index: device,
                count,
            })?;
        if dev.mig_enabled == enabled {
            return Ok(());
        }
        let live = self.instances.iter().filter(|i| i.device == device).count();
        if live > 0 {
            return Err(NvmlError::DeviceBusy {
                device,
                live_instances: live,
            });
        }
        dev.mig_enabled = enabled;
        Ok(())
    }

    /// Create a GPU instance at an explicit placement
    /// (`nvmlDeviceCreateGpuInstanceWithPlacement`).
    ///
    /// # Errors
    /// Propagates placement violations and MIG-mode preconditions.
    pub fn create_gpu_instance_at(
        &mut self,
        device: usize,
        placement: Placement,
    ) -> Result<InstanceId, NvmlError> {
        let count = self.devices.len();
        let dev = self
            .devices
            .get_mut(device)
            .ok_or(NvmlError::InvalidDevice {
                index: device,
                count,
            })?;
        if !dev.mig_enabled {
            return Err(NvmlError::MigDisabled { device });
        }
        dev.state
            .place_at(placement)
            .map_err(|e| NvmlError::InvalidPlacement {
                device,
                reason: e.to_string(),
            })?;
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.instances.push(GpuInstance {
            id,
            device,
            placement,
            uuid: format!(
                "MIG-GPU-{device:08x}-{}-{}",
                placement.start,
                placement.profile.gpcs()
            ),
            memory_gib: dev.model.instance_memory_gib(placement.profile),
            mps_processes: 0,
        });
        Ok(id)
    }

    /// Create a GPU instance wherever the profile first fits
    /// (`nvmlDeviceCreateGpuInstance`), using the profile's preferred starts.
    ///
    /// # Errors
    /// [`NvmlError::InsufficientResources`] when nothing fits.
    pub fn create_gpu_instance(
        &mut self,
        device: usize,
        profile: InstanceProfile,
    ) -> Result<InstanceId, NvmlError> {
        let dev = self.device(device)?;
        if !dev.mig_enabled {
            return Err(NvmlError::MigDisabled { device });
        }
        let start = dev
            .state
            .find_start(profile)
            .ok_or(NvmlError::InsufficientResources {
                device,
                gpcs: profile.gpcs(),
            })?;
        self.create_gpu_instance_at(device, Placement::new(profile, start))
    }

    /// Destroy a GPU instance (`nvmlGpuInstanceDestroy`).
    ///
    /// # Errors
    /// [`NvmlError::UnknownInstance`] for stale handles.
    pub fn destroy_gpu_instance(&mut self, id: InstanceId) -> Result<(), NvmlError> {
        let idx = self
            .instances
            .iter()
            .position(|i| i.id == id)
            .ok_or(NvmlError::UnknownInstance { id: id.0 })?;
        let inst = self.instances.swap_remove(idx);
        let removed = self.devices[inst.device].state.remove(inst.placement);
        debug_assert!(removed, "device state out of sync with instance table");
        Ok(())
    }

    /// Set the number of MPS processes launched inside an instance (the
    /// deployment's process count; 0 stops the servers).
    ///
    /// # Errors
    /// [`NvmlError::UnknownInstance`] for stale handles.
    pub fn set_mps_processes(&mut self, id: InstanceId, procs: u32) -> Result<(), NvmlError> {
        let inst = self
            .instances
            .iter_mut()
            .find(|i| i.id == id)
            .ok_or(NvmlError::UnknownInstance { id: id.0 })?;
        inst.mps_processes = procs;
        Ok(())
    }

    /// All live instances, fleet-wide.
    #[must_use]
    pub fn instances(&self) -> &[GpuInstance] {
        &self.instances
    }

    /// Live instances on one device, in start-slice order.
    #[must_use]
    pub fn instances_on(&self, device: usize) -> Vec<&GpuInstance> {
        let mut v: Vec<&GpuInstance> = self
            .instances
            .iter()
            .filter(|i| i.device == device)
            .collect();
        v.sort_by_key(|i| i.placement.start);
        v
    }

    /// Look up a live instance by handle.
    #[must_use]
    pub fn instance(&self, id: InstanceId) -> Option<&GpuInstance> {
        self.instances.iter().find(|i| i.id == id)
    }

    /// Destroy every instance and disable MIG everywhere (fleet reset).
    pub fn reset(&mut self) {
        self.instances.clear();
        for d in &mut self.devices {
            d.state.clear();
            d.mig_enabled = false;
        }
    }

    /// Fleet audit: every instance's placement is present in its device
    /// state, every device placement has exactly one instance, and every
    /// device state validates.
    #[must_use]
    pub fn validate(&self) -> bool {
        if !self.devices.iter().all(|d| d.state.validate()) {
            return false;
        }
        let mut counted = 0usize;
        for d in &self.devices {
            for p in d.state.placements() {
                let n = self
                    .instances
                    .iter()
                    .filter(|i| i.device == d.index && i.placement == *p)
                    .count();
                if n != 1 {
                    return false;
                }
                counted += 1;
            }
        }
        counted == self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> SimNvml {
        let mut nvml = SimNvml::new(2, GpuModel::A100_80GB);
        nvml.set_mig_mode(0, true).unwrap();
        nvml.set_mig_mode(1, true).unwrap();
        nvml
    }

    #[test]
    fn boot_state() {
        let nvml = SimNvml::new(3, GpuModel::A100_80GB);
        assert_eq!(nvml.device_count(), 3);
        assert!(!nvml.device(0).unwrap().mig_enabled());
        assert!(nvml.device(3).is_err());
        assert!(nvml.validate());
    }

    #[test]
    fn uuids_are_unique_and_stable() {
        let nvml = SimNvml::new(4, GpuModel::A100_80GB);
        let mut uuids: Vec<String> = (0..4)
            .map(|i| nvml.device(i).unwrap().uuid.clone())
            .collect();
        uuids.dedup();
        assert_eq!(uuids.len(), 4);
        assert!(uuids[3].ends_with("000000000003"));
    }

    #[test]
    fn instance_requires_mig_mode() {
        let mut nvml = SimNvml::new(1, GpuModel::A100_80GB);
        let err = nvml
            .create_gpu_instance(0, InstanceProfile::G1)
            .unwrap_err();
        assert_eq!(err, NvmlError::MigDisabled { device: 0 });
    }

    #[test]
    fn create_and_destroy_roundtrip() {
        let mut nvml = fleet();
        let id = nvml.create_gpu_instance(0, InstanceProfile::G3).unwrap();
        assert_eq!(nvml.instances().len(), 1);
        let inst = nvml.instance(id).unwrap();
        assert_eq!(inst.profile_name(), "3g.40gb");
        assert_eq!(inst.memory_gib, 40.0);
        assert!(nvml.validate());
        nvml.destroy_gpu_instance(id).unwrap();
        assert!(nvml.instances().is_empty());
        assert_eq!(nvml.device(0).unwrap().gpcs_free(), 7);
        // Double destroy is a stale handle.
        assert_eq!(
            nvml.destroy_gpu_instance(id),
            Err(NvmlError::UnknownInstance { id: id.0 })
        );
    }

    #[test]
    fn explicit_placement_validated() {
        let mut nvml = fleet();
        // 3g at start 2 violates the NVIDIA start rule (starts are 0 or 4).
        let bad = Placement::new(InstanceProfile::G3, 2);
        assert!(matches!(
            nvml.create_gpu_instance_at(0, bad),
            Err(NvmlError::InvalidPlacement { device: 0, .. })
        ));
        // A valid one goes through.
        nvml.create_gpu_instance_at(0, Placement::new(InstanceProfile::G3, 4))
            .unwrap();
        assert!(nvml.validate());
    }

    #[test]
    fn capacity_exhaustion() {
        let mut nvml = fleet();
        nvml.create_gpu_instance(0, InstanceProfile::G7).unwrap();
        assert_eq!(
            nvml.create_gpu_instance(0, InstanceProfile::G1),
            Err(NvmlError::InsufficientResources { device: 0, gpcs: 1 })
        );
        // The other device still has room.
        nvml.create_gpu_instance(1, InstanceProfile::G1).unwrap();
    }

    #[test]
    fn mig_mode_change_blocked_while_busy() {
        let mut nvml = fleet();
        nvml.create_gpu_instance(0, InstanceProfile::G2).unwrap();
        assert_eq!(
            nvml.set_mig_mode(0, false),
            Err(NvmlError::DeviceBusy {
                device: 0,
                live_instances: 1
            })
        );
        // Device 1 is idle and can leave MIG mode.
        nvml.set_mig_mode(1, false).unwrap();
    }

    #[test]
    fn mps_process_control() {
        let mut nvml = fleet();
        let id = nvml.create_gpu_instance(0, InstanceProfile::G2).unwrap();
        nvml.set_mps_processes(id, 3).unwrap();
        assert_eq!(nvml.instance(id).unwrap().mps_processes, 3);
        assert!(nvml.set_mps_processes(InstanceId(999), 1).is_err());
    }

    #[test]
    fn instances_on_sorted_by_slice() {
        let mut nvml = fleet();
        nvml.create_gpu_instance_at(0, Placement::new(InstanceProfile::G3, 4))
            .unwrap();
        nvml.create_gpu_instance_at(0, Placement::new(InstanceProfile::G1, 0))
            .unwrap();
        let starts: Vec<u8> = nvml
            .instances_on(0)
            .iter()
            .map(|i| i.placement.start)
            .collect();
        assert_eq!(starts, vec![0, 4]);
    }

    #[test]
    fn grow_and_reset() {
        let mut nvml = fleet();
        nvml.create_gpu_instance(0, InstanceProfile::G4).unwrap();
        nvml.grow(2);
        assert_eq!(nvml.device_count(), 4);
        assert!(!nvml.device(2).unwrap().mig_enabled());
        nvml.reset();
        assert!(nvml.instances().is_empty());
        assert!(!nvml.device(0).unwrap().mig_enabled());
        assert!(nvml.validate());
    }

    #[test]
    fn h200_memory_ladder_in_names() {
        let mut nvml = SimNvml::new(1, GpuModel::H200_141GB);
        nvml.set_mig_mode(0, true).unwrap();
        let id = nvml.create_gpu_instance(0, InstanceProfile::G2).unwrap();
        // 2 memory slices × 17.625 GiB ≈ 35 GiB.
        assert_eq!(nvml.instance(id).unwrap().profile_name(), "2g.35gb");
    }
}
