//! # parva-nvml — simulated NVML/DCGM management layer
//!
//! The layer a production deployment of ParvaGPU would drive through the
//! NVIDIA Management Library: device enumeration, MIG mode control, GPU
//! instance lifecycle, and DCGM-style telemetry fields. No MIG-capable
//! hardware is available in this reproduction (repro band: "MIG hardware
//! gate; NVML crates thin but workable"), so this crate provides a faithful
//! in-memory twin of the API *surface* the scheduler's deployment stage
//! needs:
//!
//! * [`SimNvml`] — a fleet of simulated devices with NVML-shaped calls
//!   (`device_count`, MIG mode toggles, `create_gpu_instance` /
//!   `destroy_gpu_instance` with real placement validation via
//!   [`parva_mig::GpuState`], NVIDIA-style UUIDs and profile names);
//! * [`telemetry`] — DCGM field groups (SM activity, memory used, …) with
//!   windowed sampling, the counters behind the paper's Eq. 3 internal-slack
//!   metric (§IV-B2 cites DCGM's SM-activity semantics directly);
//! * [`apply`] — executing a [`parva_deploy::MigDeployment`] against the
//!   fleet, translating the deployment map into instance operations;
//! * [`diff`] — **minimal-diff reconfiguration** (paper §III-F: "services
//!   whose placement has not changed do not require reconfiguration"):
//!   computing the smallest set of destroy/create operations between two
//!   deployment maps and applying only those;
//! * [`reconcile`] — level-based repair: observe the live fleet, diff it
//!   against the target map, converge — so manual deletions, driver
//!   resets and stray instances are healed idempotently.
//!
//! Everything is deterministic and in-memory; swapping [`SimNvml`] for a
//! thin binding over the real NVML preserves the call sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod device;
pub mod diff;
pub mod error;
pub mod reconcile;
pub mod telemetry;

pub use apply::{apply_deployment, fleet_matches, AppliedInstance};
pub use device::{Device, GpuInstance, InstanceId, SimNvml};
pub use diff::{apply_diff, diff_deployments, DeploymentDiff, ReconfigOp};
pub use error::NvmlError;
pub use reconcile::{reconcile, reconcile_plan, ReconcileReport};
pub use telemetry::{FieldId, FieldSample, TelemetryStore};
