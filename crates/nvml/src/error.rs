//! NVML-shaped error codes.

use serde::{Deserialize, Serialize};

/// Errors surfaced by the simulated NVML layer. Variants mirror the NVML
/// return codes a MIG management sequence can hit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NvmlError {
    /// Device index out of range (`NVML_ERROR_INVALID_ARGUMENT`).
    InvalidDevice {
        /// The requested index.
        index: usize,
        /// Number of devices present.
        count: usize,
    },
    /// Operation requires MIG mode but it is disabled
    /// (`NVML_ERROR_NOT_SUPPORTED` on instance calls without MIG).
    MigDisabled {
        /// Offending device index.
        device: usize,
    },
    /// No placement can host the requested profile
    /// (`NVML_ERROR_INSUFFICIENT_RESOURCES`).
    InsufficientResources {
        /// Offending device index.
        device: usize,
        /// Requested profile GPCs.
        gpcs: u8,
    },
    /// The requested placement violates MIG rules
    /// (`NVML_ERROR_INVALID_ARGUMENT`).
    InvalidPlacement {
        /// Offending device index.
        device: usize,
        /// Why the GPU state rejected it.
        reason: String,
    },
    /// Unknown GPU-instance handle (`NVML_ERROR_NOT_FOUND`).
    UnknownInstance {
        /// The stale handle.
        id: u64,
    },
    /// MIG mode cannot change while instances exist
    /// (`NVML_ERROR_IN_USE`).
    DeviceBusy {
        /// Offending device index.
        device: usize,
        /// Live instances blocking the transition.
        live_instances: usize,
    },
}

impl std::fmt::Display for NvmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidDevice { index, count } => {
                write!(f, "device index {index} out of range (fleet has {count})")
            }
            Self::MigDisabled { device } => {
                write!(f, "device {device}: MIG mode is disabled")
            }
            Self::InsufficientResources { device, gpcs } => {
                write!(f, "device {device}: no placement for a {gpcs}-GPC instance")
            }
            Self::InvalidPlacement { device, reason } => {
                write!(f, "device {device}: invalid placement: {reason}")
            }
            Self::UnknownInstance { id } => write!(f, "unknown GPU-instance handle {id}"),
            Self::DeviceBusy {
                device,
                live_instances,
            } => write!(
                f,
                "device {device}: cannot change MIG mode with {live_instances} live instance(s)"
            ),
        }
    }
}

impl std::error::Error for NvmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NvmlError::InsufficientResources { device: 3, gpcs: 4 };
        assert!(e.to_string().contains("device 3"));
        assert!(e.to_string().contains("4-GPC"));
        let e = NvmlError::DeviceBusy {
            device: 0,
            live_instances: 2,
        };
        assert!(e.to_string().contains("2 live instance"));
    }
}
