//! Executing a deployment map against the simulated fleet.
//!
//! This is the paper's "Deployment" stage (Fig. 2): once the Segment
//! Allocator returns `optimized G`, ParvaGPU "reconfigures the MIG and MPS
//! of the physical GPUs and then launches inference servers". Here the
//! physical GPUs are [`SimNvml`] devices and the launch is the MPS process
//! count on each instance.

use crate::device::{InstanceId, SimNvml};
use crate::error::NvmlError;
use parva_deploy::MigDeployment;
use parva_mig::Placement;
use serde::{Deserialize, Serialize};

/// The binding of one placed segment to a live GPU instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppliedInstance {
    /// The live instance handle.
    pub instance: InstanceId,
    /// Service bound to the instance.
    pub service_id: u32,
    /// Device index.
    pub device: usize,
    /// Placement inside the device.
    pub placement: Placement,
    /// MPS processes launched.
    pub procs: u32,
}

/// Apply a full deployment map to the fleet: enable MIG on every used
/// device, create each segment's instance at its planned placement, and
/// launch its MPS processes. The fleet grows if the map needs more devices.
///
/// The fleet must be clean (no live instances); incremental changes go
/// through [`crate::diff`] instead.
///
/// # Errors
/// Propagates any NVML error; on error the fleet is left as far as the
/// sequence got (callers reset or diff-repair).
pub fn apply_deployment(
    nvml: &mut SimNvml,
    deployment: &MigDeployment,
) -> Result<Vec<AppliedInstance>, NvmlError> {
    if deployment.gpu_count() > nvml.device_count() {
        nvml.grow(deployment.gpu_count() - nvml.device_count());
    }
    for device in 0..deployment.gpu_count() {
        nvml.set_mig_mode(device, true)?;
    }
    let mut applied = Vec::with_capacity(deployment.segments().len());
    for ps in deployment.segments() {
        let id = nvml.create_gpu_instance_at(ps.gpu, ps.placement)?;
        nvml.set_mps_processes(id, ps.segment.triplet.procs)?;
        applied.push(AppliedInstance {
            instance: id,
            service_id: ps.segment.service_id,
            device: ps.gpu,
            placement: ps.placement,
            procs: ps.segment.triplet.procs,
        });
    }
    Ok(applied)
}

/// Whether the live fleet realizes exactly the deployment map: every used
/// device is MIG-enabled and carries precisely the planned placements (with
/// the planned process counts), and no stray instances exist elsewhere.
#[must_use]
pub fn fleet_matches(nvml: &SimNvml, deployment: &MigDeployment) -> bool {
    // No instances beyond the deployment's devices.
    let stray = nvml
        .instances()
        .iter()
        .any(|i| i.device >= deployment.gpu_count());
    if stray {
        return false;
    }
    for device in 0..deployment.gpu_count() {
        let Ok(dev) = nvml.device(device) else {
            return false;
        };
        if !dev.mig_enabled() {
            return false;
        }
        let mut live: Vec<(Placement, u32)> = nvml
            .instances_on(device)
            .iter()
            .map(|i| (i.placement, i.mps_processes))
            .collect();
        let mut planned: Vec<(Placement, u32)> = deployment
            .segments_on(device)
            .map(|ps| (ps.placement, ps.segment.triplet.procs))
            .collect();
        live.sort_by_key(|(p, _)| (p.start, p.profile.gpcs()));
        planned.sort_by_key(|(p, _)| (p.start, p.profile.gpcs()));
        if live != planned {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_deploy::Segment;
    use parva_mig::{GpuModel, InstanceProfile};
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(id: u32, g: InstanceProfile, procs: u32) -> Segment {
        Segment {
            service_id: id,
            model: Model::ResNet50,
            triplet: Triplet::new(g, 8, procs),
            throughput_rps: 100.0,
            latency_ms: 10.0,
        }
    }

    fn two_gpu_deployment() -> MigDeployment {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G4, 2));
        d.place_first_fit(seg(1, InstanceProfile::G3, 3));
        d.place_first_fit(seg(2, InstanceProfile::G7, 1));
        d
    }

    #[test]
    fn apply_realizes_the_map() {
        let mut nvml = SimNvml::new(1, GpuModel::A100_80GB);
        let d = two_gpu_deployment();
        let applied = apply_deployment(&mut nvml, &d).unwrap();
        assert_eq!(applied.len(), 3);
        // The fleet grew to cover the 2-GPU map.
        assert_eq!(nvml.device_count(), 2);
        assert!(nvml.validate());
        assert!(fleet_matches(&nvml, &d));
        // MPS process counts landed.
        let g3 = applied.iter().find(|a| a.service_id == 1).unwrap();
        assert_eq!(nvml.instance(g3.instance).unwrap().mps_processes, 3);
    }

    #[test]
    fn fleet_matches_detects_divergence() {
        let mut nvml = SimNvml::new(2, GpuModel::A100_80GB);
        let d = two_gpu_deployment();
        let applied = apply_deployment(&mut nvml, &d).unwrap();
        assert!(fleet_matches(&nvml, &d));
        // Kill one instance behind the map's back.
        nvml.destroy_gpu_instance(applied[0].instance).unwrap();
        assert!(!fleet_matches(&nvml, &d));
    }

    #[test]
    fn fleet_matches_detects_wrong_procs() {
        let mut nvml = SimNvml::new(2, GpuModel::A100_80GB);
        let d = two_gpu_deployment();
        let applied = apply_deployment(&mut nvml, &d).unwrap();
        nvml.set_mps_processes(applied[1].instance, 1).unwrap();
        assert!(!fleet_matches(&nvml, &d));
    }

    #[test]
    fn fleet_matches_detects_stray_instances() {
        let mut nvml = SimNvml::new(3, GpuModel::A100_80GB);
        let d = two_gpu_deployment();
        apply_deployment(&mut nvml, &d).unwrap();
        nvml.set_mig_mode(2, true).unwrap();
        nvml.create_gpu_instance(2, InstanceProfile::G1).unwrap();
        assert!(!fleet_matches(&nvml, &d), "stray instance on device 2");
    }

    #[test]
    fn empty_deployment_is_trivially_matched() {
        let nvml = SimNvml::new(0, GpuModel::A100_80GB);
        assert!(fleet_matches(&nvml, &MigDeployment::new()));
    }
}
