//! Minimal-diff reconfiguration between deployment maps.
//!
//! Paper §III-F: "This method minimizes the overhead of reconfiguration, as
//! services whose placement has not changed do not require reconfiguration."
//! Given the deployment before and after a scheduling update, this module
//! computes the smallest operation set that transforms the live fleet:
//!
//! * a slot occupied by the *same* (service, triplet) in both maps is
//!   **kept** — zero ops, zero downtime;
//! * a slot whose instance profile and service survive but whose MPS
//!   process count changed is **retuned** — an MPS relaunch, no MIG
//!   teardown (MPS reconfiguration is the milliseconds end of the paper's
//!   "milliseconds to a few seconds" range);
//! * everything else is a **destroy** of the old instance and/or a
//!   **create** of the new one (the seconds end — a MIG instance rebuild).

use crate::device::SimNvml;
use crate::error::NvmlError;
use parva_deploy::{MigDeployment, Segment};
use parva_mig::Placement;
use serde::{Deserialize, Serialize};

/// One physical reconfiguration operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconfigOp {
    /// Tear down the instance at (device, placement).
    Destroy {
        /// Device index.
        device: usize,
        /// Placement of the doomed instance.
        placement: Placement,
        /// Service that was running there (for shadow planning).
        service_id: u32,
    },
    /// Create an instance and launch its MPS processes.
    Create {
        /// Device index.
        device: usize,
        /// Placement of the new instance.
        placement: Placement,
        /// The segment to run there.
        segment: Segment,
    },
    /// Same instance, same service — only the MPS process count (or batch)
    /// changes: relaunch servers without touching MIG.
    RetuneMps {
        /// Device index.
        device: usize,
        /// Placement of the retuned instance.
        placement: Placement,
        /// New process count.
        procs: u32,
    },
}

/// The diff between two deployment maps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeploymentDiff {
    /// Slots carried over untouched: (device, placement, service id).
    pub kept: Vec<(usize, Placement, u32)>,
    /// Operations to execute, destroys first (frees slices for creates).
    pub ops: Vec<ReconfigOp>,
}

impl DeploymentDiff {
    /// Devices touched by at least one operation — the GPUs that need
    /// physical reconfiguration (and shadow coverage, §III-F).
    #[must_use]
    pub fn touched_devices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .ops
            .iter()
            .map(|op| match op {
                ReconfigOp::Destroy { device, .. }
                | ReconfigOp::Create { device, .. }
                | ReconfigOp::RetuneMps { device, .. } => *device,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Services disturbed by destroys or creates (MPS retunes keep serving
    /// through the relaunch, one process at a time).
    #[must_use]
    pub fn disturbed_services(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .ops
            .iter()
            .filter_map(|op| match op {
                ReconfigOp::Destroy { service_id, .. } => Some(*service_id),
                ReconfigOp::Create { segment, .. } => Some(segment.service_id),
                ReconfigOp::RetuneMps { .. } => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Count of MIG-level rebuilds (destroys + creates), the expensive kind.
    #[must_use]
    pub fn mig_rebuilds(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, ReconfigOp::RetuneMps { .. }))
            .count()
    }

    /// Devices needing *MIG* reconfiguration (instance rebuilds). Devices
    /// receiving only MPS retunes keep their layout — the paper's
    /// `reconfigured_gpus` notion (§III-F) counts exactly these.
    #[must_use]
    pub fn mig_touched_devices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .ops
            .iter()
            .filter_map(|op| match op {
                ReconfigOp::Destroy { device, .. } | ReconfigOp::Create { device, .. } => {
                    Some(*device)
                }
                ReconfigOp::RetuneMps { .. } => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Compute the minimal diff transforming `old` into `new`.
#[must_use]
pub fn diff_deployments(old: &MigDeployment, new: &MigDeployment) -> DeploymentDiff {
    let slot = |d: &MigDeployment| -> Vec<(usize, Placement, Segment)> {
        d.segments()
            .iter()
            .map(|ps| (ps.gpu, ps.placement, ps.segment))
            .collect()
    };
    let old_slots = slot(old);
    let new_slots = slot(new);

    let mut diff = DeploymentDiff::default();
    let mut destroys = Vec::new();
    let mut creates = Vec::new();

    for (device, placement, seg) in &old_slots {
        match new_slots
            .iter()
            .find(|(d2, p2, _)| d2 == device && p2 == placement)
        {
            Some((_, _, seg2))
                if seg2.service_id == seg.service_id
                    && seg2.triplet.instance == seg.triplet.instance =>
            {
                if seg2.triplet.procs == seg.triplet.procs
                    && seg2.triplet.batch == seg.triplet.batch
                {
                    diff.kept.push((*device, *placement, seg.service_id));
                } else {
                    diff.ops.push(ReconfigOp::RetuneMps {
                        device: *device,
                        placement: *placement,
                        procs: seg2.triplet.procs,
                    });
                }
            }
            _ => destroys.push(ReconfigOp::Destroy {
                device: *device,
                placement: *placement,
                service_id: seg.service_id,
            }),
        }
    }
    for (device, placement, seg) in &new_slots {
        let survives = old_slots.iter().any(|(d2, p2, seg2)| {
            d2 == device
                && p2 == placement
                && seg2.service_id == seg.service_id
                && seg2.triplet.instance == seg.triplet.instance
        });
        if !survives {
            creates.push(ReconfigOp::Create {
                device: *device,
                placement: *placement,
                segment: *seg,
            });
        }
    }
    // Destroys first so creates find free slices, then MPS retunes (cheap,
    // order-independent) are already interleaved in `ops`.
    let retunes = std::mem::take(&mut diff.ops);
    diff.ops = destroys;
    diff.ops.extend(creates);
    diff.ops.extend(retunes);
    diff
}

/// Execute a diff against the live fleet.
///
/// # Errors
/// Propagates NVML errors (stale handles, placement conflicts). The fleet
/// must currently realize the diff's `old` side.
pub fn apply_diff(nvml: &mut SimNvml, diff: &DeploymentDiff) -> Result<(), NvmlError> {
    // Resolve (device, placement) → handle for destroys/retunes up front.
    let lookup = |nvml: &SimNvml, device: usize, placement: Placement| {
        nvml.instances()
            .iter()
            .find(|i| i.device == device && i.placement == placement)
            .map(|i| i.id)
            .ok_or(NvmlError::UnknownInstance { id: 0 })
    };
    for op in &diff.ops {
        match op {
            ReconfigOp::Destroy {
                device, placement, ..
            } => {
                let id = lookup(nvml, *device, *placement)?;
                nvml.destroy_gpu_instance(id)?;
            }
            ReconfigOp::Create {
                device,
                placement,
                segment,
            } => {
                if *device >= nvml.device_count() {
                    nvml.grow(*device + 1 - nvml.device_count());
                }
                nvml.set_mig_mode(*device, true)?;
                let id = nvml.create_gpu_instance_at(*device, *placement)?;
                nvml.set_mps_processes(id, segment.triplet.procs)?;
            }
            ReconfigOp::RetuneMps {
                device,
                placement,
                procs,
            } => {
                let id = lookup(nvml, *device, *placement)?;
                nvml.set_mps_processes(id, *procs)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_deployment, fleet_matches};
    use parva_mig::{GpuModel, InstanceProfile};
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(id: u32, g: InstanceProfile, batch: u32, procs: u32) -> Segment {
        Segment {
            service_id: id,
            model: Model::ResNet50,
            triplet: Triplet::new(g, batch, procs),
            throughput_rps: 100.0,
            latency_ms: 10.0,
        }
    }

    fn base() -> MigDeployment {
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, InstanceProfile::G4, 8, 2));
        d.place_first_fit(seg(1, InstanceProfile::G3, 8, 3));
        d.place_first_fit(seg(2, InstanceProfile::G2, 16, 1));
        d
    }

    #[test]
    fn identical_maps_need_no_ops() {
        let d = base();
        let diff = diff_deployments(&d, &d);
        assert!(diff.ops.is_empty());
        assert_eq!(diff.kept.len(), 3);
        assert!(diff.touched_devices().is_empty());
    }

    #[test]
    fn unrelated_services_are_kept() {
        // Replace service 2's segment with a different profile at the same
        // spot; services 0 and 1 stay put.
        let old = base();
        let mut new = MigDeployment::new();
        new.place_first_fit(seg(0, InstanceProfile::G4, 8, 2));
        new.place_first_fit(seg(1, InstanceProfile::G3, 8, 3));
        new.place_first_fit(seg(3, InstanceProfile::G2, 16, 2));
        let diff = diff_deployments(&old, &new);
        assert_eq!(diff.kept.len(), 2);
        assert_eq!(diff.mig_rebuilds(), 2); // destroy old G2 + create new G2
        assert_eq!(diff.disturbed_services(), vec![2, 3]);
    }

    #[test]
    fn procs_change_is_a_retune_not_a_rebuild() {
        let old = base();
        let mut new = MigDeployment::new();
        new.place_first_fit(seg(0, InstanceProfile::G4, 8, 3)); // 2 → 3 procs
        new.place_first_fit(seg(1, InstanceProfile::G3, 8, 3));
        new.place_first_fit(seg(2, InstanceProfile::G2, 16, 1));
        let diff = diff_deployments(&old, &new);
        assert_eq!(diff.mig_rebuilds(), 0);
        assert_eq!(diff.ops.len(), 1);
        assert!(matches!(
            diff.ops[0],
            ReconfigOp::RetuneMps { procs: 3, .. }
        ));
        // Retunes disturb no service (rolling relaunch).
        assert!(diff.disturbed_services().is_empty());
    }

    #[test]
    fn apply_diff_converges_fleet_to_new_map() {
        let old = base();
        let mut new = MigDeployment::new();
        new.place_first_fit(seg(0, InstanceProfile::G4, 8, 2));
        new.place_first_fit(seg(5, InstanceProfile::G3, 4, 2)); // new service
        new.place_first_fit(seg(2, InstanceProfile::G2, 16, 2)); // retune

        let mut nvml = SimNvml::new(1, GpuModel::A100_80GB);
        apply_deployment(&mut nvml, &old).unwrap();
        let diff = diff_deployments(&old, &new);
        apply_diff(&mut nvml, &diff).unwrap();
        assert!(nvml.validate());
        assert!(fleet_matches(&nvml, &new));
    }

    #[test]
    fn destroys_ordered_before_creates() {
        // Swap the services in two same-profile slots — creates must find
        // the slices already freed.
        let mut old = MigDeployment::new();
        old.place_first_fit(seg(0, InstanceProfile::G3, 8, 1));
        let mut new = MigDeployment::new();
        new.place_first_fit(seg(9, InstanceProfile::G3, 8, 1));
        let diff = diff_deployments(&old, &new);
        assert_eq!(diff.ops.len(), 2);
        assert!(matches!(diff.ops[0], ReconfigOp::Destroy { .. }));
        assert!(matches!(diff.ops[1], ReconfigOp::Create { .. }));
        // And it really applies.
        let mut nvml = SimNvml::new(1, GpuModel::A100_80GB);
        apply_deployment(&mut nvml, &old).unwrap();
        apply_diff(&mut nvml, &diff).unwrap();
        assert!(fleet_matches(&nvml, &new));
    }

    #[test]
    fn growth_to_new_devices() {
        let old = MigDeployment::new();
        let mut new = MigDeployment::new();
        new.place_first_fit(seg(0, InstanceProfile::G7, 8, 1));
        new.place_first_fit(seg(1, InstanceProfile::G7, 8, 1));
        let diff = diff_deployments(&old, &new);
        let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
        apply_diff(&mut nvml, &diff).unwrap();
        assert_eq!(nvml.device_count(), 2);
        assert!(fleet_matches(&nvml, &new));
    }
}
