//! DCGM-style telemetry fields over GPU instances.
//!
//! The paper's internal-slack metric (Eq. 3) is defined over DCGM's
//! *SM activity* — "a measure of GPU utilization that reflects both spatial
//! and temporal aspects" (§IV-B2). This module models the relevant slice of
//! the DCGM field API: per-instance field samples with timestamps, windowed
//! means, and the fleet-level weighted activity aggregate Eq. 3 consumes.

use crate::device::InstanceId;
use serde::{Deserialize, Serialize};

/// The DCGM fields the reproduction records (subset of `DCGM_FI_PROF_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldId {
    /// `DCGM_FI_PROF_SM_ACTIVE`: fraction of cycles ≥1 warp was resident,
    /// in `[0, 1]`.
    SmActivity,
    /// Framebuffer memory used, GiB.
    MemoryUsedGib,
    /// Served request throughput, req/s (custom field in the reproduction).
    ThroughputRps,
}

/// One recorded sample of a field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldSample {
    /// Sample timestamp, microseconds since simulation start.
    pub timestamp_us: u64,
    /// Sample value (unit depends on the field).
    pub value: f64,
}

/// An append-only store of field samples per (instance, field) — the watch
/// window a DCGM field group provides.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStore {
    samples: Vec<(InstanceId, FieldId, FieldSample)>,
}

impl TelemetryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Timestamps are expected to be non-decreasing per
    /// (instance, field) stream; out-of-order samples are accepted but the
    /// windowed queries assume monotone time.
    pub fn record(&mut self, instance: InstanceId, field: FieldId, sample: FieldSample) {
        self.samples.push((instance, field, sample));
    }

    /// Number of samples stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample of a field on an instance.
    #[must_use]
    pub fn latest(&self, instance: InstanceId, field: FieldId) -> Option<FieldSample> {
        self.samples
            .iter()
            .filter(|(i, f, _)| *i == instance && *f == field)
            .max_by_key(|(_, _, s)| s.timestamp_us)
            .map(|(_, _, s)| *s)
    }

    /// Mean of a field over samples with `timestamp_us` in
    /// `[from_us, to_us)`; `None` when the window holds no samples.
    #[must_use]
    pub fn window_mean(
        &self,
        instance: InstanceId,
        field: FieldId,
        from_us: u64,
        to_us: u64,
    ) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(i, f, s)| {
                *i == instance && *f == field && s.timestamp_us >= from_us && s.timestamp_us < to_us
            })
            .map(|(_, _, s)| s.value)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// The paper's Eq. 3 aggregate over latest samples: SM-weighted mean
    /// activity across instances, where `sms` gives each instance's SM
    /// count. Returns `None` when no instance has an activity sample.
    #[must_use]
    pub fn weighted_activity(&self, instances: &[(InstanceId, u32)]) -> Option<f64> {
        let mut weighted = 0.0;
        let mut total_sms = 0.0;
        for (id, sms) in instances {
            if let Some(s) = self.latest(*id, FieldId::SmActivity) {
                weighted += f64::from(*sms) * s.value;
                total_sms += f64::from(*sms);
            }
        }
        if total_sms > 0.0 {
            Some(weighted / total_sms)
        } else {
            None
        }
    }

    /// Drop samples older than `horizon_us` (DCGM keeps a bounded watch
    /// window; this is the retention pass).
    pub fn trim(&mut self, horizon_us: u64) {
        self.samples
            .retain(|(_, _, s)| s.timestamp_us >= horizon_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64, v: f64) -> FieldSample {
        FieldSample {
            timestamp_us: t,
            value: v,
        }
    }

    #[test]
    fn latest_picks_newest() {
        let mut store = TelemetryStore::new();
        let id = InstanceId(1);
        store.record(id, FieldId::SmActivity, s(10, 0.5));
        store.record(id, FieldId::SmActivity, s(30, 0.8));
        store.record(id, FieldId::SmActivity, s(20, 0.6));
        assert_eq!(store.latest(id, FieldId::SmActivity), Some(s(30, 0.8)));
        assert_eq!(store.latest(id, FieldId::MemoryUsedGib), None);
        assert_eq!(store.latest(InstanceId(2), FieldId::SmActivity), None);
    }

    #[test]
    fn window_mean_half_open() {
        let mut store = TelemetryStore::new();
        let id = InstanceId(1);
        for (t, v) in [(0, 0.2), (100, 0.4), (200, 0.6), (300, 0.8)] {
            store.record(id, FieldId::SmActivity, s(t, v));
        }
        // [100, 300) → samples at 100 and 200.
        let m = store
            .window_mean(id, FieldId::SmActivity, 100, 300)
            .unwrap();
        assert!((m - 0.5).abs() < 1e-12);
        assert_eq!(store.window_mean(id, FieldId::SmActivity, 400, 500), None);
    }

    #[test]
    fn weighted_activity_matches_eq3_semantics() {
        // Two instances: 14 SMs at 100% and 42 SMs at 50% → (14 + 21)/56.
        let mut store = TelemetryStore::new();
        store.record(InstanceId(1), FieldId::SmActivity, s(0, 1.0));
        store.record(InstanceId(2), FieldId::SmActivity, s(0, 0.5));
        let agg = store
            .weighted_activity(&[(InstanceId(1), 14), (InstanceId(2), 42)])
            .unwrap();
        assert!((agg - 35.0 / 56.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_activity_skips_unsampled() {
        let mut store = TelemetryStore::new();
        store.record(InstanceId(1), FieldId::SmActivity, s(0, 0.9));
        // Instance 2 never reported; only instance 1 contributes.
        let agg = store
            .weighted_activity(&[(InstanceId(1), 14), (InstanceId(2), 42)])
            .unwrap();
        assert!((agg - 0.9).abs() < 1e-12);
        assert_eq!(
            TelemetryStore::new().weighted_activity(&[(InstanceId(1), 14)]),
            None
        );
    }

    #[test]
    fn trim_retention() {
        let mut store = TelemetryStore::new();
        let id = InstanceId(7);
        store.record(id, FieldId::MemoryUsedGib, s(10, 5.0));
        store.record(id, FieldId::MemoryUsedGib, s(1000, 6.0));
        store.trim(500);
        assert_eq!(store.len(), 1);
        assert_eq!(store.latest(id, FieldId::MemoryUsedGib), Some(s(1000, 6.0)));
    }

    #[test]
    fn fields_are_independent_streams() {
        let mut store = TelemetryStore::new();
        let id = InstanceId(1);
        store.record(id, FieldId::SmActivity, s(0, 0.7));
        store.record(id, FieldId::ThroughputRps, s(0, 812.0));
        assert_eq!(store.latest(id, FieldId::SmActivity).unwrap().value, 0.7);
        assert_eq!(
            store.latest(id, FieldId::ThroughputRps).unwrap().value,
            812.0
        );
    }
}
