//! Microbench: node packing + cost reporting over growing fleets (the
//! predictor path of Figs. 10–11 extended to the node/cost layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parva_cluster::{pack, CostReport, NodeType, PricingPlan};
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_pack(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let mut group = c.benchmark_group("cluster_pack");
    for k in [1u32, 4, 8] {
        let specs = Scenario::S5.scaled(k);
        let deployment = sched.schedule(&specs).expect("S5×k feasible");
        group.bench_with_input(
            BenchmarkId::new("pack_and_cost", format!("{}gpus", deployment.gpu_count())),
            &deployment,
            |b, d| {
                b.iter(|| {
                    let plan = pack(std::hint::black_box(d), NodeType::P4DE_24XLARGE);
                    CostReport::from_plan("ParvaGPU", &plan, PricingPlan::OnDemand)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
